type region = Rangean.region =
  | Whole
  | Cells of int list
  | Span of Types.expr * Types.expr
  | Union of region list

type t = {
  cfg : Cfg.t;
  live_in : Loc.Set.t array;
  defs : Loc.Set.t;
  regions : region Loc.Map.t;
}

let source_loc = function
  | Expr.Scalar v -> Loc.Scalar v
  | Expr.Array_elem (a, _) -> Loc.Array a
  | Expr.Pointer_deref p -> Loc.Pointer p

(* Locations read by an expression, including the pointee scalars of any
   dereferenced pointer (the value read depends on both). *)
let expr_uses pts e =
  List.fold_left
    (fun acc src ->
      let acc = Loc.Set.add (source_loc src) acc in
      match src with
      | Expr.Pointer_deref p ->
          List.fold_left (fun acc v -> Loc.Set.add (Loc.Scalar v) acc) acc (Pointsto.targets pts p)
      | _ -> acc)
    Loc.Set.empty (Expr.sources e)

let stmt_uses pts (s : Cfg.simple) =
  match s with
  | SAssign (_, e) -> expr_uses pts e
  | SStore (_, i, e) -> Loc.Set.union (expr_uses pts i) (expr_uses pts e)
  | SPtrStore (p, e) -> Loc.Set.add (Loc.Pointer p) (expr_uses pts e)
  | SPtrSet _ -> Loc.Set.empty
  | SCall f ->
      if Types.is_pure_external f then Loc.Set.empty
      else Loc.Set.empty (* uses handled conservatively by treating calls as barriers below *)

let stmt_defs pts cfg (s : Cfg.simple) ~strong_only =
  let all = ref Loc.Set.empty in
  let strong = ref Loc.Set.empty in
  (match s with
  | Cfg.SAssign (x, _) ->
      all := Loc.Set.add (Loc.Scalar x) !all;
      strong := Loc.Set.add (Loc.Scalar x) !strong
  | Cfg.SStore (a, i, _) ->
      all := Loc.Set.add (Loc.Array a) !all;
      (* a store to a[i] does not fully define the array; never strong *)
      ignore i
  | Cfg.SPtrStore (p, _) -> (
      match Pointsto.targets pts p with
      | [ v ] when not (Pointsto.is_retargeted pts p) ->
          all := Loc.Set.add (Loc.Scalar v) !all;
          strong := Loc.Set.add (Loc.Scalar v) !strong
      | vs -> List.iter (fun v -> all := Loc.Set.add (Loc.Scalar v) !all) vs)
  | Cfg.SPtrSet (p, _) ->
      all := Loc.Set.add (Loc.Pointer p) !all;
      strong := Loc.Set.add (Loc.Pointer p) !strong
  | Cfg.SCall f ->
      if not (Types.is_pure_external f) then begin
        let ts = cfg.Cfg.ts in
        List.iter (fun v -> all := Loc.Set.add (Loc.Scalar v) !all) ts.params;
        List.iter (fun (a, _) -> all := Loc.Set.add (Loc.Array a) !all) ts.arrays;
        List.iter (fun (p, _) -> all := Loc.Set.add (Loc.Pointer p) !all) ts.pointers
      end);
  if strong_only then !strong else !all

let term_uses pts (b : Cfg.bblock) =
  match b.term with
  | Branch (c, _, _) -> expr_uses pts c
  | Goto _ | Exit -> Loc.Set.empty

(* Backward per-block transfer: live_in = use ∪ (live_out − strong_def),
   computed statement by statement from the end. *)
let block_live_in pts cfg (b : Cfg.bblock) live_out =
  let live = ref (Loc.Set.union live_out (term_uses pts b)) in
  for i = Array.length b.stmts - 1 downto 0 do
    let s = b.stmts.(i) in
    let kills = stmt_defs pts cfg s ~strong_only:true in
    live := Loc.Set.union (stmt_uses pts s) (Loc.Set.diff !live kills);
    (* impure calls may read anything: treat everything as live before *)
    match s with
    | Cfg.SCall f when not (Types.is_pure_external f) ->
        let ts = cfg.Cfg.ts in
        List.iter (fun v -> live := Loc.Set.add (Loc.Scalar v) !live) ts.params;
        List.iter (fun (a, _) -> live := Loc.Set.add (Loc.Array a) !live) ts.arrays
    | _ -> ()
  done;
  !live

let analyze (cfg : Cfg.t) pts =
  let n = Cfg.n_blocks cfg in
  let live_in = Array.make n Loc.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = n - 1 downto 0 do
      let b = Cfg.block cfg id in
      let live_out =
        List.fold_left
          (fun acc succ -> Loc.Set.union acc live_in.(succ))
          Loc.Set.empty (Cfg.successors b)
      in
      let li = block_live_in pts cfg b live_out in
      if not (Loc.Set.equal li live_in.(id)) then begin
        live_in.(id) <- li;
        changed := true
      end
    done
  done;
  (* Def(TS): union of all (weak or strong) defs. *)
  let defs = ref Loc.Set.empty in
  Array.iter
    (fun (b : Cfg.bblock) ->
      Array.iter
        (fun s -> defs := Loc.Set.union !defs (stmt_defs pts cfg s ~strong_only:false))
        b.stmts)
    cfg.blocks;
  (* Array store regions come from the symbolic range analysis over the
     structured body (constant cells, loop-bound spans, or whole). *)
  let regions =
    List.fold_left
      (fun acc (a, r) -> Loc.Map.add (Loc.Array a) r acc)
      Loc.Map.empty
      (Rangean.store_regions cfg.ts)
  in
  { cfg; live_in; defs = !defs; regions }

let live_in_entry t = t.live_in.(t.cfg.entry)
let def_set t = t.defs
let modified_input t = Loc.Set.inter (live_in_entry t) t.defs

let modified_region t loc =
  match Loc.Map.find_opt loc t.regions with Some r -> r | None -> Whole

let array_size t name =
  match List.assoc_opt name t.cfg.ts.arrays with Some n -> n | None -> 0

let save_restore_bytes t =
  Loc.Set.fold
    (fun loc acc ->
      match loc with
      | Loc.Scalar _ | Loc.Pointer _ -> acc + 8
      | Loc.Array a ->
          let rec bound r =
            match r with
            | Whole -> array_size t a
            | Cells cs -> List.length cs
            | Span (lo, hi) -> (
                match (Expr.const_fold lo, Expr.const_fold hi) with
                | Types.Const l, Types.Const h -> max 0 (int_of_float h - int_of_float l)
                | _ -> array_size t a)
            | Union rs ->
                min (array_size t a) (List.fold_left (fun s r -> s + bound r) 0 rs)
          in
          acc + (8 * bound (modified_region t loc)))
    (modified_input t) 0

let live_in t id = t.live_in.(id)
