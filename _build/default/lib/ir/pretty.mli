(** Pseudo-C rendering of tuning sections.

    PEAK's instrumentation tool "extracts each TS into a separate file"
    (Section 4.2); this printer produces the human-readable form of that
    file — a C-like function whose parameters are the section's scalar,
    array and pointer inputs — for the CLI's [show]/[instrument] output
    and for documentation. *)

val ts_to_c : Types.ts -> string
(** The section as a pseudo-C function definition. *)

val stmt_to_c : ?indent:int -> Types.stmt -> string
(** A single statement (exposed for the instrumentation renderer). *)
