open Types

type simple =
  | SAssign of var * expr
  | SStore of var * expr * expr
  | SPtrStore of var * expr
  | SPtrSet of var * var
  | SCall of string

type terminator =
  | Goto of int
  | Branch of expr * int * int
  | Exit

type bblock = {
  id : int;
  stmts : simple array;
  term : terminator;
  loop_depth : int;
  is_loop_header : bool;
}

type t = { ts : ts; blocks : bblock array; entry : int }

(* Lowering builds blocks imperatively: a block under construction is a
   list of simple statements; closing it assigns the terminator.  Block
   ids are allocated eagerly so forward branches can reference targets
   before their contents exist. *)

type proto = {
  mutable p_stmts : simple list;  (* reverse order *)
  mutable p_term : terminator option;
  mutable p_depth : int;
  mutable p_header : bool;
}

let of_ts ts =
  let protos : proto list ref = ref [] in
  let n = ref 0 in
  let fresh_block () =
    let p = { p_stmts = []; p_term = None; p_depth = 0; p_header = false } in
    protos := p :: !protos;
    incr n;
    (!n - 1, p)
  in
  let temp_count = ref 0 in
  let temps = ref [] in
  let fresh_temp () =
    let t = Printf.sprintf "__t%d" !temp_count in
    incr temp_count;
    temps := t :: !temps;
    t
  in
  (* [lower block cur depth k] appends [block] to proto [cur], then
     terminates into a fresh block which is returned for continuation. *)
  let close (_, p) term = if p.p_term = None then p.p_term <- Some term in
  let emit (_, p) s = p.p_stmts <- s :: p.p_stmts in
  let rec lower_block stmts cur depth =
    List.fold_left (fun cur s -> lower_stmt s cur depth) cur stmts
  and lower_stmt s cur depth =
    match s with
    | Nop -> cur
    | Assign (x, e) ->
        emit cur (SAssign (x, e));
        cur
    | Store (a, i, e) ->
        emit cur (SStore (a, i, e));
        cur
    | PtrStore (p, e) ->
        emit cur (SPtrStore (p, e));
        cur
    | PtrSet (p, v) ->
        emit cur (SPtrSet (p, v));
        cur
    | Call f ->
        emit cur (SCall f);
        cur
    | If (cond, then_b, else_b) ->
        let (tid, tp) = fresh_block () in
        let (eid, ep) = fresh_block () in
        let (jid, jp) = fresh_block () in
        tp.p_depth <- depth;
        ep.p_depth <- depth;
        jp.p_depth <- depth;
        close cur (Branch (cond, tid, eid));
        let t_end = lower_block then_b (tid, tp) depth in
        close t_end (Goto jid);
        let e_end = lower_block else_b (eid, ep) depth in
        close e_end (Goto jid);
        (jid, jp)
    | While (cond, body) ->
        let (hid, hp) = fresh_block () in
        let (bid, bp) = fresh_block () in
        let (xid, xp) = fresh_block () in
        hp.p_depth <- depth;
        hp.p_header <- true;
        bp.p_depth <- depth + 1;
        xp.p_depth <- depth;
        close cur (Goto hid);
        close (hid, hp) (Branch (cond, bid, xid));
        let b_end = lower_block body (bid, bp) (depth + 1) in
        close b_end (Goto hid);
        (xid, xp)
    | For { index; lo; hi; body } ->
        (* Evaluate both bounds on entry; the limit goes into a fresh
           temporary so mutations of [hi]'s variables inside the body do
           not change the trip count. *)
        let limit = fresh_temp () in
        emit cur (SAssign (index, lo));
        emit cur (SAssign (limit, hi));
        let (hid, hp) = fresh_block () in
        let (bid, bp) = fresh_block () in
        let (xid, xp) = fresh_block () in
        hp.p_depth <- depth;
        hp.p_header <- true;
        bp.p_depth <- depth + 1;
        xp.p_depth <- depth;
        close cur (Goto hid);
        close (hid, hp) (Branch (Cmp (Lt, Var index, Var limit), bid, xid));
        let b_end = lower_block body (bid, bp) (depth + 1) in
        emit b_end (SAssign (index, Binop (Add, Var index, Const 1.0)));
        close b_end (Goto hid);
        (xid, xp)
  in
  let (entry_id, entry_p) = fresh_block () in
  let last = lower_block ts.body (entry_id, entry_p) 0 in
  close last Exit;
  let protos = Array.of_list (List.rev !protos) in
  let blocks =
    Array.mapi
      (fun id p ->
        {
          id;
          stmts = Array.of_list (List.rev p.p_stmts);
          term = (match p.p_term with Some t -> t | None -> Exit);
          loop_depth = p.p_depth;
          is_loop_header = p.p_header;
        })
      protos
  in
  let ts = { ts with locals = ts.locals @ List.rev !temps } in
  { ts; blocks; entry = entry_id }

let n_blocks t = Array.length t.blocks
let block t i = t.blocks.(i)

let successors b =
  match b.term with
  | Goto x -> [ x ]
  | Branch (_, a, b') -> if a = b' then [ a ] else [ a; b' ]
  | Exit -> []

let predecessors t id =
  let preds = ref [] in
  Array.iter
    (fun b -> if List.mem id (successors b) then preds := b.id :: !preds)
    t.blocks;
  List.rev !preds

let control_conditions t =
  Array.to_list t.blocks
  |> List.filter_map (fun b ->
         match b.term with Branch (cond, _, _) -> Some (b.id, cond) | Goto _ | Exit -> None)

let temporaries t =
  List.filter (fun v -> String.length v > 3 && String.sub v 0 3 = "__t") t.ts.locals

let all_scalars t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end)
    (t.ts.params @ t.ts.locals);
  List.rev !out

let pp_simple fmt = function
  | SAssign (x, e) -> Format.fprintf fmt "%s = %a" x Expr.pp e
  | SStore (a, i, e) -> Format.fprintf fmt "%s[%a] = %a" a Expr.pp i Expr.pp e
  | SPtrStore (p, e) -> Format.fprintf fmt "*%s = %a" p Expr.pp e
  | SPtrSet (p, v) -> Format.fprintf fmt "%s = &%s" p v
  | SCall f -> Format.fprintf fmt "call %s()" f

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg %s (entry=%d)@," t.ts.name t.entry;
  Array.iter
    (fun b ->
      Format.fprintf fmt "  B%d (depth=%d%s):@," b.id b.loop_depth
        (if b.is_loop_header then ", header" else "");
      Array.iter (fun s -> Format.fprintf fmt "    %a@," pp_simple s) b.stmts;
      (match b.term with
      | Goto x -> Format.fprintf fmt "    goto B%d@," x
      | Branch (c, a, b') -> Format.fprintf fmt "    if %a then B%d else B%d@," Expr.pp c a b'
      | Exit -> Format.fprintf fmt "    exit@,"))
    t.blocks;
  Format.fprintf fmt "@]"
