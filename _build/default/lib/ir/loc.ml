(** Abstract storage locations for dataflow analyses.

    Scalars, whole arrays (array writes are weak updates at this
    granularity) and pointer cells are the three location kinds the
    paper's analyses distinguish. *)

type t =
  | Scalar of Types.var
  | Array of Types.var
  | Pointer of Types.var

let compare = compare

let to_string = function
  | Scalar v -> v
  | Array a -> a ^ "[]"
  | Pointer p -> "&" ^ p

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
