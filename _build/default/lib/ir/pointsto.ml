type info = {
  mutable targets : Types.var list;
  mutable retargeted : bool;
  mutable stored_through : bool;
}

type t = { table : (Types.var, info) Hashtbl.t; mutable direct_writes : Types.var list }

let get_info t p =
  match Hashtbl.find_opt t.table p with
  | Some i -> i
  | None ->
      let i = { targets = []; retargeted = false; stored_through = false } in
      Hashtbl.add t.table p i;
      i

let add_target i v = if not (List.mem v i.targets) then i.targets <- v :: i.targets

let analyze (cfg : Cfg.t) =
  let t = { table = Hashtbl.create 8; direct_writes = [] } in
  List.iter
    (fun (p, target) -> add_target (get_info t p) target)
    cfg.ts.pointers;
  Array.iter
    (fun (b : Cfg.bblock) ->
      Array.iter
        (fun s ->
          match s with
          | Cfg.SPtrSet (p, v) ->
              let i = get_info t p in
              i.retargeted <- true;
              add_target i v
          | Cfg.SPtrStore (p, _) -> (get_info t p).stored_through <- true
          | Cfg.SAssign (x, _) ->
              if not (List.mem x t.direct_writes) then t.direct_writes <- x :: t.direct_writes
          | Cfg.SStore _ | Cfg.SCall _ -> ())
        b.stmts)
    cfg.blocks;
  t

let targets t p = match Hashtbl.find_opt t.table p with Some i -> i.targets | None -> []

let is_retargeted t p =
  match Hashtbl.find_opt t.table p with Some i -> i.retargeted | None -> false

let pointee_written t p =
  match Hashtbl.find_opt t.table p with
  | None -> false
  | Some i ->
      i.stored_through || List.exists (fun target -> List.mem target t.direct_writes) i.targets
