(** Flow-insensitive may-point-to analysis.

    The paper notes (Section 2.2) that "simple points-to analysis is
    sufficient" to classify pointer dereferences: a dereference counts as
    a scalar context variable only when the pointer is not changed within
    the tuning section.  This analysis computes, per pointer, the set of
    scalar variables it may target, and whether it is retargeted inside
    the TS. *)

type t

val analyze : Cfg.t -> t

val targets : t -> Types.var -> Types.var list
(** May-point-to set of the pointer (its declared initial pointee plus
    every [PtrSet] target in the TS).  Unknown pointers map to []. *)

val is_retargeted : t -> Types.var -> bool
(** True when some [PtrSet] in the TS reassigns the pointer. *)

val pointee_written : t -> Types.var -> bool
(** True when some [PtrStore] writes through the pointer, or a direct
    assignment writes to one of its possible targets. *)
