type env = {
  scalars : (string, float) Hashtbl.t;
  arrays : (string, float array) Hashtbl.t;
  pointers : (string, string) Hashtbl.t;
}

type result = {
  block_counts : int array;
  mem_reads : int;
  mem_writes : int;
  flops : int;
  array_accesses : (string * int) list;
  impure_calls : int;
}

exception Out_of_bounds of string
exception Step_limit_exceeded of string

let make_env (ts : Types.ts) =
  let scalars = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace scalars v 0.0) ts.params;
  List.iter (fun v -> Hashtbl.replace scalars v 0.0) ts.locals;
  let arrays = Hashtbl.create 8 in
  List.iter (fun (a, n) -> Hashtbl.replace arrays a (Array.make n 0.0)) ts.arrays;
  let pointers = Hashtbl.create 4 in
  List.iter (fun (p, target) -> Hashtbl.replace pointers p target) ts.pointers;
  { scalars; arrays; pointers }

let copy_env env =
  {
    scalars = Hashtbl.copy env.scalars;
    arrays =
      (let t = Hashtbl.create (Hashtbl.length env.arrays) in
       Hashtbl.iter (fun k v -> Hashtbl.replace t k (Array.copy v)) env.arrays;
       t);
    pointers = Hashtbl.copy env.pointers;
  }

let set_scalar env v x = Hashtbl.replace env.scalars v x

let get_scalar env v =
  match Hashtbl.find_opt env.scalars v with
  | Some x -> x
  | None -> raise (Out_of_bounds (Printf.sprintf "unknown scalar %s" v))

let set_array env a x = Hashtbl.replace env.arrays a x

let get_array env a =
  match Hashtbl.find_opt env.arrays a with
  | Some x -> x
  | None -> raise (Out_of_bounds (Printf.sprintf "unknown array %s" a))

(* Per-invocation dynamic counters, threaded as mutable state. *)
type counters = {
  mutable reads : int;
  mutable writes : int;
  mutable flops : int;
  mutable calls : int;
  accesses : (string, int) Hashtbl.t;
}

let touch counters base =
  Hashtbl.replace counters.accesses base
    (1 + Option.value ~default:0 (Hashtbl.find_opt counters.accesses base))

let array_ref env counters a i_float context =
  let arr = get_array env a in
  let i = int_of_float i_float in
  if i < 0 || i >= Array.length arr then
    raise
      (Out_of_bounds (Printf.sprintf "%s[%d] out of [0,%d) in %s" a i (Array.length arr) context));
  touch counters a;
  (arr, i)

let deref_target env p =
  match Hashtbl.find_opt env.pointers p with
  | Some target -> target
  | None -> raise (Out_of_bounds (Printf.sprintf "unknown pointer %s" p))

let rec eval_counted env counters e =
  match e with
  | Types.Const k -> k
  | Types.Var v -> get_scalar env v
  | Types.Index (a, sub) ->
      let i = eval_counted env counters sub in
      let arr, idx = array_ref env counters a i "read" in
      counters.reads <- counters.reads + 1;
      arr.(idx)
  | Types.Deref p ->
      let target = deref_target env p in
      counters.reads <- counters.reads + 1;
      touch counters p;
      get_scalar env target
  | Types.Unop (op, e) ->
      counters.flops <- counters.flops + 1;
      Expr.apply_unop op (eval_counted env counters e)
  | Types.Binop (op, a, b) ->
      let x = eval_counted env counters a in
      let y = eval_counted env counters b in
      counters.flops <- counters.flops + 1;
      Expr.apply_binop op x y
  | Types.Cmp (op, a, b) ->
      let x = eval_counted env counters a in
      let y = eval_counted env counters b in
      counters.flops <- counters.flops + 1;
      Expr.apply_cmp op x y

let eval env e =
  let counters =
    { reads = 0; writes = 0; flops = 0; calls = 0; accesses = Hashtbl.create 4 }
  in
  eval_counted env counters e

let read_source env = function
  | Expr.Scalar v -> get_scalar env v
  | Expr.Array_elem (a, Some k) ->
      let arr = get_array env a in
      if k < 0 || k >= Array.length arr then
        raise (Out_of_bounds (Printf.sprintf "%s[%d] (context read)" a k));
      arr.(k)
  | Expr.Array_elem (a, None) ->
      raise (Out_of_bounds (Printf.sprintf "%s[non-constant] is not a context source" a))
  | Expr.Pointer_deref p -> get_scalar env (deref_target env p)

let run ?(max_steps = 10_000_000) (cfg : Cfg.t) env =
  let counters =
    { reads = 0; writes = 0; flops = 0; calls = 0; accesses = Hashtbl.create 8 }
  in
  let n = Cfg.n_blocks cfg in
  let block_counts = Array.make n 0 in
  let steps = ref 0 in
  let exec_simple (s : Cfg.simple) =
    match s with
    | SAssign (x, e) -> set_scalar env x (eval_counted env counters e)
    | SStore (a, i, e) ->
        let idx_v = eval_counted env counters i in
        let value = eval_counted env counters e in
        let arr, idx = array_ref env counters a idx_v "write" in
        counters.writes <- counters.writes + 1;
        arr.(idx) <- value
    | SPtrStore (p, e) ->
        let value = eval_counted env counters e in
        let target = deref_target env p in
        counters.writes <- counters.writes + 1;
        touch counters p;
        set_scalar env target value
    | SPtrSet (p, v) -> Hashtbl.replace env.pointers p v
    | SCall f ->
        if not (Types.is_pure_external f) then counters.calls <- counters.calls + 1
  in
  let rec go id =
    incr steps;
    if !steps > max_steps then
      raise (Step_limit_exceeded (Printf.sprintf "%s: > %d block entries" cfg.ts.name max_steps));
    block_counts.(id) <- block_counts.(id) + 1;
    let b = Cfg.block cfg id in
    Array.iter exec_simple b.stmts;
    match b.term with
    | Goto next -> go next
    | Branch (c, if_true, if_false) ->
        let v = eval_counted env counters c in
        counters.flops <- counters.flops + 1;
        go (if v <> 0.0 then if_true else if_false)
    | Exit -> ()
  in
  go cfg.entry;
  {
    block_counts;
    mem_reads = counters.reads;
    mem_writes = counters.writes;
    flops = counters.flops;
    array_accesses = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters.accesses [];
    impure_calls = counters.calls;
  }
