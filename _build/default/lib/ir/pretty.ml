open Types

let expr = Expr.to_string

let rec stmt buf ~indent s =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (pad ^ str ^ "\n")) fmt in
  match s with
  | Nop -> line ";"
  | Assign (x, e) -> line "%s = %s;" x (expr e)
  | Store (a, i, e) -> line "%s[%s] = %s;" a (expr i) (expr e)
  | PtrStore (p, e) -> line "*%s = %s;" p (expr e)
  | PtrSet (p, v) -> line "%s = &%s;" p v
  | Call f -> line "%s();" f
  | If (cond, then_, []) ->
      line "if (%s) {" (expr cond);
      block buf ~indent:(indent + 2) then_;
      line "}"
  | If (cond, then_, else_) ->
      line "if (%s) {" (expr cond);
      block buf ~indent:(indent + 2) then_;
      line "} else {";
      block buf ~indent:(indent + 2) else_;
      line "}"
  | For { index; lo; hi; body } ->
      line "for (%s = %s; %s < %s; %s++) {" index (expr lo) index (expr hi) index;
      block buf ~indent:(indent + 2) body;
      line "}"
  | While (cond, body) ->
      line "while (%s) {" (expr cond);
      block buf ~indent:(indent + 2) body;
      line "}"

and block buf ~indent stmts = List.iter (stmt buf ~indent) stmts

let stmt_to_c ?(indent = 0) s =
  let buf = Buffer.create 128 in
  stmt buf ~indent s;
  Buffer.contents buf

let ts_to_c (ts : ts) =
  let buf = Buffer.create 1024 in
  let params =
    List.map (fun v -> "double " ^ v) ts.params
    @ List.map (fun (a, n) -> Printf.sprintf "double %s[%d]" a n) ts.arrays
    @ List.map (fun (p, _) -> "double *" ^ p) ts.pointers
  in
  Buffer.add_string buf
    (Printf.sprintf "void %s(%s)\n{\n" ts.name (String.concat ", " params));
  (match ts.locals with
  | [] -> ()
  | locals -> Buffer.add_string buf ("  double " ^ String.concat ", " locals ^ ";\n\n"));
  block buf ~indent:2 ts.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
