(** Counting interpreter.

    One [run] is one invocation of the tuning section under a concrete
    context.  The interpreter executes the CFG against a mutable
    environment and records, per basic block, how many times the block
    was entered — the [C_b] counts of the paper's Eq. 1 — plus dynamic
    memory/arithmetic tallies used by the machine cost model.  Version
    timing never re-executes the interpreter per version: a code
    version's simulated time is a function of these counts and the
    version's per-block cycle table, which is what makes full Figure-7
    sweeps tractable. *)

type env = {
  scalars : (string, float) Hashtbl.t;
  arrays : (string, float array) Hashtbl.t;
  pointers : (string, string) Hashtbl.t;
}

type result = {
  block_counts : int array;  (** Entry count per CFG block id. *)
  mem_reads : int;
  mem_writes : int;
  flops : int;
  array_accesses : (string * int) list;  (** Accesses per array/pointee base. *)
  impure_calls : int;
}

exception Out_of_bounds of string
(** Raised on an array access outside the declared extent. *)

exception Step_limit_exceeded of string

val make_env : Types.ts -> env
(** Environment with params/locals at 0.0, arrays zero-filled at their
    declared sizes, pointers at their declared pointees. *)

val copy_env : env -> env
(** Deep copy (used by RBR's save/restore and by tests). *)

val set_scalar : env -> string -> float -> unit
val get_scalar : env -> string -> float
val set_array : env -> string -> float array -> unit
val get_array : env -> string -> float array

val read_source : env -> Expr.source -> float
(** Current value of a context-variable source (scalar, constant-subscript
    array element, or pointer dereference). *)

val run : ?max_steps:int -> Cfg.t -> env -> result
(** Execute one invocation, mutating [env].  [max_steps] (default 10e6
    block transitions) guards against non-terminating sections. *)

val eval : env -> Types.expr -> float
(** Expression evaluation against the environment (exposed for tests). *)
