(** Abstract syntax of the mini IR.

    Tuning sections (TS) — the code regions PEAK tunes — are written in
    this small structured language: scalar and array expressions,
    conditionals, counted and conditional loops, pointer reads through a
    points-to environment, and opaque external calls.  It is deliberately
    close to the level at which the paper's compiler analyses operate: the
    context-variable analysis (Fig. 1), liveness for [Input(TS)], def
    analysis for [Modified_Input(TS)], and basic-block counting for the
    MBR time model all consume this IR after lowering to a CFG. *)

type var = string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not | Abs | Sqrt | Floor

type expr =
  | Const of float
  | Var of var  (** Scalar read. *)
  | Index of var * expr  (** Array element read [a.(e)]. *)
  | Deref of var  (** Read through pointer [p]; the pointee is a scalar. *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr  (** 1.0 when true, 0.0 when false. *)

type stmt =
  | Assign of var * expr  (** Scalar write. *)
  | Store of var * expr * expr  (** Array write [a.(e1) <- e2]. *)
  | PtrStore of var * expr  (** Write through pointer: [*p <- e]. *)
  | PtrSet of var * var  (** Retarget pointer [p] at scalar [v]. *)
  | If of expr * block * block
  | For of { index : var; lo : expr; hi : expr; body : block }
      (** [for index = lo to hi-1].  Bounds are evaluated on entry. *)
  | While of expr * block
  | Call of string  (** Opaque external call (side effects unknown). *)
  | Nop

and block = stmt list

(** A tuning section: the unit PEAK extracts, versions, and rates. *)
type ts = {
  name : string;
  params : var list;  (** Scalar inputs (function parameters / globals). *)
  arrays : (var * int) list;  (** Array inputs with element counts. *)
  pointers : (var * var) list;  (** Pointer inputs with initial pointee. *)
  locals : var list;  (** Scalars defined before use inside the TS. *)
  body : block;
}

(** Functions known to be side-effect free may appear in [Call] without
    disqualifying the section from re-execution-based rating. *)
let pure_externals = [ "sin"; "cos"; "log2"; "lookup_table" ]

let is_pure_external name = List.mem name pure_externals
