(** Symbolic range analysis of array stores.

    The paper reduces RBR's save/restore overhead "by accurately
    analyzing the Modified_Input(TS) set ... using symbolic range
    analysis [Blume & Eigenmann] for regular data accesses"
    (Section 2.4.2).  This analysis walks the structured tuning-section
    body and bounds, per array, the region its stores can touch:

    - stores with compile-time-constant subscripts yield exact cells;
    - stores whose subscript is an enclosing loop's index (possibly ±
      a constant) yield a {e symbolic span} [lo, hi) in terms of the
      loop bounds, provided the bounds are invariant in the TS (built
      from constants and scalars the section never writes);
    - anything else falls back to the whole array.

    Spans are expressions: the save/restore machinery evaluates them
    against the live environment, so a loop writing [a.(0..n-1)] of a
    4096-element array saves [n] cells, not 4096. *)

type region =
  | Whole
  | Cells of int list  (** Exact constant cells. *)
  | Span of Types.expr * Types.expr
      (** [Span (lo, hi)]: the half-open index interval [lo, hi). *)
  | Union of region list
      (** Several cell/span parts; possibly overlapping (overlap only
          costs redundant copying, never correctness). *)

val store_regions : Types.ts -> (Types.var * region) list
(** Region per array that the section stores to (directly or via an
    impure call, which forces [Whole] for every array). *)

val region_of : (Types.var * region) list -> Types.var -> region
(** Lookup with [Whole] default for unlisted arrays. *)

val pointer_targets : Types.ts -> (Types.var, Types.var list) Hashtbl.t
(** Flow-insensitive may-point-to sets over the structured body (declared
    pointees plus every [PtrSet] target) — shared with {!Transform}. *)
