lib/ir/interp.mli: Cfg Expr Hashtbl Types
