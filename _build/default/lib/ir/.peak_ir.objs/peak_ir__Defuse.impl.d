lib/ir/defuse.ml: Array Cfg Expr List Loc Pointsto Set Types
