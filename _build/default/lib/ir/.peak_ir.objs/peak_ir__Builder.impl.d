lib/ir/builder.ml: Types
