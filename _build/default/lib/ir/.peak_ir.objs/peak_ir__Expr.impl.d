lib/ir/expr.ml: Float Format List Types
