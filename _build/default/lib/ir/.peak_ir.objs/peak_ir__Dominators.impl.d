lib/ir/dominators.ml: Array Cfg Hashtbl List Option
