lib/ir/transform.ml: Expr Hashtbl List Map Option Rangean String Types
