lib/ir/types.ml: List
