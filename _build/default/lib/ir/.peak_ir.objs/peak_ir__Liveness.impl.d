lib/ir/liveness.ml: Array Cfg Expr List Loc Pointsto Rangean Types
