lib/ir/cfg.mli: Format Types
