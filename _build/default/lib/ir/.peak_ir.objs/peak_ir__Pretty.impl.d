lib/ir/pretty.ml: Buffer Expr List Printf String Types
