lib/ir/cfg.ml: Array Expr Format Hashtbl List Printf String Types
