lib/ir/dominators.mli: Cfg
