lib/ir/pointsto.ml: Array Cfg Hashtbl List Types
