lib/ir/liveness.mli: Cfg Loc Pointsto Rangean Types
