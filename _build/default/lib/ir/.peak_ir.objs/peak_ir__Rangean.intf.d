lib/ir/rangean.mli: Hashtbl Types
