lib/ir/rangean.ml: Expr Hashtbl List Option Types
