lib/ir/features.ml: Array Cfg Expr Hashtbl List Option Types
