lib/ir/defuse.mli: Cfg Expr Loc Pointsto
