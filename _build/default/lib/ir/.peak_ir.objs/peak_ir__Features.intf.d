lib/ir/features.mli: Cfg
