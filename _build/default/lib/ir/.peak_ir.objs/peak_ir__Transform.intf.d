lib/ir/transform.mli: Types
