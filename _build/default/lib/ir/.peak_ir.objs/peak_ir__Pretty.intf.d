lib/ir/pretty.mli: Types
