lib/ir/interp.ml: Array Cfg Expr Hashtbl List Option Printf Types
