lib/ir/pointsto.mli: Cfg Types
