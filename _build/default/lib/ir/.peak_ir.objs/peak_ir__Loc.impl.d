lib/ir/loc.ml: Map Set Types
