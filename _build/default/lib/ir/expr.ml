open Types

type source =
  | Scalar of var
  | Array_elem of var * int option
  | Pointer_deref of var

let rec sources = function
  | Const _ -> []
  | Var v -> [ Scalar v ]
  | Index (a, e) ->
      let sub =
        match e with
        | Const k -> Some (int_of_float k)
        | _ -> None
      in
      (Array_elem (a, sub) :: sources e)
  | Deref p -> [ Pointer_deref p ]
  | Unop (_, e) -> sources e
  | Binop (_, a, b) | Cmp (_, a, b) -> sources a @ sources b

let dedup l =
  List.rev (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let scalar_uses e =
  let rec go = function
    | Const _ -> []
    | Var v -> [ v ]
    | Index (_, e) -> go e
    | Deref p -> [ p ]
    | Unop (_, e) -> go e
    | Binop (_, a, b) | Cmp (_, a, b) -> go a @ go b
  in
  dedup (go e)

let array_bases e =
  let rec go = function
    | Const _ | Var _ | Deref _ -> []
    | Index (a, e) -> a :: go e
    | Unop (_, e) -> go e
    | Binop (_, a, b) | Cmp (_, a, b) -> go a @ go b
  in
  dedup (go e)

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Mod -> Float.rem a b
  | Min -> Float.min a b
  | Max -> Float.max a b

let apply_cmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1.0 else 0.0

let apply_unop op a =
  match op with
  | Neg -> -.a
  | Not -> if a = 0.0 then 1.0 else 0.0
  | Abs -> abs_float a
  | Sqrt -> sqrt a
  | Floor -> floor a

let rec const_fold e =
  match e with
  | Const _ | Var _ | Deref _ -> e
  | Index (a, e) -> Index (a, const_fold e)
  | Unop (op, e) -> (
      match const_fold e with
      | Const k -> Const (apply_unop op k)
      | e' -> Unop (op, e'))
  | Binop (op, a, b) -> (
      match (const_fold a, const_fold b, op) with
      | Const x, Const y, (Div | Mod) when y = 0.0 -> Binop (op, Const x, Const y)
      | Const x, Const y, _ -> Const (apply_binop op x y)
      | a', b', _ -> Binop (op, a', b'))
  | Cmp (op, a, b) -> (
      match (const_fold a, const_fold b) with
      | Const x, Const y -> Const (apply_cmp op x y)
      | a', b' -> Cmp (op, a', b'))

let is_const = function Const _ -> true | _ -> false

let rec size = function
  | Const _ | Var _ | Deref _ -> 1
  | Index (_, e) | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) | Cmp (_, a, b) -> 1 + size a + size b

let rec depth = function
  | Const _ | Var _ | Deref _ -> 1
  | Index (_, e) | Unop (_, e) -> 1 + depth e
  | Binop (_, a, b) | Cmp (_, a, b) -> 1 + max (depth a) (depth b)

let rec subexpressions e =
  e
  ::
  (match e with
  | Const _ | Var _ | Deref _ -> []
  | Index (_, e) | Unop (_, e) -> subexpressions e
  | Binop (_, a, b) | Cmp (_, a, b) -> subexpressions a @ subexpressions b)

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmp_symbol = function Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt = function
  | Const k -> Format.fprintf fmt "%g" k
  | Var v -> Format.fprintf fmt "%s" v
  | Index (a, e) -> Format.fprintf fmt "%s[%a]" a pp e
  | Deref p -> Format.fprintf fmt "*%s" p
  | Unop (Neg, e) -> Format.fprintf fmt "(-%a)" pp e
  | Unop (Not, e) -> Format.fprintf fmt "(!%a)" pp e
  | Unop (Abs, e) -> Format.fprintf fmt "abs(%a)" pp e
  | Unop (Sqrt, e) -> Format.fprintf fmt "sqrt(%a)" pp e
  | Unop (Floor, e) -> Format.fprintf fmt "floor(%a)" pp e
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_symbol op) pp a pp b
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (binop_symbol op) pp b
  | Cmp (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (cmp_symbol op) pp b

let to_string e = Format.asprintf "%a" pp e
