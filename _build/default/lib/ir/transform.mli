(** Semantics-preserving IR transformations.

    The PEAK system treats the backend compiler as a black box, but its
    front end (built on Polaris in the authors' project) still rewrites
    the extracted tuning sections.  These two classical scalar
    transformations operate on the structured IR and are verified
    against the interpreter: transformed sections must produce the same
    observable state (arrays, pointer targets, and every scalar that is
    ever read) and make the same control decisions.

    They also serve the analyses: constant propagation turns derived
    subscripts into the compile-time constants the region and context
    analyses classify best. *)

val const_propagate : Types.ts -> Types.ts
(** Forward-propagate scalar constants and fold expressions.  Constant
    bindings survive straight-line code; conditionals keep only the
    bindings both arms agree on; loop bodies invalidate everything they
    may write (including the loop index).  Pointer stores invalidate the
    may-pointees; opaque calls invalidate everything. *)

val dead_assignment_elim : Types.ts -> Types.ts
(** Remove assignments to scalars that the section never reads anywhere
    (syntactically) — including the assignment's own recomputation on
    later iterations.  Assignments whose right-hand side reads arrays are
    kept when the subscript could fault (bounds behaviour is observable
    in this IR); constant-subscript and scalar-only right-hand sides are
    safe to drop. *)

val optimize : Types.ts -> Types.ts
(** [dead_assignment_elim @@ const_propagate]. *)
