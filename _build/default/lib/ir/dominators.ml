type t = {
  cfg : Cfg.t;
  rpo_index : int array;  (** reverse-postorder number; -1 if unreachable *)
  idom : int array;  (** immediate dominator; -1 for entry/unreachable *)
  loops : (int * int list) list;  (** header -> sorted body blocks *)
}

(* Reverse postorder over reachable blocks. *)
let reverse_postorder cfg =
  let n = Cfg.n_blocks cfg in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (Cfg.successors (Cfg.block cfg id));
      order := id :: !order
    end
  in
  dfs cfg.Cfg.entry;
  Array.of_list !order

let analyze (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let rpo = reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i id -> rpo_index.(id) <- i) rpo;
  let preds = Array.init n (fun id -> Cfg.predecessors cfg id) in
  let idom = Array.make n (-1) in
  let entry = cfg.Cfg.entry in
  idom.(entry) <- entry;
  (* Cooper–Harvey–Kennedy: iterate to fixpoint in reverse postorder. *)
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun id ->
        if id <> entry then begin
          let processed =
            List.filter (fun p -> rpo_index.(p) >= 0 && idom.(p) <> -1) preds.(id)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(id) <> new_idom then begin
                idom.(id) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom.(entry) <- -1;
  let dominates_arr a b =
    (* walk b's dominator chain *)
    let rec up x = if x = a then true else if x = -1 || x = entry then a = x else up idom.(x) in
    if a = entry then rpo_index.(b) >= 0 else up b
  in
  (* back edges and natural loops *)
  let back_edges = ref [] in
  Array.iter
    (fun id ->
      if rpo_index.(id) >= 0 then
        List.iter
          (fun succ -> if dominates_arr succ id then back_edges := (id, succ) :: !back_edges)
          (Cfg.successors (Cfg.block cfg id)))
    rpo;
  let loops_tbl = Hashtbl.create 8 in
  List.iter
    (fun (tail, header) ->
      let body = Hashtbl.create 8 in
      Hashtbl.replace body header ();
      let rec collect id =
        if not (Hashtbl.mem body id) then begin
          Hashtbl.replace body id ();
          List.iter collect preds.(id)
        end
      in
      collect tail;
      let existing = Option.value ~default:[] (Hashtbl.find_opt loops_tbl header) in
      let merged =
        List.sort_uniq compare (existing @ Hashtbl.fold (fun k () acc -> k :: acc) body [])
      in
      Hashtbl.replace loops_tbl header merged)
    !back_edges;
  let loops = Hashtbl.fold (fun h body acc -> (h, body) :: acc) loops_tbl [] in
  { cfg; rpo_index; idom; loops }

let reachable t id = id >= 0 && id < Array.length t.rpo_index && t.rpo_index.(id) >= 0

let idom t id = if reachable t id && t.idom.(id) <> -1 then Some t.idom.(id) else None

let dominates t a b =
  if not (reachable t a && reachable t b) then false
  else begin
    let rec up x = x = a || (t.idom.(x) <> -1 && up t.idom.(x)) in
    up b
  end

let back_edges t =
  List.concat_map
    (fun (header, body) ->
      List.filter_map
        (fun tail ->
          if List.mem header (Cfg.successors (Cfg.block t.cfg tail)) && dominates t header tail
          then Some (tail, header)
          else None)
        body)
    t.loops
  |> List.sort_uniq compare

let loop_headers t = List.map fst t.loops |> List.sort compare

let natural_loop t ~header =
  match List.assoc_opt header t.loops with Some body -> body | None -> []

let loop_depth t id =
  List.fold_left (fun acc (_, body) -> if List.mem id body then acc + 1 else acc) 0 t.loops

let dominator_tree_children t id =
  List.filter (fun b -> reachable t b && t.idom.(b) = id)
    (List.init (Array.length t.idom) (fun i -> i))
