open Types

(* ---------------- constant propagation ---------------- *)

(* Scalars a statement list may write, through pointers included. *)
let written_in ~targets stmts =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec go = function
    | Assign (v, _) -> add v
    | PtrStore (p, _) ->
        List.iter add (Option.value ~default:[] (Hashtbl.find_opt targets p))
    | Store _ | PtrSet _ | Nop -> ()
    | Call f -> if not (is_pure_external f) then add "*"
    | If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | For { index; body; _ } ->
        add index;
        List.iter go body
    | While (_, body) -> List.iter go body
  in
  List.iter go stmts;
  !acc

module Env = Map.Make (String)

let rec subst env e =
  match e with
  | Const _ -> e
  | Var v -> ( match Env.find_opt v env with Some k -> Const k | None -> e)
  | Index (a, i) -> Index (a, subst env i)
  | Deref _ -> e
  | Unop (op, e) -> Unop (op, subst env e)
  | Binop (op, a, b) -> Binop (op, subst env a, subst env b)
  | Cmp (op, a, b) -> Cmp (op, subst env a, subst env b)

let fold env e = Expr.const_fold (subst env e)

let const_propagate (ts : ts) =
  let targets = Rangean.pointer_targets ts in
  let kill_written env stmts =
    let written = written_in ~targets stmts in
    if List.mem "*" written then Env.empty
    else List.fold_left (fun env v -> Env.remove v env) env written
  in
  let intersect a b =
    Env.merge
      (fun _ x y -> match (x, y) with Some x, Some y when x = y -> Some x | _ -> None)
      a b
  in
  let rec go_stmt env = function
    | Nop -> (Nop, env)
    | Assign (x, e) -> (
        let e' = fold env e in
        match e' with
        | Const k -> (Assign (x, e'), Env.add x k env)
        | _ -> (Assign (x, e'), Env.remove x env))
    | Store (a, i, e) -> (Store (a, fold env i, fold env e), env)
    | PtrStore (p, e) ->
        let env' =
          List.fold_left (fun env v -> Env.remove v env)
            env
            (Option.value ~default:[] (Hashtbl.find_opt targets p))
        in
        (PtrStore (p, fold env e), env')
    | PtrSet (p, v) -> (PtrSet (p, v), env)
    | Call f -> (Call f, if is_pure_external f then env else Env.empty)
    | If (c, a, b) ->
        let c' = fold env c in
        let a', env_a = go_block env a in
        let b', env_b = go_block env b in
        (If (c', a', b'), intersect env_a env_b)
    | For { index; lo; hi; body } ->
        let lo' = fold env lo and hi' = fold env hi in
        (* anything the body (or the index) writes is unknown inside and
           after the loop *)
        let env_in = Env.remove index (kill_written env body) in
        let body', _ = go_block env_in body in
        (For { index; lo = lo'; hi = hi'; body = body' }, env_in)
    | While (c, body) ->
        let env_in = kill_written env body in
        let body', _ = go_block env_in body in
        (While (fold env_in c, body'), env_in)
  and go_block env stmts =
    let rev, env =
      List.fold_left
        (fun (acc, env) s ->
          let s', env' = go_stmt env s in
          (s' :: acc, env'))
        ([], env) stmts
    in
    (List.rev rev, env)
  in
  let body, _ = go_block Env.empty ts.body in
  { ts with body }

(* ---------------- dead assignment elimination ---------------- *)

(* Every scalar the section can read, anywhere: expression uses
   (including subscripts and loop bounds), pointer names, and the
   may-pointees of dereferenced pointers. *)
let read_scalars (ts : ts) =
  let targets = Rangean.pointer_targets ts in
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let add_expr e =
    List.iter add (Expr.scalar_uses e);
    List.iter
      (function
        | Expr.Pointer_deref p ->
            List.iter add (Option.value ~default:[] (Hashtbl.find_opt targets p))
        | _ -> ())
      (Expr.sources e)
  in
  let rec go = function
    | Assign (_, e) -> add_expr e
    | Store (_, i, e) ->
        add_expr i;
        add_expr e
    | PtrStore (_, e) -> add_expr e
    | PtrSet _ | Nop | Call _ -> ()
    | If (c, a, b) ->
        add_expr c;
        List.iter go a;
        List.iter go b
    | For { lo; hi; body; _ } ->
        add_expr lo;
        add_expr hi;
        List.iter go body
    | While (c, body) ->
        add_expr c;
        List.iter go body
  in
  List.iter go ts.body;
  !acc

(* Dropping a statement must not drop observable faults: array and
   pointer reads stay unless every subscript is a compile-time constant
   (in-bounds checking is part of this IR's semantics). *)
let rec side_effect_free e =
  match e with
  | Const _ | Var _ -> true
  | Deref _ -> false
  | Index (_, Const _) -> true
  | Index (_, _) -> false
  | Unop (_, e) -> side_effect_free e
  | Binop (_, a, b) | Cmp (_, a, b) -> side_effect_free a && side_effect_free b

let dead_assignment_elim (ts : ts) =
  let read = read_scalars ts in
  let is_param v = List.mem v ts.params in
  let rec go_stmt = function
    | Assign (x, e) when (not (is_param x)) && (not (List.mem x read)) && side_effect_free e
      ->
        Nop
    | (Assign _ | Store _ | PtrStore _ | PtrSet _ | Call _ | Nop) as s -> s
    | If (c, a, b) -> If (c, go_block a, go_block b)
    | For f -> For { f with body = go_block f.body }
    | While (c, body) -> While (c, go_block body)
  and go_block stmts = List.map go_stmt stmts in
  { ts with body = go_block ts.body }

let optimize ts = dead_assignment_elim (const_propagate ts)
