(** Control-flow graphs.

    A tuning section is lowered from the structured IR into a CFG of basic
    blocks, which is the representation the paper's analyses run on:
    reaching definitions / UD chains for the Figure-1 context-variable
    analysis, liveness for [Input(TS)], and basic-block entry counting for
    the MBR execution-time model (Eq. 1: [T_TS = Σ T_b · C_b]). *)

open Types

type simple =
  | SAssign of var * expr
  | SStore of var * expr * expr
  | SPtrStore of var * expr
  | SPtrSet of var * var
  | SCall of string

type terminator =
  | Goto of int
  | Branch of expr * int * int  (** [Branch (cond, if_true, if_false)]. *)
  | Exit

type bblock = {
  id : int;
  stmts : simple array;
  term : terminator;
  loop_depth : int;  (** Structured nesting depth; 0 at top level. *)
  is_loop_header : bool;
}

type t = private {
  ts : ts;
  blocks : bblock array;
  entry : int;
}

val of_ts : ts -> t
(** Lower a tuning section.  Loop bounds of [For] are evaluated into
    fresh temporaries at loop entry, matching the IR's entry-evaluation
    semantics.  Fresh temporaries are named ["__tN"] and are added to the
    set of locals for analysis purposes. *)

val n_blocks : t -> int
val block : t -> int -> bblock

val successors : bblock -> int list

val predecessors : t -> int -> int list

val control_conditions : t -> (int * expr) list
(** The branch conditions — the "control statements" of the Fig. 1
    analysis — as (block id, condition) pairs in block order. *)

val temporaries : t -> var list
(** Fresh temporaries introduced by lowering. *)

val all_scalars : t -> var list
(** Params, locals and temporaries (no arrays/pointers), deduplicated. *)

val pp : Format.formatter -> t -> unit
