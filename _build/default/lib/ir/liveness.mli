(** Block-level liveness and the RBR input/def sets.

    Re-execution-based rating needs [Input(TS) = LiveIn(entry)] (the
    values the section reads before writing) and
    [Modified_Input(TS) = Input(TS) ∩ Def(TS)] — the part that must be
    saved and restored around re-execution (paper Eq. 6).  This module
    computes both, plus a byte-size estimate of the save/restore payload
    that the machine model charges as RBR overhead.  For arrays it also
    performs the constant-subscript region analysis the paper sketches
    under "symbolic range analysis": when every store to an array uses a
    compile-time-constant subscript, only those cells are charged. *)

type region = Rangean.region =
  | Whole  (** The entire location must be saved. *)
  | Cells of int list  (** Only these (constant) array indices are written. *)
  | Span of Types.expr * Types.expr
      (** Symbolic half-open index interval [lo, hi); evaluated against
          the live environment at save time (Rangean analysis). *)
  | Union of region list  (** Several cell/span parts. *)

type t

val analyze : Cfg.t -> Pointsto.t -> t

val live_in_entry : t -> Loc.Set.t
(** [Input(TS)]: locations live on entry. *)

val def_set : t -> Loc.Set.t
(** [Def(TS)]: locations written anywhere in the TS (through pointers
    included, via points-to). *)

val modified_input : t -> Loc.Set.t
(** [Input(TS) ∩ Def(TS)]. *)

val modified_region : t -> Loc.t -> region
(** Region of the location actually written; meaningful for arrays in the
    modified-input set. *)

val save_restore_bytes : t -> int
(** Static upper bound on the bytes the improved RBR method must save and
    restore per experiment, assuming 8-byte elements and the per-location
    regions; symbolic spans whose bounds are not compile-time constants
    are charged at the whole array size.  {!Peak.Snapshot} computes the
    exact dynamic payload. *)

val live_in : t -> int -> Loc.Set.t
(** Live-in set of an arbitrary block (exposed for tests). *)
