(** Reaching definitions and UD chains at statement granularity.

    The Figure-1 context-variable analysis walks, for every variable used
    in a control statement, the chain of definitions that may reach that
    use ([Find_UD_Chain] in the paper), recursing through the variables
    each definition reads until it reaches the TS entry.  This module
    provides the underlying reaching-definitions dataflow: for any
    (site, location) pair, the set of definition sites whose values may be
    observed there, where the distinguished {!constructor:Entry}
    definition stands for "defined before the tuning section". *)

type def =
  | Entry  (** The location's value on entry to the TS. *)
  | At of int * int  (** Definition by statement [idx] of block [id]. *)

type site =
  | Stmt of int * int  (** Use inside statement [idx] of block [id]. *)
  | Term of int  (** Use in the branch condition terminating block [id]. *)

type t

val analyze : Cfg.t -> Pointsto.t -> t
(** Fixpoint reaching-definitions over the CFG.  Array stores are weak
    updates (an array definition never kills prior ones); pointer stores
    strongly update a unique un-retargeted pointee and weakly update
    otherwise; impure calls weakly define every location. *)

val reaching : t -> site -> Loc.t -> def list
(** Definitions of [loc] that may reach the use site, sorted. *)

val defs_of_simple : t -> Cfg.simple -> (Loc.t * [ `Strong | `Weak ]) list
(** The locations a statement defines, with update strength (exposed for
    tests and for the RBR def-set computation). *)

val value_sources : Cfg.simple -> Expr.source list
(** The value sources a simple statement reads. *)

val all_locations : t -> Loc.t list
