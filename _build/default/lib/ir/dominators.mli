(** Dominator tree and natural loops of a CFG.

    The lowering records loop structure syntactically (nesting depth and
    header marks); this module recovers the same facts from the graph
    alone — immediate dominators via the Cooper–Harvey–Kennedy iteration,
    back edges, and natural loops — so graph-level consumers don't depend
    on provenance, and the two views can be checked against each other
    (see the soundness property tests). *)

type t

val analyze : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry block and for blocks
    unreachable from the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: every path from the entry to [b] passes [a]
    (reflexive). *)

val reachable : t -> int -> bool

val back_edges : t -> (int * int) list
(** Edges (tail → header) with the header dominating the tail. *)

val loop_headers : t -> int list

val natural_loop : t -> header:int -> int list
(** Sorted blocks of the header's natural loop (header included) —
    the union over its back edges.  Empty if [header] heads no loop. *)

val loop_depth : t -> int -> int
(** Number of natural loops containing the block. *)

val dominator_tree_children : t -> int -> int list
