(** Combinators for writing tuning sections concisely.

    The workload library defines each SPEC-like tuning section as an IR
    program; these helpers keep those definitions close to the pseudo-code
    in the paper (e.g. Figure 2's [for (i = 0; i < N; i++) ...]). *)

open Types

let c k = Const k
let ci k = Const (float_of_int k)
let v name = Var name
let idx a e = Index (a, e)
let deref p = Deref p
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Mod, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let neg e = Unop (Neg, e)
let not_ e = Unop (Not, e)
let abs_ e = Unop (Abs, e)
let sqrt_ e = Unop (Sqrt, e)
let floor_ e = Unop (Floor, e)
(* Boolean connectives over 0/1-valued expressions. *)
let and_ a b = Binop (Min, a, b)
let or_ a b = Binop (Max, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( := ) name e = Assign (name, e)
let store a i e = Store (a, i, e)
let ptr_store p e = PtrStore (p, e)
let ptr_set p target = PtrSet (p, target)
let if_ cond then_ else_ = If (cond, then_, else_)
let when_ cond then_ = If (cond, then_, [])
let for_ index ~lo ~hi body = For { index; lo; hi; body }
let while_ cond body = While (cond, body)
let call name = Call name
let nop = Nop

let ts ?(params = []) ?(arrays = []) ?(pointers = []) ?(locals = []) ~name body =
  { name; params; arrays; pointers; locals; body }
