type def = Entry | At of int * int

type site = Stmt of int * int | Term of int

module DefSet = Set.Make (struct
  type t = def

  let compare = compare
end)

type state = DefSet.t Loc.Map.t

type t = {
  cfg : Cfg.t;
  pts : Pointsto.t;
  block_in : state array;
  locations : Loc.t list;
}

let loc_get state loc =
  match Loc.Map.find_opt loc state with Some s -> s | None -> DefSet.empty

let join a b =
  Loc.Map.union (fun _ x y -> Some (DefSet.union x y)) a b

let state_equal a b = Loc.Map.equal DefSet.equal a b

(* Locations a statement defines, with strength. *)
let defs_of_simple_inner pts cfg s =
  match s with
  | Cfg.SAssign (x, _) -> [ (Loc.Scalar x, `Strong) ]
  | Cfg.SStore (a, _, _) -> [ (Loc.Array a, `Weak) ]
  | Cfg.SPtrStore (p, _) -> (
      match Pointsto.targets pts p with
      | [ v ] when not (Pointsto.is_retargeted pts p) -> [ (Loc.Scalar v, `Strong) ]
      | vs -> List.map (fun v -> (Loc.Scalar v, `Weak)) vs)
  | Cfg.SPtrSet (p, _) -> [ (Loc.Pointer p, `Strong) ]
  | Cfg.SCall f ->
      if Types.is_pure_external f then []
      else begin
        (* unknown call: may write anything the TS can name *)
        let ts = cfg.Cfg.ts in
        List.map (fun v -> (Loc.Scalar v, `Weak)) ts.params
        @ List.map (fun (a, _) -> (Loc.Array a, `Weak)) ts.arrays
        @ List.map (fun (p, _) -> (Loc.Pointer p, `Weak)) ts.pointers
      end

let value_sources (s : Cfg.simple) =
  match s with
  | SAssign (_, e) -> Expr.sources e
  | SStore (_, i, e) -> Expr.sources i @ Expr.sources e
  | SPtrStore (p, e) -> Expr.Pointer_deref p :: Expr.sources e
  | SPtrSet _ -> []
  | SCall _ -> []

let transfer pts cfg (b : Cfg.bblock) idx state =
  let defs = defs_of_simple_inner pts cfg b.stmts.(idx) in
  List.fold_left
    (fun st (loc, strength) ->
      let d = DefSet.singleton (At (b.id, idx)) in
      match strength with
      | `Strong -> Loc.Map.add loc d st
      | `Weak -> Loc.Map.add loc (DefSet.union d (loc_get st loc)) st)
    state defs

let block_out pts cfg (b : Cfg.bblock) state =
  let st = ref state in
  Array.iteri (fun i _ -> st := transfer pts cfg b i !st) b.stmts;
  !st

let analyze (cfg : Cfg.t) pts =
  let n = Cfg.n_blocks cfg in
  let ts = cfg.ts in
  let locations =
    List.map (fun v -> Loc.Scalar v) ts.params
    @ List.map (fun v -> Loc.Scalar v) ts.locals
    @ List.map (fun (a, _) -> Loc.Array a) ts.arrays
    @ List.map (fun (p, _) -> Loc.Pointer p) ts.pointers
  in
  let entry_state =
    List.fold_left
      (fun st loc -> Loc.Map.add loc (DefSet.singleton Entry) st)
      Loc.Map.empty locations
  in
  let block_in = Array.make n Loc.Map.empty in
  block_in.(cfg.entry) <- entry_state;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Cfg.bblock) ->
        let out = block_out pts cfg b block_in.(b.id) in
        List.iter
          (fun succ ->
            let merged = join block_in.(succ) out in
            if not (state_equal merged block_in.(succ)) then begin
              block_in.(succ) <- merged;
              changed := true
            end)
          (Cfg.successors b))
      cfg.blocks
  done;
  { cfg; pts; block_in; locations }

let reaching t site loc =
  let block_id, upto =
    match site with
    | Stmt (b, i) -> (b, i)
    | Term b -> (b, Array.length (Cfg.block t.cfg b).stmts)
  in
  let b = Cfg.block t.cfg block_id in
  let st = ref t.block_in.(block_id) in
  for i = 0 to upto - 1 do
    st := transfer t.pts t.cfg b i !st
  done;
  DefSet.elements (loc_get !st loc)

let defs_of_simple t s = defs_of_simple_inner t.pts t.cfg s

let all_locations t = t.locations
