(** Expression utilities: evaluation and syntactic queries. *)

open Types

(** A readable value source, as distinguished by the paper's scalar rule
    (Section 2.2): plain scalars, array references with constant
    subscripts, other array references, and pointer dereferences. *)
type source =
  | Scalar of var
  | Array_elem of var * int option
      (** [Array_elem (a, Some k)] is [a.(k)] with a constant subscript;
          [None] means the subscript is not a compile-time constant. *)
  | Pointer_deref of var

val sources : expr -> source list
(** All value sources read by the expression, in syntactic order,
    duplicates preserved. *)

val scalar_uses : expr -> var list
(** Scalar variables read (directly, as subscripts, or as pointer names),
    deduplicated. *)

val array_bases : expr -> var list
(** Array names read from, deduplicated. *)

val apply_binop : binop -> float -> float -> float
val apply_cmp : cmpop -> float -> float -> float
val apply_unop : unop -> float -> float

val const_fold : expr -> expr
(** Bottom-up constant folding; preserves semantics including division by
    zero (left unfolded). *)

val is_const : expr -> bool
val size : expr -> int
(** Node count, used by static feature extraction. *)

val depth : expr -> int
(** Height of the expression tree — a Sethi–Ullman-style proxy for the
    temporaries its evaluation keeps live. *)

val subexpressions : expr -> expr list
(** All proper and improper subexpressions (for redundancy counting). *)

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
