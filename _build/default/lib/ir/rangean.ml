open Types

type region =
  | Whole
  | Cells of int list
  | Span of expr * expr
  | Union of region list

(* flatten nested unions into cells + spans *)
let rec parts = function
  | Whole -> None
  | Cells cs -> Some ([ cs ], [])
  | Span (lo, hi) -> Some ([], [ (lo, hi) ])
  | Union rs ->
      List.fold_left
        (fun acc r ->
          match (acc, parts r) with
          | Some (cells, spans), Some (c, s) -> Some (cells @ c, spans @ s)
          | _ -> None)
        (Some ([], []))
        rs

(* May-point-to sets, flow-insensitively over the structured body:
   declared pointees plus every PtrSet target. *)
let pointer_targets ts =
  let table = Hashtbl.create 4 in
  let add p v =
    let existing = Option.value ~default:[] (Hashtbl.find_opt table p) in
    if not (List.mem v existing) then Hashtbl.replace table p (v :: existing)
  in
  List.iter (fun (p, v) -> add p v) ts.pointers;
  let rec go_stmt = function
    | PtrSet (p, v) -> add p v
    | Assign _ | Store _ | PtrStore _ | Call _ | Nop -> ()
    | If (_, a, b) ->
        List.iter go_stmt a;
        List.iter go_stmt b
    | For { body; _ } | While (_, body) -> List.iter go_stmt body
  in
  List.iter go_stmt ts.body;
  table

(* Scalars the section may write: a loop bound mentioning one of these is
   not invariant and cannot anchor a span. *)
let written_scalars ts =
  let targets = pointer_targets ts in
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let rec go_stmt = function
    | Assign (v, _) -> add v
    | PtrStore (p, _) ->
        List.iter add (Option.value ~default:[] (Hashtbl.find_opt targets p))
    | Store _ | PtrSet _ | Nop -> ()
    | Call f -> if not (is_pure_external f) then List.iter add (ts.params @ ts.locals)
    | If (_, a, b) ->
        List.iter go_stmt a;
        List.iter go_stmt b
    | For { index; body; _ } ->
        add index;
        List.iter go_stmt body
    | While (_, body) -> List.iter go_stmt body
  in
  List.iter go_stmt ts.body;
  !acc

let expr_invariant ~written e =
  List.for_all (fun v -> not (List.mem v written)) (Expr.scalar_uses e)
  && Expr.array_bases e = []
  && List.for_all (function Expr.Pointer_deref _ -> false | _ -> true) (Expr.sources e)

let shift e k = if k = 0 then e else Expr.const_fold (Binop (Add, e, Const (float_of_int k)))

(* Classify one store subscript under the enclosing loops.  [loops] maps
   an index variable to its (lo, hi) entry bounds, innermost first. *)
let classify ~written ~loops sub =
  match Expr.const_fold sub with
  | Const k -> Cells [ int_of_float k ]
  | Var v -> (
      match List.assoc_opt v loops with
      | Some (lo, hi) when expr_invariant ~written lo && expr_invariant ~written hi ->
          Span (lo, hi)
      | _ -> Whole)
  | Binop (Add, Var v, Const k) | Binop (Add, Const k, Var v) -> (
      match List.assoc_opt v loops with
      | Some (lo, hi) when expr_invariant ~written lo && expr_invariant ~written hi ->
          Span (shift lo (int_of_float k), shift hi (int_of_float k))
      | _ -> Whole)
  | Binop (Sub, Var v, Const k) -> (
      match List.assoc_opt v loops with
      | Some (lo, hi) when expr_invariant ~written lo && expr_invariant ~written hi ->
          Span (shift lo (-(int_of_float k)), shift hi (-(int_of_float k)))
      | _ -> Whole)
  | _ -> Whole

(* Merging keeps everything: overlapping saves are redundant but correct,
   so a union of cells and spans never needs to widen to Whole. *)
let merge a b =
  match (parts a, parts b) with
  | None, _ | _, None -> Whole
  | Some (c1, s1), Some (c2, s2) ->
      let cells = List.sort_uniq compare (List.concat (c1 @ c2)) in
      let spans = List.sort_uniq compare (s1 @ s2) in
      let rs =
        (if cells = [] then [] else [ Cells cells ])
        @ List.map (fun (lo, hi) -> Span (lo, hi)) spans
      in
      (match rs with [ r ] -> r | rs -> Union rs)

let store_regions ts =
  let written = written_scalars ts in
  let table : (var, region) Hashtbl.t = Hashtbl.create 8 in
  let note a r =
    let merged = match Hashtbl.find_opt table a with Some prev -> merge prev r | None -> r in
    Hashtbl.replace table a merged
  in
  let rec go_stmt ~loops = function
    | Store (a, sub, _) -> note a (classify ~written ~loops sub)
    | Call f -> if not (is_pure_external f) then List.iter (fun (a, _) -> note a Whole) ts.arrays
    | Assign _ | PtrStore _ | PtrSet _ | Nop -> ()
    | If (_, a, b) ->
        List.iter (go_stmt ~loops) a;
        List.iter (go_stmt ~loops) b
    | For { index; lo; hi; body } ->
        (* an inner loop reusing an outer index shadows it *)
        let loops = (index, (lo, hi)) :: List.remove_assoc index loops in
        List.iter (go_stmt ~loops) body
    | While (_, body) -> List.iter (go_stmt ~loops) body
  in
  List.iter (go_stmt ~loops:[]) ts.body;
  Hashtbl.fold (fun a r acc -> (a, r) :: acc) table []

let region_of regions a =
  match List.assoc_opt a regions with Some r -> r | None -> Whole
