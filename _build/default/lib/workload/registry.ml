(** All benchmarks, in Table 1's order (integer codes first). *)

let integer =
  [
    Int_bzip2.benchmark;
    Int_crafty.benchmark;
    Int_gzip.benchmark;
    Int_mcf.benchmark;
    Int_twolf.benchmark;
    Int_vortex.benchmark;
  ]

let floating_point =
  [
    Fp_applu.benchmark;
    Fp_apsi.benchmark;
    Fp_art.benchmark;
    Fp_mgrid.benchmark;
    Fp_equake.benchmark;
    Fp_mesa.benchmark;
    Fp_swim.benchmark;
    Fp_wupwise.benchmark;
  ]

let all = integer @ floating_point

(** The four benchmarks of the paper's Figure 7 performance study. *)
let figure7 =
  [ Fp_swim.benchmark; Fp_mgrid.benchmark; Fp_art.benchmark; Fp_equake.benchmark ]

let by_name name =
  List.find_opt
    (fun b -> String.lowercase_ascii b.Benchmark.name = String.lowercase_ascii name)
    all
