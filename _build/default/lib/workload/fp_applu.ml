(** APPLU's [blts] tuning section.

    The block-lower-triangular solve of the SSOR sweep: a regular triple
    loop nest over a fixed-size grid, invoked with identical bounds every
    time — one context, CBR-friendly, 250 invocations per train run
    (Table 1). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let n = 10
let n2 = n * n
let size = n * n * n

let ts =
  B.ts ~name:"blts" ~params:[ "n"; "omega" ]
    ~arrays:[ ("rsd", size); ("a", size); ("b", size); ("c2", size) ]
    ~locals:[ "i"; "j"; "k"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 1) ~hi:(v "n")
          [
            for_ "j" ~lo:(ci 1) ~hi:(v "n")
              [
                for_ "k" ~lo:(ci 1) ~hi:(v "n")
                  [
                    "t" := (((v "i" * ci n) + v "j") * ci n) + v "k";
                    store "rsd" (v "t")
                      (idx "rsd" (v "t")
                      - (v "omega"
                        * ((idx "a" (v "t") * idx "rsd" (v "t" - ci 1))
                          + (idx "b" (v "t") * idx "rsd" (v "t" - ci n))
                          + (idx "c2" (v "t") * idx "rsd" (v "t" - ci n2)))));
                  ];
              ];
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 250 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    Interp.set_scalar env "n" (float_of_int n);
    Interp.set_scalar env "omega" 1.2;
    List.iter
      (fun a -> Benchmark.fill_random rng (-0.5) 0.5 (Interp.get_array env a))
      [ "rsd"; "a"; "b"; "c2" ]
  in
  Trace.make ~name:"applu" ~length ~init ~class_of:(fun _ -> 0) (fun _ _ -> ())

let benchmark =
  {
    Benchmark.name = "APPLU";
    ts_name = "blts";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "250";
    paper_method = "CBR";
    scale = "1/1";
    time_share = 0.40;
    trace;
  }
