(** Invocation traces.

    A trace is one program run's worth of tuning-section invocations: an
    initializer that fills the environment once (program startup), and a
    per-invocation setup that writes the values the enclosing program
    would have computed before calling the TS — the invocation's
    {e context}.  Traces are deterministic in their seed.

    [classes]: when the trace knows that two invocations present exactly
    the same workload (same context, hence same block counts), it labels
    them with the same class id, enabling the execution harness to reuse
    interpreter results.  Irregular traces have no class function.

    [mutated_arrays]: arrays the {e setup} rewrites between invocations.
    The context analysis uses this to decide whether an array that
    influences control flow is a run-time constant (fixed problem
    structure, as in EQUAKE's sparse matrix) or genuinely varying input
    (as in MCF's arc costs). *)

type t = {
  name : string;
  length : int;
  init : Peak_ir.Interp.env -> unit;
  setup : int -> Peak_ir.Interp.env -> unit;
  class_of : (int -> int) option;
  mutated_arrays : string list;
}

type dataset = Train | Ref

val dataset_name : dataset -> string

val make :
  name:string ->
  length:int ->
  ?init:(Peak_ir.Interp.env -> unit) ->
  ?class_of:(int -> int) ->
  ?mutated_arrays:string list ->
  (int -> Peak_ir.Interp.env -> unit) ->
  t
(** [make ~name ~length setup] builds a trace; [init] defaults to a
    no-op. *)

val scaled_length : dataset -> int -> int
(** Ref runs are three times the train length (the ref data sets of SPEC
    run substantially longer; the factor only needs to preserve the
    paper's "ref rates more versions per run" observation). *)
