(** All benchmarks, in Table 1's order (integer codes first). *)

val integer : Benchmark.t list
(** BZIP2, CRAFTY, GZIP, MCF, TWOLF, VORTEX. *)

val floating_point : Benchmark.t list
(** APPLU, APSI, ART, MGRID, EQUAKE, MESA, SWIM, WUPWISE. *)

val all : Benchmark.t list

val figure7 : Benchmark.t list
(** The four benchmarks of the paper's Figure 7 performance study:
    SWIM, MGRID, ART, EQUAKE. *)

val by_name : string -> Benchmark.t option
(** Case-insensitive. *)
