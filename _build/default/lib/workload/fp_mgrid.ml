(** MGRID's [resid] tuning section.

    The 3D residual stencil of the multigrid V-cycle.  Each invocation
    runs at one grid level, and the level cycles 16 → 4 → 16 through the
    V-cycle, so the grid dimension [n] is a genuine context variable with
    several recurring values.  CBR is applicable but wasteful (the
    dominant context covers only a fraction of invocations); the counts
    of the loop nest's blocks are polynomial in [n], so the component
    model compresses them to four independent components — the paper's
    flagship MBR case. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let max_n = 16
let max_n2 = max_n * max_n
let size = max_n * max_n * max_n

(* One V-cycle's worth of grid levels (down then up), with the extra
   coarse-level smoothing calls the real cycle performs. *)
let vcycle = [| 16; 12; 12; 8; 8; 6; 6; 4; 4; 4; 4; 6; 6; 8; 12; 16 |]

(* Full-multigrid warmup: the first part of the run works mostly on
   coarse grids before full V-cycles begin.  The drifting context mix is
   what makes the naive AVG rating unfair — windows taken early and late
   in the run measure different workloads. *)
let level_at ~length i =
  if i * 4 < length then vcycle.(i mod Array.length vcycle) |> min 8
  else vcycle.(i mod Array.length vcycle)

let ts =
  B.ts ~name:"resid" ~params:[ "n"; "a0"; "a1" ]
    ~arrays:[ ("u", size); ("rhs", size); ("r", size) ]
    ~locals:[ "i"; "j"; "k"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 1) ~hi:(v "n" - ci 1)
          [
            for_ "j" ~lo:(ci 1) ~hi:(v "n" - ci 1)
              [
                for_ "k" ~lo:(ci 1) ~hi:(v "n" - ci 1)
                  [
                    "t" := (((v "i" * ci max_n) + v "j") * ci max_n) + v "k";
                    store "r" (v "t")
                      (idx "rhs" (v "t")
                      - (v "a0" * idx "u" (v "t"))
                      - (v "a1"
                        * (idx "u" (v "t" - ci 1)
                          + idx "u" (v "t" + ci 1)
                          + idx "u" (v "t" - ci max_n)
                          + idx "u" (v "t" + ci max_n)
                          + idx "u" (v "t" - ci max_n2)
                          + idx "u" (v "t" + ci max_n2))));
                  ];
              ];
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 2410 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    Interp.set_scalar env "a0" (-8.0 /. 3.0);
    Interp.set_scalar env "a1" 0.0625;
    Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env "u");
    Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env "rhs")
  in
  let setup i env = Interp.set_scalar env "n" (float_of_int (level_at ~length i)) in
  Trace.make ~name:"mgrid" ~length ~init ~class_of:(fun i -> level_at ~length i) setup

let benchmark =
  {
    Benchmark.name = "MGRID";
    ts_name = "resid";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "2410";
    paper_method = "MBR";
    scale = "1/1";
    time_share = 0.80;
    trace;
  }
