(** BZIP2's [fullGtU] tuning section.

    The suffix-comparison loop of the block sort: compare two positions
    of the block until the first difference (or a step bound).  Trip
    counts depend entirely on the data at the two offsets — the
    archetypal irregular integer section that forces RBR (Table 1:
    24.2M invocations, scaled 1/1000 here).

    The block data is built from repeating runs so that a fraction of
    comparisons are long, like the mid-sort states of the real code. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let block_size = 4096
let span = 2048 (* offsets are drawn below this; k stays within bounds *)

let ts =
  B.ts ~name:"fullGtU" ~params:[ "i1"; "i2"; "limit"; "budget" ]
    ~arrays:[ ("block", block_size); ("quadrant", block_size) ]
    ~locals:[ "k"; "r"; "running" ]
    B.
      [
        "k" := c 0.0;
        "r" := c 0.0;
        "running" := c 1.0;
        while_
          (v "running" = c 1.0)
          [
            if_
              (idx "block" (v "i1" + v "k") <> idx "block" (v "i2" + v "k"))
              [
                "r" := idx "block" (v "i1" + v "k") - idx "block" (v "i2" + v "k");
                "running" := c 0.0;
              ]
              [
                if_
                  (idx "quadrant" (v "i1" + v "k") <> idx "quadrant" (v "i2" + v "k"))
                  [
                    "r" := idx "quadrant" (v "i1" + v "k") - idx "quadrant" (v "i2" + v "k");
                    "running" := c 0.0;
                  ]
                  [
                    "k" := v "k" + ci 1;
                    when_ (v "k" >= v "limit") [ "running" := c 0.0 ];
                  ];
              ];
          ];
        (* post-comparison bookkeeping, as in the real fullGtU: charge the
           work budget and normalize the verdict; each conditional's
           outcome depends on different data *)
        "budget" := v "budget" - v "k";
        when_ (v "budget" < c 0.0) [ "budget" := c 0.0 ];
        when_ (v "r" > c 0.0) [ "r" := c 1.0 ];
        when_ (v "k" > c 8.0) [ "r" := v "r" + v "r" ];
        when_ (v "k" > c 24.0) [ "r" := v "r" - (v "r" / c 2.0) ];
        when_ (idx "quadrant" (v "i1") = c 1.0) [ "r" := v "r" + c 0.0 ];
        when_ (idx "quadrant" (v "i2") = c 1.0) [ "r" := v "r" * c 1.0 ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 24200 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let i1s = Array.init length (fun _ -> float_of_int (R.int pre span)) in
  let i2s =
    Array.init length (fun i ->
        (* a third of comparisons land on period-aligned offsets, giving
           long matches; the rest differ quickly *)
        if R.float pre < 0.33 then
          Float.rem (i1s.(i) +. 16.0) (float_of_int span)
        else float_of_int (R.int pre span))
  in
  let init env =
    let rng = R.copy rng in
    let block = Interp.get_array env "block" in
    (* period-16 base pattern with sparse noise: aligned offsets match for
       long stretches, unaligned ones diverge fast *)
    let pattern = Array.init 16 (fun _ -> float_of_int (R.int rng 4)) in
    Array.iteri
      (fun i _ ->
        block.(i) <-
          (if R.float rng < 0.02 then float_of_int (R.int rng 4) else pattern.(i mod 16)))
      block;
    let quadrant = Interp.get_array env "quadrant" in
    Array.iteri (fun i _ -> quadrant.(i) <- float_of_int (R.int rng 2)) quadrant
  in
  let budgets = Array.init length (fun _ -> float_of_int (R.int pre 64)) in
  let setup i env =
    Interp.set_scalar env "i1" i1s.(i);
    Interp.set_scalar env "i2" i2s.(i);
    Interp.set_scalar env "limit" 48.0;
    Interp.set_scalar env "budget" budgets.(i)
  in
  Trace.make ~name:"bzip2" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "BZIP2";
    ts_name = "fullGtU";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "24.2M";
    paper_method = "RBR";
    scale = "1/1000";
    time_share = 0.55;
    trace;
  }
