lib/workload/registry.ml: Benchmark Fp_applu Fp_apsi Fp_art Fp_equake Fp_mesa Fp_mgrid Fp_swim Fp_wupwise Int_bzip2 Int_crafty Int_gzip Int_mcf Int_twolf Int_vortex List String
