lib/workload/int_gzip.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
