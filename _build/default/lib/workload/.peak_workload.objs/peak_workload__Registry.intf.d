lib/workload/registry.mli: Benchmark
