lib/workload/fp_mgrid.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
