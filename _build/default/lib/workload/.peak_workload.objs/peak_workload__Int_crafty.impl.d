lib/workload/int_crafty.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
