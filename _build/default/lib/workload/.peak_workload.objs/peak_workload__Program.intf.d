lib/workload/program.mli: Peak_ir Trace
