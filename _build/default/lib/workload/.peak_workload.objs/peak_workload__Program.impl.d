lib/workload/program.ml: List Peak_ir Trace
