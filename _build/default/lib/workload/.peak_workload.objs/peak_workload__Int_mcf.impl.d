lib/workload/int_mcf.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
