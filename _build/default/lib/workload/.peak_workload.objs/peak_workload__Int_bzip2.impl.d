lib/workload/int_bzip2.ml: Array Benchmark Builder Float Interp Peak_ir Peak_util Trace
