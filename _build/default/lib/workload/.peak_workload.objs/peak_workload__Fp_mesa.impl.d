lib/workload/fp_mesa.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
