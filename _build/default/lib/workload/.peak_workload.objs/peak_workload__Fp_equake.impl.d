lib/workload/fp_equake.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
