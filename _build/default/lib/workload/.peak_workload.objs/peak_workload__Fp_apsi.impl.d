lib/workload/fp_apsi.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
