lib/workload/benchmark.mli: Peak_ir Peak_util Trace
