lib/workload/int_vortex.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
