lib/workload/benchmark.ml: Array Peak_ir Peak_util Trace
