lib/workload/swim_program.ml: Benchmark Builder Fp_swim Interp List Peak_ir Peak_util Program Trace
