lib/workload/fp_wupwise.ml: Array Benchmark Builder Interp List Peak_ir Peak_util Trace
