lib/workload/fp_art.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
