lib/workload/fp_swim.ml: Benchmark Builder Interp List Peak_ir Peak_util Trace
