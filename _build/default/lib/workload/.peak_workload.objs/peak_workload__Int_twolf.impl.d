lib/workload/int_twolf.ml: Array Benchmark Builder Interp Peak_ir Peak_util Trace
