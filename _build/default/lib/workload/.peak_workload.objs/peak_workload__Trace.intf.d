lib/workload/trace.mli: Peak_ir
