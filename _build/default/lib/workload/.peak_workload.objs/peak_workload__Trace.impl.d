lib/workload/trace.ml: Peak_ir
