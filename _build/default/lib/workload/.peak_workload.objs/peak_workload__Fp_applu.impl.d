lib/workload/fp_applu.ml: Benchmark Builder Interp List Peak_ir Peak_util Trace
