(** EQUAKE's [smvp] tuning section.

    Sparse matrix-vector product over the earthquake simulation's fixed
    mesh.  The loop bounds come from the sparse structure arrays, which
    never change during the run: after the run-time-constant check they
    drop out of the context set, leaving a single context (the paper's
    CBR row for EQUAKE).  The matrix is sized past the simulated L2
    capacities so the irregular gather keeps producing cache misses —
    the source of EQUAKE's comparatively high rating variation noted in
    Section 5.1. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let rows = 256
let nnz = 160_000

let ts =
  (* the real Anext is a small block matrix: two value streams share the
     column structure *)
  B.ts ~name:"smvp" ~params:[ "rows" ]
    ~arrays:
      [
        ("amat", nnz); ("amat2", nnz); ("col", nnz); ("rowstart", rows + 1); ("x", rows);
        ("x2", rows); ("w", rows); ("w2", rows);
      ]
    ~locals:[ "i"; "j"; "acc"; "acc2" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "rows")
          [
            "acc" := c 0.0;
            "acc2" := c 0.0;
            for_ "j" ~lo:(idx "rowstart" (v "i")) ~hi:(idx "rowstart" (v "i" + ci 1))
              [
                "acc" := v "acc" + (idx "amat" (v "j") * idx "x" (idx "col" (v "j")));
                "acc2" := v "acc2" + (idx "amat2" (v "j") * idx "x2" (idx "col" (v "j")));
              ];
            store "w" (v "i") (v "acc");
            store "w2" (v "i") (v "acc2");
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 2709 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    let rowstart = Interp.get_array env "rowstart" in
    (* random row lengths normalized to sum to nnz *)
    let weights = Array.init rows (fun _ -> 0.2 +. R.float rng) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let acc = ref 0 in
    rowstart.(0) <- 0.0;
    for i = 0 to rows - 1 do
      let len = int_of_float (weights.(i) /. total *. float_of_int nnz) in
      acc := min nnz (!acc + len);
      rowstart.(i + 1) <- float_of_int !acc
    done;
    rowstart.(rows) <- float_of_int nnz;
    Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env "amat");
    Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env "amat2");
    Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env "x");
    Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env "x2");
    let col = Interp.get_array env "col" in
    Array.iteri (fun i _ -> col.(i) <- float_of_int (R.int rng rows)) col;
    Interp.set_scalar env "rows" (float_of_int rows)
  in
  Trace.make ~name:"equake" ~length ~init ~class_of:(fun _ -> 0) (fun _ _ -> ())

let benchmark =
  {
    Benchmark.name = "EQUAKE";
    ts_name = "smvp";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "2709";
    paper_method = "CBR";
    scale = "1/1";
    time_share = 0.70;
    trace;
  }
