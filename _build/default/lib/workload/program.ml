(** Whole programs: several candidate tuning sections plus serial code.

    Section 4.1 of the paper: "the application to be tuned is partitioned
    by a static compiler into a number of code sections, called tuning
    sections", chosen as "the most time-consuming functions and loops,
    according to the program execution profiles".  A [Program.t] is the
    unit that partitioning operates on: each candidate section carries
    its own IR and invocation trace, and [serial_fraction] is the portion
    of program time outside every candidate (I/O, glue code) that no
    tuning can touch. *)

type section = {
  name : string;
  ts : Peak_ir.Types.ts;
  trace : Trace.dataset -> seed:int -> Trace.t;
}

type t = {
  name : string;
  sections : section list;
  serial_fraction : float;  (** In [0, 1): time share outside all sections. *)
}

let section_names p = List.map (fun (s : section) -> s.name) p.sections

let find_section p name = List.find_opt (fun (s : section) -> s.name = name) p.sections
