(** MCF's [primal_bea_mpp] tuning section.

    The simplex pricing loop: scan a block of arcs, compute each eligible
    arc's reduced cost, and collect negative ones into the candidate
    basket.  The costs and node potentials change between invocations as
    the simplex iterates — the trace declares those arrays mutated, which
    is exactly what defeats the run-time-constant rule and pushes the
    consultant to RBR (Table 1: 105K invocations, scaled 1/100). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let arcs = 512
let basket_cap = 64

let ts =
  B.ts ~name:"primal_bea_mpp" ~params:[ "group_size"; "group_off"; "phase" ]
    ~arrays:
      [
        ("cost", arcs); ("tail_pot", arcs); ("head_pot", arcs); ("ident", arcs);
        ("basket", basket_cap);
      ]
    ~locals:[ "i"; "red_cost"; "nb"; "t" ]
    B.
      [
        "nb" := c 0.0;
        for_ "i" ~lo:(v "group_off") ~hi:(v "group_off" + v "group_size")
          [
            when_
              (idx "ident" (v "i") > c 0.0)
              [
                "red_cost" := idx "cost" (v "i") - idx "tail_pot" (v "i") + idx "head_pot" (v "i");
                when_
                  (v "red_cost" < c 0.0)
                  [
                    when_
                      (v "nb" < c (float_of_int basket_cap))
                      [
                        store "basket" (v "nb") (v "red_cost");
                        "nb" := v "nb" + ci 1;
                      ];
                  ];
              ];
          ];
        (* basket postprocessing, as in the real pricing step *)
        when_ (v "nb" > c 0.0) [ store "basket" (c 0.0) (idx "basket" (c 0.0) * c 1.0) ];
        when_ (v "nb" > c 16.0) [ "nb" := v "nb" - c 0.0 ];
        when_ (v "nb" >= c (float_of_int basket_cap)) [ "nb" := c (float_of_int basket_cap) ];
        when_ (v "phase" > c 0.5) [ "t" := v "nb" * c 2.0 ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 1050 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let sizes = Array.init length (fun _ -> float_of_int (50 + R.int pre 200)) in
  let offs = Array.init length (fun i -> float_of_int (R.int pre (arcs - int_of_float sizes.(i)))) in
  let mutation = R.copy rng in
  let init env =
    let rng = R.copy rng in
    Benchmark.fill_random rng 0.0 10.0 (Interp.get_array env "cost");
    Benchmark.fill_random rng 0.0 8.0 (Interp.get_array env "tail_pot");
    Benchmark.fill_random rng 0.0 4.0 (Interp.get_array env "head_pot");
    let ident = Interp.get_array env "ident" in
    Array.iteri (fun i _ -> ident.(i) <- (if R.float rng < 0.7 then 1.0 else 0.0)) ident
  in
  let setup i env =
    Interp.set_scalar env "group_size" sizes.(i);
    Interp.set_scalar env "group_off" offs.(i);
    Interp.set_scalar env "phase" (if i mod 3 = 0 then 1.0 else 0.0);
    (* the simplex step reprices a few arcs between invocations *)
    let cost = Interp.get_array env "cost" in
    let ident = Interp.get_array env "ident" in
    for _ = 1 to 16 do
      let j = R.int mutation arcs in
      cost.(j) <- R.float mutation *. 10.0;
      if R.float mutation < 0.1 then ident.(j) <- (if ident.(j) = 0.0 then 1.0 else 0.0)
    done
  in
  Trace.make ~name:"mcf" ~length ~init ~mutated_arrays:[ "cost"; "ident" ] setup

let benchmark =
  {
    Benchmark.name = "MCF";
    ts_name = "primal_bea_mpp";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "105K";
    paper_method = "RBR";
    scale = "1/100";
    time_share = 0.75;
    trace;
  }
