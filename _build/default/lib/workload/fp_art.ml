(** ART's [match] tuning section.

    The adaptive-resonance F1-layer match pass, written the way the C
    original is: through pointers.  Three disambiguatable pointers are
    live across the hot loop — the structure behind the paper's Section
    5.2 finding that [-fstrict-aliasing] devastates ART on the
    register-starved Pentium IV and helps it on SPARC II.

    Rating-wise: the continuous vigilance parameter makes every
    invocation a fresh context (no CBR), and the data-dependent
    conditionals give the section more independent count components than
    the MBR model tolerates — so the consultant lands on RBR, matching
    Table 1 (250 invocations). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let numf1s = 400
let f1_size = 2048

let ts =
  B.ts ~name:"match" ~params:[ "numf1s"; "rho"; "off"; "conv" ]
    ~arrays:[ ("f1", f1_size); ("y", f1_size); ("w", f1_size) ]
    ~pointers:[ ("bus", "bus_v"); ("tds", "tds_v"); ("tsum", "tsum_v") ]
    ~locals:[ "i"; "t"; "winner"; "iter"; "bus_v"; "tds_v"; "tsum_v" ]
    B.
      [
        "winner" := c (-1.0);
        ptr_store "tsum" (c 0.0);
        for_ "i" ~lo:(ci 0) ~hi:(v "numf1s")
          [
            "t" := (idx "f1" (v "i" + v "off") * deref "bus") + deref "tds";
            if_
              (v "t" > v "rho")
              [
                store "y" (v "i") (v "t");
                ptr_store "tsum" (deref "tsum" + (v "t" * deref "bus"));
              ]
              [ store "y" (v "i") (c 0.0) ];
            when_ (idx "w" (v "i" + v "off") > v "t") [ "winner" := v "i" ];
          ];
        (* vigilance refinement: data-dependent trip count *)
        "iter" := c 0.0;
        while_
          (and_ (deref "tsum" > v "conv") (v "iter" < c 24.0))
          [
            ptr_store "tsum" ((deref "tsum" * c 0.82) - (c 0.01 * deref "bus"));
            "iter" := v "iter" + ci 1;
          ];
        (* resonance bookkeeping, per the real match(): distinct data
           drives each conditional *)
        when_ (v "winner" >= c 0.0) [ store "y" (c 0.0) (idx "y" (c 0.0) + c 0.0) ];
        when_ (deref "tsum" > c 10.0) [ ptr_store "tds" (deref "tds" * c 0.99) ];
        when_ (v "iter" > c 12.0) [ "iter" := c 12.0 ];
        when_ (v "rho" > c 0.5) [ ptr_store "bus" (deref "bus" + c 0.0) ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 250 in
  let rng = R.create ~seed in
  (* per-invocation parameters, drawn up front for determinism *)
  let n = length in
  let pre = R.copy rng in
  let rhos = Array.init n (fun _ -> 0.2 +. (0.6 *. R.float pre)) in
  let offs = Array.init n (fun _ -> float_of_int (R.int pre (f1_size - numf1s))) in
  let convs = Array.init n (fun _ -> 0.5 +. (R.float pre *. 40.0)) in
  let init env =
    let rng = R.copy rng in
    Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env "f1");
    Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env "w");
    Interp.set_scalar env "numf1s" (float_of_int numf1s)
  in
  let setup i env =
    Interp.set_scalar env "rho" rhos.(i);
    Interp.set_scalar env "off" offs.(i);
    Interp.set_scalar env "conv" convs.(i);
    Interp.set_scalar env "bus_v" 0.9;
    Interp.set_scalar env "tds_v" 0.05
  in
  Trace.make ~name:"art" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "ART";
    ts_name = "match";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "250";
    paper_method = "RBR";
    scale = "1/1";
    time_share = 0.95;
    trace;
  }
