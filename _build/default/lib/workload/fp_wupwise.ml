(** WUPWISE's [zgemm] tuning section.

    Complex matrix–matrix multiply on the small SU(3)-style matrices of
    the lattice-QCD code.  Two shapes recur (the paper's two zgemm
    contexts): the 4x4 spinor form and the 3x3 color form. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let stride = 4
let size = stride * stride

let contexts = [| (4, 4, 4); (3, 3, 3) |]

let ts =
  B.ts ~name:"zgemm" ~params:[ "m"; "n"; "k" ]
    ~arrays:
      [
        ("ar", size); ("ai", size); ("br", size); ("bi", size); ("creal", size); ("cimag", size);
      ]
    ~locals:[ "ii"; "jj"; "kk"; "sr"; "si"; "t" ]
    B.
      [
        for_ "ii" ~lo:(ci 0) ~hi:(v "m")
          [
            for_ "jj" ~lo:(ci 0) ~hi:(v "n")
              [
                "sr" := c 0.0;
                "si" := c 0.0;
                for_ "kk" ~lo:(ci 0) ~hi:(v "k")
                  [
                    "t" := (v "ii" * ci stride) + v "kk";
                    "sr"
                    := v "sr"
                       + (idx "ar" (v "t") * idx "br" ((v "kk" * ci stride) + v "jj"))
                       - (idx "ai" (v "t") * idx "bi" ((v "kk" * ci stride) + v "jj"));
                    "si"
                    := v "si"
                       + (idx "ar" (v "t") * idx "bi" ((v "kk" * ci stride) + v "jj"))
                       + (idx "ai" (v "t") * idx "br" ((v "kk" * ci stride) + v "jj"));
                  ];
                store "creal" ((v "ii" * ci stride) + v "jj") (v "sr");
                store "cimag" ((v "ii" * ci stride) + v "jj") (v "si");
              ];
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 22500 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    List.iter
      (fun a -> Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env a))
      [ "ar"; "ai"; "br"; "bi" ]
  in
  let setup i env =
    let m, n, k = contexts.(i mod Array.length contexts) in
    Interp.set_scalar env "m" (float_of_int m);
    Interp.set_scalar env "n" (float_of_int n);
    Interp.set_scalar env "k" (float_of_int k)
  in
  Trace.make ~name:"wupwise" ~length ~init
    ~class_of:(fun i -> i mod Array.length contexts)
    setup

let benchmark =
  {
    Benchmark.name = "WUPWISE";
    ts_name = "zgemm";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "22.5M";
    paper_method = "CBR";
    scale = "1/1000";
    time_share = 0.55;
    trace;
  }
