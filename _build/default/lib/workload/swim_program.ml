(** SWIM as a whole program: its three time-stepping routines.

    The real SPEC swim spends nearly all its time in [calc1] (compute new
    velocity fields), [calc2] (new height field) and [calc3] (time
    smoothing); the paper's experiments tune only the top section, but
    the partitioning machinery of Section 4.1 is about programs like this
    one.  Each routine is a 2D stencil over the same fields with a
    different operation mix, all invoked once per time step. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let n = Fp_swim.n
let stride = Fp_swim.stride
let size = Fp_swim.size

let steps = 198

let fields = [ ("u", size); ("v", size); ("p", size); ("unew", size); ("vnew", size); ("pnew", size) ]

(* calc1: compute the new velocity fields from pressure gradients —
   multiply-heavy with cross-derivative reads. *)
let calc1_ts =
  B.ts ~name:"calc1" ~params:[ "n"; "dtdx" ] ~arrays:fields ~locals:[ "i"; "j"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 1) ~hi:(v "n" + ci 1)
          [
            for_ "j" ~lo:(ci 1) ~hi:(v "n" + ci 1)
              [
                "t" := (v "i" * ci stride) + v "j";
                store "unew" (v "t")
                  (idx "u" (v "t")
                  - (v "dtdx"
                    * (idx "p" (v "t" + ci 1) - idx "p" (v "t"))
                    * (idx "v" (v "t") + idx "v" (v "t" + ci stride))));
                store "vnew" (v "t")
                  (idx "v" (v "t")
                  - (v "dtdx"
                    * (idx "p" (v "t" + ci stride) - idx "p" (v "t"))
                    * (idx "u" (v "t") + idx "u" (v "t" + ci 1))));
              ];
          ];
      ]

(* calc2: the new height field from velocity divergence. *)
let calc2_ts =
  B.ts ~name:"calc2" ~params:[ "n"; "dtdx" ] ~arrays:fields ~locals:[ "i"; "j"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 1) ~hi:(v "n" + ci 1)
          [
            for_ "j" ~lo:(ci 1) ~hi:(v "n" + ci 1)
              [
                "t" := (v "i" * ci stride) + v "j";
                store "pnew" (v "t")
                  (idx "p" (v "t")
                  - (v "dtdx"
                    * (idx "u" (v "t" + ci 1) - idx "u" (v "t" - ci 1)
                      + idx "v" (v "t" + ci stride)
                      - idx "v" (v "t" - ci stride))));
              ];
          ];
      ]

let stencil_trace ~name ~seed_salt dataset ~seed =
  let length = Trace.scaled_length dataset steps in
  let rng = R.create ~seed:(seed + seed_salt) in
  let init env =
    let rng = R.copy rng in
    Interp.set_scalar env "n" (float_of_int n);
    Interp.set_scalar env "dtdx" 0.05;
    List.iter
      (fun (a, _) -> Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env a))
      fields
  in
  Trace.make ~name ~length ~init ~class_of:(fun _ -> 0) (fun _ _ -> ())

let program =
  {
    Program.name = "SWIM";
    sections =
      [
        { Program.name = "calc1"; ts = calc1_ts; trace = stencil_trace ~name:"swim.calc1" ~seed_salt:11 };
        { Program.name = "calc2"; ts = calc2_ts; trace = stencil_trace ~name:"swim.calc2" ~seed_salt:22 };
        {
          Program.name = "calc3";
          ts = Fp_swim.ts;
          trace = (fun dataset ~seed -> Fp_swim.trace dataset ~seed);
        };
      ];
    serial_fraction = 0.08;
  }
