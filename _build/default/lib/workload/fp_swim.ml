(** SWIM's [calc3] tuning section.

    A 2D finite-difference time-stepping stencil over three field arrays.
    Structure from the paper's Table 1: 198 invocations per train run,
    every invocation with the same grid size — a single context, making
    this the cleanest CBR case. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let n = 32
let stride = n + 2
let size = stride * stride

let stencil field out =
  B.(
    store out (v "t")
      (idx field (v "t")
      + (v "alpha"
        * (idx field (v "t" - ci 1)
          + idx field (v "t" + ci 1)
          + idx field (v "t" - ci stride)
          + idx field (v "t" + ci stride)
          - (c 4.0 * idx field (v "t"))))))

let ts =
  B.ts ~name:"calc3" ~params:[ "n"; "alpha" ]
    ~arrays:
      [
        ("u", size); ("v", size); ("p", size); ("unew", size); ("vnew", size); ("pnew", size);
      ]
    ~locals:[ "i"; "j"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 1) ~hi:(v "n" + ci 1)
          [
            for_ "j" ~lo:(ci 1) ~hi:(v "n" + ci 1)
              [
                "t" := (v "i" * ci stride) + v "j";
                stencil "u" "unew";
                stencil "v" "vnew";
                stencil "p" "pnew";
              ];
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 198 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    Interp.set_scalar env "n" (float_of_int n);
    Interp.set_scalar env "alpha" 0.1;
    List.iter
      (fun a -> Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env a))
      [ "u"; "v"; "p" ]
  in
  Trace.make ~name:"swim" ~length ~init ~class_of:(fun _ -> 0) (fun _ _ -> ())

let benchmark =
  {
    Benchmark.name = "SWIM";
    ts_name = "calc3";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "198";
    paper_method = "CBR";
    scale = "1/1";
    time_share = 0.85;
    trace;
  }
