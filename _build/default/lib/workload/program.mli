(** Whole programs: several candidate tuning sections plus serial code.

    Section 4.1 of the paper: "the application to be tuned is partitioned
    by a static compiler into a number of code sections, called tuning
    sections", chosen as "the most time-consuming functions and loops,
    according to the program execution profiles".  A [Program.t] is the
    unit {!Peak.Partitioner} operates on. *)

type section = {
  name : string;
  ts : Peak_ir.Types.ts;
  trace : Trace.dataset -> seed:int -> Trace.t;
}

type t = {
  name : string;
  sections : section list;
  serial_fraction : float;  (** In [0, 1): time share outside all sections. *)
}

val section_names : t -> string list
val find_section : t -> string -> section option
