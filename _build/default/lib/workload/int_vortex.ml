(** VORTEX's [ChkGetChunk] tuning section.

    The object-store chunk validator: follow the chunk chain from a
    handle until a chunk with the requested status is found (or a hop
    bound trips), then run a couple of consistency checks.  Chain hops
    depend on store state — irregular, RBR (Table 1: 80.4M invocations,
    scaled 1/2000). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let chunks = 1024

let ts =
  B.ts ~name:"ChkGetChunk" ~params:[ "handle"; "status" ]
    ~arrays:[ ("chunk_status", chunks); ("chunk_next", chunks); ("chunk_size", chunks) ]
    ~locals:[ "cur"; "found"; "steps"; "ok" ]
    B.
      [
        "cur" := v "handle";
        "found" := c 0.0;
        "steps" := c 0.0;
        while_
          (and_ (v "found" = c 0.0) (v "steps" < c 32.0))
          [
            if_
              (idx "chunk_status" (v "cur") = v "status")
              [ "found" := c 1.0 ]
              [
                "cur" := idx "chunk_next" (v "cur");
                "steps" := v "steps" + ci 1;
              ];
          ];
        "ok" := c 0.0;
        when_
          (v "found" = c 1.0)
          [
            when_ (idx "chunk_size" (v "cur") > c 0.0) [ "ok" := c 1.0 ];
            when_ (idx "chunk_size" (v "cur") > c 900.0) [ "ok" := c 2.0 ];
          ];
        (* handle-validation tail, as the real ChkGetChunk performs *)
        when_ (v "steps" > c 4.0) [ "ok" := v "ok" + c 0.0 ];
        when_ (v "steps" > c 16.0) [ "steps" := c 16.0 ];
        when_ (v "status" = c 2.0) [ "ok" := v "ok" * c 1.0 ];
        when_ (idx "chunk_size" (v "cur") > c 500.0) [ "ok" := v "ok" + c 1.0 ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 40200 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let handles = Array.init length (fun _ -> float_of_int (R.int pre chunks)) in
  let statuses = Array.init length (fun _ -> float_of_int (R.int pre 4)) in
  let init env =
    let rng = R.copy rng in
    let status = Interp.get_array env "chunk_status" in
    Array.iteri (fun i _ -> status.(i) <- float_of_int (R.int rng 4)) status;
    let next = Interp.get_array env "chunk_next" in
    Array.iteri (fun i _ -> next.(i) <- float_of_int (R.int rng chunks)) next;
    Benchmark.fill_random rng 0.0 1000.0 (Interp.get_array env "chunk_size")
  in
  let setup i env =
    Interp.set_scalar env "handle" handles.(i);
    Interp.set_scalar env "status" statuses.(i)
  in
  Trace.make ~name:"vortex" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "VORTEX";
    ts_name = "ChkGetChunk";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "80.4M";
    paper_method = "RBR";
    scale = "1/2000";
    time_share = 0.35;
    trace;
  }
