(** A SPEC-CPU-2000-like benchmark: one tuning section plus its
    invocation behaviour.

    Each benchmark module reproduces the structure of the paper's most
    important tuning section for that SPEC code (Table 1): the same kind
    of control structure (regular loop nests vs data-dependent
    conditionals), the same context cardinality (one context, a few
    recurring contexts, or effectively infinite), and an invocation count
    scaled down from the paper's (the [scale] field records the factor). *)

type kind = Integer | Floating_point

type t = {
  name : string;  (** Benchmark name, e.g. "SWIM". *)
  ts_name : string;  (** Tuning-section name, e.g. "calc3". *)
  kind : kind;
  ts : Peak_ir.Types.ts;
  paper_invocations : string;  (** Table 1's invocation count, verbatim. *)
  paper_method : string;  (** Table 1's chosen rating approach. *)
  scale : string;  (** Invocation-count scaling vs the paper. *)
  time_share : float;  (** TS share of whole-program time, in (0,1]. *)
  trace : Trace.dataset -> seed:int -> Trace.t;
}

val kind_name : kind -> string

val fill_random : Peak_util.Rng.t -> float -> float -> float array -> unit
(** [fill_random rng lo hi arr]: reproducible uniform fill in [lo, hi)
    (shared helper for trace initializers). *)
