type t = {
  name : string;
  length : int;
  init : Peak_ir.Interp.env -> unit;
  setup : int -> Peak_ir.Interp.env -> unit;
  class_of : (int -> int) option;
  mutated_arrays : string list;
}

type dataset = Train | Ref

let dataset_name = function Train -> "train" | Ref -> "ref"

let make ~name ~length ?(init = fun _ -> ()) ?class_of ?(mutated_arrays = []) setup =
  if length <= 0 then invalid_arg "Trace.make: nonpositive length";
  { name; length; init; setup; class_of; mutated_arrays }

let scaled_length dataset n = match dataset with Train -> n | Ref -> 3 * n
