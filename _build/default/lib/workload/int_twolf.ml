(** TWOLF's [new_dbox_a] tuning section.

    Bounding-box cost evaluation for a net after a tentative move: scan
    the net's terminals, maintain min/max in both axes, and accumulate
    the half-perimeter cost.  Net sizes and the min/max update pattern
    are placement-dependent — irregular, RBR (Table 1: 3.19M invocations,
    scaled 1/1000). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let terms = 4096

let ts =
  B.ts ~name:"new_dbox_a" ~params:[ "nterms"; "off" ]
    ~arrays:[ ("xs", terms); ("ys", terms) ]
    ~locals:[ "t"; "xmin"; "xmax"; "ymin"; "ymax"; "cost" ]
    B.
      [
        "xmin" := c 100000.0;
        "xmax" := c (-100000.0);
        "ymin" := c 100000.0;
        "ymax" := c (-100000.0);
        for_ "t" ~lo:(ci 0) ~hi:(v "nterms")
          [
            if_
              (idx "xs" (v "t" + v "off") < v "xmin")
              [ "xmin" := idx "xs" (v "t" + v "off") ]
              [ when_ (idx "xs" (v "t" + v "off") > v "xmax")
                  [ "xmax" := idx "xs" (v "t" + v "off") ] ];
            if_
              (idx "ys" (v "t" + v "off") < v "ymin")
              [ "ymin" := idx "ys" (v "t" + v "off") ]
              [ when_ (idx "ys" (v "t" + v "off") > v "ymax")
                  [ "ymax" := idx "ys" (v "t" + v "off") ] ];
          ];
        "cost" := v "xmax" - v "xmin" + v "ymax" - v "ymin";
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 3190 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let sizes = Array.init length (fun _ -> float_of_int (3 + R.int pre 60)) in
  let offs =
    Array.init length (fun i -> float_of_int (R.int pre (terms - int_of_float sizes.(i))))
  in
  let init env =
    let rng = R.copy rng in
    Benchmark.fill_random rng 0.0 1000.0 (Interp.get_array env "xs");
    Benchmark.fill_random rng 0.0 1000.0 (Interp.get_array env "ys")
  in
  let setup i env =
    Interp.set_scalar env "nterms" sizes.(i);
    Interp.set_scalar env "off" offs.(i)
  in
  Trace.make ~name:"twolf" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "TWOLF";
    ts_name = "new_dbox_a";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "3.19M";
    paper_method = "RBR";
    scale = "1/1000";
    time_share = 0.50;
    trace;
  }
