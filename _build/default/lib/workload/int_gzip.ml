(** GZIP's [longest_match] tuning section.

    The deflate hot spot: walk the hash chain, comparing the window at
    each candidate against the scan position, tracking the best match and
    stopping early on a "good enough" length.  Chain length, per-candidate
    match length, and the best-length updates all depend on window data —
    Table 1's biggest invocation count (82.6M, scaled 1/2000) and an RBR
    case. *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let window_size = 8192
let prev_size = 4096
let span = 4000 (* scan/match offsets stay below this *)
let max_len = 64.0

let ts =
  B.ts ~name:"longest_match"
    ~params:[ "cur_match"; "scan"; "chain_length"; "prev_length"; "nice_match"; "good_match"; "level" ]
    ~arrays:[ ("window", window_size); ("prev", prev_size) ]
    ~locals:[ "chain"; "best_len"; "len"; "searching" ]
    B.
      [
        "chain" := v "chain_length";
        "best_len" := v "prev_length";
        "searching" := c 1.0;
        while_
          (and_ (v "chain" > c 0.0) (v "searching" = c 1.0))
          [
            "len" := c 0.0;
            while_
              (and_
                 (idx "window" (v "scan" + v "len") = idx "window" (v "cur_match" + v "len"))
                 (v "len" < c max_len))
              [ "len" := v "len" + ci 1 ];
            when_
              (v "len" > v "best_len")
              [
                "best_len" := v "len";
                when_ (v "len" >= v "nice_match") [ "searching" := c 0.0 ];
              ];
            (* the real deflate shortens the chain once a good match is in
               hand *)
            when_ (v "best_len" >= v "good_match") [ "chain" := v "chain" - ci 1 ];
            "cur_match" := idx "prev" (v "cur_match" % ci prev_size);
            "chain" := v "chain" - ci 1;
          ];
        when_ (v "best_len" >= c 16.0) [ "best_len" := v "best_len" + c 0.0 ];
        when_ (v "best_len" >= c max_len) [ "best_len" := c max_len ];
        when_ (v "level" > c 6.0) [ "searching" := c 0.0 ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 41300 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let scans = Array.init length (fun _ -> float_of_int (R.int pre span)) in
  let matches = Array.init length (fun _ -> float_of_int (R.int pre span)) in
  let chains = Array.init length (fun _ -> float_of_int (1 + R.int pre 8)) in
  let prevs = Array.init length (fun _ -> float_of_int (R.int pre 8)) in
  let levels = Array.init length (fun _ -> float_of_int (1 + R.int pre 9)) in
  let init env =
    let rng = R.copy rng in
    let window = Interp.get_array env "window" in
    (* text-like data: period-32 pattern with noise so matches of varied
       length occur *)
    let pattern = Array.init 32 (fun _ -> float_of_int (R.int rng 8)) in
    Array.iteri
      (fun i _ ->
        window.(i) <-
          (if R.float rng < 0.06 then float_of_int (R.int rng 8) else pattern.(i mod 32)))
      window;
    let prev = Interp.get_array env "prev" in
    Array.iteri (fun i _ -> prev.(i) <- float_of_int (R.int rng span)) prev
  in
  let setup i env =
    Interp.set_scalar env "scan" scans.(i);
    Interp.set_scalar env "cur_match" matches.(i);
    Interp.set_scalar env "chain_length" chains.(i);
    Interp.set_scalar env "prev_length" prevs.(i);
    Interp.set_scalar env "nice_match" 32.0;
    Interp.set_scalar env "good_match" 8.0;
    Interp.set_scalar env "level" levels.(i)
  in
  Trace.make ~name:"gzip" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "GZIP";
    ts_name = "longest_match";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "82.6M";
    paper_method = "RBR";
    scale = "1/2000";
    time_share = 0.60;
    trace;
  }
