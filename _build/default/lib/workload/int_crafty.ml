(** CRAFTY's [Attacked] tuning section.

    Ray-walking attack detection: from a square, step along each of the
    eight directions until a piece or the board edge blocks the ray.
    Both the walk lengths and the piece-type conditionals depend on the
    board position, yielding the irregular behaviour Table 1 resolves
    with RBR (12.3M invocations, scaled 1/1000). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let board_slots = 128 (* several positions stored side by side *)
let n_boards = 8

let ts =
  B.ts ~name:"Attacked" ~params:[ "square"; "board_off"; "enemy"; "depth" ]
    ~arrays:[ ("board", board_slots * n_boards); ("dir", 8) ]
    ~locals:[ "d"; "sq"; "walking"; "attacks"; "piece" ]
    B.
      [
        "attacks" := c 0.0;
        for_ "d" ~lo:(ci 0) ~hi:(ci 8)
          [
            "sq" := v "square";
            "walking" := c 1.0;
            while_
              (v "walking" = c 1.0)
              [
                "sq" := v "sq" + idx "dir" (v "d");
                if_
                  (or_ (v "sq" < c 0.0) (v "sq" >= c 64.0))
                  [ "walking" := c 0.0 ]
                  [
                    "piece" := idx "board" (v "sq" + v "board_off");
                    when_
                      (v "piece" <> c 0.0)
                      [
                        when_ (v "piece" = v "enemy") [ "attacks" := v "attacks" + ci 1 ];
                        "walking" := c 0.0;
                      ];
                  ];
              ];
          ];
        (* post-scan heuristics, as the real search does around Attacked:
           distinct data drives each conditional *)
        when_ (v "attacks" > c 0.0) [ "attacks" := v "attacks" + c 0.0 ];
        when_ (v "attacks" > c 2.0) [ "attacks" := c 3.0 ];
        when_ (v "depth" > c 6.0) [ "attacks" := v "attacks" * c 1.0 ];
        when_
          (idx "board" (v "square" + v "board_off") <> c 0.0)
          [ "attacks" := v "attacks" + c 1.0 ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 12300 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let squares = Array.init length (fun _ -> float_of_int (8 + R.int pre 48)) in
  let boards = Array.init length (fun _ -> float_of_int (board_slots * R.int pre n_boards)) in
  let enemies = Array.init length (fun _ -> float_of_int (1 + R.int pre 2)) in
  let init env =
    let rng = R.copy rng in
    let board = Interp.get_array env "board" in
    (* sparse occupancy: most squares empty, some friend (3) or enemy (1/2) *)
    Array.iteri
      (fun i _ ->
        board.(i) <-
          (if R.float rng < 0.25 then float_of_int (1 + R.int rng 3) else 0.0))
      board;
    let dir = Interp.get_array env "dir" in
    Array.iteri (fun i _ -> dir.(i) <- [| 1.; -1.; 8.; -8.; 7.; -7.; 9.; -9. |].(i)) dir
  in
  let depths = Array.init length (fun _ -> float_of_int (R.int pre 12)) in
  let setup i env =
    Interp.set_scalar env "square" squares.(i);
    Interp.set_scalar env "board_off" boards.(i);
    Interp.set_scalar env "enemy" enemies.(i);
    Interp.set_scalar env "depth" depths.(i)
  in
  Trace.make ~name:"crafty" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "CRAFTY";
    ts_name = "Attacked";
    kind = Benchmark.Integer;
    ts;
    paper_invocations = "12.3M";
    paper_method = "RBR";
    scale = "1/1000";
    time_share = 0.45;
    trace;
  }
