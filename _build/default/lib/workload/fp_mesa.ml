(** MESA's [sample_1d_linear] tuning section.

    Linear texture sampling: compute the two texel indices around a
    continuous coordinate, apply the wrap/clamp mode to each, and
    interpolate.  The texture coordinate is a fresh float every call, so
    contexts never repeat; the wrap/clamp conditionals flip independently
    — too many independent components for MBR, hence Table 1's RBR row
    (193M invocations in the paper, scaled here). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let tex_size = 256

let ts =
  B.ts ~name:"sample_1d_linear" ~params:[ "u"; "wrap_repeat"; "size" ]
    ~arrays:[ ("tex", tex_size) ]
    ~locals:[ "a"; "i0"; "i1"; "frac"; "r" ]
    B.
      [
        "a" := v "u" * v "size";
        "i0" := floor_ (v "a" - c 0.5);
        "frac" := v "a" - c 0.5 - v "i0";
        "i1" := v "i0" + ci 1;
        if_
          (v "wrap_repeat" = c 1.0)
          [ "i0" := v "i0" % v "size"; "i1" := v "i1" % v "size";
            when_ (v "i0" < c 0.0) [ "i0" := v "i0" + v "size" ];
            when_ (v "i1" < c 0.0) [ "i1" := v "i1" + v "size" ] ]
          [
            when_ (v "i0" < c 0.0) [ "i0" := c 0.0 ];
            when_ (v "i0" >= v "size") [ "i0" := v "size" - ci 1 ];
            when_ (v "i1" < c 0.0) [ "i1" := c 0.0 ];
            when_ (v "i1" >= v "size") [ "i1" := v "size" - ci 1 ];
          ];
        (* filter special cases, as the real sampler short-circuits *)
        when_ (v "frac" < c 0.05) [ "frac" := c 0.0 ];
        when_ (v "i0" = v "i1") [ "frac" := c 0.0 ];
        when_ (v "u" < c 0.0) [ "a" := c 0.0 ];
        "r" := ((c 1.0 - v "frac") * idx "tex" (v "i0")) + (v "frac" * idx "tex" (v "i1"));
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 48250 in
  let rng = R.create ~seed in
  let pre = R.copy rng in
  let us = Array.init length (fun _ -> (R.float pre *. 1.4) -. 0.2) in
  let wraps = Array.init length (fun _ -> if R.float pre < 0.5 then 1.0 else 0.0) in
  let init env =
    let rng = R.copy rng in
    Benchmark.fill_random rng 0.0 1.0 (Interp.get_array env "tex");
    Interp.set_scalar env "size" (float_of_int tex_size)
  in
  let setup i env =
    Interp.set_scalar env "u" us.(i);
    Interp.set_scalar env "wrap_repeat" wraps.(i)
  in
  Trace.make ~name:"mesa" ~length ~init setup

let benchmark =
  {
    Benchmark.name = "MESA";
    ts_name = "sample_1d_linear";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "193M";
    paper_method = "RBR";
    scale = "1/4000";
    time_share = 0.50;
    trace;
  }
