(** APSI's [radb4] tuning section.

    The radix-4 inverse FFT butterfly.  The enclosing FFT driver calls it
    with a different (transform length, stride) pair at each stage; three
    pairs recur throughout the run, giving the three contexts of the
    paper's Table 1 (the small-[ido] context shows the worst rating
    consistency, matching the table's Context 1 row). *)

open Peak_ir
module B = Builder
module R = Peak_util.Rng

let size = 2048

(* The three recurring (ido, l1) stage shapes.  l1*ido = 128 in each. *)
let contexts = [| (1, 128); (4, 32); (32, 4) |]

let ts =
  B.ts ~name:"radb4" ~params:[ "ido"; "l1" ]
    ~arrays:[ ("cc", size); ("ch", size) ]
    ~locals:[ "i"; "k"; "t"; "t0"; "t1"; "t2"; "t3" ]
    B.
      [
        for_ "k" ~lo:(ci 0) ~hi:(v "l1")
          [
            for_ "i" ~lo:(ci 0) ~hi:(v "ido")
              [
                "t" := (v "k" * v "ido") + v "i";
                "t0" := idx "cc" (c 4.0 * v "t");
                "t1" := idx "cc" ((c 4.0 * v "t") + ci 1);
                "t2" := idx "cc" ((c 4.0 * v "t") + ci 2);
                "t3" := idx "cc" ((c 4.0 * v "t") + ci 3);
                store "ch" (v "t") (v "t0" + v "t1" + v "t2" + v "t3");
                store "ch" (v "t" + ci 128) (v "t0" - v "t2");
                store "ch" (v "t" + ci 256) (v "t0" - v "t1" + v "t2" - v "t3");
                store "ch" (v "t" + ci 384) (v "t1" - v "t3");
              ];
          ];
      ]

let trace dataset ~seed =
  let length = Trace.scaled_length dataset 1370 in
  let rng = R.create ~seed in
  let init env =
    let rng = R.copy rng in
    Benchmark.fill_random rng (-1.0) 1.0 (Interp.get_array env "cc")
  in
  let setup i env =
    let ido, l1 = contexts.(i mod Array.length contexts) in
    Interp.set_scalar env "ido" (float_of_int ido);
    Interp.set_scalar env "l1" (float_of_int l1)
  in
  Trace.make ~name:"apsi" ~length ~init ~class_of:(fun i -> i mod Array.length contexts) setup

let benchmark =
  {
    Benchmark.name = "APSI";
    ts_name = "radb4";
    kind = Benchmark.Floating_point;
    ts;
    paper_invocations = "1.37M";
    paper_method = "CBR";
    scale = "1/1000";
    time_share = 0.30;
    trace;
  }
