(** The 38 optimization flags implied by GCC 3.3 [-O3].

    The paper's search space (Section 5.2) is exactly this flag set: the
    options [-O3] turns on, which Iterative Elimination prunes one by
    one.  Names and optimization levels follow the GCC 3.3 manual; the
    behavioural model for each flag lives in {!Effects}. *)

type t = {
  index : int;  (** Position in {!all}; also the bit used by {!Optconfig}. *)
  name : string;  (** Without the [-f] prefix, e.g. ["strict-aliasing"]. *)
  level : int;  (** Lowest -O level that enables the flag (1, 2 or 3). *)
  description : string;
}

val all : t array
(** All 38 flags, -O1 group first, then -O2, then -O3. *)

val count : int
(** 38 — asserted at startup. *)

val by_name : string -> t option
val by_index : int -> t
(** @raise Invalid_argument outside [0, count). *)

val gcc_name : t -> string
(** ["-f" ^ name]. *)
