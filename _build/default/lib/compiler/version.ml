type t = {
  config : Optconfig.t;
  machine : Peak_machine.Machine.t;
  block_cycles : float array;
  workloads : Peak_machine.Cost.workload array;
}

let compile machine ts config =
  let workloads = Effects.optimize machine ts config in
  let block_cycles = Array.map (Peak_machine.Cost.cycles machine) workloads in
  { config; machine; block_cycles; workloads }

let invocation_cycles t ~counts =
  if Array.length counts <> Array.length t.block_cycles then
    invalid_arg "Version.invocation_cycles: block count mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (float_of_int c *. t.block_cycles.(i))) counts;
  !acc

let compare_speed a b ~counts =
  invocation_cycles a ~counts /. invocation_cycles b ~counts
