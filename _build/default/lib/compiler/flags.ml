(** The 38 optimization flags implied by GCC 3.3 [-O3].

    The paper's search space (Section 5.2) is exactly this flag set: the
    options [-O3] turns on, which Iterative Elimination prunes one by
    one.  Names and optimization levels follow the GCC 3.3 manual; the
    behavioural model for each flag lives in {!Effects}. *)

type t = {
  index : int;
  name : string;
  level : int;  (** Lowest -O level that enables the flag. *)
  description : string;
}

let specs =
  [|
    (* -O1 *)
    ("defer-pop", 1, "accumulate function-argument pops");
    ("merge-constants", 1, "merge identical constants across units");
    ("thread-jumps", 1, "thread jumps to jumps");
    ("loop-optimize", 1, "loop strength/invariant optimizations");
    ("if-conversion", 1, "convert conditionals to branchless code");
    ("if-conversion2", 1, "if-conversion using condition codes");
    ("delayed-branch", 1, "fill delay slots (delay-slot targets)");
    ("guess-branch-probability", 1, "static branch prediction");
    ("cprop-registers", 1, "register copy propagation");
    ("omit-frame-pointer", 1, "free the frame-pointer register");
    (* -O2 *)
    ("force-mem", 2, "copy memory operands into registers first");
    ("optimize-sibling-calls", 2, "tail/sibling call optimization");
    ("strength-reduce", 2, "loop strength reduction");
    ("cse-follow-jumps", 2, "CSE across jumps");
    ("cse-skip-blocks", 2, "CSE skipping blocks");
    ("gcse", 2, "global common subexpression elimination");
    ("gcse-lm", 2, "GCSE load motion");
    ("gcse-sm", 2, "GCSE store motion");
    ("rerun-cse-after-loop", 2, "re-run CSE after loop optimization");
    ("rerun-loop-opt", 2, "re-run the loop optimizer");
    ("expensive-optimizations", 2, "enable costly minor optimizations");
    ("schedule-insns", 2, "instruction scheduling before reg-alloc");
    ("schedule-insns2", 2, "instruction scheduling after reg-alloc");
    ("sched-interblock", 2, "scheduling across basic blocks");
    ("sched-spec", 2, "speculative scheduling of loads");
    ("regmove", 2, "register move coalescing");
    ("strict-aliasing", 2, "type-based alias disambiguation");
    ("delete-null-pointer-checks", 2, "remove provably-redundant null checks");
    ("reorder-blocks", 2, "basic-block layout by predicted frequency");
    ("reorder-functions", 2, "function layout by hot/cold sections");
    ("align-functions", 2, "align function entries");
    ("align-jumps", 2, "align branch targets");
    ("align-loops", 2, "align loop headers");
    ("align-labels", 2, "align all labels");
    ("caller-saves", 2, "allocate call-crossing values to caller-saved regs");
    ("peephole2", 2, "RTL peephole optimizations");
    (* -O3 *)
    ("inline-functions", 3, "inline functions judged small enough");
    ("rename-registers", 3, "rename registers to break false dependences");
  |]

let all =
  Array.mapi
    (fun index (name, level, description) -> { index; name; level; description })
    specs

let count = Array.length all

let () = assert (count = 38)

let by_name name = Array.to_seq all |> Seq.find (fun f -> f.name = name)

let by_index i =
  if i < 0 || i >= count then invalid_arg "Flags.by_index" else all.(i)

let gcc_name f = "-f" ^ f.name
