(** Code versions.

    "We call the generated code for a TS under one set of optimization
    options one version" (Section 4.1).  A version here is the per-block
    cycle table produced by pricing the flag-transformed workloads on a
    machine description.  Timing an invocation is then a dot product with
    the interpreter's block-entry counts — cache and noise terms are
    added by the execution harness. *)

type t = {
  config : Optconfig.t;
  machine : Peak_machine.Machine.t;
  block_cycles : float array;  (** Cycles per entry, by CFG block id. *)
  workloads : Peak_machine.Cost.workload array;
}

val compile : Peak_machine.Machine.t -> Peak_ir.Features.ts -> Optconfig.t -> t
(** Deterministic: equal inputs produce equal versions. *)

val invocation_cycles : t -> counts:int array -> float
(** [Σ_b counts(b) · cycles(b)] — Eq. 1 of the paper with the version's
    block times.  @raise Invalid_argument on a count/block mismatch. *)

val compare_speed : t -> t -> counts:int array -> float
(** Ratio [time(first) / time(second)] on the given workload counts;
    > 1 means the second version is faster. *)
