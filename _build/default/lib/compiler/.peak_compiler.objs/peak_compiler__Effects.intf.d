lib/compiler/effects.mli: Optconfig Peak_ir Peak_machine
