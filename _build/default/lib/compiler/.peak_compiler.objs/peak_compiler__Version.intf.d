lib/compiler/version.mli: Optconfig Peak_ir Peak_machine
