lib/compiler/effects.ml: Array Cost Flags Float List Machine Optconfig Peak_ir Peak_machine
