lib/compiler/optconfig.ml: Array Flags Format Int List String
