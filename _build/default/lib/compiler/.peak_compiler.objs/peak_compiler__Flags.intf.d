lib/compiler/flags.mli:
