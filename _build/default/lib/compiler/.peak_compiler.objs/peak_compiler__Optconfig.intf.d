lib/compiler/optconfig.mli: Flags Format
