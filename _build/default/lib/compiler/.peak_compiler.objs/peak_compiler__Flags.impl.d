lib/compiler/flags.ml: Array Seq
