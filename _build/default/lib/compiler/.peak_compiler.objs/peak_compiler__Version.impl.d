lib/compiler/version.ml: Array Effects Optconfig Peak_machine
