type access = { base : string; bytes : int; touches : int }

type entry = { name : string; mutable size : int; mutable stamp : int }

type t = {
  machine : Machine.t;
  capacity : int;
  rng : Peak_util.Rng.t option;
  mutable entries : entry list;
  mutable clock : int;
}

let create ?rng (machine : Machine.t) =
  { machine; capacity = machine.l2_bytes; rng; entries = []; clock = 0 }

let flush t = t.entries <- []

let is_resident t name = List.exists (fun e -> e.name = name) t.entries

let resident_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 t.entries

let evict_to_capacity t =
  let rec go () =
    if resident_bytes t > t.capacity then begin
      match t.entries with
      | [] -> ()
      | _ ->
          (* evict least recently stamped *)
          let lru =
            List.fold_left (fun acc e -> if e.stamp < acc.stamp then e else acc)
              (List.hd t.entries) t.entries
          in
          t.entries <- List.filter (fun e -> e != lru) t.entries;
          go ()
    end
  in
  go ()

let touch t (a : access) =
  t.clock <- t.clock + 1;
  let cached_bytes = min a.bytes t.capacity in
  (match List.find_opt (fun e -> e.name = a.base) t.entries with
  | Some e ->
      e.stamp <- t.clock;
      e.size <- max e.size cached_bytes
  | None -> t.entries <- { name = a.base; size = cached_bytes; stamp = t.clock } :: t.entries);
  evict_to_capacity t

(* Miss lines charged for one invocation's traffic on one array. *)
let miss_lines t (a : access) ~resident =
  let line = t.machine.l2_line in
  let lines_touched = max 1 ((a.bytes + line - 1) / line) in
  let cold = if resident then 0.0 else float_of_int (min lines_touched a.touches) in
  let capacity =
    if a.bytes <= t.capacity then 0.0
    else begin
      (* each line holds line/8 elements; on a streaming pass over an
         array larger than the cache, the uncached fraction of lines
         misses on every revisit *)
      let uncached_fraction = 1.0 -. (float_of_int t.capacity /. float_of_int a.bytes) in
      let elems_per_line = float_of_int (line / 8) in
      let base = float_of_int a.touches /. elems_per_line *. uncached_fraction in
      match t.rng with
      | None -> base
      | Some rng ->
          (* conflict placement varies run to run at this granularity *)
          base *. Float.max 0.2 (Peak_util.Rng.gaussian rng ~mean:1.0 ~stddev:0.25)
    end
  in
  cold +. capacity

let charge t accesses =
  let miss_cost = t.machine.mem_cycles -. t.machine.l1_hit_cycles in
  List.fold_left
    (fun acc a ->
      if a.touches <= 0 || a.bytes <= 0 then acc
      else begin
        let resident = is_resident t a.base in
        let cost = miss_lines t a ~resident *. miss_cost in
        touch t a;
        acc +. cost
      end)
    0.0 accesses

let warm t accesses =
  List.iter (fun a -> if a.touches > 0 && a.bytes > 0 then touch t a) accesses
