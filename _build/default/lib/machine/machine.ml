(** Machine descriptions.

    The paper evaluates on a SPARC II and a Pentium IV; the decisive
    architectural difference it discusses (Section 5.2) is the register
    file: the Pentium IV's 8 general-purpose registers make it intolerant
    of the register pressure that strict aliasing induces, while the
    SPARC's windowed file absorbs it.  These descriptions capture that
    plus the cache hierarchy and operation latencies the cost model
    prices against. *)

type t = {
  name : string;
  clock_ghz : float;
  int_registers : int;
  fp_registers : int;
  l1_bytes : int;
  l1_line : int;
  l1_assoc : int;
  l1_hit_cycles : float;
  l2_bytes : int;
  l2_line : int;
  l2_assoc : int;
  l2_hit_cycles : float;
  mem_cycles : float;  (** Main-memory access latency. *)
  branch_penalty : float;  (** Misprediction cost in cycles. *)
  alu_cycles : float;
  muldiv_cycles : float;
  transcendental_cycles : float;
  issue_width : int;  (** Superscalar issue slots per cycle. *)
  noise_sigma : float;  (** Relative measurement noise (σ/mean). *)
  spike_probability : float;  (** Chance of an interrupt-like outlier. *)
}

(* 450 MHz UltraSPARC II: modest clock, short pipeline (cheap branches),
   register windows modeled as a large effective register file, 4 MB
   off-chip L2. *)
let sparc2 =
  {
    name = "SPARC II";
    clock_ghz = 0.45;
    int_registers = 24;
    fp_registers = 32;
    l1_bytes = 16 * 1024;
    l1_line = 32;
    l1_assoc = 1;
    l1_hit_cycles = 1.0;
    l2_bytes = 4 * 1024 * 1024;
    l2_line = 64;
    l2_assoc = 1;
    l2_hit_cycles = 10.0;
    mem_cycles = 80.0;
    branch_penalty = 4.0;
    alu_cycles = 1.0;
    muldiv_cycles = 6.0;
    transcendental_cycles = 22.0;
    issue_width = 2;
    noise_sigma = 0.008;
    spike_probability = 0.004;
  }

(* 2 GHz Pentium 4: deep pipeline (expensive branch misses), 8 GPRs /
   8 x87-style FP registers, small fast L1, 512 KB L2. *)
let pentium4 =
  {
    name = "Pentium IV";
    clock_ghz = 2.0;
    int_registers = 8;
    fp_registers = 8;
    l1_bytes = 8 * 1024;
    l1_line = 64;
    l1_assoc = 4;
    l1_hit_cycles = 2.0;
    l2_bytes = 512 * 1024;
    l2_line = 64;
    l2_assoc = 8;
    l2_hit_cycles = 18.0;
    mem_cycles = 200.0;
    branch_penalty = 20.0;
    alu_cycles = 0.5;
    muldiv_cycles = 4.0;
    transcendental_cycles = 40.0;
    issue_width = 3;
    noise_sigma = 0.012;
    spike_probability = 0.006;
  }

let all = [ sparc2; pentium4 ]

let by_name name =
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii name) all

let seconds_of_cycles t cycles = cycles /. (t.clock_ghz *. 1e9)
