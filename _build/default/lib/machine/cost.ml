type workload = {
  alu : float;
  muldiv : float;
  transcendental : float;
  mem : float;
  spill_mem : float;
  branches : float;
  mispredict_rate : float;
  ilp : float;
  overhead : float;
}

let zero =
  {
    alu = 0.0;
    muldiv = 0.0;
    transcendental = 0.0;
    mem = 0.0;
    spill_mem = 0.0;
    branches = 0.0;
    mispredict_rate = 0.0;
    ilp = 1.0;
    overhead = 0.0;
  }

let cycles (m : Machine.t) w =
  let ilp = Float.max 1.0 (Float.min w.ilp (float_of_int m.issue_width)) in
  let compute =
    ((w.alu *. m.alu_cycles) +. (w.muldiv *. m.muldiv_cycles)
    +. (w.transcendental *. m.transcendental_cycles))
    /. ilp
  in
  let memory = (w.mem +. (2.0 *. w.spill_mem)) *. m.l1_hit_cycles in
  let branch = w.branches *. (1.0 +. (w.mispredict_rate *. m.branch_penalty)) in
  Float.max 0.01 (compute +. memory +. branch +. w.overhead)

let of_features (b : Peak_ir.Features.block) =
  {
    alu = float_of_int b.alu;
    muldiv = float_of_int b.muldiv;
    transcendental = float_of_int b.transcendental;
    mem = float_of_int (b.mem_read + b.mem_write);
    spill_mem = 0.0;
    branches = (if b.has_branch then 1.0 else 0.0);
    mispredict_rate =
      (if not b.has_branch then 0.0 else if b.is_loop_header then 0.03 else 0.18);
    ilp = 1.0;
    overhead = 0.5;
  }
