(** Measurement-noise model.

    Real timing measurements carry two kinds of perturbation the paper's
    harness must survive: small multiplicative jitter (pipeline and
    memory nondeterminism) and rare large additive spikes from
    interrupts and other system activity — the "measurement outliers"
    Section 3's rating engine detects and eliminates.  Both are injected
    here, deterministically under the experiment seed. *)

type t

val create : rng:Peak_util.Rng.t -> Machine.t -> t

val apply : t -> float -> float
(** Perturb a cycle count.  The result is always positive and, absent a
    spike, within a few σ of the input. *)

val spike_free : t -> float -> float
(** Jitter only, never a spike (used by tests that need bounded noise). *)

val effective_sigma : t -> float -> float
(** The relative jitter applied to a section of the given cycle count;
    grows for short sections (timer-granularity floor), matching the
    paper's observation that small tuning sections measure noisier. *)
