(** Set-associative LRU cache simulator.

    A faithful address-level cache used for two purposes: validating the
    coarser residency model ({!Memsys}) that the invocation-granularity
    cost model uses, and the RBR preconditioning ablation, where the
    difference between a cold and a warmed cache is exactly what the
    improved RBR method of Section 2.4.2 exists to cancel. *)

type t

val create : size_bytes:int -> line_bytes:int -> assoc:int -> t
(** @raise Invalid_argument unless all parameters are positive, the line
    size divides the total size, and the set count is at least one. *)

type outcome = Hit | Miss

val access : t -> int -> outcome
(** Access the byte address; loads the line on miss and updates LRU. *)

val flush : t -> unit

val stats : t -> int * int
(** (hits, misses) since creation or the last [reset_stats]. *)

val reset_stats : t -> unit

val miss_rate : t -> float
(** Misses / accesses; 0 when no accesses. *)

val lines : t -> int
val sets : t -> int
