open Peak_util

type t = { rng : Rng.t; sigma : float; spike_p : float }

let create ~rng (machine : Machine.t) =
  { rng; sigma = machine.noise_sigma; spike_p = machine.spike_probability }

(* Relative jitter grows as sections shrink: timer granularity, pipeline
   warmup and interference are fixed absolute costs, so a section of a
   few hundred cycles measures far noisier than a long stencil sweep —
   the paper's "small tuning sections exhibit more measurement
   variation" (Section 5.1). *)
let timer_floor = 25.0

let effective_sigma t cycles =
  t.sigma *. (1.0 +. (timer_floor /. sqrt (Float.max 1.0 cycles)))

let spike_free t cycles =
  let factor = Rng.gaussian t.rng ~mean:1.0 ~stddev:(effective_sigma t cycles) in
  cycles *. Float.max 0.5 factor

let apply t cycles =
  let jittered = spike_free t cycles in
  if Rng.float t.rng < t.spike_p then
    (* interrupt-like perturbation: several times the section's own cost *)
    jittered +. Rng.exponential t.rng ~rate:(1.0 /. (4.0 *. Float.max cycles 1.0))
  else jittered
