(** Machine descriptions.

    The paper evaluates on a SPARC II and a Pentium IV; the decisive
    architectural difference it discusses (Section 5.2) is the register
    file: the Pentium IV's 8 general-purpose registers make it intolerant
    of the register pressure that strict aliasing induces, while the
    SPARC's windowed file absorbs it.  These descriptions capture that
    plus the cache hierarchy, operation latencies and measurement-noise
    characteristics the cost and noise models price against. *)

type t = {
  name : string;
  clock_ghz : float;
  int_registers : int;
  fp_registers : int;
  l1_bytes : int;
  l1_line : int;
  l1_assoc : int;
  l1_hit_cycles : float;
  l2_bytes : int;
  l2_line : int;
  l2_assoc : int;
  l2_hit_cycles : float;
  mem_cycles : float;  (** Main-memory access latency. *)
  branch_penalty : float;  (** Misprediction cost in cycles. *)
  alu_cycles : float;
  muldiv_cycles : float;
  transcendental_cycles : float;
  issue_width : int;  (** Superscalar issue slots per cycle. *)
  noise_sigma : float;  (** Relative measurement noise (σ/mean). *)
  spike_probability : float;  (** Chance of an interrupt-like outlier. *)
}

val sparc2 : t
(** 450 MHz UltraSPARC II: modest clock, short pipeline, register
    windows (large effective register file), 4 MB off-chip L2. *)

val pentium4 : t
(** 2 GHz Pentium 4: deep pipeline, 8 general-purpose registers, small
    fast L1, 512 KB L2. *)

val all : t list

val by_name : string -> t option
(** Case-insensitive lookup by the display name. *)

val seconds_of_cycles : t -> float -> float
