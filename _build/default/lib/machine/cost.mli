(** Cycle pricing of optimized block workloads.

    The compiler substrate lowers each basic block, under a given flag
    configuration, to a {!workload}: dynamic operation mix per block
    entry plus scheduling quality (ILP), branch predictability, and
    register-spill traffic.  This module converts a workload into cycles
    per block entry on a machine description.  Memory operations are
    priced at the L1-hit latency; cache misses are charged separately per
    invocation by {!Memsys}. *)

type workload = {
  alu : float;
  muldiv : float;
  transcendental : float;
  mem : float;  (** Loads/stores per entry. *)
  spill_mem : float;  (** Additional spill loads/stores per entry. *)
  branches : float;  (** Conditional branches per entry (0 or 1 here). *)
  mispredict_rate : float;
  ilp : float;  (** Effective instruction-level parallelism, >= 1. *)
  overhead : float;  (** Fixed per-entry cycles (call/loop bookkeeping). *)
}

val zero : workload

val cycles : Machine.t -> workload -> float
(** Cycles per block entry; always >= a small positive epsilon so that
    timing ratios stay well-defined. *)

val of_features : Peak_ir.Features.block -> workload
(** Baseline (unoptimized) workload of a block: every static operation
    executes, no spills, ILP 1, loop-header branches predict well and
    data-dependent branches poorly. *)
