type t = {
  line_bytes : int;
  n_sets : int;
  assoc : int;
  (* tags.(set).(way); -1 = invalid.  age.(set).(way): higher = more
     recently used. *)
  tags : int array array;
  ages : int array array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome = Hit | Miss

let create ~size_bytes ~line_bytes ~assoc =
  if size_bytes <= 0 || line_bytes <= 0 || assoc <= 0 then
    invalid_arg "Cache.create: nonpositive parameter";
  if size_bytes mod line_bytes <> 0 then invalid_arg "Cache.create: line must divide size";
  let n_lines = size_bytes / line_bytes in
  if n_lines mod assoc <> 0 then invalid_arg "Cache.create: assoc must divide line count";
  let n_sets = n_lines / assoc in
  {
    line_bytes;
    n_sets;
    assoc;
    tags = Array.init n_sets (fun _ -> Array.make assoc (-1));
    ages = Array.init n_sets (fun _ -> Array.make assoc 0);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  if addr < 0 then invalid_arg "Cache.access: negative address";
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.n_sets in
  let tag = line / t.n_sets in
  let tags = t.tags.(set) and ages = t.ages.(set) in
  let hit_way = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if tags.(w) = tag then hit_way := w
  done;
  if !hit_way >= 0 then begin
    ages.(!hit_way) <- t.clock;
    t.hits <- t.hits + 1;
    Hit
  end
  else begin
    (* victim: invalid way if any, else least recently used *)
    let victim = ref 0 in
    for w = 0 to t.assoc - 1 do
      if tags.(w) = -1 && tags.(!victim) <> -1 then victim := w
      else if tags.(w) <> -1 && tags.(!victim) <> -1 && ages.(w) < ages.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    ages.(!victim) <- t.clock;
    t.misses <- t.misses + 1;
    Miss
  end

let flush t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.tags

let stats t = (t.hits, t.misses)

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let lines t = t.n_sets * t.assoc
let sets t = t.n_sets
