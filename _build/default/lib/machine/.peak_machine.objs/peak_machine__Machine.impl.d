lib/machine/machine.ml: List String
