lib/machine/noise.ml: Float Machine Peak_util Rng
