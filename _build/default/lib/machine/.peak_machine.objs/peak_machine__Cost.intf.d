lib/machine/cost.mli: Machine Peak_ir
