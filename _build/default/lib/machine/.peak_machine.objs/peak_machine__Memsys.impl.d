lib/machine/memsys.ml: Float List Machine Peak_util
