lib/machine/cost.ml: Float Machine Peak_ir
