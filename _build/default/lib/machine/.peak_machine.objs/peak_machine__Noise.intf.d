lib/machine/noise.mli: Machine Peak_util
