lib/machine/memsys.mli: Machine Peak_util
