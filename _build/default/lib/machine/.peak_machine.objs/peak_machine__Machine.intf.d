lib/machine/machine.mli:
