lib/machine/cache.mli:
