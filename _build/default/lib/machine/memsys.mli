(** Invocation-granularity memory-system model.

    Running the interpreter per code version would make Figure-7-scale
    sweeps intractable, so version timing works from per-invocation
    access summaries.  This module keeps cache state at array granularity
    — an LRU set of resident arrays bounded by the machine's L2 capacity
    — and converts an invocation's array footprints into extra cycles
    beyond the L1-hit baseline already priced into block costs.  Cold
    arrays charge one miss per touched line; arrays larger than the cache
    additionally charge capacity misses on a line-reuse model.  The
    address-level {!Cache} simulator validates this model in the tests.

    This is the state the improved RBR method manipulates: its
    preconditioning execution calls {!warm} so that both timed versions
    observe a warm cache (Section 2.4.2), while basic RBR lets the first
    timed version pay the cold misses. *)

type t

(** Footprint of one invocation on one array. *)
type access = {
  base : string;  (** Array (or pointer pointee) name. *)
  bytes : int;  (** Extent touched. *)
  touches : int;  (** Dynamic access count. *)
}

val create : ?rng:Peak_util.Rng.t -> Machine.t -> t
(** With [rng], capacity-miss traffic carries multiplicative jitter
    (conflict placement the array-granularity model cannot track) — the
    source of the comparatively noisy ratings of large-footprint sections
    like EQUAKE's smvp (paper Section 5.1).  Cold misses stay exact. *)

val flush : t -> unit
(** Empty the residency set (e.g. simulating a context switch or the gap
    between whole-program runs). *)

val charge : t -> access list -> float
(** Extra cycles for the invocation's misses; updates residency. *)

val warm : t -> access list -> unit
(** Update residency as [charge] would, without reporting cost — the
    preconditioning run's effect. *)

val is_resident : t -> string -> bool
val resident_bytes : t -> int
