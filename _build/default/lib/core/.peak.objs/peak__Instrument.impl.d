lib/core/instrument.ml: Buffer Component_analysis Consultant Expr List Liveness Loc Peak_ir Pretty Printf Profile String Tsection Types
