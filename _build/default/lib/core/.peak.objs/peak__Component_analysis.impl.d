lib/core/component_analysis.ml: Array List Matrix Peak_util Regression Stats
