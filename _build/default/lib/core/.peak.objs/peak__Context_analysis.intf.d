lib/core/context_analysis.mli: Peak_ir Tsection
