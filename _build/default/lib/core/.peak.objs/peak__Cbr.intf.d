lib/core/cbr.mli: Peak_compiler Peak_ir Rating Runner
