lib/core/mbr.mli: Component_analysis Peak_compiler Rating Runner
