lib/core/whl.mli: Peak_compiler Rating Runner
