lib/core/instrument.mli: Consultant Profile Tsection
