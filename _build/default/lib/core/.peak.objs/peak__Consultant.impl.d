lib/core/consultant.ml: Component_analysis Float List Option Printf Profile Tsection
