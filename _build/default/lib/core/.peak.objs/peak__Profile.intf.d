lib/core/profile.mli: Component_analysis Peak_ir Peak_machine Peak_workload Tsection
