lib/core/avg.mli: Peak_compiler Rating Runner
