lib/core/driver.mli: Consultant Optimizer Peak_compiler Peak_machine Peak_workload Profile Rating Search Tsection
