lib/core/rbr.mli: Peak_compiler Rating Runner
