lib/core/partitioner.ml: Benchmark Driver Float List Peak_compiler Peak_machine Peak_workload Profile Program Runner Trace Tsection
