lib/core/partitioner.mli: Driver Peak_machine Peak_workload Profile Tsection
