lib/core/consistency.ml: Array Benchmark Cbr Consultant Driver List Mbr Optconfig Peak_compiler Peak_util Peak_workload Printf Profile Rating Rbr Runner Stats Trace Tsection Version
