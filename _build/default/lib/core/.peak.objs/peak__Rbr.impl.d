lib/core/rbr.ml: Array List Option Rating Runner
