lib/core/cbr.ml: Hashtbl Option Rating Runner
