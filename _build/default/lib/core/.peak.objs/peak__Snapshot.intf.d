lib/core/snapshot.mli: Peak_ir Tsection
