lib/core/optimizer.mli: Peak_compiler Peak_machine
