lib/core/search.ml: Array Flags List Optconfig Peak_compiler Peak_util
