lib/core/consultant.mli: Profile Tsection
