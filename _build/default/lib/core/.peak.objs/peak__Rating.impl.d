lib/core/rating.ml: Array Float Peak_util Stats
