lib/core/runner.mli: Peak_compiler Peak_ir Peak_machine Peak_workload Tsection
