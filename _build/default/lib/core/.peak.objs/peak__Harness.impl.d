lib/core/harness.ml: Cbr Consultant List Mbr Profile Rating Rbr
