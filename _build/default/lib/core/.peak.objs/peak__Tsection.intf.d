lib/core/tsection.mli: Cfg Defuse Features Liveness Peak_ir Pointsto Types
