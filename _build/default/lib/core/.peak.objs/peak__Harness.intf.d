lib/core/harness.mli: Consultant Peak_compiler Profile Rating Runner
