lib/core/component_analysis.mli:
