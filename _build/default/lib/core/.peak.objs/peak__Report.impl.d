lib/core/report.ml: Benchmark Component_analysis Consultant Driver List Peak_workload Profile Search Trace Tsection
