lib/core/rating.mli:
