lib/core/whl.ml: Rating Runner
