lib/core/mbr.ml: Array Component_analysis List Option Peak_util Rating Runner
