lib/core/context_analysis.ml: Array Cfg Defuse Expr Hashtbl List Liveness Loc Peak_ir Pointsto Printf Tsection Types
