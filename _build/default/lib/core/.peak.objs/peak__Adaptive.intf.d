lib/core/adaptive.mli: Peak_compiler Peak_machine Peak_workload Tsection
