lib/core/avg.ml: Option Rating Runner
