lib/core/optimizer.ml: Float Hashtbl Optconfig Peak_compiler Peak_machine
