lib/core/search.mli: Peak_compiler Peak_util
