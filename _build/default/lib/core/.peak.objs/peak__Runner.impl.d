lib/core/runner.ml: Array Hashtbl Interp List Machine Memsys Noise Peak_compiler Peak_ir Peak_machine Peak_util Peak_workload Rng Snapshot Trace Tsection
