lib/core/snapshot.ml: Array Hashtbl Interp List Liveness Loc Peak_ir Tsection
