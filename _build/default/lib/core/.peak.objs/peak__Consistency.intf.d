lib/core/consistency.mli: Driver Peak_machine Peak_workload
