lib/core/tsection.ml: Array Cfg Defuse Features Liveness Peak_ir Pointsto Types
