lib/core/profile.ml: Array Component_analysis Context_analysis Expr Float Hashtbl List Optconfig Option Peak_compiler Peak_ir Peak_util Peak_workload Runner Trace Tsection Version
