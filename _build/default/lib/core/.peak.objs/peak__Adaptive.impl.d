lib/core/adaptive.ml: Context_analysis Float Hashtbl List Optconfig Peak_compiler Peak_ir Peak_machine Peak_util Peak_workload Runner Stats Trace Tsection Version
