lib/core/report.mli: Driver Peak_machine Peak_workload
