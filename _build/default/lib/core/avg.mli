(** The AVG strawman (Section 5.2): average invocation times regardless
    of context.  Cheap but unfair when the context mix drifts — the
    baseline the paper's three rating methods are measured against. *)

val rate : ?params:Rating.params -> Runner.t -> Peak_compiler.Version.t -> Rating.t
