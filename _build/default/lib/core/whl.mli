(** The WHL baseline (Section 5.2): whole-program rating.  One rating =
    one full pass over the trace; the EVAL is the whole run's time
    including the program's non-TS portion. *)

val rate :
  Runner.t -> non_ts_cycles:float -> Peak_compiler.Version.t -> Rating.t
