(** The AVG strawman (Section 5.2).

    "AVG simply takes the timing average of a number of invocations,
    regardless of the TS's context."  Cheap, but the sample's context mix
    depends on where in the program the window lands, so two versions
    can be compared on different workloads — the unfairness the three
    real rating methods exist to prevent.  Included as the paper's
    baseline. *)

let rate ?(params = Rating.default_params) runner version =
  let samples = ref [] in
  let consumed = ref 0 in
  let result = ref None in
  while !result = None do
    let added = ref 0 in
    while !added < params.Rating.window && !consumed < params.Rating.max_invocations do
      let s = Runner.step runner version in
      incr consumed;
      incr added;
      samples := s.Runner.time :: !samples
    done;
    let eval, var, n, converged = Rating.summarize ~params !samples in
    (* AVG ships after one window regardless of convergence when the mix
       is unstable, mirroring its naive usage; it still reports the
       convergence flag honestly. *)
    if converged || !consumed >= params.Rating.max_invocations || !consumed >= 4 * params.Rating.window
    then result := Some { Rating.eval; var; samples = n; invocations = !consumed; converged }
  done;
  Option.get !result
