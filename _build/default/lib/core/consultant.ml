(** The Rating Approach Consultant (Sections 3 and 4.2).

    Decides, per tuning section, which rating methods are applicable and
    which to try first:

    - {b CBR} needs the Figure-1 analysis to succeed and the number of
      observed contexts to stay small ("to keep the number of contexts
      reasonable", Section 2.2);
    - {b MBR} needs the component model to stay small, or the regression
      would demand too many invocations (Section 2.3);
    - {b RBR} is applicable to almost everything — only sections calling
      side-effecting externals are excluded (Section 2.4.1).

    The initial choice follows the paper's preference order CBR, MBR,
    RBR; the estimated invocations-per-rating of each applicable method
    are reported so tuning-time discussions (Figure 7 c/d) can refer to
    them.  At tuning time the harness falls back along the applicable
    list if the chosen method fails to converge. *)

type method_kind = Cbr | Mbr | Rbr

let method_name = function Cbr -> "CBR" | Mbr -> "MBR" | Rbr -> "RBR"

type advice = {
  applicable : method_kind list;  (** In preference order. *)
  chosen : method_kind;
  n_contexts : int option;
  dominant_share : float option;
  n_components : int;
  estimates : (method_kind * float) list;
      (** Estimated invocations consumed per version rating. *)
  reasons : string list;  (** Why methods were excluded. *)
}

let default_max_contexts = 4
let default_max_components = 5

(* Time factor of one RBR invocation relative to a plain one: the two
   timed executions, the preconditioning run, and the copies. *)
let rbr_cost_factor = 2.8

let advise ?(max_contexts = default_max_contexts) ?(max_components = default_max_components)
    ?(window = 40) tsec (profile : Profile.t) =
  let reasons = ref [] in
  let note fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  let n_components = Component_analysis.n_components profile.Profile.components in
  let cbr_ok =
    match profile.Profile.context with
    | Profile.Cbr_no reason ->
        note "CBR: %s" reason;
        false
    | Profile.Cbr_ok { stats; _ } ->
        let n = List.length stats in
        if n > max_contexts then begin
          note "CBR: %d contexts exceed the limit of %d" n max_contexts;
          false
        end
        else true
  in
  let mbr_ok =
    if n_components > max_components then begin
      note "MBR: %d components exceed the limit of %d" n_components max_components;
      false
    end
    else true
  in
  let rbr_ok =
    if profile.Profile.impure_calls then begin
      note "RBR: tuning section calls side-effecting externals";
      false
    end
    else true
  in
  let applicable =
    List.filter_map
      (fun (ok, m) -> if ok then Some m else None)
      [ (cbr_ok, Cbr); (mbr_ok, Mbr); (rbr_ok, Rbr) ]
  in
  if applicable = [] then
    invalid_arg
      (Printf.sprintf "Consultant.advise: no applicable rating method for %s"
         (Tsection.name tsec));
  let w = float_of_int window in
  let estimates =
    List.filter_map
      (fun m ->
        match m with
        | Cbr ->
            Option.map
              (fun share -> (Cbr, w /. Float.max 0.01 share))
              (Profile.dominant_share profile)
        | Mbr -> Some (Mbr, Float.max w (3.0 *. float_of_int n_components))
        | Rbr -> Some (Rbr, w *. rbr_cost_factor))
      applicable
  in
  {
    applicable;
    chosen = List.hd applicable;
    n_contexts = Profile.n_contexts profile;
    dominant_share = Profile.dominant_share profile;
    n_components;
    estimates;
    reasons = List.rev !reasons;
  }
