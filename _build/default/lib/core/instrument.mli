(** The PEAK Instrumentation Tool's output (Sections 3 and 4.2, step 3).

    At compile time PEAK performs five insertions around each tuning
    section: (1) save/restore and precondition code for RBR, (2) context
    variable capture for CBR, (3) counters and the performance model for
    MBR, (4) execution timing that triggers the rating, and (5) the
    activation hook in the main program.  This module renders the
    instrumented section as annotated pseudo-C — the file the paper's
    tool would hand to the backend compiler — driven by the real
    analyses: the save/restore list comes from liveness and range
    analysis, the context variables from the Figure-1 analysis, and the
    counter placement from the profiled component model. *)

val render : Tsection.t -> Profile.t -> Consultant.advice -> string
(** Annotated pseudo-C of the instrumented tuning section. *)
