open Peak_compiler

type mode = Local | Remote

type t = {
  mode : mode;
  compile_cycles : float;
  (* per config: the simulated time its compile finishes (Remote) or
     [neg_infinity] marker for already-built (Local after stall) *)
  ready_at : (Optconfig.t, float) Hashtbl.t;
  mutable server_free_at : float;  (** Remote server availability. *)
  mutable compiles : int;
}

let create ?(compile_seconds = 0.002) mode (machine : Peak_machine.Machine.t) =
  {
    mode;
    compile_cycles = compile_seconds *. machine.Peak_machine.Machine.clock_ghz *. 1e9;
    ready_at = Hashtbl.create 64;
    server_free_at = 0.0;
    compiles = 0;
  }

let request t ~now config =
  if not (Hashtbl.mem t.ready_at config) then begin
    match t.mode with
    | Local ->
        (* intent only; the stall happens when the version is needed *)
        Hashtbl.replace t.ready_at config infinity
    | Remote ->
        let start = Float.max now t.server_free_at in
        let finish = start +. t.compile_cycles in
        t.server_free_at <- finish;
        t.compiles <- t.compiles + 1;
        Hashtbl.replace t.ready_at config finish
  end

let stall_for t ~now config =
  request t ~now config;
  match Hashtbl.find_opt t.ready_at config with
  | Some ready when ready = infinity ->
      (* Local: compile right now, blocking *)
      t.compiles <- t.compiles + 1;
      Hashtbl.replace t.ready_at config now;
      t.compile_cycles
  | Some ready -> Float.max 0.0 (ready -. now)
  | None -> 0.0

let compiles t = t.compiles

let total_compile_cycles t = float_of_int t.compiles *. t.compile_cycles
