(** The WHL baseline (Section 5.2): whole-program rating.

    "WHL averages the TS's execution times over the entire application
    ... The chief disadvantage of WHL is extremely long tuning times,
    because every trial needs a full application run."  One rating = one
    full pass over the trace (plus the program's non-TS time, charged to
    the tuning ledger), and the EVAL is the whole run's time. *)

(* The pass's non-TS time is part of the EVAL (a whole-program run) but
   is charged to the tuning ledger by the driver's per-pass accounting,
   not here, so WHL and the windowed methods are charged uniformly. *)
let rate runner ~non_ts_cycles version =
  let ts_cycles = Runner.run_full_pass runner version in
  {
    Rating.eval = ts_cycles +. non_ts_cycles;
    var = 0.0;
    samples = 1;
    invocations = 0;
    converged = true;
  }
