(** The offline profile run (Section 3).

    "For off-line tuning, our compiler chooses the appropriate rating
    method by doing a profile run using the tuning input."  One pass over
    the train trace under the [-O3] version gathers everything the
    consultant and the raters need: the observed contexts and their time
    shares (CBR), the block-count samples and component model (MBR), the
    average invocation cost, and the per-pass totals used for tuning-time
    accounting. *)

type context_stat = {
  values : float array;  (** The context variables' values. *)
  count : int;
  time_share : float;  (** Fraction of TS time spent under this context. *)
}

type context_info =
  | Cbr_ok of {
      sources : Peak_ir.Expr.source list;
          (** Context variables after run-time-constant pruning. *)
      stats : context_stat list;  (** Sorted by descending time share. *)
      runtime_constant_arrays : string list;
      pruned : Peak_ir.Expr.source list;  (** Dropped run-time constants. *)
    }
  | Cbr_no of string

type t = {
  n_invocations : int;
  avg_invocation_cycles : float;
  context : context_info;
  components : Component_analysis.t;
  count_samples : int array array;
  impure_calls : bool;
  block_weights : float array;  (** -O3 cycles per entry, per block. *)
  avg_component_counts : float array;
  dominant_component : int;
  ts_pass_cycles : float;  (** TS cycles in one train pass under -O3. *)
}

val run :
  ?seed:int ->
  ?max_count_samples:int ->
  Tsection.t ->
  Peak_workload.Trace.t ->
  Peak_machine.Machine.t ->
  t

val n_contexts : t -> int option
(** Number of distinct contexts, when CBR's analysis succeeded. *)

val dominant_context : t -> context_stat option
val dominant_share : t -> float option
