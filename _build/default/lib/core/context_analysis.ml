open Peak_ir

type verdict =
  | Applicable of {
      sources : Expr.source list;
      runtime_constant_arrays : string list;
    }
  | Not_applicable of string

exception Fail of string

(* The recursive GetStmtContextSet walk of Figure 1, with the paper's
   "done" marking realized as a visited set over (site, source) pairs so
   that loop-carried chains terminate. *)
let analyze (tsec : Tsection.t) ~mutated_arrays =
  let cfg = tsec.Tsection.cfg in
  let du = tsec.defuse in
  let pts = tsec.pointsto in
  let context = ref [] in
  let rt_arrays = ref [] in
  let visited = Hashtbl.create 64 in
  let add_context src = if not (List.mem src !context) then context := src :: !context in
  let add_rt_array a = if not (List.mem a !rt_arrays) then rt_arrays := a :: !rt_arrays in
  let array_is_immutable a =
    (not (Loc.Set.mem (Loc.Array a) (Liveness.def_set tsec.liveness)))
    && not (List.mem a mutated_arrays)
  in
  let rec process_source (site : Defuse.site) (src : Expr.source) =
    let key = (site, src) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      match src with
      | Expr.Scalar v -> follow_defs site (Loc.Scalar v) src
      | Expr.Array_elem (a, _) ->
          (* the element's value may come from entry (array input) or from
             stores inside the TS *)
          follow_defs site (Loc.Array a) src
      | Expr.Pointer_deref p ->
          if Pointsto.is_retargeted pts p then
            raise
              (Fail (Printf.sprintf "pointer %s is retargeted within the tuning section" p));
          (* the dereference reads the pointee scalar(s) *)
          List.iter (fun target -> follow_defs site (Loc.Scalar target) src) (Pointsto.targets pts p)
    end
  and follow_defs site loc src =
    let defs = Defuse.reaching du site loc in
    List.iter
      (fun def ->
        match def with
        | Defuse.Entry -> source_reaches_entry src
        | Defuse.At (b, i) -> process_statement b i)
      defs
  and source_reaches_entry src =
    (* "v is in Input(TS)": admit it as a context variable if scalar in
       the paper's extended sense. *)
    match src with
    | Expr.Scalar _ -> add_context src
    | Expr.Array_elem (_, Some _) -> add_context src
    | Expr.Array_elem (a, None) ->
        if array_is_immutable a then add_rt_array a
        else
          raise
            (Fail
               (Printf.sprintf
                  "control depends on varying array %s through a non-constant subscript" a))
    | Expr.Pointer_deref p ->
        if Pointsto.pointee_written pts p then
          raise (Fail (Printf.sprintf "pointee of %s is written within the tuning section" p))
        else add_context src
  and process_statement b i =
    let stmt = (Cfg.block cfg b).stmts.(i) in
    match stmt with
    | Cfg.SCall f when not (Types.is_pure_external f) ->
        raise (Fail (Printf.sprintf "control value may be defined by opaque call %s" f))
    | _ ->
        let site = Defuse.Stmt (b, i) in
        List.iter (process_source site) (Defuse.value_sources stmt)
  in
  try
    List.iter
      (fun (block_id, cond) ->
        List.iter (process_source (Defuse.Term block_id)) (Expr.sources cond))
      (Cfg.control_conditions cfg);
    Applicable { sources = List.rev !context; runtime_constant_arrays = List.rev !rt_arrays }
  with Fail reason -> Not_applicable reason
