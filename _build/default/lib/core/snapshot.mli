(** Save and restore of the RBR modified-input set.

    The re-execution method's correctness hinges on restoring exactly
    [Modified_Input(TS) = Input(TS) ∩ Def(TS)] between the two timed
    executions (paper Eq. 6): anything less and the second run sees
    clobbered inputs; anything more wastes copy time.  This module
    performs the copy concretely over interpreter environments, honouring
    the array-region analysis (only the written cells of an array are
    saved when the store subscripts are compile-time constants).

    The execution harness prices these copies but reuses interpreter
    results instead of physically re-running — an optimization licensed
    by the property test that save → run → restore → run reproduces
    identical block counts and final state. *)

type t

val save : Tsection.t -> Peak_ir.Interp.env -> t
(** Capture the modified-input locations' current values. *)

val restore : t -> Peak_ir.Interp.env -> unit
(** Write the captured values back. *)

val bytes : t -> int
(** Payload size; at most {!Liveness.save_restore_bytes}'s static bound
    (symbolic spans usually evaluate smaller). *)

val measure_bytes : Tsection.t -> Peak_ir.Interp.env -> int
(** Dynamic payload size without copying — the per-invocation cost the
    execution harness charges for RBR's save/restore. *)

val locations : t -> Peak_ir.Loc.t list
