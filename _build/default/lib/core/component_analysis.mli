(** MBR component analysis — Section 2.3.

    From a profile sample of per-invocation basic-block entry counts,
    build the execution-time model [T_TS = Σ T_i · C_i]:

    - blocks whose counts never vary go into the {e constant} component
      (the paper's [T_n] with [C_n = 1]);
    - blocks whose counts are pairwise linearly dependent across all
      sampled invocations merge into one component (the paper's
      [C_b1 = α·C_b2 + β] rule);
    - beyond the paper, components whose count vectors are linear
      combinations of already-selected components are {e folded}: their
      time is absorbed by the regression coefficients of the components
      that span them.  Without this the count matrix of a loop nest
      (whose block counts are 1, T, T², T²+T, …) is exactly singular and
      Eq. 3 has no unique solution.

    The number of independent components is the MBR applicability
    criterion the consultant checks: past a handful, the regression
    needs too many invocations to converge and MBR is rejected. *)

type t

val analyze : samples:int array array -> t
(** [samples.(j)] is the block-count vector of sampled invocation [j].
    @raise Invalid_argument on an empty or ragged sample. *)

val n_components : t -> int
(** Independent varying components + 1 (the constant component). *)

val representatives : t -> int list
(** Block id representing each independent varying component, in
    component order. *)

val folded : t -> int list
(** Representative block ids whose count vectors were linear
    combinations of the selected components. *)

val group_of : t -> int -> int option
(** [group_of t block] is the index of the merged group containing the
    block, if the block's count varies. *)

val counts : t -> int array -> float array
(** Component-count vector of one invocation (from its block counts);
    the constant component's 1.0 is last.  Length [n_components]. *)

val avg_counts : t -> samples:int array array -> float array
(** The paper's [C_avg]: mean component counts over a profile run. *)

val dominant : t -> weights:float array -> int
(** Index (into {!counts} vectors) of the component with the largest
    average time contribution, where [weights] gives per-block cycle
    estimates — the component whose [T_i] rates the version when it
    dominates (Section 2.3 (a)).  The constant component can be dominant
    for straight-line sections. *)
