(** Method fallback (Section 3): "if the system cannot achieve enough
    accuracy ... within some number of invocations, it switches to the
    next applicable rating method." *)

type outcome = {
  method_used : Consultant.method_kind;
  rating : Rating.t;
  attempts : (Consultant.method_kind * Rating.t) list;
      (** Every method tried, in order, the used one last. *)
}

val rate_one :
  ?params:Rating.params ->
  Runner.t ->
  Profile.t ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t ->
  Consultant.method_kind ->
  Rating.t
(** Rate with one specific method, using the profile's context/component
    data.  @raise Invalid_argument for CBR on a section whose context
    analysis failed. *)

val rate_with_fallback :
  ?params:Rating.params ->
  Runner.t ->
  Profile.t ->
  Consultant.advice ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t ->
  outcome
(** Try the consultant's applicable methods in order; return the first
    converged rating (or the last attempt if none converged). *)
