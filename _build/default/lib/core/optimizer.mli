(** The Remote Optimizer of Figure 6.

    "Optimized versions are compiled dynamically and inserted into the
    code using dynamic linking ... The Remote Optimizer can be any
    compiler, which may run on the local or a remote processor"
    (Section 4.2).  This models that component as a single compile server
    with a fixed per-version compile time:

    - in [Local] mode the tuning process and the compiler share the
      processor, so every compile stalls tuning for its full duration;
    - in [Remote] mode compiles overlap with the tuning run: a version
      requested ahead of time (the search {e prefetches} each
      iteration's candidates) is usually ready when its rating begins,
      and only the residual wait stalls.

    Time is the tuning ledger's simulated cycle count; compile durations
    are given in (simulated) seconds and converted at the machine's
    clock.  Like the invocation traces, realistic compile durations are
    scaled down ~100x so their ratio to rating time matches the paper's
    environment. *)

type mode = Local | Remote

type t

val create :
  ?compile_seconds:float -> mode -> Peak_machine.Machine.t -> t
(** Default compile time: 2 ms of simulated time per version. *)

val request : t -> now:float -> Peak_compiler.Optconfig.t -> unit
(** Enqueue a compile (idempotent per configuration).  In [Remote] mode
    the server starts it as soon as it is free; in [Local] mode requests
    only record intent — the cost is paid at {!stall_for}. *)

val stall_for : t -> now:float -> Peak_compiler.Optconfig.t -> float
(** Cycles the tuning process must stall before the version is usable at
    time [now].  [Local]: the full compile (if not yet built).  [Remote]:
    the remaining server time for it, counting queue order.  Marks the
    version built at [now + stall]. *)

val compiles : t -> int
(** Versions compiled so far. *)

val total_compile_cycles : t -> float
(** Aggregate compile work performed (regardless of overlap). *)
