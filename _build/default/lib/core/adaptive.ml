open Peak_util
open Peak_compiler
open Peak_workload

type slot = {
  mutable best : Optconfig.t;
  mutable best_stats : Stats.Welford.t;
  mutable experimental : (Optconfig.t * Stats.Welford.t) option;
  mutable pending : Optconfig.t list;
  mutable ready_at : int;  (** invocation when the next compile lands *)
  mutable swaps : int;
}

type t = {
  tsec : Tsection.t;
  runner : Runner.t;
  machine : Peak_machine.Machine.t;
  window : int;
  compile_latency : int;
  candidates : Optconfig.t list;
  context_sources : Peak_ir.Expr.source list;
  versions : (Optconfig.t, Version.t) Hashtbl.t;
  slots : (float array, slot) Hashtbl.t;
}

type stats = {
  invocations : int;
  total_cycles : float;
  o3_cycles : float;
  oracle_cycles : float;
  swaps : int;
  contexts_seen : int;
  choices : (float array * Optconfig.t) list;
}

let create ?(seed = 17) ?(window = 12) ?(compile_latency = 25) tsec trace machine
    ~candidates =
  let context_sources =
    match Context_analysis.analyze tsec ~mutated_arrays:trace.Trace.mutated_arrays with
    | Context_analysis.Applicable { sources; _ } -> sources
    | Context_analysis.Not_applicable _ -> []
  in
  {
    tsec;
    runner = Runner.create ~seed tsec trace machine;
    machine;
    window;
    compile_latency;
    candidates;
    context_sources;
    versions = Hashtbl.create 16;
    slots = Hashtbl.create 8;
  }

let version t config =
  match Hashtbl.find_opt t.versions config with
  | Some v -> v
  | None ->
      let v = Version.compile t.machine t.tsec.Tsection.features config in
      Hashtbl.add t.versions config v;
      v

let slot t now key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
      let s =
        {
          best = Optconfig.o3;
          best_stats = Stats.Welford.create ();
          experimental = None;
          pending = t.candidates;
          ready_at = now + t.compile_latency;
          swaps = 0;
        }
      in
      Hashtbl.add t.slots key s;
      s

(* Decide which version to run under this context, and which statistics
   bucket the measurement belongs to. *)
let choose_for t now s =
  (* launch the next experiment once its compile has landed *)
  (match (s.experimental, s.pending) with
  | None, next :: rest when now >= s.ready_at ->
      s.experimental <- Some (next, Stats.Welford.create ());
      s.pending <- rest
  | _ -> ());
  match s.experimental with
  | Some (config, w)
    when Stats.Welford.count w < t.window
         || Stats.Welford.count s.best_stats < t.window ->
      (* alternate so both versions sample the same context mix *)
      if
        Stats.Welford.count w <= Stats.Welford.count s.best_stats
        && Stats.Welford.count w < t.window
      then `Experimental config
      else `Best
  | Some (config, w) ->
      (* both windows full: swap only on a statistically credible win
         (Welch's test at 97.5% one-sided), so measurement noise does not
         thrash the installed version *)
      let wins =
        Stats.significantly_less
          ~mean1:(Stats.Welford.mean w)
          ~var1:(Stats.Welford.variance w)
          ~n1:(Stats.Welford.count w)
          ~mean2:(Stats.Welford.mean s.best_stats)
          ~var2:(Stats.Welford.variance s.best_stats)
          ~n2:(Stats.Welford.count s.best_stats)
      in
      if wins then begin
        s.best <- config;
        s.best_stats <- w;
        s.swaps <- s.swaps + 1
      end;
      s.experimental <- None;
      s.ready_at <- now + t.compile_latency;
      `Best
  | None -> `Best

let run t ~invocations =
  let total = ref 0.0 in
  let o3_total = ref 0.0 in
  let oracle_total = ref 0.0 in
  let o3_version = version t Optconfig.o3 in
  let all_versions = o3_version :: List.map (version t) t.candidates in
  for now = 0 to invocations - 1 do
    let bucket = ref `Best in
    let chosen_slot = ref None in
    let chosen_version = ref o3_version in
    let sample =
      Runner.step_choose ~context:t.context_sources t.runner (fun key ->
          let s = slot t now key in
          chosen_slot := Some s;
          let choice = choose_for t now s in
          bucket := choice;
          let config = match choice with `Best -> s.best | `Experimental c -> c in
          let v = version t config in
          chosen_version := v;
          v)
    in
    (* record the (noisy) measurement in the right bucket *)
    (match (!chosen_slot, !bucket) with
    | Some s, `Best -> Stats.Welford.add s.best_stats sample.Runner.time
    | Some s, `Experimental _ -> (
        match s.experimental with
        | Some (_, w) -> Stats.Welford.add w sample.Runner.time
        | None -> ())
    | None, _ -> ());
    (* noise-free accounting for the comparison *)
    let counts = sample.Runner.counts in
    let cycles v = Version.invocation_cycles v ~counts in
    total := !total +. cycles !chosen_version;
    o3_total := !o3_total +. cycles o3_version;
    oracle_total :=
      !oracle_total +. List.fold_left (fun acc v -> Float.min acc (cycles v)) infinity all_versions
  done;
  let swaps = Hashtbl.fold (fun _ (s : slot) acc -> acc + s.swaps) t.slots 0 in
  let choices = Hashtbl.fold (fun key (s : slot) acc -> (key, s.best) :: acc) t.slots [] in
  {
    invocations;
    total_cycles = !total;
    o3_cycles = !o3_total;
    oracle_cycles = !oracle_total;
    swaps;
    contexts_seen = Hashtbl.length t.slots;
    choices;
  }
