(** Model-based rating — Section 2.3.

    Every invocation contributes an observation (component counts,
    time); solving the regression [Y = T·C] (Eq. 3) yields the
    component-time vector, after residual-based outlier elimination.
    VAR is the residual-to-total sum-of-squares ratio (Section 3). *)

type mode =
  | Dominant
      (** The paper's rule (a): the dominant component's [T_i], fitted as
          a two-column regression (dominant count + constant) — valid
          when that component consumes ~all the time. *)
  | Avg  (** Rule (b): [T_avg = Σ T_i · C_avg,i] (Eq. 4). *)

val counter_cost_per_entry : float
(** Cycles charged per counted block entry for the counter
    instrumentation left after the profile-driven merge. *)

val rate :
  ?params:Rating.params ->
  ?mode:mode ->
  Runner.t ->
  components:Component_analysis.t ->
  avg_counts:float array ->
  dominant:int ->
  Peak_compiler.Version.t ->
  Rating.t
(** [avg_counts] and [dominant] come from the profile ([C_avg] and the
    dominant component index). *)
