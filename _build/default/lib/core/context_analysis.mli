(** Context-variable analysis — Figure 1 of the paper.

    For every control statement of the tuning section, walk the UD chains
    of every value it reads back to the section entry.  Values that reach
    the entry are inputs: if they are "scalar" in the paper's extended
    sense — plain scalars, array references with constant subscripts, or
    dereferences of pointers the TS never retargets — they become context
    variables; any other input reaching a control statement makes CBR
    inapplicable.

    One extension beyond the paper's figure, taken from its own
    run-time-constant rule: an {e array} whose contents influence control
    (e.g. the sparse row-pointer array of EQUAKE's [smvp]) is tolerated
    when nothing can change it — the TS never writes it and the enclosing
    program (the trace) declares it unmutated.  Such arrays are reported
    as [runtime_constant_arrays] rather than failing the analysis;
    together with constant-valued scalar pruning (done by the profiler),
    this is what gives EQUAKE its single context. *)

type verdict =
  | Applicable of {
      sources : Peak_ir.Expr.source list;
          (** Candidate context variables, before run-time-constant
              pruning of scalars. *)
      runtime_constant_arrays : string list;
          (** Arrays feeding control flow that were proven immutable. *)
    }
  | Not_applicable of string  (** Human-readable reason. *)

val analyze : Tsection.t -> mutated_arrays:string list -> verdict
(** [mutated_arrays] is the trace's declaration of arrays rewritten
    between invocations (see {!Peak_workload.Trace}). *)
