(** Method fallback (Section 3).

    "If the system cannot achieve enough accuracy, i.e. get a small VAR,
    within some number of invocations, it switches to the next applicable
    rating method."  This wrapper tries the consultant's applicable
    methods in order and returns the first converged rating, recording
    every attempt for the ablation bench. *)

type outcome = {
  method_used : Consultant.method_kind;
  rating : Rating.t;
  attempts : (Consultant.method_kind * Rating.t) list;
}

let rate_one ?(params = Rating.default_params) runner (profile : Profile.t) ~base version =
  function
  | Consultant.Cbr -> (
      match profile.Profile.context with
      | Profile.Cbr_ok { sources; stats; _ } ->
          let target =
            match stats with s :: _ -> s.Profile.values | [] -> [||]
          in
          Cbr.rate ~params runner ~sources ~target version
      | Profile.Cbr_no reason -> invalid_arg ("Harness: CBR not applicable: " ^ reason))
  | Consultant.Mbr ->
      Mbr.rate ~params runner ~components:profile.Profile.components
        ~avg_counts:profile.Profile.avg_component_counts
        ~dominant:profile.Profile.dominant_component version
  | Consultant.Rbr -> Rbr.rate ~params runner ~base version

let rate_with_fallback ?(params = Rating.default_params) runner profile
    (advice : Consultant.advice) ~base version =
  let rec go attempts = function
    | [] -> (
        match attempts with
        | (m, r) :: _ -> { method_used = m; rating = r; attempts = List.rev attempts }
        | [] -> invalid_arg "Harness.rate_with_fallback: no applicable method")
    | m :: rest ->
        let r = rate_one ~params runner profile ~base version m in
        if r.Rating.converged then
          { method_used = m; rating = r; attempts = List.rev ((m, r) :: attempts) }
        else go ((m, r) :: attempts) rest
  in
  go [] advice.Consultant.applicable
