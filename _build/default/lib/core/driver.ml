open Peak_machine
open Peak_compiler
open Peak_workload

type rating_method = Cbr | Mbr | Rbr | Avg | Whl

let method_name = function
  | Cbr -> "CBR"
  | Mbr -> "MBR"
  | Rbr -> "RBR"
  | Avg -> "AVG"
  | Whl -> "WHL"

let method_of_string s =
  match String.uppercase_ascii s with
  | "CBR" -> Some Cbr
  | "MBR" -> Some Mbr
  | "RBR" -> Some Rbr
  | "AVG" -> Some Avg
  | "WHL" -> Some Whl
  | _ -> None

type search_algo = Ie | Be | Ce | Random of int | Ff | Ose

type result = {
  benchmark : Benchmark.t;
  machine : Machine.t;
  dataset : Trace.dataset;
  method_used : rating_method;
  best_config : Optconfig.t;
  search_stats : Search.stats;
  tuning_cycles : float;
  tuning_seconds : float;
  passes : int;
  invocations : int;
  profile : Profile.t;
  advice : Consultant.advice;
}

let non_ts_cycles_of (benchmark : Benchmark.t) (profile : Profile.t) =
  let share = benchmark.Benchmark.time_share in
  profile.Profile.ts_pass_cycles *. (1.0 -. share) /. share

let auto_method profile tsec =
  let advice = Consultant.advise tsec profile in
  match advice.Consultant.chosen with
  | Consultant.Cbr -> Cbr
  | Consultant.Mbr -> Mbr
  | Consultant.Rbr -> Rbr

let tune ?(seed = 11) ?(search = Ie) ?(rating_params = Rating.default_params)
    ?(threshold = 0.005) ?compile ~method_ (benchmark : Benchmark.t) machine dataset =
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace dataset ~seed in
  let profile = Profile.run ~seed:(seed + 1) tsec trace machine in
  let advice = Consultant.advise tsec profile in
  let non_ts = non_ts_cycles_of benchmark profile in
  let runner = Runner.create ~seed:(seed + 2) tsec trace machine in
  (* the Remote Optimizer of Figure 6: versions must be compiled before
     they can be swapped in; Local blocks tuning, Remote overlaps *)
  let optimizer =
    Option.map (fun (mode, seconds) -> Optimizer.create ~compile_seconds:seconds mode machine)
      compile
  in
  let await_compiled config =
    match optimizer with
    | None -> ()
    | Some opt ->
        let stall = Optimizer.stall_for opt ~now:(Runner.tuning_cycles runner) config in
        if stall > 0.0 then Runner.charge_overhead runner stall
  in
  let prepare configs =
    match optimizer with
    | None -> ()
    | Some opt ->
        List.iter (fun c -> Optimizer.request opt ~now:(Runner.tuning_cycles runner) c) configs
  in
  let versions = Hashtbl.create 64 in
  let version config =
    match Hashtbl.find_opt versions config with
    | Some v -> v
    | None ->
        await_compiled config;
        let v = Version.compile machine tsec.Tsection.features config in
        Hashtbl.add versions config v;
        v
  in
  let params = rating_params in
  (* CBR target context *)
  let cbr_info =
    match profile.Profile.context with
    | Profile.Cbr_ok { sources; stats = s :: _; _ } -> Some (sources, s.Profile.values)
    | Profile.Cbr_ok { sources; stats = []; _ } -> Some (sources, [||])
    | Profile.Cbr_no _ -> None
  in
  let eval_cache = Hashtbl.create 64 in
  let eval_with f config =
    match Hashtbl.find_opt eval_cache config with
    | Some e -> e
    | None ->
        let e = f config in
        Hashtbl.add eval_cache config e;
        e
  in
  let relative : Search.relative =
    match method_ with
    | Rbr ->
        fun ~base candidate ->
          (Rbr.rate ~params runner ~base:(version base) (version candidate)).Rating.eval
    | Cbr ->
        let sources, target =
          match cbr_info with
          | Some info -> info
          | None ->
              invalid_arg
                (Printf.sprintf "Driver.tune: CBR not applicable to %s"
                   benchmark.Benchmark.name)
        in
        let eval =
          eval_with (fun c -> (Cbr.rate ~params runner ~sources ~target (version c)).Rating.eval)
        in
        fun ~base candidate -> eval candidate /. eval base
    | Mbr ->
        let components = profile.Profile.components in
        let avg_counts = profile.Profile.avg_component_counts in
        let dominant = profile.Profile.dominant_component in
        let eval =
          eval_with (fun c ->
              (Mbr.rate ~params runner ~components ~avg_counts ~dominant (version c))
                .Rating.eval)
        in
        fun ~base candidate -> eval candidate /. eval base
    | Avg ->
        let eval = eval_with (fun c -> (Avg.rate ~params runner (version c)).Rating.eval) in
        fun ~base candidate -> eval candidate /. eval base
    | Whl ->
        let eval =
          eval_with (fun c -> (Whl.rate runner ~non_ts_cycles:non_ts (version c)).Rating.eval)
        in
        fun ~base candidate -> eval candidate /. eval base
  in
  let best_config, search_stats =
    match search with
    | Ie -> Search.iterative_elimination ~threshold ~prepare ~relative Optconfig.o3
    | Be -> Search.batch_elimination ~threshold ~prepare ~relative Optconfig.o3
    | Ce -> Search.combined_elimination ~threshold ~prepare ~relative Optconfig.o3
    | Random n ->
        Search.random_search ~samples:n
          ~rng:(Peak_util.Rng.create ~seed:(seed + 3))
          ~relative Optconfig.o3
    | Ff ->
        Search.fractional_factorial ~threshold
          ~rng:(Peak_util.Rng.create ~seed:(seed + 3))
          ~relative Optconfig.o3
    | Ose -> Search.ose ~threshold ~relative Optconfig.o3
  in
  let passes = Runner.passes_started runner in
  let tuning_cycles =
    Runner.tuning_cycles runner +. (float_of_int passes *. non_ts)
  in
  {
    benchmark;
    machine;
    dataset;
    method_used = method_;
    best_config;
    search_stats;
    tuning_cycles;
    tuning_seconds = Machine.seconds_of_cycles machine tuning_cycles;
    passes;
    invocations = Runner.invocations_consumed runner;
    profile;
    advice;
  }

(* Deterministic evaluation: same machinery, but a noise-free machine and
   no cache-flushing perturbations. *)
let ts_pass_cycles ?(seed = 5) (benchmark : Benchmark.t) machine config dataset =
  let machine = { machine with Machine.noise_sigma = 0.0; spike_probability = 0.0 } in
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace dataset ~seed in
  let runner = Runner.create ~seed ~context_switch_rate:0.0 tsec trace machine in
  let v = Version.compile machine tsec.Tsection.features config in
  Runner.run_full_pass runner v

let evaluate_program_cycles ?(seed = 5) benchmark machine config dataset =
  let ts = ts_pass_cycles ~seed benchmark machine config dataset in
  let ts_o3 =
    if Optconfig.equal config Optconfig.o3 then ts
    else ts_pass_cycles ~seed benchmark machine Optconfig.o3 dataset
  in
  let share = benchmark.Benchmark.time_share in
  ts +. (ts_o3 *. (1.0 -. share) /. share)

let improvement_pct ?(seed = 5) benchmark machine ~best dataset =
  let t_best = evaluate_program_cycles ~seed benchmark machine best dataset in
  let t_o3 = evaluate_program_cycles ~seed benchmark machine Optconfig.o3 dataset in
  ((t_o3 /. t_best) -. 1.0) *. 100.0
