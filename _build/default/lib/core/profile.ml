open Peak_ir
open Peak_workload
open Peak_compiler

type context_stat = { values : float array; count : int; time_share : float }

type context_info =
  | Cbr_ok of {
      sources : Expr.source list;
      stats : context_stat list;
      runtime_constant_arrays : string list;
      pruned : Expr.source list;
    }
  | Cbr_no of string

type t = {
  n_invocations : int;
  avg_invocation_cycles : float;
  context : context_info;
  components : Component_analysis.t;
  count_samples : int array array;
  impure_calls : bool;
  block_weights : float array;
  avg_component_counts : float array;
  dominant_component : int;
  ts_pass_cycles : float;
}

let run ?(seed = 7) ?(max_count_samples = 240) tsec trace machine =
  let o3 = Version.compile machine tsec.Tsection.features Optconfig.o3 in
  let runner = Runner.create ~seed ~context_switch_rate:0.0 tsec trace machine in
  let verdict =
    Context_analysis.analyze tsec ~mutated_arrays:trace.Trace.mutated_arrays
  in
  let candidate_sources =
    match verdict with
    | Context_analysis.Applicable { sources; _ } -> sources
    | Context_analysis.Not_applicable _ -> []
  in
  let n = trace.Trace.length in
  (* Sample invocations for the count model at pseudo-random positions: a
     regular stride can alias with periodic context patterns (e.g. a
     multigrid V-cycle) and hide count variation entirely. *)
  let sample_here =
    let marks = Array.make n false in
    let order = Array.init n (fun i -> i) in
    Peak_util.Rng.shuffle (Peak_util.Rng.create ~seed:(seed * 31)) order;
    for j = 0 to min n max_count_samples - 1 do
      marks.(order.(j)) <- true
    done;
    marks
  in
  let samples = ref [] in
  let ctx_values = Array.make n [||] in
  let times = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let s = Runner.step ~context:candidate_sources runner o3 in
    times.(i) <- s.Runner.time;
    total := !total +. s.Runner.time;
    ctx_values.(i) <- s.Runner.context;
    if sample_here.(i) then samples := s.Runner.counts :: !samples
  done;
  let count_samples = Array.of_list (List.rev !samples) in
  let components = Component_analysis.analyze ~samples:count_samples in
  let context =
    match verdict with
    | Context_analysis.Not_applicable reason -> Cbr_no reason
    | Context_analysis.Applicable { sources; runtime_constant_arrays } ->
        (* run-time-constant pruning: drop sources whose observed value
           never changes *)
        let n_src = List.length sources in
        let keep = Array.make n_src false in
        if n > 0 then
          for j = 0 to n_src - 1 do
            let first = ctx_values.(0).(j) in
            for i = 1 to n - 1 do
              if ctx_values.(i).(j) <> first then keep.(j) <- true
            done
          done;
        let kept_sources = List.filteri (fun j _ -> keep.(j)) sources in
        let pruned = List.filteri (fun j _ -> not keep.(j)) sources in
        let tbl = Hashtbl.create 16 in
        for i = 0 to n - 1 do
          let key =
            Array.of_list
              (List.filteri (fun j _ -> keep.(j)) (Array.to_list ctx_values.(i)))
          in
          let count, time =
            Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl key)
          in
          Hashtbl.replace tbl key (count + 1, time +. times.(i))
        done;
        let stats =
          Hashtbl.fold
            (fun values (count, time) acc ->
              { values; count; time_share = time /. Float.max 1.0 !total } :: acc)
            tbl []
          |> List.sort (fun a b -> compare b.time_share a.time_share)
        in
        Cbr_ok { sources = kept_sources; stats; runtime_constant_arrays; pruned }
  in
  let avg_component_counts = Component_analysis.avg_counts components ~samples:count_samples in
  let block_weights = o3.Version.block_cycles in
  {
    n_invocations = n;
    avg_invocation_cycles = !total /. float_of_int (max 1 n);
    context;
    components;
    count_samples;
    impure_calls = Tsection.has_impure_calls tsec;
    block_weights;
    avg_component_counts;
    dominant_component = Component_analysis.dominant components ~weights:block_weights;
    ts_pass_cycles = !total;
  }

let n_contexts t =
  match t.context with Cbr_ok { stats; _ } -> Some (List.length stats) | Cbr_no _ -> None

let dominant_context t =
  match t.context with
  | Cbr_ok { stats = s :: _; _ } -> Some s
  | Cbr_ok { stats = []; _ } | Cbr_no _ -> None

let dominant_share t = Option.map (fun s -> s.time_share) (dominant_context t)
