(** A tuning section with all its static analyses, computed once.

    Everything PEAK derives at compile time about a TS (Section 3's
    instrumentation step) hangs off this bundle: the CFG, static block
    features, points-to facts, reaching definitions, and liveness. *)

open Peak_ir

type t = {
  ts : Types.ts;
  cfg : Cfg.t;
  features : Features.ts;
  pointsto : Pointsto.t;
  defuse : Defuse.t;
  liveness : Liveness.t;
}

val make : Types.ts -> t

val name : t -> string

val has_impure_calls : t -> bool
(** Whether the section calls externals with unknown side effects —
    which disqualifies re-execution (Section 2.4.1). *)

val save_restore_bytes : t -> int
(** Static upper bound on the RBR save/restore payload (see
    {!Liveness.save_restore_bytes}; {!Snapshot.measure_bytes} gives the
    dynamic value). *)
