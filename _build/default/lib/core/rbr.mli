(** Re-execution-based rating — Section 2.4.

    Each invocation times the base and the experimental version back to
    back under the bit-identical (saved and restored) context; the
    sample is the relative time [T_exp / T_base], so the EVAL's ideal
    value for identical versions is exactly 1. *)

val rate :
  ?params:Rating.params ->
  ?improved:bool ->
  Runner.t ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t ->
  Rating.t
(** [improved] (default true) uses the Section 2.4.2 method: cache
    preconditioning plus execution-order alternation. *)

val rate_many :
  ?params:Rating.params ->
  Runner.t ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t list ->
  Rating.t list
(** Batched rating (Section 2.4.2's batching optimization): one
    save/precondition per invocation serves the base plus every
    experimental version, so the fixed RBR overheads are amortized
    across the batch and all versions are sampled under identical
    contexts. *)
