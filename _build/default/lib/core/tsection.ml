(** A tuning section with all its static analyses, computed once.

    Everything PEAK derives at compile time about a TS (Section 3's
    instrumentation step) hangs off this bundle: the CFG, static
    features, points-to facts, reaching definitions, and liveness. *)

open Peak_ir

type t = {
  ts : Types.ts;
  cfg : Cfg.t;
  features : Features.ts;
  pointsto : Pointsto.t;
  defuse : Defuse.t;
  liveness : Liveness.t;
}

let make ts =
  let cfg = Cfg.of_ts ts in
  let features = Features.of_cfg cfg in
  let pointsto = Pointsto.analyze cfg in
  let defuse = Defuse.analyze cfg pointsto in
  let liveness = Liveness.analyze cfg pointsto in
  { ts; cfg; features; pointsto; defuse; liveness }

let name t = t.ts.Types.name

let has_impure_calls t =
  Array.exists
    (fun (b : Cfg.bblock) ->
      Array.exists
        (function Cfg.SCall f -> not (Types.is_pure_external f) | _ -> false)
        b.stmts)
    t.cfg.blocks

let save_restore_bytes t = Liveness.save_restore_bytes t.liveness
