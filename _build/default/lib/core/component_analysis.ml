open Peak_util

type group = { representative : int; members : int list }

type t = {
  n_blocks : int;
  groups : group array;  (** Varying groups, before independence filtering. *)
  independent : int array;  (** Indices into [groups] of selected components. *)
  folded_reps : int list;
  constant_blocks : int list;
  group_index : int option array;  (** block id -> group index *)
  mean_counts : float array;  (** mean entry count per block over the sample *)
}

let vector_of samples block = Array.map (fun inv -> float_of_int inv.(block)) samples

let is_constant v = Array.for_all (fun x -> x = v.(0)) v

(* Relative residual of least-squares projecting y onto span(basis). *)
let relative_residual basis y =
  let n = Array.length y in
  let k = List.length basis in
  let y_norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 y) in
  if y_norm = 0.0 then 0.0
  else if k = 0 then 1.0
  else if n < k then 1.0
  else begin
    let basis = Array.of_list basis in
    let a = Matrix.init ~rows:n ~cols:k ~f:(fun r c -> basis.(c).(r)) in
    match Matrix.least_squares a y with
    | exception Failure _ -> 1.0
    | coeff ->
        let resid = ref 0.0 in
        for r = 0 to n - 1 do
          let pred = ref 0.0 in
          Array.iteri (fun c b -> pred := !pred +. (coeff.(c) *. b.(r))) basis;
          let d = y.(r) -. !pred in
          resid := !resid +. (d *. d)
        done;
        sqrt !resid /. y_norm
  end

let analyze ~samples =
  let n_inv = Array.length samples in
  if n_inv = 0 then invalid_arg "Component_analysis.analyze: no samples";
  let n_blocks = Array.length samples.(0) in
  if n_blocks = 0 then invalid_arg "Component_analysis.analyze: no blocks";
  Array.iter
    (fun s ->
      if Array.length s <> n_blocks then invalid_arg "Component_analysis.analyze: ragged samples")
    samples;
  let vectors = Array.init n_blocks (fun b -> vector_of samples b) in
  let mean_counts = Array.map Stats.mean vectors in
  let constant_blocks = ref [] in
  let varying = ref [] in
  for b = n_blocks - 1 downto 0 do
    if is_constant vectors.(b) then constant_blocks := b :: !constant_blocks
    else varying := b :: !varying
  done;
  (* pairwise merging by exact linear relation (the paper's α,β rule) *)
  let groups : group list ref = ref [] in
  List.iter
    (fun b ->
      let rec place = function
        | [] -> [ { representative = b; members = [ b ] } ]
        | g :: rest -> (
            match Regression.linear_relation vectors.(g.representative) vectors.(b) with
            | Some _ -> { g with members = g.members @ [ b ] } :: rest
            | None -> g :: place rest)
      in
      groups := place !groups)
    !varying;
  let groups = Array.of_list !groups in
  let group_index = Array.make n_blocks None in
  Array.iteri (fun gi g -> List.iter (fun b -> group_index.(b) <- Some gi) g.members) groups;
  (* independence filtering: keep groups whose count vector is not in the
     span of the constant vector plus already-selected vectors.  Heavier
     groups (by mean entry count) are considered first so that when a
     loop nest's count vectors are linearly dependent, the hot inner body
     stays a component in its own right and the cheap bookkeeping blocks
     are the ones folded into the others' coefficients. *)
  let ones = Array.make n_inv 1.0 in
  let order = Array.init (Array.length groups) (fun i -> i) in
  Array.sort
    (fun a b ->
      compare mean_counts.(groups.(b).representative) mean_counts.(groups.(a).representative))
    order;
  let selected = ref [] in
  let folded = ref [] in
  Array.iter
    (fun gi ->
      let g = groups.(gi) in
      let basis = ones :: List.map (fun i -> vectors.(groups.(i).representative)) !selected in
      if relative_residual basis vectors.(g.representative) > 1e-6 then
        selected := !selected @ [ gi ]
      else folded := g.representative :: !folded)
    order;
  {
    n_blocks;
    groups;
    independent = Array.of_list !selected;
    folded_reps = List.rev !folded;
    constant_blocks = !constant_blocks;
    group_index;
    mean_counts;
  }

let n_components t = Array.length t.independent + 1

let representatives t =
  Array.to_list (Array.map (fun gi -> t.groups.(gi).representative) t.independent)

let folded t = t.folded_reps

let group_of t block = if block < t.n_blocks && block >= 0 then t.group_index.(block) else None

let counts t block_counts =
  if Array.length block_counts <> t.n_blocks then
    invalid_arg "Component_analysis.counts: block count length mismatch";
  let k = Array.length t.independent in
  Array.init (k + 1) (fun i ->
      if i = k then 1.0
      else float_of_int block_counts.(t.groups.(t.independent.(i)).representative))

let avg_counts t ~samples =
  let k = n_components t in
  let acc = Array.make k 0.0 in
  Array.iter (fun inv -> Array.iteri (fun i c -> acc.(i) <- acc.(i) +. c) (counts t inv)) samples;
  Array.map (fun x -> x /. float_of_int (Array.length samples)) acc

let dominant t ~weights =
  if Array.length weights <> t.n_blocks then
    invalid_arg "Component_analysis.dominant: weight length mismatch";
  let k = Array.length t.independent in
  let contributions = Array.make (k + 1) 0.0 in
  let add slot b = contributions.(slot) <- contributions.(slot) +. (weights.(b) *. t.mean_counts.(b)) in
  List.iter (add k) t.constant_blocks;
  (* folded groups contribute wherever the regression absorbs them; for
     dominance purposes charge them to the constant slot, which only errs
     toward conservatism *)
  List.iter
    (fun rep -> match t.group_index.(rep) with Some _ -> add k rep | None -> ())
    t.folded_reps;
  Array.iteri
    (fun i gi -> List.iter (add i) t.groups.(gi).members)
    t.independent;
  let best = ref 0 in
  Array.iteri (fun i c -> if c > contributions.(!best) then best := i) contributions;
  !best
