(** Online, adaptive tuning — the scenario of Section 6.

    The paper demonstrates offline tuning but stresses that the rating
    methods "are also applicable to an online, adaptive optimization
    scenario ... facilitating dynamic tuning of applications that are
    very long running, or that exhibit different behavior across their
    execution time."  This engine realizes that scenario on the ADAPT
    mechanism of Figure 6: per context, a {e best} and an {e experimental}
    code version are kept and dynamically swapped; new experimental
    versions arrive asynchronously from a remote optimizer with a compile
    latency, are rated in place with the context-aware machinery, and
    replace the best on a win.

    Unlike the offline driver there is no separate tuning phase: every
    invocation is production work, and the engine's quality measure is
    the total cycles the application spent, compared against running -O3
    throughout and against an oracle that knew each context's best
    version from the start. *)

type t

type stats = {
  invocations : int;
  total_cycles : float;  (** Everything the application spent, experiments included. *)
  o3_cycles : float;  (** The same invocations under -O3 throughout. *)
  oracle_cycles : float;
      (** The same invocations under each context's best candidate
          (selected by noise-free evaluation) — the adaptivity target. *)
  swaps : int;  (** Times a context's best version changed. *)
  contexts_seen : int;
  choices : (float array * Peak_compiler.Optconfig.t) list;
      (** Final best configuration per context key. *)
}

val create :
  ?seed:int ->
  ?window:int ->
  ?compile_latency:int ->
  Tsection.t ->
  Peak_workload.Trace.t ->
  Peak_machine.Machine.t ->
  candidates:Peak_compiler.Optconfig.t list ->
  t
(** [window] is the samples needed per (context, version) rating before a
    swap decision (default 12); [compile_latency] the invocations a
    requested version spends at the remote optimizer before it can be
    swapped in (default 25, per ADAPT's asynchronous dynamic
    compilation).  [candidates] are explored in order, per context, with
    -O3 as the initial best. *)

val run : t -> invocations:int -> stats
(** Drive the application for the given number of invocations. *)
