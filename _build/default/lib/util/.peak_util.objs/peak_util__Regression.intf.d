lib/util/regression.mli:
