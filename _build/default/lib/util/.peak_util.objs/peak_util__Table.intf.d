lib/util/table.mli:
