lib/util/matrix.ml: Array Format
