lib/util/rng.mli:
