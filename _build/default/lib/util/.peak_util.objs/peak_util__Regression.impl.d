lib/util/regression.ml: Array Float Matrix Stats
