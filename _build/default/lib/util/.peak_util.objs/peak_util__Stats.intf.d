lib/util/stats.mli:
