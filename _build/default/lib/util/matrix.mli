(** Dense matrices and linear solvers.

    MBR (Section 2.3) rates versions by solving the linear regression
    [Y = T * C] for the component-time vector [T].  This module provides
    the dense-matrix substrate: construction, products, Gaussian
    elimination with partial pivoting, and QR-based least squares, which
    is what {!Regression} builds on. *)

type t
(** Row-major dense matrix of floats. *)

val create : rows:int -> cols:int -> t
(** Zero matrix.  @raise Invalid_argument on nonpositive dimensions. *)

val init : rows:int -> cols:int -> f:(int -> int -> float) -> t
val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val to_arrays : t -> float array array
val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t

val row : t -> int -> float array
val col : t -> int -> float array

val mul : t -> t -> t
(** Matrix product.  @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> float array -> float array
(** Matrix–vector product. *)

val add : t -> t -> t
val scale : t -> float -> t

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting.  @raise Failure if [a] is singular to working
    precision; @raise Invalid_argument on shape mismatch. *)

val least_squares : t -> float array -> float array
(** [least_squares a b] minimizes [‖a x − b‖₂] for a (possibly tall)
    matrix via Householder QR.  Requires [rows a >= cols a] and full
    column rank; @raise Failure on rank deficiency. *)

val frobenius_norm : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Elementwise comparison with tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
