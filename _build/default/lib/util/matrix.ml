type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: nonpositive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let idx m r c = (r * m.cols) + c
let get m r c = m.data.(idx m r c)
let set m r c v = m.data.(idx m r c) <- v

let init ~rows ~cols ~f =
  let m = create ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      set m r c (f r c)
    done
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg "Matrix.of_arrays: ragged input")
    a;
  init ~rows ~cols ~f:(fun r c -> a.(r).(c))

let to_arrays m = Array.init m.rows (fun r -> Array.init m.cols (fun c -> get m r c))
let identity n = init ~rows:n ~cols:n ~f:(fun r c -> if r = c then 1.0 else 0.0)
let rows m = m.rows
let cols m = m.cols
let copy m = { m with data = Array.copy m.data }
let transpose m = init ~rows:m.cols ~cols:m.rows ~f:(fun r c -> get m c r)
let row m r = Array.init m.cols (fun c -> get m r c)
let col m c = Array.init m.rows (fun r -> get m r c)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let out = create ~rows:a.rows ~cols:b.cols in
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let av = get a r k in
      if av <> 0.0 then
        for c = 0 to b.cols - 1 do
          set out r c (get out r c +. (av *. get b k c))
        done
    done
  done;
  out

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun r ->
      let acc = ref 0.0 in
      for c = 0 to a.cols - 1 do
        acc := !acc +. (get a r c *. v.(c))
      done;
      !acc)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale a s = { a with data = Array.map (fun x -> x *. s) a.data }

let solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix not square";
  if a.rows <> Array.length b then invalid_arg "Matrix.solve: rhs length mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* partial pivot *)
    let pivot = ref k in
    for r = k + 1 to n - 1 do
      if abs_float (get m r k) > abs_float (get m !pivot k) then pivot := r
    done;
    if abs_float (get m !pivot k) < 1e-12 then failwith "Matrix.solve: singular matrix";
    if !pivot <> k then begin
      for c = 0 to n - 1 do
        let tmp = get m k c in
        set m k c (get m !pivot c);
        set m !pivot c tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    for r = k + 1 to n - 1 do
      let f = get m r k /. get m k k in
      if f <> 0.0 then begin
        for c = k to n - 1 do
          set m r c (get m r c -. (f *. get m k c))
        done;
        x.(r) <- x.(r) -. (f *. x.(k))
      end
    done
  done;
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for c = r + 1 to n - 1 do
      acc := !acc -. (get m r c *. x.(c))
    done;
    x.(r) <- !acc /. get m r r
  done;
  x

(* Householder QR least squares: reduce [a|b] in place, back-substitute on
   the leading cols x cols triangle. *)
let least_squares a b =
  let mrows = a.rows and ncols = a.cols in
  if mrows < ncols then invalid_arg "Matrix.least_squares: underdetermined system";
  if mrows <> Array.length b then invalid_arg "Matrix.least_squares: rhs length mismatch";
  let r = copy a in
  let y = Array.copy b in
  (* rank deficiency must be judged relative to each column's scale, or
     large-magnitude collinear columns sail past an absolute epsilon and
     produce astronomically wrong coefficients *)
  let col_scale =
    Array.init ncols (fun c ->
        let acc = ref 0.0 in
        for i = 0 to mrows - 1 do
          acc := !acc +. (get a i c *. get a i c)
        done;
        sqrt !acc)
  in
  for k = 0 to ncols - 1 do
    (* Householder vector for column k, rows k.. *)
    let norm = ref 0.0 in
    for i = k to mrows - 1 do
      norm := !norm +. (get r i k *. get r i k)
    done;
    let norm = sqrt !norm in
    if norm < 1e-12 +. (1e-9 *. col_scale.(k)) then
      failwith "Matrix.least_squares: rank deficient";
    let alpha = if get r k k > 0.0 then -.norm else norm in
    let v = Array.make mrows 0.0 in
    v.(k) <- get r k k -. alpha;
    for i = k + 1 to mrows - 1 do
      v.(i) <- get r i k
    done;
    let vtv = ref 0.0 in
    for i = k to mrows - 1 do
      vtv := !vtv +. (v.(i) *. v.(i))
    done;
    if !vtv > 0.0 then begin
      (* apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs *)
      for c = k to ncols - 1 do
        let dot = ref 0.0 in
        for i = k to mrows - 1 do
          dot := !dot +. (v.(i) *. get r i c)
        done;
        let f = 2.0 *. !dot /. !vtv in
        for i = k to mrows - 1 do
          set r i c (get r i c -. (f *. v.(i)))
        done
      done;
      let dot = ref 0.0 in
      for i = k to mrows - 1 do
        dot := !dot +. (v.(i) *. y.(i))
      done;
      let f = 2.0 *. !dot /. !vtv in
      for i = k to mrows - 1 do
        y.(i) <- y.(i) -. (f *. v.(i))
      done
    end
  done;
  let x = Array.make ncols 0.0 in
  for i = ncols - 1 downto 0 do
    let acc = ref y.(i) in
    for c = i + 1 to ncols - 1 do
      acc := !acc -. (get r i c *. x.(c))
    done;
    if abs_float (get r i i) < 1e-12 then failwith "Matrix.least_squares: rank deficient";
    x.(i) <- !acc /. get r i i
  done;
  x

let frobenius_norm m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if abs_float (x -. b.data.(i)) > eps then ok := false) a.data;
       !ok
     end

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for r = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for c = 0 to m.cols - 1 do
      if c > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%.6g" (get m r c)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
