(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is splitmix64, which is small, fast, and has no measurable
    bias for the statistical loads used here (noise injection, workload
    context generation, search tie-breaking). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequent streams are independent for practical purposes.  Used to
    give sub-systems (noise, traces, search) their own streams so that
    adding draws in one does not perturb the others. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate by Box–Muller (one draw per call; the antithetic pair
    is discarded to keep the stream position simple to reason about). *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
