type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance by the golden gamma and scramble. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let float t =
  (* 53 high bits -> [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bound << 2^62. *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else -.log u /. rate
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
