(* Tests for the SPEC-like workload library: every benchmark's tuning
   section must interpret safely over its traces, deterministically, and
   with the declared class structure. *)

open Peak_ir
open Peak_workload

let all = Registry.all

let run_slice (b : Benchmark.t) dataset ~seed ~n =
  let cfg = Cfg.of_ts b.Benchmark.ts in
  let trace = b.Benchmark.trace dataset ~seed in
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  let results = ref [] in
  let n = min n trace.Trace.length in
  for i = 0 to n - 1 do
    trace.Trace.setup i env;
    results := Interp.run cfg env :: !results
  done;
  (trace, List.rev !results)

let test_all_benchmarks_interpret_safely () =
  List.iter
    (fun (b : Benchmark.t) ->
      let _, results = run_slice b Trace.Train ~seed:3 ~n:60 in
      Alcotest.(check int)
        (Printf.sprintf "%s ran 60 invocations" b.Benchmark.name)
        60 (List.length results))
    all

let test_registry_covers_table1 () =
  Alcotest.(check int) "fourteen benchmarks" 14 (List.length all);
  Alcotest.(check int) "six integer codes" 6 (List.length Registry.integer);
  Alcotest.(check int) "eight fp codes" 8 (List.length Registry.floating_point);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Registry.by_name name <> None))
    [
      "BZIP2"; "CRAFTY"; "GZIP"; "MCF"; "TWOLF"; "VORTEX"; "APPLU"; "APSI"; "ART";
      "MGRID"; "EQUAKE"; "MESA"; "SWIM"; "WUPWISE";
    ];
  Alcotest.(check bool) "unknown name" true (Registry.by_name "GCC" = None)

let test_figure7_selection () =
  let names = List.map (fun b -> b.Benchmark.name) Registry.figure7 in
  Alcotest.(check (list string)) "paper's four" [ "SWIM"; "MGRID"; "ART"; "EQUAKE" ] names

let test_trace_determinism () =
  List.iter
    (fun (b : Benchmark.t) ->
      let _, r1 = run_slice b Trace.Train ~seed:9 ~n:20 in
      let _, r2 = run_slice b Trace.Train ~seed:9 ~n:20 in
      let counts r = List.map (fun x -> x.Interp.block_counts) r in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic under seed" b.Benchmark.name)
        true
        (counts r1 = counts r2))
    all

let test_trace_seed_sensitivity () =
  (* irregular traces must differ across seeds *)
  let irregular = [ "BZIP2"; "GZIP"; "MESA"; "TWOLF" ] in
  List.iter
    (fun name ->
      let b = Option.get (Registry.by_name name) in
      let _, r1 = run_slice b Trace.Train ~seed:1 ~n:60 in
      let _, r2 = run_slice b Trace.Train ~seed:2 ~n:60 in
      let work r =
        List.map (fun x -> Array.fold_left ( + ) 0 x.Interp.block_counts) r
      in
      Alcotest.(check bool) (name ^ " varies with seed") true (work r1 <> work r2))
    irregular

let test_class_soundness () =
  (* invocations with the same declared class must produce identical
     block counts — the property the runner's class cache relies on *)
  List.iter
    (fun (b : Benchmark.t) ->
      let trace = b.Benchmark.trace Trace.Train ~seed:17 in
      match trace.Trace.class_of with
      | None -> ()
      | Some class_of ->
          let _, results = run_slice b Trace.Train ~seed:17 ~n:40 in
          let by_class = Hashtbl.create 8 in
          List.iteri
            (fun i r ->
              let k = class_of i in
              match Hashtbl.find_opt by_class k with
              | None -> Hashtbl.add by_class k r.Interp.block_counts
              | Some expected ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s class %d stable" b.Benchmark.name k)
                    true
                    (expected = r.Interp.block_counts))
            results)
    all

let test_ref_traces_longer () =
  List.iter
    (fun (b : Benchmark.t) ->
      let train = b.Benchmark.trace Trace.Train ~seed:5 in
      let ref_ = b.Benchmark.trace Trace.Ref ~seed:5 in
      Alcotest.(check bool)
        (Printf.sprintf "%s ref longer than train" b.Benchmark.name)
        true
        (ref_.Trace.length > train.Trace.length))
    all

let test_irregular_benchmarks_vary_per_invocation () =
  (* the RBR benchmarks must show varying work across invocations *)
  List.iter
    (fun name ->
      let b = Option.get (Registry.by_name name) in
      let _, results = run_slice b Trace.Train ~seed:13 ~n:80 in
      let works = List.map (fun r -> r.Interp.block_counts) results in
      let distinct = List.sort_uniq compare works in
      Alcotest.(check bool)
        (Printf.sprintf "%s has varying work (%d distinct)" name (List.length distinct))
        true
        (List.length distinct > 5))
    [ "BZIP2"; "CRAFTY"; "GZIP"; "MCF"; "TWOLF"; "VORTEX"; "ART"; "MESA" ]

let test_swim_is_stable () =
  let _, results = run_slice (Option.get (Registry.by_name "SWIM")) Trace.Train ~seed:13 ~n:20 in
  let works = List.map (fun r -> r.Interp.block_counts) results in
  Alcotest.(check int) "single workload" 1 (List.length (List.sort_uniq compare works))

let test_gzip_match_lengths_vary () =
  let b = Option.get (Registry.by_name "GZIP") in
  let _, results = run_slice b Trace.Train ~seed:29 ~n:300 in
  let works = List.map (fun r -> Array.fold_left ( + ) 0 r.Interp.block_counts) results in
  let small = List.filter (fun w -> w < 40) works in
  let large = List.filter (fun w -> w > 100) works in
  Alcotest.(check bool) "short searches exist" true (List.length small > 0);
  Alcotest.(check bool) "long searches exist" true (List.length large > 0)

let test_mcf_mutates_arrays () =
  let b = Option.get (Registry.by_name "MCF") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Alcotest.(check bool) "cost declared mutated" true
    (List.mem "cost" trace.Trace.mutated_arrays);
  (* the declaration must be true: setup really changes the array *)
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  trace.Trace.setup 0 env;
  let before = Array.copy (Interp.get_array env "cost") in
  trace.Trace.setup 1 env;
  let after = Interp.get_array env "cost" in
  Alcotest.(check bool) "cost actually mutated" true (before <> after)

let test_equake_structure_fixed () =
  let b = Option.get (Registry.by_name "EQUAKE") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Alcotest.(check (list string)) "nothing mutated" [] trace.Trace.mutated_arrays;
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  trace.Trace.setup 0 env;
  let before = Array.copy (Interp.get_array env "rowstart") in
  trace.Trace.setup 5 env;
  Alcotest.(check bool) "rowstart untouched" true
    (before = Interp.get_array env "rowstart")

let test_art_uses_pointers () =
  let b = Option.get (Registry.by_name "ART") in
  Alcotest.(check bool) "has pointer inputs" true (b.Benchmark.ts.Types.pointers <> [])

let test_apsi_has_three_classes () =
  let b = Option.get (Registry.by_name "APSI") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  match trace.Trace.class_of with
  | None -> Alcotest.fail "apsi should declare classes"
  | Some f ->
      let classes = List.sort_uniq compare (List.init 30 f) in
      Alcotest.(check int) "three contexts" 3 (List.length classes)

let test_shares_valid () =
  List.iter
    (fun (b : Benchmark.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s share in (0,1]" b.Benchmark.name)
        true
        (b.Benchmark.time_share > 0.0 && b.Benchmark.time_share <= 1.0))
    all

let prop_no_out_of_bounds =
  (* random seeds and datasets: no benchmark may index out of bounds *)
  QCheck.Test.make ~name:"no out-of-bounds under random seeds" ~count:8
    QCheck.(pair (int_range 0 1000) bool)
    (fun (seed, use_ref) ->
      let dataset = if use_ref then Trace.Ref else Trace.Train in
      List.for_all
        (fun (b : Benchmark.t) ->
          try
            ignore (run_slice b dataset ~seed ~n:8);
            true
          with Interp.Out_of_bounds _ -> false)
        all)

let suites =
  [
    ( "workload.registry",
      [
        Alcotest.test_case "covers table 1" `Quick test_registry_covers_table1;
        Alcotest.test_case "figure 7 selection" `Quick test_figure7_selection;
        Alcotest.test_case "shares valid" `Quick test_shares_valid;
      ] );
    ( "workload.traces",
      [
        Alcotest.test_case "all interpret safely" `Quick test_all_benchmarks_interpret_safely;
        Alcotest.test_case "determinism" `Quick test_trace_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_trace_seed_sensitivity;
        Alcotest.test_case "class soundness" `Quick test_class_soundness;
        Alcotest.test_case "ref longer" `Quick test_ref_traces_longer;
        Alcotest.test_case "irregular variation" `Quick test_irregular_benchmarks_vary_per_invocation;
        Alcotest.test_case "swim stable" `Quick test_swim_is_stable;
        Alcotest.test_case "gzip match lengths" `Quick test_gzip_match_lengths_vary;
        Alcotest.test_case "mcf mutates arrays" `Quick test_mcf_mutates_arrays;
        Alcotest.test_case "equake structure fixed" `Quick test_equake_structure_fixed;
        Alcotest.test_case "art uses pointers" `Quick test_art_uses_pointers;
        Alcotest.test_case "apsi three classes" `Quick test_apsi_has_three_classes;
      ] );
    ( "workload.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_no_out_of_bounds ] );
  ]
