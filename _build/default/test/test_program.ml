(* Tests for whole-program partitioning and multi-section tuning. *)

open Peak_machine
open Peak_workload
open Peak

let program = Swim_program.program

let test_program_structure () =
  Alcotest.(check (list string)) "three sections" [ "calc1"; "calc2"; "calc3" ]
    (Program.section_names program);
  Alcotest.(check bool) "lookup" true (Program.find_section program "calc2" <> None);
  Alcotest.(check bool) "missing" true (Program.find_section program "calc9" = None)

let test_profile_shares () =
  let profiles = Partitioner.profile_program program Machine.sparc2 Trace.Train in
  Alcotest.(check int) "all sections profiled" 3 (List.length profiles);
  let total = List.fold_left (fun acc sp -> acc +. sp.Partitioner.time_share) 0.0 profiles in
  Alcotest.(check (float 1e-6)) "shares sum to 1 - serial"
    (1.0 -. program.Program.serial_fraction)
    total;
  (* sorted descending *)
  let shares = List.map (fun sp -> sp.Partitioner.time_share) profiles in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort (fun a b -> compare b a) shares) shares;
  (* calc3 does three stencils per point; it must dominate *)
  Alcotest.(check string) "calc3 dominates" "calc3"
    (List.hd profiles).Partitioner.section.Program.name

let test_selection_threshold () =
  let profiles = Partitioner.profile_program program Machine.sparc2 Trace.Train in
  Alcotest.(check int) "all pass at 10%" 3 (List.length (Partitioner.select profiles));
  Alcotest.(check int) "high bar keeps the top only" 1
    (List.length (Partitioner.select ~min_share:0.4 profiles));
  Alcotest.(check int) "max_sections caps" 2
    (List.length (Partitioner.select ~max_sections:2 profiles))

let test_tune_program_composition () =
  let r = Partitioner.tune_program program Machine.pentium4 Trace.Train in
  Alcotest.(check int) "three sections tuned" 3 (List.length r.Partitioner.sections);
  Alcotest.(check (list string)) "none skipped" []
    (List.map (fun sp -> sp.Partitioner.section.Program.name) r.Partitioner.skipped);
  Alcotest.(check bool) "program improves on P4" true (r.Partitioner.program_improvement_pct > 5.0);
  (* the composed program gain cannot exceed the best section's TS gain *)
  let max_section =
    List.fold_left
      (fun acc sr -> Float.max acc sr.Partitioner.section_improvement_pct)
      0.0 r.Partitioner.sections
  in
  Alcotest.(check bool) "Amdahl bound" true (r.Partitioner.program_improvement_pct <= max_section +. 1e-6);
  Alcotest.(check bool) "tuning time accumulated" true (r.Partitioner.tuning_seconds > 0.0)

let test_tune_program_respects_selection () =
  let r = Partitioner.tune_program ~min_share:0.4 program Machine.pentium4 Trace.Train in
  Alcotest.(check int) "one tuned" 1 (List.length r.Partitioner.sections);
  Alcotest.(check int) "two skipped" 2 (List.length r.Partitioner.skipped);
  let full = Partitioner.tune_program program Machine.pentium4 Trace.Train in
  Alcotest.(check bool) "tuning fewer sections yields less program gain" true
    (r.Partitioner.program_improvement_pct < full.Partitioner.program_improvement_pct)

let suites =
  [
    ( "core.partitioner",
      [
        Alcotest.test_case "program structure" `Quick test_program_structure;
        Alcotest.test_case "profile shares" `Quick test_profile_shares;
        Alcotest.test_case "selection" `Quick test_selection_threshold;
        Alcotest.test_case "tune and compose" `Slow test_tune_program_composition;
        Alcotest.test_case "selection respected" `Slow test_tune_program_respects_selection;
      ] );
  ]
