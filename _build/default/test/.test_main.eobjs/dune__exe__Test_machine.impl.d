test/test_machine.ml: Alcotest Array Cache Cost List Machine Memsys Noise Peak_machine Peak_util Printf QCheck QCheck_alcotest Rng Stats
