test/test_soundness.ml: Alcotest Array Benchmark Builder Hashtbl Interp List Liveness Loc Peak Peak_ir Peak_util Peak_workload QCheck QCheck_alcotest Registry Snapshot Trace Tsection Types
