test/test_adaptive.ml: Adaptive Alcotest Benchmark Flags List Machine Optconfig Option Peak Peak_compiler Peak_machine Peak_workload Registry Trace Tsection
