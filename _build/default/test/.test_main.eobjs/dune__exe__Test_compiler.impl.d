test/test_compiler.ml: Alcotest Array Builder Cfg Effects Features Flags List Machine Optconfig Peak_compiler Peak_ir Peak_machine Printf QCheck QCheck_alcotest Version
