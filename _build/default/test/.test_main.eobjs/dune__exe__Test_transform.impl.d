test/test_transform.ml: Alcotest Benchmark Builder Cfg Expr Hashtbl Interp List Peak_ir Peak_workload QCheck QCheck_alcotest Registry Trace Transform Types
