test/test_workload.ml: Alcotest Array Benchmark Cfg Hashtbl Interp List Option Peak_ir Peak_workload Printf QCheck QCheck_alcotest Registry Trace Types
