test/test_program.ml: Alcotest Float List Machine Partitioner Peak Peak_machine Peak_workload Program Swim_program Trace
