test/test_util.ml: Alcotest Array Gen List Matrix Peak_util QCheck QCheck_alcotest Regression Rng Stats String Table
