test/test_dominators.ml: Alcotest Array Benchmark Builder Cfg Dominators List Peak_ir Peak_workload Printf Registry
