test/test_instrument.ml: Alcotest Benchmark Builder Consultant Instrument List Machine Option Peak Peak_ir Peak_machine Peak_workload Pretty Profile Registry String Trace Tsection
