test/test_ir.ml: Alcotest Array Builder Cfg Defuse Expr Features Float Interp List Liveness Loc Peak_ir Pointsto QCheck QCheck_alcotest Rangean Types
