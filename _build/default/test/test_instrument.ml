(* Tests for the pseudo-C printer and the instrumentation renderer. *)

open Peak_ir
open Peak_machine
open Peak_workload
open Peak
module B = Builder

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let render_for name =
  let b = Option.get (Registry.by_name name) in
  let tsec = Tsection.make b.Benchmark.ts in
  let trace = b.Benchmark.trace Trace.Train ~seed:7 in
  let profile = Profile.run tsec trace Machine.sparc2 in
  let advice = Consultant.advise tsec profile in
  Instrument.render tsec profile advice

(* ------------------------------------------------------------------ *)

let test_pretty_round_shapes () =
  let ts =
    B.ts ~name:"demo" ~params:[ "n" ] ~arrays:[ ("a", 8) ] ~pointers:[ ("p", "x") ]
      ~locals:[ "i"; "x" ]
      B.
        [
          for_ "i" ~lo:(ci 0) ~hi:(v "n")
            [
              if_ (idx "a" (v "i") > c 0.0) [ store "a" (v "i") (c 0.0) ] [ ptr_store "p" (v "i") ];
            ];
          while_ (deref "p" > c 1.0) [ ptr_set "p" "x" ];
          call "sin";
        ]
  in
  let c_src = Pretty.ts_to_c ts in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains c_src needle))
    [
      "void demo(double n, double a[8], double *p)";
      "for (i = 0; i < n; i++) {";
      "if ((a[i] > 0)) {";
      "} else {";
      "*p = i;";
      "while ((*p > 1)) {";
      "p = &x;";
      "sin();";
      "double i, x;";
    ]

let test_pretty_statement_indent () =
  let s = Pretty.stmt_to_c ~indent:4 (B.( := ) "x" (B.c 1.0)) in
  Alcotest.(check string) "indented" "    x = 1;\n" s

let test_instrument_cbr_section () =
  let text = render_for "APSI" in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains text needle))
    [
      "Rating approach: CBR";
      "peak_record(l1, ido)";
      (* radb4 only writes its output array: nothing needs saving *)
      "peak_save(void)    { /* empty */ }";
      "peak_timed_radb4";
      "void radb4(";
    ]

let test_instrument_span_save_region () =
  (* ART's y is read and written, with loop-bounded stores: the save list
     must carry the symbolic span rather than the whole array *)
  let text = render_for "ART" in
  Alcotest.(check bool) "span region" true (contains text "peak_save_region(y)");
  Alcotest.(check bool) "span bounds shown" true (contains text "y[0 .. numf1s)")

let test_instrument_rbr_section () =
  let text = render_for "GZIP" in
  Alcotest.(check bool) "RBR chosen" true (contains text "Rating approach: RBR");
  Alcotest.(check bool) "save code present" true (contains text "peak_save_scalar(cur_match)");
  Alcotest.(check bool) "precondition present" true (contains text "peak_precondition");
  Alcotest.(check bool) "counters listed" true (contains text "peak_counter_B")

let test_instrument_empty_save_set () =
  (* MGRID's resid writes only the output array: nothing to save *)
  let text = render_for "MGRID" in
  Alcotest.(check bool) "empty save" true (contains text "peak_save(void)    { /* empty */ }")

let test_instrument_runtime_constant_arrays () =
  let text = render_for "EQUAKE" in
  Alcotest.(check bool) "rowstart reported" true (contains text "rowstart")

let suites =
  [
    ( "core.instrument",
      [
        Alcotest.test_case "pretty shapes" `Quick test_pretty_round_shapes;
        Alcotest.test_case "pretty indent" `Quick test_pretty_statement_indent;
        Alcotest.test_case "cbr section" `Quick test_instrument_cbr_section;
        Alcotest.test_case "span save region" `Quick test_instrument_span_save_region;
        Alcotest.test_case "rbr section" `Quick test_instrument_rbr_section;
        Alcotest.test_case "empty save set" `Quick test_instrument_empty_save_set;
        Alcotest.test_case "runtime constant arrays" `Quick test_instrument_runtime_constant_arrays;
      ] );
  ]
