(* Tests for the online/adaptive tuning engine. *)

open Peak_machine
open Peak_compiler
open Peak_workload
open Peak

let flag n = Option.get (Flags.by_name n)
let bench n = Option.get (Registry.by_name n)

let make ?(machine = Machine.pentium4) ?(candidates = []) ?seed ?window ?compile_latency name =
  let b = bench name in
  let tsec = Tsection.make b.Benchmark.ts in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Adaptive.create ?seed ?window ?compile_latency tsec trace machine ~candidates

let good_candidates =
  [
    Optconfig.disable Optconfig.o3 (flag "schedule-insns");
    Optconfig.disable Optconfig.o3 (flag "force-mem");
  ]

let test_adaptive_beats_o3_when_candidates_help () =
  let a = make ~candidates:good_candidates "MGRID" in
  let s = Adaptive.run a ~invocations:2410 in
  Alcotest.(check bool) "adaptive beats O3" true (s.Adaptive.total_cycles < s.Adaptive.o3_cycles);
  Alcotest.(check bool) "oracle is the floor" true
    (s.Adaptive.oracle_cycles <= s.Adaptive.total_cycles +. 1e-6);
  Alcotest.(check bool) "swaps occurred" true (s.Adaptive.swaps > 0)

let test_adaptive_no_candidates_is_o3 () =
  let a = make ~candidates:[] "MGRID" in
  let s = Adaptive.run a ~invocations:500 in
  Alcotest.(check (float 1e-6)) "equals O3 exactly" s.Adaptive.o3_cycles s.Adaptive.total_cycles;
  Alcotest.(check int) "no swaps" 0 s.Adaptive.swaps

let test_adaptive_contexts_discovered () =
  let a = make ~candidates:good_candidates "MGRID" in
  let s = Adaptive.run a ~invocations:1000 in
  Alcotest.(check int) "five grid levels" 5 s.Adaptive.contexts_seen;
  Alcotest.(check int) "one choice per context" 5 (List.length s.Adaptive.choices)

let test_adaptive_harmful_candidate_rejected () =
  (* O0 is far worse than O3: the engine must sample it briefly and keep
     O3 as the best everywhere *)
  let a = make ~candidates:[ Optconfig.o0 ] "SWIM" ~machine:Machine.sparc2 in
  let s = Adaptive.run a ~invocations:600 in
  List.iter
    (fun (_, cfg) -> Alcotest.(check bool) "kept O3" true (Optconfig.equal cfg Optconfig.o3))
    s.Adaptive.choices;
  (* the exploration cost is bounded by roughly a window of O0 runs *)
  Alcotest.(check bool) "exploration cost bounded" true
    (s.Adaptive.total_cycles < 1.25 *. s.Adaptive.o3_cycles)

let test_adaptive_compile_latency_delays_experiments () =
  let run latency =
    let a =
      make ~candidates:good_candidates ~compile_latency:latency ~window:8 "MGRID"
    in
    Adaptive.run a ~invocations:400
  in
  let fast = run 0 in
  let slow = run 350 in
  Alcotest.(check bool) "long compiles mean fewer/no swaps" true
    (slow.Adaptive.swaps <= fast.Adaptive.swaps);
  Alcotest.(check bool) "long compiles keep the run near O3" true
    (slow.Adaptive.total_cycles >= fast.Adaptive.total_cycles -. 1e-6)

let test_adaptive_single_context_section () =
  (* SWIM has one context: the engine degenerates to global sampling *)
  let a = make ~candidates:good_candidates "SWIM" ~machine:Machine.pentium4 in
  let s = Adaptive.run a ~invocations:400 in
  Alcotest.(check int) "one context" 1 s.Adaptive.contexts_seen;
  Alcotest.(check bool) "still beats O3" true (s.Adaptive.total_cycles < s.Adaptive.o3_cycles)

let suites =
  [
    ( "core.adaptive",
      [
        Alcotest.test_case "beats O3" `Quick test_adaptive_beats_o3_when_candidates_help;
        Alcotest.test_case "no candidates = O3" `Quick test_adaptive_no_candidates_is_o3;
        Alcotest.test_case "contexts discovered" `Quick test_adaptive_contexts_discovered;
        Alcotest.test_case "harmful candidate rejected" `Quick
          test_adaptive_harmful_candidate_rejected;
        Alcotest.test_case "compile latency" `Quick test_adaptive_compile_latency_delays_experiments;
        Alcotest.test_case "single context" `Quick test_adaptive_single_context_section;
      ] );
  ]
