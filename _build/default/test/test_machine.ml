(* Tests for the simulated-machine substrate. *)

open Peak_util
open Peak_machine

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_cold_miss_then_hit () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
  Alcotest.(check bool) "first access misses" true (Cache.access c 0 = Cache.Miss);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c 63 = Cache.Hit);
  Alcotest.(check bool) "next line misses" true (Cache.access c 64 = Cache.Miss)

let test_cache_lru_eviction () =
  (* 2-way set: fill both ways, touch the first, insert a third: the
     second (least recently used) must be evicted *)
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
  let sets = Cache.sets c in
  let stride = sets * 64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c stride);
  ignore (Cache.access c 0);
  (* refresh line 0 *)
  ignore (Cache.access c (2 * stride));
  (* evicts line at [stride] *)
  Alcotest.(check bool) "line 0 still resident" true (Cache.access c 0 = Cache.Hit);
  Alcotest.(check bool) "line stride evicted" true (Cache.access c stride = Cache.Miss)

let test_cache_flush () =
  let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:1 in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check bool) "miss after flush" true (Cache.access c 0 = Cache.Miss)

let test_cache_stats_and_miss_rate () =
  let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:1 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  let hits, misses = Cache.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 2 misses;
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check (float 1e-9)) "rate after reset" 0.0 (Cache.miss_rate c)

let test_cache_invalid_params () =
  Alcotest.(check bool) "bad line" true
    (try
       ignore (Cache.create ~size_bytes:1000 ~line_bytes:64 ~assoc:2);
       false
     with Invalid_argument _ -> true)

let test_cache_working_set_behaviour () =
  (* streaming over 2x the cache size: second pass still misses;
     streaming over half the cache: second pass all hits *)
  let c = Cache.create ~size_bytes:4096 ~line_bytes:64 ~assoc:4 in
  let stream bytes =
    Cache.reset_stats c;
    let n = bytes / 8 in
    for pass = 1 to 2 do
      ignore pass;
      for i = 0 to n - 1 do
        ignore (Cache.access c (i * 8))
      done
    done;
    Cache.miss_rate c
  in
  let small = stream 2048 in
  Cache.flush c;
  let large = stream 16384 in
  (* small: 32 lines miss once out of 512 accesses = 6.25% *)
  Alcotest.(check bool) "small ws second pass hits" true (small < 0.07);
  Alcotest.(check bool) "large ws keeps missing" true (large > 0.10);
  Alcotest.(check bool) "large misses more than small" true (large > small)

(* ------------------------------------------------------------------ *)
(* Memsys                                                              *)
(* ------------------------------------------------------------------ *)

let acc base bytes touches = { Memsys.base; bytes; touches }

let test_memsys_cold_then_warm () =
  let m = Memsys.create Machine.sparc2 in
  let a = [ acc "a" 4096 512 ] in
  let cold = Memsys.charge m a in
  let warm = Memsys.charge m a in
  Alcotest.(check bool) "cold charge positive" true (cold > 0.0);
  Alcotest.(check (float 1e-9)) "warm charge zero for cache-fitting array" 0.0 warm;
  Alcotest.(check bool) "resident" true (Memsys.is_resident m "a")

let test_memsys_warm_preconditions () =
  let m = Memsys.create Machine.sparc2 in
  Memsys.warm m [ acc "a" 4096 512 ];
  Alcotest.(check (float 1e-9)) "no charge after warm" 0.0 (Memsys.charge m [ acc "a" 4096 512 ])

let test_memsys_flush () =
  let m = Memsys.create Machine.sparc2 in
  ignore (Memsys.charge m [ acc "a" 4096 512 ]);
  Memsys.flush m;
  Alcotest.(check bool) "flushed" false (Memsys.is_resident m "a");
  Alcotest.(check bool) "cold again" true (Memsys.charge m [ acc "a" 4096 512 ] > 0.0)

let test_memsys_eviction () =
  let m = Memsys.create Machine.pentium4 in
  (* P4 L2 = 512K; two 400K arrays cannot both stay resident *)
  ignore (Memsys.charge m [ acc "a" 409600 1000 ]);
  ignore (Memsys.charge m [ acc "b" 409600 1000 ]);
  Alcotest.(check bool) "b resident" true (Memsys.is_resident m "b");
  Alcotest.(check bool) "a evicted" false (Memsys.is_resident m "a");
  Alcotest.(check bool) "capacity respected" true
    (Memsys.resident_bytes m <= Machine.pentium4.l2_bytes)

let test_memsys_oversized_array_always_charges () =
  let m = Memsys.create Machine.pentium4 in
  let big = [ acc "huge" (4 * 1024 * 1024) 100000 ] in
  ignore (Memsys.charge m big);
  let again = Memsys.charge m big in
  Alcotest.(check bool) "capacity misses persist" true (again > 0.0)

let test_memsys_zero_touch_free () =
  let m = Memsys.create Machine.sparc2 in
  Alcotest.(check (float 1e-9)) "no touches, no cost" 0.0 (Memsys.charge m [ acc "a" 4096 0 ])

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let test_noise_spike_free_bounded () =
  let rng = Rng.create ~seed:7 in
  let n = Noise.create ~rng Machine.sparc2 in
  for _ = 1 to 1000 do
    let x = Noise.spike_free n 1000.0 in
    if x < 900.0 || x > 1100.0 then Alcotest.failf "jitter out of bounds: %f" x
  done

let test_noise_mean_preserved () =
  let rng = Rng.create ~seed:11 in
  let n = Noise.create ~rng Machine.sparc2 in
  let samples = Array.init 20000 (fun _ -> Noise.apply n 1000.0) in
  (* spikes push the mean up slightly; the median is robust *)
  Alcotest.(check (float 5.0)) "median near true cost" 1000.0 (Stats.median samples)

let test_noise_produces_outliers () =
  let rng = Rng.create ~seed:13 in
  let n = Noise.create ~rng Machine.pentium4 in
  let samples = Array.init 20000 (fun _ -> Noise.apply n 1000.0) in
  let spikes = Array.fold_left (fun acc x -> if x > 1500.0 then acc + 1 else acc) 0 samples in
  Alcotest.(check bool) "some spikes occur" true (spikes > 10);
  Alcotest.(check bool) "spikes are rare" true (spikes < 500)

let test_noise_deterministic_under_seed () =
  let sample seed =
    let rng = Rng.create ~seed in
    let n = Noise.create ~rng Machine.sparc2 in
    Array.init 100 (fun _ -> Noise.apply n 500.0)
  in
  Alcotest.(check (array (float 0.0))) "same seed same noise" (sample 42) (sample 42)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let test_cost_monotone_in_ops () =
  let w = { Cost.zero with alu = 10.0; mem = 4.0; ilp = 1.0 } in
  let more = { w with alu = 20.0 } in
  Alcotest.(check bool) "more alu costs more" true
    (Cost.cycles Machine.sparc2 more > Cost.cycles Machine.sparc2 w)

let test_cost_ilp_helps () =
  let w = { Cost.zero with alu = 12.0; ilp = 1.0 } in
  let parallel = { w with ilp = 2.0 } in
  Alcotest.(check bool) "ilp reduces cycles" true
    (Cost.cycles Machine.sparc2 parallel < Cost.cycles Machine.sparc2 w)

let test_cost_ilp_capped_by_issue_width () =
  let w = { Cost.zero with alu = 12.0; ilp = 10.0 } in
  let at_width = { w with ilp = float_of_int Machine.sparc2.issue_width } in
  Alcotest.(check (float 1e-9)) "capped" (Cost.cycles Machine.sparc2 at_width)
    (Cost.cycles Machine.sparc2 w)

let test_cost_spills_expensive () =
  let w = { Cost.zero with alu = 6.0; mem = 2.0 } in
  let spilled = { w with spill_mem = 4.0 } in
  let base = Cost.cycles Machine.pentium4 w in
  let with_spill = Cost.cycles Machine.pentium4 spilled in
  (* spill ops are priced at 2x L1 hit: 4 spills = 16 cycles on P4 *)
  Alcotest.(check (float 1e-6)) "spill cost" (base +. 16.0) with_spill

let test_cost_branch_penalty_machine_dependent () =
  let w = { Cost.zero with branches = 1.0; mispredict_rate = 0.2 } in
  let sparc = Cost.cycles Machine.sparc2 w in
  let p4 = Cost.cycles Machine.pentium4 w in
  Alcotest.(check bool) "deep pipeline pays more" true (p4 > sparc)

let test_cost_positive () =
  Alcotest.(check bool) "floor" true (Cost.cycles Machine.sparc2 Cost.zero > 0.0)

let test_machine_lookup () =
  (match Machine.by_name "sparc ii" with
  | Some m -> Alcotest.(check string) "found" "SPARC II" m.name
  | None -> Alcotest.fail "sparc lookup");
  Alcotest.(check bool) "unknown" true (Machine.by_name "vax" = None)

let test_seconds_of_cycles () =
  Alcotest.(check (float 1e-12)) "2GHz" 0.5e-9 (Machine.seconds_of_cycles Machine.pentium4 1.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_cache_total_accesses =
  QCheck.Test.make ~name:"cache hits+misses = accesses" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let c = Cache.create ~size_bytes:2048 ~line_bytes:64 ~assoc:2 in
      for _ = 1 to n do
        ignore (Cache.access c (Rng.int rng 100_000))
      done;
      let h, m = Cache.stats c in
      h + m = n)

let prop_memsys_nonnegative =
  QCheck.Test.make ~name:"memsys charge is nonnegative" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let m = Memsys.create Machine.pentium4 in
      let ok = ref true in
      for i = 0 to n - 1 do
        let a =
          {
            Memsys.base = Printf.sprintf "a%d" (Rng.int rng 5);
            bytes = 8 * (1 + Rng.int rng 100_000);
            touches = Rng.int rng 10_000;
          }
        in
        ignore i;
        if Memsys.charge m [ a ] < 0.0 then ok := false
      done;
      !ok)

let prop_noise_positive =
  QCheck.Test.make ~name:"noisy time stays positive" ~count:100
    QCheck.(pair (float_range 0.1 1e6) (int_range 0 10000))
    (fun (cycles, seed) ->
      let rng = Rng.create ~seed in
      let n = Noise.create ~rng Machine.pentium4 in
      let ok = ref true in
      for _ = 1 to 20 do
        if Noise.apply n cycles <= 0.0 then ok := false
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cache_total_accesses; prop_memsys_nonnegative; prop_noise_positive ]

let suites =
  [
    ( "machine.cache",
      [
        Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
        Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        Alcotest.test_case "stats and miss rate" `Quick test_cache_stats_and_miss_rate;
        Alcotest.test_case "invalid params" `Quick test_cache_invalid_params;
        Alcotest.test_case "working set behaviour" `Quick test_cache_working_set_behaviour;
      ] );
    ( "machine.memsys",
      [
        Alcotest.test_case "cold then warm" `Quick test_memsys_cold_then_warm;
        Alcotest.test_case "warm preconditions" `Quick test_memsys_warm_preconditions;
        Alcotest.test_case "flush" `Quick test_memsys_flush;
        Alcotest.test_case "eviction" `Quick test_memsys_eviction;
        Alcotest.test_case "oversized array" `Quick test_memsys_oversized_array_always_charges;
        Alcotest.test_case "zero touches free" `Quick test_memsys_zero_touch_free;
      ] );
    ( "machine.noise",
      [
        Alcotest.test_case "spike-free bounded" `Quick test_noise_spike_free_bounded;
        Alcotest.test_case "median preserved" `Slow test_noise_mean_preserved;
        Alcotest.test_case "produces outliers" `Slow test_noise_produces_outliers;
        Alcotest.test_case "deterministic" `Quick test_noise_deterministic_under_seed;
      ] );
    ( "machine.cost",
      [
        Alcotest.test_case "monotone in ops" `Quick test_cost_monotone_in_ops;
        Alcotest.test_case "ilp helps" `Quick test_cost_ilp_helps;
        Alcotest.test_case "ilp capped" `Quick test_cost_ilp_capped_by_issue_width;
        Alcotest.test_case "spills expensive" `Quick test_cost_spills_expensive;
        Alcotest.test_case "branch penalty machine dependent" `Quick
          test_cost_branch_penalty_machine_dependent;
        Alcotest.test_case "positive floor" `Quick test_cost_positive;
        Alcotest.test_case "machine lookup" `Quick test_machine_lookup;
        Alcotest.test_case "seconds of cycles" `Quick test_seconds_of_cycles;
      ] );
    ("machine.properties", qcheck_cases);
  ]
