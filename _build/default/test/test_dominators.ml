(* Tests for dominator analysis, including the cross-validation of the
   lowering's syntactic loop metadata against graph-derived loops. *)

open Peak_ir
open Peak_workload
module B = Builder

let dom_of ts =
  let cfg = Cfg.of_ts ts in
  (cfg, Dominators.analyze cfg)

let straightline =
  B.ts ~name:"straight" ~params:[ "x" ] ~locals:[ "y" ] B.[ "y" := v "x" + c 1.0 ]

let diamond =
  B.ts ~name:"diamond" ~params:[ "x" ] ~locals:[ "y" ]
    B.[ if_ (v "x" > c 0.0) [ "y" := c 1.0 ] [ "y" := c 2.0 ]; "y" := v "y" + c 1.0 ]

let single_loop =
  B.ts ~name:"loop" ~params:[ "n" ] ~locals:[ "i"; "s" ]
    B.[ for_ "i" ~lo:(ci 0) ~hi:(v "n") [ "s" := v "s" + v "i" ] ]

let nested_loop =
  B.ts ~name:"nest" ~params:[ "n" ] ~locals:[ "i"; "j"; "s" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "n")
          [ for_ "j" ~lo:(ci 0) ~hi:(v "n") [ "s" := v "s" + ci 1 ] ];
      ]

let test_straightline () =
  let cfg, dom = dom_of straightline in
  Alcotest.(check (option int)) "entry has no idom" None (Dominators.idom dom cfg.Cfg.entry);
  Alcotest.(check (list int)) "no loops" [] (Dominators.loop_headers dom);
  Alcotest.(check (list (pair int int))) "no back edges" [] (Dominators.back_edges dom)

let test_diamond_dominance () =
  let cfg, dom = dom_of diamond in
  (* entry dominates everything; neither branch arm dominates the join *)
  let join =
    (* the join is the block executing the final statement: find a
       non-entry block with an Exit terminator or leading to it *)
    let candidates =
      Array.to_list cfg.Cfg.blocks
      |> List.filter (fun (b : Cfg.bblock) -> Array.length b.stmts > 0 && b.id <> cfg.entry)
    in
    (List.hd (List.rev candidates)).Cfg.id
  in
  Array.iter
    (fun (b : Cfg.bblock) ->
      if Dominators.reachable dom b.id then
        Alcotest.(check bool)
          (Printf.sprintf "entry dominates B%d" b.id)
          true
          (Dominators.dominates dom cfg.entry b.id))
    cfg.blocks;
  Alcotest.(check bool) "entry dominates the join" true (Dominators.dominates dom cfg.entry join);
  Alcotest.(check (option int)) "join's idom is the entry (branch arms don't dominate)"
    (Some cfg.entry) (Dominators.idom dom join)

let test_single_loop_detection () =
  let cfg, dom = dom_of single_loop in
  (match Dominators.loop_headers dom with
  | [ header ] ->
      Alcotest.(check bool) "lowering marked the same header" true
        (Cfg.block cfg header).Cfg.is_loop_header;
      let body = Dominators.natural_loop dom ~header in
      Alcotest.(check bool) "loop has header + body" true (List.length body >= 2);
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "header dominates loop block B%d" b)
            true
            (Dominators.dominates dom header b))
        body
  | other -> Alcotest.failf "expected one loop, got %d" (List.length other));
  Alcotest.(check int) "one back edge" 1 (List.length (Dominators.back_edges dom))

let test_nested_loop_depths () =
  let _, dom = dom_of nested_loop in
  Alcotest.(check int) "two loops" 2 (List.length (Dominators.loop_headers dom));
  let depths = List.init 12 (fun i -> Dominators.loop_depth dom i) in
  Alcotest.(check bool) "some block at depth 2" true (List.mem 2 depths)

(* The cross-validation: for every benchmark's CFG the graph-derived loop
   facts must agree with the lowering's syntactic marks:
   - loop headers coincide exactly;
   - for every reachable block,
     dominator_depth(b) = syntactic_depth(b) + (1 if header else 0),
     because the natural loop contains its own header while the lowering
     marks the header at the enclosing depth. *)
let test_lowering_agrees_with_dominators () =
  List.iter
    (fun (b : Benchmark.t) ->
      let cfg = Cfg.of_ts b.Benchmark.ts in
      let dom = Dominators.analyze cfg in
      let graph_headers = Dominators.loop_headers dom in
      let syntactic_headers =
        Array.to_list cfg.Cfg.blocks
        |> List.filter_map (fun (blk : Cfg.bblock) ->
               if blk.is_loop_header && Dominators.reachable dom blk.id then Some blk.id
               else None)
        |> List.sort compare
      in
      Alcotest.(check (list int))
        (b.Benchmark.name ^ " headers agree")
        syntactic_headers graph_headers;
      Array.iter
        (fun (blk : Cfg.bblock) ->
          if Dominators.reachable dom blk.id then begin
            let expected = blk.loop_depth + if blk.is_loop_header then 1 else 0 in
            Alcotest.(check int)
              (Printf.sprintf "%s B%d depth" b.Benchmark.name blk.id)
              expected
              (Dominators.loop_depth dom blk.id)
          end)
        cfg.blocks)
    Registry.all

let test_idom_chain_reaches_entry () =
  List.iter
    (fun (b : Benchmark.t) ->
      let cfg = Cfg.of_ts b.Benchmark.ts in
      let dom = Dominators.analyze cfg in
      Array.iter
        (fun (blk : Cfg.bblock) ->
          if Dominators.reachable dom blk.id && blk.id <> cfg.Cfg.entry then begin
            let rec walk id steps =
              if steps > Cfg.n_blocks cfg then Alcotest.fail "idom chain does not terminate"
              else
                match Dominators.idom dom id with
                | None -> Alcotest.(check int) "chain ends at entry" cfg.Cfg.entry id
                | Some p -> walk p (steps + 1)
            in
            walk blk.id 0
          end)
        cfg.blocks)
    Registry.all

let suites =
  [
    ( "ir.dominators",
      [
        Alcotest.test_case "straightline" `Quick test_straightline;
        Alcotest.test_case "diamond" `Quick test_diamond_dominance;
        Alcotest.test_case "single loop" `Quick test_single_loop_detection;
        Alcotest.test_case "nested depths" `Quick test_nested_loop_depths;
        Alcotest.test_case "lowering agrees" `Quick test_lowering_agrees_with_dominators;
        Alcotest.test_case "idom chains" `Quick test_idom_chain_reaches_entry;
      ] );
  ]
