(* Tests for the compiler substrate: flags, configurations, effects. *)

open Peak_ir
open Peak_machine
open Peak_compiler
module B = Builder

let flag name =
  match Flags.by_name name with
  | Some f -> f
  | None -> Alcotest.failf "unknown flag %s" name

(* A numeric kernel with redundancy, aliasing ambiguity, and a loop. *)
let kernel_ts =
  B.ts ~name:"kernel" ~params:[ "n" ] ~arrays:[ ("a", 512); ("b", 512); ("c", 512) ]
    ~locals:[ "i"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "n")
          [
            "t" := (idx "a" (v "i") * idx "b" (v "i")) + (idx "a" (v "i") * idx "b" (v "i"));
            store "c" (v "i") (v "t" + (v "t" * v "t"));
          ];
      ]

(* An ART-like pointer-heavy kernel: the strict-aliasing pressure story
   of Section 5.2 needs C-style pointer ambiguity. *)
let pointer_ts =
  B.ts ~name:"artlike" ~params:[ "n" ] ~arrays:[ ("w", 1024) ]
    ~pointers:[ ("p", "x"); ("q", "y") ]
    ~locals:[ "i"; "acc"; "x"; "y" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "n")
          [
            "acc" := v "acc" + (deref "p" * idx "w" (v "i")) + (deref "q" * c 1.5);
            ptr_store "p" (deref "p" + c 0.5);
          ];
      ]

(* A branchy integer kernel with an unpredictable data-dependent branch. *)
let branchy_ts =
  B.ts ~name:"branchy" ~params:[ "n" ] ~arrays:[ ("a", 512) ] ~locals:[ "i"; "s" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "n")
          [
            if_
              (idx "a" (v "i") > c 0.0)
              [ "s" := v "s" + ci 1 ]
              [ "s" := v "s" - ci 1 ];
          ];
      ]

let features ts = Features.of_cfg (Cfg.of_ts ts)

let total_cycles machine ts config counts_weight =
  let f = features ts in
  let v = Version.compile machine f config in
  (* weight loop-depth>0 blocks heavily to mimic a hot loop *)
  let counts =
    Array.map
      (fun b -> if b.Features.loop_depth > 0 || b.Features.is_loop_header then counts_weight else 1)
      f.blocks
  in
  Version.invocation_cycles v ~counts

(* ------------------------------------------------------------------ *)
(* Flags / Optconfig                                                   *)
(* ------------------------------------------------------------------ *)

let test_flag_count () = Alcotest.(check int) "38 flags" 38 Flags.count

let test_flag_lookup () =
  Alcotest.(check bool) "strict-aliasing exists" true (Flags.by_name "strict-aliasing" <> None);
  Alcotest.(check bool) "unknown flag" true (Flags.by_name "funroll-everything" = None);
  Alcotest.(check string) "gcc name" "-fgcse" (Flags.gcc_name (flag "gcse"))

let test_flag_levels () =
  Alcotest.(check int) "inline-functions is O3" 3 (flag "inline-functions").Flags.level;
  Alcotest.(check int) "gcse is O2" 2 (flag "gcse").Flags.level;
  Alcotest.(check int) "if-conversion is O1" 1 (flag "if-conversion").Flags.level

let test_optconfig_basics () =
  Alcotest.(check int) "o3 has all" 38 (Optconfig.cardinal Optconfig.o3);
  Alcotest.(check int) "o0 has none" 0 (Optconfig.cardinal Optconfig.o0);
  let f = flag "gcse" in
  let c = Optconfig.disable Optconfig.o3 f in
  Alcotest.(check bool) "disabled" false (Optconfig.is_enabled c f);
  Alcotest.(check int) "37 left" 37 (Optconfig.cardinal c);
  let c2 = Optconfig.enable c f in
  Alcotest.(check bool) "round trip" true (Optconfig.equal c2 Optconfig.o3);
  Alcotest.(check bool) "toggle" true
    (Optconfig.equal (Optconfig.toggle (Optconfig.toggle c f) f) c)

let test_optconfig_of_names () =
  let c = Optconfig.of_names [ "gcse"; "strict-aliasing" ] in
  Alcotest.(check int) "two" 2 (Optconfig.cardinal c);
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Optconfig.of_names [ "nope" ]);
       false
     with Invalid_argument _ -> true)

let test_optconfig_levels () =
  Alcotest.(check bool) "o_level 0 = o0" true (Optconfig.equal (Optconfig.o_level 0) Optconfig.o0);
  Alcotest.(check bool) "o_level 3 = o3" true (Optconfig.equal (Optconfig.o_level 3) Optconfig.o3);
  Alcotest.(check int) "O1 has the ten -O1 flags" 10 (Optconfig.cardinal (Optconfig.o_level 1));
  Alcotest.(check int) "O2 has 36 flags" 36 (Optconfig.cardinal (Optconfig.o_level 2));
  Alcotest.(check bool) "O2 excludes inline-functions" false
    (Optconfig.is_enabled (Optconfig.o_level 2) (flag "inline-functions"));
  Alcotest.(check bool) "invalid level" true
    (try
       ignore (Optconfig.o_level 4);
       false
     with Invalid_argument _ -> true);
  (* the levels order costs sensibly on a numeric kernel *)
  let cost k = total_cycles Machine.sparc2 kernel_ts (Optconfig.o_level k) 100 in
  Alcotest.(check bool) "O1 between O0 and O3" true (cost 1 < cost 0 && cost 3 <= cost 1)

let test_optconfig_of_string_roundtrip () =
  let check c =
    Alcotest.(check bool)
      ("roundtrip " ^ Optconfig.to_string c)
      true
      (Optconfig.equal (Optconfig.of_string (Optconfig.to_string c)) c)
  in
  check Optconfig.o3;
  check Optconfig.o0;
  check (Optconfig.disable Optconfig.o3 (flag "gcse"));
  check (Optconfig.of_names [ "gcse"; "strict-aliasing"; "loop-optimize" ]);
  Alcotest.(check bool) "level base with adjustment" true
    (Optconfig.equal
       (Optconfig.of_string "-O2 -finline-functions")
       (Optconfig.enable (Optconfig.o_level 2) (flag "inline-functions")));
  Alcotest.(check bool) "unknown flag raises" true
    (try
       ignore (Optconfig.of_string "-O3 -fno-unroll-everything");
       false
     with Invalid_argument _ -> true)

let test_optconfig_to_string () =
  Alcotest.(check string) "o3" "-O3" (Optconfig.to_string Optconfig.o3);
  let c = Optconfig.disable Optconfig.o3 (flag "gcse") in
  Alcotest.(check string) "relative form" "-O3 -fno-gcse" (Optconfig.to_string c)

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)
(* ------------------------------------------------------------------ *)

let test_o3_beats_o0 () =
  List.iter
    (fun machine ->
      let o3 = total_cycles machine kernel_ts Optconfig.o3 100 in
      let o0 = total_cycles machine kernel_ts Optconfig.o0 100 in
      Alcotest.(check bool)
        (Printf.sprintf "O3 faster than O0 on %s" machine.Machine.name)
        true (o3 < o0))
    [ Machine.sparc2; Machine.pentium4 ]

let test_determinism () =
  let a = total_cycles Machine.sparc2 kernel_ts Optconfig.o3 100 in
  let b = total_cycles Machine.sparc2 kernel_ts Optconfig.o3 100 in
  Alcotest.(check (float 0.0)) "same config same cycles" a b

let test_gcse_reduces_redundant_kernel () =
  let with_gcse = Optconfig.of_names [ "gcse" ] in
  let without = Optconfig.o0 in
  let a = total_cycles Machine.sparc2 kernel_ts with_gcse 100 in
  let b = total_cycles Machine.sparc2 kernel_ts without 100 in
  Alcotest.(check bool) "gcse helps redundant code" true (a < b)

let test_prerequisite_flags_inert () =
  (* gcse-lm without gcse must change nothing *)
  let base = Optconfig.of_names [ "loop-optimize" ] in
  let with_lm = Optconfig.enable base (flag "gcse-lm") in
  Alcotest.(check (float 0.0)) "gcse-lm alone is inert"
    (total_cycles Machine.sparc2 kernel_ts base 100)
    (total_cycles Machine.sparc2 kernel_ts with_lm 100);
  (* reorder-blocks without guess-branch-probability is inert *)
  let with_rb = Optconfig.enable base (flag "reorder-blocks") in
  Alcotest.(check (float 0.0)) "reorder-blocks alone is inert"
    (total_cycles Machine.sparc2 branchy_ts base 100)
    (total_cycles Machine.sparc2 branchy_ts with_rb 100)

let test_strict_aliasing_machine_dependent () =
  (* The Section 5.2 ART mechanism: on a wide register file
     strict-aliasing helps the pointer kernel; on 8 registers the added
     pressure spills and hurts badly. *)
  let without = Optconfig.disable Optconfig.o3 (flag "strict-aliasing") in
  let sparc_on = total_cycles Machine.sparc2 pointer_ts Optconfig.o3 100 in
  let sparc_off = total_cycles Machine.sparc2 pointer_ts without 100 in
  let p4_on = total_cycles Machine.pentium4 pointer_ts Optconfig.o3 100 in
  let p4_off = total_cycles Machine.pentium4 pointer_ts without 100 in
  Alcotest.(check bool) "helps on SPARC II" true (sparc_on <= sparc_off);
  Alcotest.(check bool) "hurts on Pentium IV" true (p4_on > p4_off);
  Alcotest.(check bool) "large effect on Pentium IV" true (p4_on /. p4_off > 1.5)

let test_strict_aliasing_array_code_unharmed () =
  (* Fortran-style array stencils carry no pointer ambiguity: strict
     aliasing must not hurt them anywhere. *)
  let without = Optconfig.disable Optconfig.o3 (flag "strict-aliasing") in
  let p4_on = total_cycles Machine.pentium4 kernel_ts Optconfig.o3 100 in
  let p4_off = total_cycles Machine.pentium4 kernel_ts without 100 in
  Alcotest.(check bool) "array code: strict aliasing helps or is neutral" true
    (p4_on <= p4_off)

let test_strict_aliasing_raises_pressure () =
  let f = features pointer_ts in
  (* find the hot loop block *)
  let hot = ref 0 in
  Array.iteri
    (fun i b ->
      if b.Features.loop_depth > 0 && List.length b.Features.pointer_bases >= 2 then hot := i)
    f.blocks;
  let without = Optconfig.disable Optconfig.o3 (flag "strict-aliasing") in
  let p_on = Effects.effective_pressure Machine.pentium4 f Optconfig.o3 !hot in
  let p_off = Effects.effective_pressure Machine.pentium4 f without !hot in
  Alcotest.(check bool) "pressure rises under strict aliasing" true (p_on > p_off)

let test_if_conversion_on_unpredictable_branch () =
  (* branchy kernel on the deep-pipeline P4: converting the data-dependent
     branch should win *)
  let base = Optconfig.of_names [ "loop-optimize" ] in
  let ifcvt = Optconfig.enable base (flag "if-conversion") in
  let without = total_cycles Machine.pentium4 branchy_ts base 200 in
  let converted = total_cycles Machine.pentium4 branchy_ts ifcvt 200 in
  Alcotest.(check bool) "if-conversion wins on P4" true (converted < without)

let test_scheduling_tradeoff () =
  (* schedule-insns raises ILP but also pressure; on the 8-register P4 a
     high-pressure kernel should benefit less (or lose) compared to the
     register-rich SPARC *)
  let base = Optconfig.o0 in
  let sched = Optconfig.of_names [ "schedule-insns"; "schedule-insns2" ] in
  let gain machine =
    let b = total_cycles machine kernel_ts base 100 in
    let s = total_cycles machine kernel_ts sched 100 in
    (b -. s) /. b
  in
  let sparc_gain = gain Machine.sparc2 in
  let p4_gain = gain Machine.pentium4 in
  Alcotest.(check bool) "sparc gains from scheduling" true (sparc_gain > 0.0);
  Alcotest.(check bool) "sparc gains more than p4" true (sparc_gain > p4_gain)

let test_delayed_branch_machine_specific () =
  let base = Optconfig.o0 in
  let db = Optconfig.of_names [ "delayed-branch" ] in
  let sparc_base = total_cycles Machine.sparc2 branchy_ts base 200 in
  let sparc_db = total_cycles Machine.sparc2 branchy_ts db 200 in
  let p4_base = total_cycles Machine.pentium4 branchy_ts base 200 in
  let p4_db = total_cycles Machine.pentium4 branchy_ts db 200 in
  Alcotest.(check bool) "helps short pipeline" true (sparc_db < sparc_base);
  Alcotest.(check (float 0.0)) "inert on deep pipeline" p4_base p4_db

let test_version_invocation_cycles () =
  let f = features kernel_ts in
  let v = Version.compile Machine.sparc2 f Optconfig.o3 in
  let counts = Array.make (Array.length f.blocks) 0 in
  counts.(0) <- 1;
  let one = Version.invocation_cycles v ~counts in
  counts.(0) <- 10;
  let ten = Version.invocation_cycles v ~counts in
  Alcotest.(check (float 1e-9)) "linear in counts" (one *. 10.0) ten;
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Version.invocation_cycles v ~counts:[| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_compare_speed () =
  let f = features kernel_ts in
  let fast = Version.compile Machine.sparc2 f Optconfig.o3 in
  let slow = Version.compile Machine.sparc2 f Optconfig.o0 in
  let counts = Array.map (fun _ -> 10) f.blocks in
  Alcotest.(check bool) "slow/fast > 1" true (Version.compare_speed slow fast ~counts > 1.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_config =
  QCheck.map
    (fun bits ->
      List.fold_left
        (fun acc (i, b) -> if b then Optconfig.enable acc (Flags.by_index i) else acc)
        Optconfig.o0
        (List.mapi (fun i b -> (i, b)) bits))
    QCheck.(list_of_size (QCheck.Gen.return 38) bool)

let prop_cycles_positive =
  QCheck.Test.make ~name:"every config yields positive block cycles" ~count:200 gen_config
    (fun config ->
      let f = features kernel_ts in
      let v = Version.compile Machine.pentium4 f config in
      Array.for_all (fun c -> c > 0.0) v.block_cycles)

let prop_config_within_o0_o3_range =
  QCheck.Test.make ~name:"no config is absurdly far from O0/O3 cost" ~count:100 gen_config
    (fun config ->
      let t = total_cycles Machine.sparc2 kernel_ts config 100 in
      let o0 = total_cycles Machine.sparc2 kernel_ts Optconfig.o0 100 in
      (* any flag subset should stay within a sane envelope of baseline *)
      t > 0.05 *. o0 && t < 20.0 *. o0)

let prop_cardinal_matches_enabled =
  QCheck.Test.make ~name:"cardinal = |enabled|" ~count:200 gen_config (fun c ->
      Optconfig.cardinal c = List.length (Optconfig.enabled c)
      && Optconfig.cardinal c + List.length (Optconfig.disabled c) = 38)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cycles_positive; prop_config_within_o0_o3_range; prop_cardinal_matches_enabled ]

let suites =
  [
    ( "compiler.flags",
      [
        Alcotest.test_case "count" `Quick test_flag_count;
        Alcotest.test_case "lookup" `Quick test_flag_lookup;
        Alcotest.test_case "levels" `Quick test_flag_levels;
      ] );
    ( "compiler.optconfig",
      [
        Alcotest.test_case "basics" `Quick test_optconfig_basics;
        Alcotest.test_case "of_names" `Quick test_optconfig_of_names;
        Alcotest.test_case "o levels" `Quick test_optconfig_levels;
        Alcotest.test_case "of_string roundtrip" `Quick test_optconfig_of_string_roundtrip;
        Alcotest.test_case "to_string" `Quick test_optconfig_to_string;
      ] );
    ( "compiler.effects",
      [
        Alcotest.test_case "O3 beats O0" `Quick test_o3_beats_o0;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "gcse on redundancy" `Quick test_gcse_reduces_redundant_kernel;
        Alcotest.test_case "prerequisites inert" `Quick test_prerequisite_flags_inert;
        Alcotest.test_case "strict aliasing machine dependent" `Quick
          test_strict_aliasing_machine_dependent;
        Alcotest.test_case "strict aliasing array code unharmed" `Quick
          test_strict_aliasing_array_code_unharmed;
        Alcotest.test_case "strict aliasing pressure" `Quick test_strict_aliasing_raises_pressure;
        Alcotest.test_case "if-conversion" `Quick test_if_conversion_on_unpredictable_branch;
        Alcotest.test_case "scheduling tradeoff" `Quick test_scheduling_tradeoff;
        Alcotest.test_case "delayed branch" `Quick test_delayed_branch_machine_specific;
      ] );
    ( "compiler.version",
      [
        Alcotest.test_case "invocation cycles" `Quick test_version_invocation_cycles;
        Alcotest.test_case "compare speed" `Quick test_compare_speed;
      ] );
    ("compiler.properties", qcheck_cases);
  ]
