examples/whole_program.mli:
