examples/compare_raters.mli:
