examples/custom_kernel.ml: Benchmark Builder Consultant Driver Interp List Machine Optconfig Option Peak Peak_compiler Peak_ir Peak_machine Peak_util Peak_workload Printf Profile Trace Tsection
