examples/quickstart.ml: Benchmark Consultant Driver List Machine Optconfig Option Peak Peak_compiler Peak_ir Peak_machine Peak_workload Printf Profile Registry Search String Trace Tsection
