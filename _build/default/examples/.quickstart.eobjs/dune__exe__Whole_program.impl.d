examples/whole_program.ml: Driver List Machine Partitioner Peak Peak_compiler Peak_machine Peak_workload Printf Program String Swim_program Trace
