examples/quickstart.mli:
