examples/adaptive_online.mli:
