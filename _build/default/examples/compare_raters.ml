(* Why fair rating matters: CBR/MBR/RBR vs the naive AVG.

     dune exec examples/compare_raters.exe

   MGRID's resid runs at a drifting mix of grid levels (full-multigrid
   warmup, then V-cycles).  A naive context-blind average compares one
   version measured on one mix against another version measured on a
   different mix — the unfairness the paper's rating methods exist to
   prevent.  This example rates the same two versions with every method
   and shows which ones get the comparison right. *)

open Peak_machine
open Peak_compiler
open Peak_workload
open Peak

let () =
  let benchmark = Option.get (Registry.by_name "MGRID") in
  let machine = Machine.pentium4 in
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace Trace.Train ~seed:3 in
  let profile = Profile.run tsec trace machine in

  (* ground truth via deterministic evaluation *)
  let slow_config = Optconfig.o3 in
  let fast_config = Optconfig.disable Optconfig.o3 (Option.get (Flags.by_name "schedule-insns")) in
  let truth config = Driver.evaluate_program_cycles benchmark machine config Trace.Train in
  let true_ratio = truth fast_config /. truth slow_config in
  Printf.printf "Ground truth: T(-fno-schedule-insns) / T(-O3) = %.3f\n" true_ratio;
  Printf.printf "(below 1.0: removing the flag genuinely helps on this machine)\n\n";

  let params = { Rating.default_params with window = 30; max_invocations = 4000 } in
  let compile config = Version.compile machine tsec.Tsection.features config in
  let v_slow = compile slow_config and v_fast = compile fast_config in

  (* each method rates the two versions back to back on a SHARED runner,
     so the fast version is measured on whatever workload mix follows the
     slow version's window — the adversarial situation for AVG *)
  let report name ratio = Printf.printf "  %-4s measures the ratio as %.3f\n" name ratio in

  let runner = Runner.create ~seed:101 tsec trace machine in
  (match profile.Profile.context with
  | Profile.Cbr_ok { sources; stats = s :: _; _ } ->
      let rate v = (Cbr.rate ~params runner ~sources ~target:s.Profile.values v).Rating.eval in
      report "CBR" (rate v_fast /. rate v_slow)
  | _ -> print_endline "  CBR inapplicable");

  let runner = Runner.create ~seed:101 tsec trace machine in
  let rate_mbr v =
    (Mbr.rate ~params runner ~components:profile.Profile.components
       ~avg_counts:profile.Profile.avg_component_counts
       ~dominant:profile.Profile.dominant_component v)
      .Rating.eval
  in
  report "MBR" (rate_mbr v_fast /. rate_mbr v_slow);

  let runner = Runner.create ~seed:101 tsec trace machine in
  report "RBR" (Rbr.rate ~params runner ~base:v_slow v_fast).Rating.eval;

  let runner = Runner.create ~seed:101 tsec trace machine in
  let rate_avg v = (Avg.rate ~params runner v).Rating.eval in
  report "AVG" (rate_avg v_fast /. rate_avg v_slow);

  Printf.printf
    "\nCBR, MBR and RBR track the true ratio; AVG's answer depends on where the\n\
     windows landed in the level mix, so across seeds it scatters widely:\n";
  let avg_ratios =
    List.map
      (fun seed ->
        let runner = Runner.create ~seed tsec trace machine in
        let rate v = (Avg.rate ~params runner v).Rating.eval in
        rate v_fast /. rate v_slow)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Printf.printf "  AVG ratios across 8 seeds: %s\n"
    (String.concat " " (List.map (Printf.sprintf "%.2f") avg_ratios));
  let arr = Array.of_list avg_ratios in
  Printf.printf "  spread: %.2f .. %.2f (true: %.3f)\n"
    (Array.fold_left Float.min arr.(0) arr)
    (Array.fold_left Float.max arr.(0) arr)
    true_ratio
