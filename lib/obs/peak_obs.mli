(** Structured tracing and metrics for tuning runs.

    A zero-dependency span/event tracer: monotonic-clock spans with
    parent ids, named instants, counters and duration accumulators, all
    stored in a bounded ring buffer behind a single installed sink.

    {b Off by default.}  Every entry point branches once on whether a
    sink is installed ([Atomic.get]); with no sink the calls are no-ops
    that allocate nothing, so instrumented code pays near-zero cost in
    production.  Tracing only ever {e observes} — span timestamps never
    feed back into tuning decisions, digests or stored results, so a
    traced run is bit-identical to an untraced one.

    The sink is process-global and domain-safe: events arriving from
    pool workers are serialized by an internal mutex.  Memory is bounded
    by the ring capacity — once full, the oldest completed events are
    overwritten and counted in {!dropped}. *)

type event =
  | Span of {
      id : int;  (** Unique per sink, 1-based; 0 means "no parent". *)
      parent : int;  (** Enclosing span id, or 0 at top level. *)
      name : string;  (** Deterministic identity, e.g. [rate:cbr:<digest>:a0]. *)
      cat : string;  (** Bounded-cardinality category for aggregation. *)
      tid : int;  (** Domain id that closed the span. *)
      ts : float;  (** Start, seconds since sink install (monotonic). *)
      dur : float;  (** Duration in seconds, never negative. *)
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }

type timing = { t_count : int; t_total : float (** seconds *) }

type span_stat = { s_count : int; s_total : float (** seconds *) }

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * int) list;  (** Last {!gauge} value per name, sorted. *)
  timings : (string * timing) list;  (** From {!observe}, sorted by name. *)
  span_stats : (string * span_stat) list;  (** Aggregated by span [cat]. *)
  events : int;  (** Completed events currently buffered. *)
  dropped : int;  (** Events overwritten after the ring filled. *)
  open_spans : int;  (** Spans begun but not yet ended. *)
}

val install : ?capacity:int -> unit -> unit
(** Install a fresh sink, enabling tracing.  [capacity] bounds the
    number of buffered completed events (default 65536, min 16).  An
    already-installed sink is replaced, discarding its events. *)

val uninstall : unit -> unit
(** Remove the sink; subsequent calls become no-ops again. *)

val active : unit -> bool
(** [true] iff a sink is installed. *)

val begin_span : ?parent:int -> ?cat:string -> ?args:(string * string) list -> string -> int
(** Open a span; returns its id, or 0 when tracing is off.  [parent] of
    0 (or an omitted parent) makes a top-level span. *)

val end_span : ?args:(string * string) list -> int -> unit
(** Close a span by id, appending [args] to those given at open.  Id 0
    and unknown ids are ignored, so a span begun while tracing was off
    closes harmlessly. *)

val with_span :
  ?parent:int -> ?cat:string -> ?args:(string * string) list -> string -> (int -> 'a) -> 'a
(** [with_span name f] runs [f span_id] inside a span, closing it on
    both normal return and exception (the failing span is tagged
    [raised=true]). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a point event. *)

val count : ?n:int -> string -> unit
(** Bump a named counter by [n] (default 1). *)

val gauge : string -> int -> unit
(** Set a named gauge to an absolute value — a level, not a total
    (queue depth, sessions in flight).  Unlike {!count} the previous
    value is overwritten; the snapshot and export carry the last value
    written.  Same single-branch no-op contract as every other entry
    point when tracing is off. *)

val observe : string -> float -> unit
(** Accumulate [seconds] into a named duration histogram (count + total). *)

val timed : string -> (unit -> 'a) -> 'a
(** [timed name f] runs [f ()], accumulating its wall-clock duration via
    {!observe} (also on exception).  When tracing is off this is exactly
    [f ()] — the clock is never read. *)

val dropped : unit -> int
(** Events lost to ring overwrite since install; 0 when off. *)

val snapshot : unit -> snapshot option
(** Aggregate view of the current sink; [None] when off. *)

val export : unit -> string option
(** Serialize the sink as a Chrome-trace-format JSON document
    ([traceEvents] with ["ph":"X"] spans and ["ph":"i"] instants,
    timestamps in microseconds; counters/gauges/timings/drop counts
    under [otherData]).  Spans still open at export time are emitted with the
    elapsed duration so far and tagged [unclosed=true].  [None] when
    off. *)
