type event =
  | Span of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      tid : int;
      ts : float;
      dur : float;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      tid : int;
      ts : float;
      args : (string * string) list;
    }

type timing = { t_count : int; t_total : float }

type span_stat = { s_count : int; s_total : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  timings : (string * timing) list;
  span_stats : (string * span_stat) list;
  events : int;
  dropped : int;
  open_spans : int;
}

type open_span = {
  o_parent : int;
  o_name : string;
  o_cat : string;
  o_tid : int;
  o_ts : float;
  o_args : (string * string) list;
}

type sink = {
  mutex : Mutex.t;
  t0 : float;  (* Unix.gettimeofday at install; all timestamps are relative *)
  mutable last : float;  (* clamp: the clock never runs backwards *)
  ring : event option array;
  mutable write : int;  (* next slot *)
  mutable count : int;  (* completed events buffered, <= capacity *)
  mutable lost : int;
  mutable next_id : int;
  open_spans : (int, open_span) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  timings : (string, (int ref * float ref)) Hashtbl.t;
}

let sink : sink option Atomic.t = Atomic.make None

let default_capacity = 65_536

let install ?(capacity = default_capacity) () =
  let capacity = max 16 capacity in
  Atomic.set sink
    (Some
       {
         mutex = Mutex.create ();
         t0 = Unix.gettimeofday ();
         last = 0.0;
         ring = Array.make capacity None;
         write = 0;
         count = 0;
         lost = 0;
         next_id = 1;
         open_spans = Hashtbl.create 64;
         counters = Hashtbl.create 64;
         gauges = Hashtbl.create 64;
         timings = Hashtbl.create 64;
       })

let uninstall () = Atomic.set sink None

let active () = Atomic.get sink <> None

(* Callers hold s.mutex.  Wall clock clamped to the last reading: a
   stepping NTP adjustment must not produce a negative span duration. *)
let now_locked s =
  let t = Unix.gettimeofday () -. s.t0 in
  if t > s.last then s.last <- t;
  s.last

let push_locked s ev =
  if s.ring.(s.write) <> None then s.lost <- s.lost + 1 else s.count <- s.count + 1;
  s.ring.(s.write) <- Some ev;
  s.write <- (s.write + 1) mod Array.length s.ring

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> f s)

let tid () = (Domain.self () :> int)

let begin_span ?(parent = 0) ?(cat = "") ?(args = []) name =
  match Atomic.get sink with
  | None -> 0
  | Some s ->
      locked s (fun s ->
          let id = s.next_id in
          s.next_id <- id + 1;
          Hashtbl.replace s.open_spans id
            {
              o_parent = parent;
              o_name = name;
              o_cat = cat;
              o_tid = tid ();
              o_ts = now_locked s;
              o_args = args;
            };
          id)

let end_span ?(args = []) id =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      if id <> 0 then
        locked s (fun s ->
            match Hashtbl.find_opt s.open_spans id with
            | None -> ()
            | Some o ->
                Hashtbl.remove s.open_spans id;
                let t = now_locked s in
                push_locked s
                  (Span
                     {
                       id;
                       parent = o.o_parent;
                       name = o.o_name;
                       cat = o.o_cat;
                       tid = o.o_tid;
                       ts = o.o_ts;
                       dur = Float.max 0.0 (t -. o.o_ts);
                       args = o.o_args @ args;
                     }))

let with_span ?parent ?cat ?args name f =
  let id = begin_span ?parent ?cat ?args name in
  match f id with
  | v ->
      end_span id;
      v
  | exception e ->
      end_span ~args:[ ("raised", "true") ] id;
      raise e

let instant ?(cat = "") ?(args = []) name =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      locked s (fun s ->
          push_locked s (Instant { name; cat; tid = tid (); ts = now_locked s; args }))

let count ?(n = 1) name =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      locked s (fun s ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> r := !r + n
          | None -> Hashtbl.replace s.counters name (ref n))

let gauge name value =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      locked s (fun s ->
          match Hashtbl.find_opt s.gauges name with
          | Some r -> r := value
          | None -> Hashtbl.replace s.gauges name (ref value))

let observe name seconds =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      locked s (fun s ->
          match Hashtbl.find_opt s.timings name with
          | Some (c, t) ->
              incr c;
              t := !t +. seconds
          | None -> Hashtbl.replace s.timings name (ref 1, ref seconds))

let timed name f =
  match Atomic.get sink with
  | None -> f ()
  | Some _ -> (
      let t0 = Unix.gettimeofday () in
      match f () with
      | v ->
          observe name (Unix.gettimeofday () -. t0);
          v
      | exception e ->
          observe name (Unix.gettimeofday () -. t0);
          raise e)

let dropped () =
  match Atomic.get sink with None -> 0 | Some s -> locked s (fun s -> s.lost)

(* Buffered events oldest-first.  Once the ring has wrapped, the oldest
   live event sits at the write cursor. *)
let events_locked s =
  let cap = Array.length s.ring in
  let start = if s.count < cap then 0 else s.write in
  let out = ref [] in
  for i = s.count - 1 downto 0 do
    match s.ring.((start + i) mod cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  match Atomic.get sink with
  | None -> None
  | Some s ->
      Some
        (locked s (fun s ->
             let stats = Hashtbl.create 16 in
             List.iter
               (function
                 | Span { cat; dur; _ } ->
                     let key = if cat = "" then "(uncategorized)" else cat in
                     let c, t =
                       match Hashtbl.find_opt stats key with
                       | Some ct -> ct
                       | None ->
                           let ct = (ref 0, ref 0.0) in
                           Hashtbl.replace stats key ct;
                           ct
                     in
                     incr c;
                     t := !t +. dur
                 | Instant _ -> ())
               (events_locked s);
             {
               counters = sorted_bindings s.counters (fun r -> !r);
               gauges = sorted_bindings s.gauges (fun r -> !r);
               timings =
                 sorted_bindings s.timings (fun (c, t) -> { t_count = !c; t_total = !t });
               span_stats =
                 sorted_bindings stats (fun (c, t) -> { s_count = !c; s_total = !t });
               events = s.count;
               dropped = s.lost;
               open_spans = Hashtbl.length s.open_spans;
             }))

(* --- Chrome-trace JSON serialization (dependency-free) --- *)

let escape buf str =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.add_char buf '"'

let add_us buf seconds = Buffer.add_string buf (Printf.sprintf "%.3f" (seconds *. 1e6))

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      escape buf v)
    args;
  Buffer.add_char buf '}'

let add_span buf ~first ~id ~parent ~name ~cat ~tid ~ts ~dur ~args =
  if not first then Buffer.add_string buf ",\n";
  Buffer.add_string buf "{\"name\":";
  escape buf name;
  Buffer.add_string buf ",\"cat\":";
  escape buf (if cat = "" then "default" else cat);
  Buffer.add_string buf ",\"ph\":\"X\",\"ts\":";
  add_us buf ts;
  Buffer.add_string buf ",\"dur\":";
  add_us buf dur;
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_char buf ',';
  add_args buf
    (("span_id", string_of_int id) :: ("parent_id", string_of_int parent) :: args);
  Buffer.add_char buf '}'

let export () =
  match Atomic.get sink with
  | None -> None
  | Some s ->
      Some
        (locked s (fun s ->
             let buf = Buffer.create 4096 in
             Buffer.add_string buf "{\"traceEvents\":[\n";
             let first = ref true in
             List.iter
               (fun ev ->
                 (match ev with
                 | Span { id; parent; name; cat; tid; ts; dur; args } ->
                     add_span buf ~first:!first ~id ~parent ~name ~cat ~tid ~ts ~dur ~args
                 | Instant { name; cat; tid; ts; args } ->
                     if not !first then Buffer.add_string buf ",\n";
                     Buffer.add_string buf "{\"name\":";
                     escape buf name;
                     Buffer.add_string buf ",\"cat\":";
                     escape buf (if cat = "" then "default" else cat);
                     Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
                     add_us buf ts;
                     Buffer.add_string buf ",\"pid\":1,\"tid\":";
                     Buffer.add_string buf (string_of_int tid);
                     Buffer.add_char buf ',';
                     add_args buf args;
                     Buffer.add_char buf '}');
                 first := false)
               (events_locked s);
             (* spans still open: emit with the duration so far, flagged so
                the summarizer can report them *)
             let opens =
               Hashtbl.fold (fun id o acc -> (id, o) :: acc) s.open_spans []
               |> List.sort (fun (a, _) (b, _) -> compare a b)
             in
             let t = now_locked s in
             List.iter
               (fun (id, o) ->
                 add_span buf ~first:!first ~id ~parent:o.o_parent ~name:o.o_name
                   ~cat:o.o_cat ~tid:o.o_tid ~ts:o.o_ts
                   ~dur:(Float.max 0.0 (t -. o.o_ts))
                   ~args:(o.o_args @ [ ("unclosed", "true") ]);
                 first := false)
               opens;
             Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
             Buffer.add_string buf "\"dropped\":";
             escape buf (string_of_int s.lost);
             Buffer.add_string buf ",\"open_spans\":";
             escape buf (string_of_int (Hashtbl.length s.open_spans));
             Buffer.add_string buf ",\"counters\":{";
             let cs = sorted_bindings s.counters (fun r -> !r) in
             List.iteri
               (fun i (k, v) ->
                 if i > 0 then Buffer.add_char buf ',';
                 escape buf k;
                 Buffer.add_char buf ':';
                 escape buf (string_of_int v))
               cs;
             Buffer.add_string buf "},\"gauges\":{";
             let gs = sorted_bindings s.gauges (fun r -> !r) in
             List.iteri
               (fun i (k, v) ->
                 if i > 0 then Buffer.add_char buf ',';
                 escape buf k;
                 Buffer.add_char buf ':';
                 escape buf (string_of_int v))
               gs;
             Buffer.add_string buf "},\"timings\":{";
             let ts' = sorted_bindings s.timings (fun (c, t) -> (!c, !t)) in
             List.iteri
               (fun i (k, (c, total)) ->
                 if i > 0 then Buffer.add_char buf ',';
                 escape buf k;
                 Buffer.add_char buf ':';
                 escape buf (Printf.sprintf "%d:%.6f" c total))
               ts';
             Buffer.add_string buf "}}}\n";
             Buffer.contents buf))
