type conn = { fd : Unix.file_descr; reader : Wire.reader }

let connect endpoint =
  match endpoint with
  | Wire.Unix_sock path -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { fd; reader = Wire.reader_of_fd fd }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e)))
  | Wire.Tcp (host, port) -> (
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> Some a
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> None
            | h -> Some h.Unix.h_addr_list.(0)
            | exception Not_found -> None)
      in
      match addr with
      | None -> Error ("cannot resolve host " ^ host)
      | Some addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
          | () -> Ok { fd; reader = Wire.reader_of_fd fd }
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "cannot connect to %s:%d: %s" host port
                   (Unix.error_message e))))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c req =
  match Wire.write_frame c.fd (Wire.request_to_json req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("cannot send request: " ^ Unix.error_message e)

let default_on_event (_ : Wire.event) = ()

(* Read frames until the next response, routing interleaved "ev" frames
   to [on_event]. *)
let rec next_response ?(on_event = default_on_event) c =
  match Wire.read_frame c.reader with
  | `Eof -> Error "connection closed by server"
  | `Overflow -> Error "server frame exceeds the size limit"
  | `Malformed e -> Error ("malformed server frame: " ^ e)
  | `Frame j -> (
      match Wire.frame_tag j with
      | Ok "ev" -> (
          match Wire.event_of_json j with
          | Ok ev ->
              on_event ev;
              next_response ~on_event c
          | Error e -> Error ("malformed event frame: " ^ e))
      | Ok "resp" -> Wire.response_of_json j
      | Ok tag -> Error ("unexpected frame type from server: " ^ tag)
      | Error e -> Error e)

let request ?on_event c req =
  let ( let* ) = Result.bind in
  let* () = send c req in
  next_response ?on_event c

type outcome =
  | Accepted_only of { id : string; resumed : int }
  | Finished of {
      id : string;
      resumed : int;
      result : Peak_store.Codec.session_result;
    }
  | Saturated of float

let run ?on_event c req =
  let ( let* ) = Result.bind in
  let mode =
    match req with
    | Wire.Submit sp -> Some sp.Wire.sb_mode
    | Wire.Resume { rs_mode; _ } -> Some rs_mode
    | _ -> None
  in
  let* first = request ?on_event c req in
  match first with
  | Wire.Rejected { rj_retry_after; _ } -> Ok (Saturated rj_retry_after)
  | Wire.Error_r e -> Error e
  | Wire.Result_r { rr_id; rr_result } ->
      (* a Stream_of/Resume of an already-completed session answers with
         the result directly *)
      Ok (Finished { id = rr_id; resumed = 0; result = rr_result })
  | Wire.Accepted { ac_id; ac_resumed } -> (
      match mode with
      | Some Wire.Detach | None -> Ok (Accepted_only { id = ac_id; resumed = ac_resumed })
      | Some (Wire.Wait | Wire.Stream) -> (
          let* final = next_response ?on_event c in
          match final with
          | Wire.Result_r { rr_id; rr_result } ->
              Ok (Finished { id = rr_id; resumed = ac_resumed; result = rr_result })
          | Wire.Error_r e -> Error e
          | other ->
              Error
                ("unexpected final response: "
                ^ Peak_store.Json.to_string (Wire.response_to_json other))))
  | other ->
      Error
        ("unexpected response: " ^ Peak_store.Json.to_string (Wire.response_to_json other))
