type ticket = { tk_serial : int; mutable tk_fresh : int }

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  capacity : int;
  quantum : int;
  active : (int, ticket) Hashtbl.t;
  mutable serial : int;
  mutable completed : int;
  mutable rejected : int;
  mutable ewma : float;  (* seconds per completed session, 0 until one finishes *)
  mutable closed : bool;
}

type verdict = Admitted of ticket | Saturated of float

type stats = { a_active : int; a_capacity : int; a_completed : int; a_rejected : int }

let create ~capacity ~quantum =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  if quantum < 1 then invalid_arg "Admission.create: quantum must be >= 1";
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    capacity;
    quantum;
    active = Hashtbl.create 32;
    serial = 0;
    completed = 0;
    rejected = 0;
    ewma = 0.0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let note_inflight t = Peak_obs.gauge "serve.inflight" (Hashtbl.length t.active)

(* A saturated submit is told when to come back: roughly when the next
   active session should finish, from the EWMA of completed session
   wall times.  Before any completion there is no estimate — quote a
   small constant so clients retry promptly. *)
let retry_after t =
  let per_session = if t.ewma > 0.0 then t.ewma else 0.05 in
  Float.max 0.01 (per_session /. float_of_int t.capacity)

let try_admit t =
  locked t @@ fun () ->
  if t.closed || Hashtbl.length t.active >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Peak_obs.count "serve.rejected";
    Saturated (retry_after t)
  end
  else begin
    t.serial <- t.serial + 1;
    let tk = { tk_serial = t.serial; tk_fresh = 0 } in
    Hashtbl.replace t.active tk.tk_serial tk;
    Peak_obs.count "serve.admitted";
    note_inflight t;
    Admitted tk
  end

let min_active_fresh t =
  Hashtbl.fold (fun _ tk acc -> min acc tk.tk_fresh) t.active max_int

let default_abort () = false

let charge t tk ?(abort = default_abort) ~fresh () =
  locked t @@ fun () ->
  tk.tk_fresh <- fresh;
  (* this ticket's advance may have raised the minimum — re-evaluate
     everyone blocked on it *)
  Condition.broadcast t.cond;
  while
    (not t.closed) && (not (abort ()))
    && Hashtbl.mem t.active tk.tk_serial
    && tk.tk_fresh > min_active_fresh t + t.quantum
  do
    Condition.wait t.cond t.mutex
  done

let release t tk ~wall =
  locked t @@ fun () ->
  if Hashtbl.mem t.active tk.tk_serial then begin
    Hashtbl.remove t.active tk.tk_serial;
    t.completed <- t.completed + 1;
    t.ewma <- (if t.ewma = 0.0 then wall else (0.8 *. t.ewma) +. (0.2 *. wall));
    note_inflight t;
    Condition.broadcast t.cond
  end

let kick t = locked t @@ fun () -> Condition.broadcast t.cond

let close t =
  locked t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.cond

let stats t =
  locked t @@ fun () ->
  {
    a_active = Hashtbl.length t.active;
    a_capacity = t.capacity;
    a_completed = t.completed;
    a_rejected = t.rejected;
  }
