(** The tuning service's wire protocol.

    Newline-delimited JSON frames over a stream socket, in the store
    codec's style: every frame is one line carrying the protocol
    version ([v]) and a frame type tag ([t] — ["req"], ["resp"] or
    ["ev"]); decoders reject versions newer than {!version} with a
    one-line error.  Floats round-trip exactly through
    {!Peak_store.Codec.float_to_json}, so a session result received
    over the wire is byte-identical (re-serialized) to the store's
    [result.json] — the property the client fleet's bit-identity
    checks build on.

    A connection carries any number of requests.  Responses to one
    request arrive in order; in {!Stream} mode, progress {!event}
    frames (mirroring {!Peak_obs} instant/counter/span shapes) are
    interleaved before the final response. *)

val version : int
(** Current protocol version (1). *)

val max_frame : int
(** Maximum accepted frame length in bytes (1 MiB).  An over-long line
    is unrecoverable ([`Overflow]) — the connection must be closed. *)

(** {1 Endpoints} *)

type endpoint = Unix_sock of string | Tcp of string * int

val endpoint_of_string : string -> (endpoint, string) result
(** Parse ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val endpoint_to_string : endpoint -> string

(** {1 Protocol types} *)

type mode =
  | Detach  (** Reply [Accepted] and return; poll with [Status_of]. *)
  | Wait  (** Reply [Accepted], then the final [Result_r]/[Error_r]. *)
  | Stream  (** As [Wait], with progress events interleaved. *)

type submit_spec = {
  sb_benchmark : string;
  sb_machine : string;
  sb_dataset : string;  (** ["train"] or ["ref"]. *)
  sb_search : string;
      (** A {!Peak.Strategy.of_string} spelling — the submit carries the
          search strategy so a daemon run matches batch byte-for-byte. *)
  sb_method : string;  (** A method key or ["auto"]. *)
  sb_seed : int;
  sb_cap : int option;  (** Per-rating invocation cap; [None] = default. *)
  sb_mode : mode;
}

type request =
  | Submit of submit_spec
  | Resume of { rs_id : string; rs_mode : mode }
      (** Re-run a stored session by id; parameters are rebuilt from its
          stored metadata, so completed ratings replay instantly. *)
  | Status_of of string
  | Stream_of of string  (** Attach to a running session's progress. *)
  | Cancel_of of string
  | Stats_req
  | Ping

type state = Running | Done | Failed | Cancelled | Idle

val state_to_string : state -> string
val state_of_string : string -> (state, string) result

type status = { st_id : string; st_state : state; st_ratings : int }

type server_stats = {
  ss_active : int;  (** Sessions currently admitted. *)
  ss_capacity : int;  (** Admission bound. *)
  ss_completed : int;
  ss_rejected : int;
  ss_domains : int;  (** Pool width the sessions multiplex onto. *)
}

type response =
  | Accepted of { ac_id : string; ac_resumed : int }
      (** Session admitted (or attached); [ac_resumed] is the number of
          journal events replayed at open — [0] for a fresh session. *)
  | Rejected of { rj_id : string; rj_retry_after : float }
      (** Admission control is saturated; retry after the given number
          of seconds.  Never blocks the client. *)
  | Status_r of status
  | Result_r of { rr_id : string; rr_result : Peak_store.Codec.session_result }
  | Cancel_ack of string
  | Stats_r of server_stats
  | Pong
  | Error_r of string
      (** Typed one-line failure — malformed frames, unknown names,
          failed or cancelled sessions.  The connection stays usable
          (except after [`Overflow]). *)

type event =
  | Ev_instant of { ei_name : string; ei_args : (string * string) list }
  | Ev_counter of { ec_name : string; ec_value : int }
  | Ev_span of { es_name : string; es_dur : float; es_args : (string * string) list }

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

(** {1 Codecs} — [of_json] returns [Error] with a one-line reason. *)

val request_to_json : request -> Peak_store.Json.t
val request_of_json : Peak_store.Json.t -> (request, string) result
val response_to_json : response -> Peak_store.Json.t
val response_of_json : Peak_store.Json.t -> (response, string) result
val event_to_json : event -> Peak_store.Json.t
val event_of_json : Peak_store.Json.t -> (event, string) result

val frame_tag : Peak_store.Json.t -> (string, string) result
(** The frame's [t] tag (["req"] / ["resp"] / ["ev"]) — how a client
    distinguishes interleaved events from the final response. *)

(** {1 Framing} *)

type reader

val reader_of_fd : Unix.file_descr -> reader

val read_frame :
  reader ->
  [ `Frame of Peak_store.Json.t  (** One decoded frame. *)
  | `Malformed of string  (** Undecodable line; the stream continues. *)
  | `Overflow  (** Line over {!max_frame}; close the connection. *)
  | `Eof ]
(** Block until one full line is available and decode it.  Empty lines
    are skipped; a read error on the fd reads as end-of-stream. *)

val write_frame : Unix.file_descr -> Peak_store.Json.t -> unit
(** Write one frame and its newline, handling short writes.
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE]). *)
