open Peak_store

let version = 1
let max_frame = 1_048_576

let ( let* ) r f = Result.bind r f

(* ---------------- endpoints ---------------- *)

type endpoint = Unix_sock of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  let prefixed p =
    let n = String.length p in
    if String.length s > n && String.sub s 0 n = p then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match prefixed "unix:" with
  | Some path when path <> "" -> Ok (Unix_sock path)
  | Some _ -> Error "unix: endpoint needs a socket path"
  | None -> (
      match prefixed "tcp:" with
      | None -> Error (Printf.sprintf "%S: expected unix:PATH or tcp:HOST:PORT" s)
      | Some rest -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp: endpoint needs HOST:PORT"
          | Some i -> (
              let host = String.sub rest 0 i in
              let port = String.sub rest (i + 1) (String.length rest - i - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "%S: bad tcp host or port" s))))

(* ---------------- protocol types ---------------- *)

type mode = Detach | Wait | Stream

type submit_spec = {
  sb_benchmark : string;
  sb_machine : string;
  sb_dataset : string;
  sb_search : string;
  sb_method : string;
  sb_seed : int;
  sb_cap : int option;
  sb_mode : mode;
}

type request =
  | Submit of submit_spec
  | Resume of { rs_id : string; rs_mode : mode }
  | Status_of of string
  | Stream_of of string
  | Cancel_of of string
  | Stats_req
  | Ping

type state = Running | Done | Failed | Cancelled | Idle

type status = { st_id : string; st_state : state; st_ratings : int }

type server_stats = {
  ss_active : int;
  ss_capacity : int;
  ss_completed : int;
  ss_rejected : int;
  ss_domains : int;
}

type response =
  | Accepted of { ac_id : string; ac_resumed : int }
  | Rejected of { rj_id : string; rj_retry_after : float }
  | Status_r of status
  | Result_r of { rr_id : string; rr_result : Codec.session_result }
  | Cancel_ack of string
  | Stats_r of server_stats
  | Pong
  | Error_r of string

type event =
  | Ev_instant of { ei_name : string; ei_args : (string * string) list }
  | Ev_counter of { ec_name : string; ec_value : int }
  | Ev_span of { es_name : string; es_dur : float; es_args : (string * string) list }

(* ---------------- codecs ----------------
   Same discipline as the store codec: every frame carries the protocol
   version and a type tag, decoders reject the future with a one-line
   error, floats round-trip exactly through [Codec.float_to_json]. *)

let envelope tag fields =
  Json.Obj (("v", Json.Int version) :: ("t", Json.String tag) :: fields)

let checked tag v =
  match Json.get_int "v" v with
  | Error _ -> Error "missing protocol version"
  | Ok n when n > version ->
      Error (Printf.sprintf "protocol v%d is newer than v%d" n version)
  | Ok _ ->
      let* t = Json.get_str "t" v in
      if t = tag then Ok ()
      else Error (Printf.sprintf "expected a %S frame, got %S" tag t)

let frame_tag v = Json.get_str "t" v

let mode_to_string = function Detach -> "detach" | Wait -> "wait" | Stream -> "stream"

let mode_of_string = function
  | "detach" -> Ok Detach
  | "wait" -> Ok Wait
  | "stream" -> Ok Stream
  | other -> Error (Printf.sprintf "unknown mode %S (detach | wait | stream)" other)

let state_to_string = function
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"
  | Idle -> "idle"

let state_of_string = function
  | "running" -> Ok Running
  | "done" -> Ok Done
  | "failed" -> Ok Failed
  | "cancelled" -> Ok Cancelled
  | "idle" -> Ok Idle
  | other -> Error (Printf.sprintf "unknown session state %S" other)

let args_to_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)

let args_of_json v =
  match v with
  | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, jv) ->
          let* acc = acc in
          let* s = Json.to_str jv in
          Ok ((k, s) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
  | _ -> Error "event args: expected an object"

let request_to_json req =
  match req with
  | Submit sp ->
      envelope "req"
        ([
           ("op", Json.String "submit");
           ("benchmark", Json.String sp.sb_benchmark);
           ("machine", Json.String sp.sb_machine);
           ("dataset", Json.String sp.sb_dataset);
           ("search", Json.String sp.sb_search);
           ("method", Json.String sp.sb_method);
           ("seed", Json.Int sp.sb_seed);
           ("mode", Json.String (mode_to_string sp.sb_mode));
         ]
        @ match sp.sb_cap with None -> [] | Some n -> [ ("cap", Json.Int n) ])
  | Resume { rs_id; rs_mode } ->
      envelope "req"
        [
          ("op", Json.String "resume");
          ("id", Json.String rs_id);
          ("mode", Json.String (mode_to_string rs_mode));
        ]
  | Status_of id -> envelope "req" [ ("op", Json.String "status"); ("id", Json.String id) ]
  | Stream_of id -> envelope "req" [ ("op", Json.String "stream"); ("id", Json.String id) ]
  | Cancel_of id -> envelope "req" [ ("op", Json.String "cancel"); ("id", Json.String id) ]
  | Stats_req -> envelope "req" [ ("op", Json.String "stats") ]
  | Ping -> envelope "req" [ ("op", Json.String "ping") ]

let request_of_json v =
  let* () = checked "req" v in
  let* op = Json.get_str "op" v in
  match op with
  | "submit" ->
      let* sb_benchmark = Json.get_str "benchmark" v in
      let* sb_machine = Json.get_str "machine" v in
      let* sb_dataset = Json.get_str "dataset" v in
      let* sb_search = Json.get_str "search" v in
      let* sb_method = Json.get_str "method" v in
      let* sb_seed = Json.get_int "seed" v in
      let* sb_mode =
        let* m = Json.get_str "mode" v in
        mode_of_string m
      in
      let* sb_cap =
        match Json.member "cap" v with
        | Error _ -> Ok None
        | Ok jv ->
            let* n = Json.to_int jv in
            if n >= 1 then Ok (Some n) else Error "member \"cap\": must be >= 1"
      in
      Ok (Submit { sb_benchmark; sb_machine; sb_dataset; sb_search; sb_method; sb_seed; sb_cap; sb_mode })
  | "resume" ->
      let* rs_id = Json.get_str "id" v in
      let* rs_mode =
        let* m = Json.get_str "mode" v in
        mode_of_string m
      in
      Ok (Resume { rs_id; rs_mode })
  | "status" ->
      let* id = Json.get_str "id" v in
      Ok (Status_of id)
  | "stream" ->
      let* id = Json.get_str "id" v in
      Ok (Stream_of id)
  | "cancel" ->
      let* id = Json.get_str "id" v in
      Ok (Cancel_of id)
  | "stats" -> Ok Stats_req
  | "ping" -> Ok Ping
  | other -> Error (Printf.sprintf "unknown op %S" other)

let response_to_json resp =
  match resp with
  | Accepted { ac_id; ac_resumed } ->
      envelope "resp"
        [
          ("r", Json.String "accepted");
          ("id", Json.String ac_id);
          ("resumed", Json.Int ac_resumed);
        ]
  | Rejected { rj_id; rj_retry_after } ->
      envelope "resp"
        [
          ("r", Json.String "rejected");
          ("id", Json.String rj_id);
          ("retry_after", Codec.float_to_json rj_retry_after);
        ]
  | Status_r st ->
      envelope "resp"
        [
          ("r", Json.String "status");
          ("id", Json.String st.st_id);
          ("state", Json.String (state_to_string st.st_state));
          ("ratings", Json.Int st.st_ratings);
        ]
  | Result_r { rr_id; rr_result } ->
      envelope "resp"
        [
          ("r", Json.String "result");
          ("id", Json.String rr_id);
          ("result", Codec.session_result_to_json rr_result);
        ]
  | Cancel_ack id -> envelope "resp" [ ("r", Json.String "cancelled"); ("id", Json.String id) ]
  | Stats_r ss ->
      envelope "resp"
        [
          ("r", Json.String "stats");
          ("active", Json.Int ss.ss_active);
          ("capacity", Json.Int ss.ss_capacity);
          ("completed", Json.Int ss.ss_completed);
          ("rejected", Json.Int ss.ss_rejected);
          ("domains", Json.Int ss.ss_domains);
        ]
  | Pong -> envelope "resp" [ ("r", Json.String "pong") ]
  | Error_r msg -> envelope "resp" [ ("r", Json.String "error"); ("error", Json.String msg) ]

let response_of_json v =
  let* () = checked "resp" v in
  let* r = Json.get_str "r" v in
  match r with
  | "accepted" ->
      let* ac_id = Json.get_str "id" v in
      let* ac_resumed = Json.get_int "resumed" v in
      Ok (Accepted { ac_id; ac_resumed })
  | "rejected" ->
      let* rj_id = Json.get_str "id" v in
      let* retry = Json.member "retry_after" v in
      let* rj_retry_after = Codec.float_of_json retry in
      if Float.is_finite rj_retry_after && rj_retry_after >= 0.0 then
        Ok (Rejected { rj_id; rj_retry_after })
      else Error "member \"retry_after\": must be finite and non-negative"
  | "status" ->
      let* st_id = Json.get_str "id" v in
      let* st_state =
        let* s = Json.get_str "state" v in
        state_of_string s
      in
      let* st_ratings = Json.get_int "ratings" v in
      Ok (Status_r { st_id; st_state; st_ratings })
  | "result" ->
      let* rr_id = Json.get_str "id" v in
      let* rv = Json.member "result" v in
      let* rr_result = Codec.session_result_of_json rv in
      Ok (Result_r { rr_id; rr_result })
  | "cancelled" ->
      let* id = Json.get_str "id" v in
      Ok (Cancel_ack id)
  | "stats" ->
      let* ss_active = Json.get_int "active" v in
      let* ss_capacity = Json.get_int "capacity" v in
      let* ss_completed = Json.get_int "completed" v in
      let* ss_rejected = Json.get_int "rejected" v in
      let* ss_domains = Json.get_int "domains" v in
      Ok (Stats_r { ss_active; ss_capacity; ss_completed; ss_rejected; ss_domains })
  | "pong" -> Ok Pong
  | "error" ->
      let* msg = Json.get_str "error" v in
      Ok (Error_r msg)
  | other -> Error (Printf.sprintf "unknown response kind %S" other)

(* Streamed progress mirrors the tracer's event shapes (instant /
   counter / span), so a client can treat the stream as a remote
   [Peak_obs] feed. *)
let event_to_json ev =
  match ev with
  | Ev_instant { ei_name; ei_args } ->
      envelope "ev"
        [
          ("ev", Json.String "instant");
          ("name", Json.String ei_name);
          ("args", args_to_json ei_args);
        ]
  | Ev_counter { ec_name; ec_value } ->
      envelope "ev"
        [
          ("ev", Json.String "counter");
          ("name", Json.String ec_name);
          ("value", Json.Int ec_value);
        ]
  | Ev_span { es_name; es_dur; es_args } ->
      envelope "ev"
        [
          ("ev", Json.String "span");
          ("name", Json.String es_name);
          ("dur", Codec.float_to_json es_dur);
          ("args", args_to_json es_args);
        ]

let event_of_json v =
  let* () = checked "ev" v in
  let* kind = Json.get_str "ev" v in
  match kind with
  | "instant" ->
      let* ei_name = Json.get_str "name" v in
      let* a = Json.member "args" v in
      let* ei_args = args_of_json a in
      Ok (Ev_instant { ei_name; ei_args })
  | "counter" ->
      let* ec_name = Json.get_str "name" v in
      let* ec_value = Json.get_int "value" v in
      Ok (Ev_counter { ec_name; ec_value })
  | "span" ->
      let* es_name = Json.get_str "name" v in
      let* d = Json.member "dur" v in
      let* es_dur = Codec.float_of_json d in
      let* es_dur =
        if Float.is_finite es_dur && es_dur >= 0.0 then Ok es_dur
        else Error "member \"dur\": must be finite and non-negative"
      in
      let* a = Json.member "args" v in
      let* es_args = args_of_json a in
      Ok (Ev_span { es_name; es_dur; es_args })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

(* ---------------- framing ----------------
   Newline-delimited JSON.  The reader buffers raw bytes off the fd and
   hands back one decoded frame at a time; a line over [max_frame] is an
   [`Overflow] (the stream cannot be resynchronized, the caller must
   close), any other undecodable line is a recoverable [`Malformed]. *)

type reader = { fd : Unix.file_descr; pending : Buffer.t; mutable eof : bool }

let reader_of_fd fd = { fd; pending = Buffer.create 4096; eof = false }

let chunk_size = 65536

let rec read_frame r =
  let s = Buffer.contents r.pending in
  match String.index_opt s '\n' with
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.pending;
      Buffer.add_substring r.pending s (i + 1) (String.length s - i - 1);
      if String.length line > max_frame then `Overflow
      else if String.trim line = "" then read_frame r
      else (
        match Json.of_string line with
        | Ok j -> `Frame j
        | Error e -> `Malformed e)
  | None ->
      if r.eof then
        if Buffer.length r.pending = 0 then `Eof
        else begin
          Buffer.clear r.pending;
          `Malformed "truncated frame at end of stream"
        end
      else if Buffer.length r.pending > max_frame then `Overflow
      else begin
        let bytes = Bytes.create chunk_size in
        match Unix.read r.fd bytes 0 chunk_size with
        | 0 ->
            r.eof <- true;
            read_frame r
        | n ->
            Buffer.add_subbytes r.pending bytes 0 n;
            read_frame r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame r
        | exception Unix.Unix_error (_, _, _) ->
            r.eof <- true;
            read_frame r
      end

let write_frame fd j =
  let line = Json.to_string j ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0
