open Peak_machine
open Peak_workload
open Peak

let ( let* ) r f = Result.bind r f

let ( // ) = Filename.concat

exception Aborted of string
(* raised from the driver's progress callback to stop a session; the
   store journal is consistent at every callback point, so an aborted
   session resumes bit-identically *)

type config = {
  store : string;
  endpoint : Wire.endpoint;
  domains : int;
  max_sessions : int;
  quantum : int;
}

type session_state =
  | Running
  | Done of Peak_store.Codec.session_result
  | Failed of string
  | Cancelled of string

type entry = {
  e_id : string;
  e_mutex : Mutex.t;
  e_cond : Condition.t;
  mutable e_state : session_state;
  mutable e_ratings : int;
  mutable e_fresh : int;
  mutable e_resumed : int;  (* -1 until the session journal is open *)
  e_cancel : bool Atomic.t;
}

type t = {
  cfg : config;
  lock_fd : Unix.file_descr;
  pool : Peak_util.Pool.t;
  adm : Admission.t;
  lsock : Unix.file_descr;
  stopping : bool Atomic.t;
  reg_mutex : Mutex.t;
  registry : (string, entry) Hashtbl.t;
  mutable runners : Thread.t list;  (* guarded by reg_mutex *)
  conn_mutex : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
}

(* ---------------- name resolution ----------------
   The server resolves benchmark/machine/dataset/search/method names
   itself (the wire carries strings), with the CLI's spellings. *)

type job = {
  j_benchmark : Benchmark.t;
  j_machine : Machine.t;
  j_dataset : Trace.dataset;
  j_strategy : Strategy.t;
  j_method : Method.t option;
  j_params : Rating.params;
  j_threshold : float;
  j_seed : int;
  j_faults : Peak_sim.Fault.t option;
}

let find_benchmark name =
  match Registry.by_name name with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %s (valid: %s)" name
           (String.concat ", "
              (List.sort String.compare
                 (List.map (fun b -> b.Benchmark.name) Registry.all))))

let find_machine name =
  match Machine.by_name name with
  | Some m -> Ok m
  | None -> (
      match String.lowercase_ascii name with
      | "sparc2" | "sparc" -> Ok Machine.sparc2
      | "pentium4" | "p4" -> Ok Machine.pentium4
      | _ -> Error (Printf.sprintf "unknown machine %s (sparc2 | pentium4)" name))

let find_dataset name =
  match String.lowercase_ascii name with
  | "train" -> Ok Trace.Train
  | "ref" -> Ok Trace.Ref
  | other -> Error ("unknown dataset " ^ other ^ " (train | ref)")

let find_method name =
  if String.lowercase_ascii name = "auto" then Ok None
  else
    match Method.of_string name with
    | Some m -> Ok (Some m)
    | None ->
        Error
          (Printf.sprintf "unknown rating method %s (valid: auto, %s)" name
             (String.concat ", " Method.keys))

let job_of_spec (sp : Wire.submit_spec) =
  let* j_benchmark = find_benchmark sp.Wire.sb_benchmark in
  let* j_machine = find_machine sp.Wire.sb_machine in
  let* j_dataset = find_dataset sp.Wire.sb_dataset in
  let* j_strategy = Strategy.of_string sp.Wire.sb_search in
  let* j_method = find_method sp.Wire.sb_method in
  let* j_params =
    match sp.Wire.sb_cap with
    | None -> Ok Rating.default_params
    | Some n when n >= 1 -> Ok { Rating.default_params with Rating.max_invocations = n }
    | Some _ -> Error "rating cap must be >= 1"
  in
  Ok
    {
      j_benchmark;
      j_machine;
      j_dataset;
      j_strategy;
      j_method;
      j_params;
      j_threshold = 0.005;
      j_seed = sp.Wire.sb_seed;
      j_faults = None;
    }

(* Resume rebuilds the job from the session's stored metadata — same
   recipe as the CLI's [session resume], so daemon-side resume is
   bit-identical to batch-side resume. *)
let job_of_stored ~dir id =
  let* info = Peak_store.Session.load_info ~dir ~id in
  let m = info.Peak_store.Session.info_meta in
  let* j_benchmark = find_benchmark m.Peak_store.Codec.m_benchmark in
  let* j_machine = find_machine m.Peak_store.Codec.m_machine in
  let* j_dataset = find_dataset m.Peak_store.Codec.m_dataset in
  let* j_strategy = Strategy.of_string m.Peak_store.Codec.m_search in
  let* j_method = find_method m.Peak_store.Codec.m_method in
  let* j_params =
    match Rating.params_of_signature m.Peak_store.Codec.m_params with
    | Some p -> Ok p
    | None ->
        Error ("session has unreadable rating parameters: " ^ m.Peak_store.Codec.m_params)
  in
  let* j_faults =
    match m.Peak_store.Codec.m_faults with
    | "-" -> Ok None
    | spec -> (
        match Peak_sim.Fault.of_string spec with
        | Ok plan -> Ok (Some plan)
        | Error e -> Error ("session has an unreadable fault plan: " ^ e))
  in
  Ok
    {
      j_benchmark;
      j_machine;
      j_dataset;
      j_strategy;
      j_method;
      j_params;
      j_threshold = m.Peak_store.Codec.m_threshold;
      j_seed = m.Peak_store.Codec.m_seed;
      j_faults;
    }

let meta_of_job job =
  Driver.session_meta ?method_:job.j_method ~strategy:job.j_strategy
    ~rating_params:job.j_params ~threshold:job.j_threshold ~seed:job.j_seed
    ?faults:job.j_faults job.j_benchmark job.j_machine job.j_dataset

(* ---------------- lifecycle ---------------- *)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let lock_path store = store // ".peak-tuned.lock"

(* fcntl locks do not conflict within one process, so lockf alone cannot
   stop two in-process daemons (a test harness, a library embedder) from
   sharing a store — this table covers the intra-process half. *)
let held_stores : (string, unit) Hashtbl.t = Hashtbl.create 4
let held_mutex = Mutex.create ()

let acquire_store_lock store =
  Mutex.lock held_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock held_mutex) @@ fun () ->
  if Hashtbl.mem held_stores store then
    Error (Printf.sprintf "store %s is already served by another peak-tuned" store)
  else
    let fd = Unix.openfile (lock_path store) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 in
    match Unix.lockf fd Unix.F_TLOCK 0 with
    | () ->
        (* informational: which pid serves the store *)
        ignore (Unix.ftruncate fd 0);
        let pid = string_of_int (Unix.getpid ()) ^ "\n" in
        ignore (Unix.write_substring fd pid 0 (String.length pid));
        Hashtbl.replace held_stores store ();
        Ok fd
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "store %s is already served by another peak-tuned" store)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot lock store %s: %s" store (Unix.error_message e))

let release_store_lock store fd =
  Mutex.lock held_mutex;
  Hashtbl.remove held_stores store;
  Mutex.unlock held_mutex;
  try Unix.close fd with Unix.Unix_error _ -> ()

let listen_on endpoint =
  match endpoint with
  | Wire.Unix_sock path ->
      (* the store lock guarantees we are the only daemon for this
         store; any existing socket file is a previous instance's
         leftover *)
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.bind fd (Unix.ADDR_UNIX path) with
      | () ->
          Unix.listen fd 64;
          Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | Wire.Tcp (host, port) -> (
      let* addr =
        match Unix.inet_addr_of_string host with
        | a -> Ok a
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> Error ("cannot resolve host " ^ host)
            | h -> Ok h.Unix.h_addr_list.(0)
            | exception Not_found -> Error ("cannot resolve host " ^ host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match Unix.bind fd (Unix.ADDR_INET (addr, port)) with
      | () ->
          Unix.listen fd 64;
          Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message e)))

let create cfg =
  if cfg.domains < 1 then invalid_arg "Daemon.create: domains must be >= 1";
  (match mkdir_p cfg.store with
  | () -> ()
  | exception Sys_error _ | (exception Unix.Unix_error _) -> ());
  let* lock_fd = acquire_store_lock cfg.store in
  match listen_on cfg.endpoint with
  | Error e ->
      release_store_lock cfg.store lock_fd;
      Error e
  | Ok lsock ->
      (* a client vanishing mid-write must surface as EPIPE, not kill
         the daemon *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
      Ok
        {
          cfg;
          lock_fd;
          pool = Peak_util.Pool.create ~domains:cfg.domains;
          adm = Admission.create ~capacity:cfg.max_sessions ~quantum:cfg.quantum;
          lsock;
          stopping = Atomic.make false;
          reg_mutex = Mutex.create ();
          registry = Hashtbl.create 64;
          runners = [];
          conn_mutex = Mutex.create ();
          conns = [];
        }

let stop t = Atomic.set t.stopping true
(* only an atomic set — safe to call from a signal handler *)

let endpoint t = t.cfg.endpoint

(* ---------------- running one session ---------------- *)

let set_state entry st =
  Mutex.lock entry.e_mutex;
  entry.e_state <- st;
  Condition.broadcast entry.e_cond;
  Mutex.unlock entry.e_mutex

let run_session t entry job ticket =
  let t0 = Unix.gettimeofday () in
  let meta = meta_of_job job in
  let abort () = Atomic.get entry.e_cancel || Atomic.get t.stopping in
  let outcome =
    match Peak_store.Session.open_ ~dir:t.cfg.store ~meta () with
    | Error e -> Failed e
    | Ok session ->
        Mutex.lock entry.e_mutex;
        entry.e_resumed <- Peak_store.Session.loaded_events session;
        Condition.broadcast entry.e_cond;
        Mutex.unlock entry.e_mutex;
        let progress ~ratings ~fresh =
          if Atomic.get entry.e_cancel then raise (Aborted "cancelled");
          if Atomic.get t.stopping then raise (Aborted "daemon stopping");
          Mutex.lock entry.e_mutex;
          entry.e_ratings <- ratings;
          entry.e_fresh <- fresh;
          Condition.broadcast entry.e_cond;
          Mutex.unlock entry.e_mutex;
          Admission.charge t.adm ticket ~abort ~fresh ()
        in
        Fun.protect
          ~finally:(fun () -> Peak_store.Session.close session)
          (fun () ->
            match
              Driver.tune ~seed:job.j_seed ~strategy:job.j_strategy
                ~rating_params:job.j_params ~threshold:job.j_threshold
                ?method_:job.j_method ~pool:t.pool ~store:session
                ?faults:job.j_faults ~progress job.j_benchmark job.j_machine
                job.j_dataset
            with
            | r -> Done (Driver.result_summary r)
            | exception Aborted why -> Cancelled why
            | exception e -> Failed (Printexc.to_string e))
  in
  Admission.release t.adm ticket ~wall:(Unix.gettimeofday () -. t0);
  Peak_obs.count "serve.sessions";
  set_state entry outcome

type admit_outcome =
  | Started of entry
  | Attached of entry
  | Busy of float
  | Refused of string

(* One registry slot per session id: a submit for a running id attaches
   to it (no second admission charge); a submit for a terminal or
   unknown id re-runs it — with the store, a re-run of a completed
   session replays entirely and finishes in milliseconds, so re-submit
   is a cheap idempotent "ensure done". *)
let start_or_attach t job =
  let id = (meta_of_job job).Peak_store.Codec.m_id in
  Mutex.lock t.reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_mutex) @@ fun () ->
  if Atomic.get t.stopping then Refused "daemon is stopping"
  else
    let running =
      match Hashtbl.find_opt t.registry id with
      | Some e ->
          Mutex.lock e.e_mutex;
          let r = e.e_state = Running in
          Mutex.unlock e.e_mutex;
          if r then Some e else None
      | None -> None
    in
    match running with
    | Some e -> Attached e
    | None -> (
        match Admission.try_admit t.adm with
        | Admission.Saturated retry_after -> Busy retry_after
        | Admission.Admitted ticket ->
            let entry =
              {
                e_id = id;
                e_mutex = Mutex.create ();
                e_cond = Condition.create ();
                e_state = Running;
                e_ratings = 0;
                e_fresh = 0;
                e_resumed = -1;
                e_cancel = Atomic.make false;
              }
            in
            Hashtbl.replace t.registry id entry;
            let th = Thread.create (fun () -> run_session t entry job ticket) () in
            t.runners <- th :: t.runners;
            Started entry)

(* ---------------- per-connection protocol ---------------- *)

let wire_state = function
  | Running -> Wire.Running
  | Done _ -> Wire.Done
  | Failed _ -> Wire.Failed
  | Cancelled _ -> Wire.Cancelled

(* wait until the runner has opened the session (so Accepted reports an
   accurate replay count) or died trying *)
let wait_open entry =
  Mutex.lock entry.e_mutex;
  while entry.e_resumed < 0 && entry.e_state = Running do
    Condition.wait entry.e_cond entry.e_mutex
  done;
  let resumed = entry.e_resumed and state = entry.e_state in
  Mutex.unlock entry.e_mutex;
  (resumed, state)

let wait_terminal entry =
  Mutex.lock entry.e_mutex;
  while entry.e_state = Running do
    Condition.wait entry.e_cond entry.e_mutex
  done;
  let state = entry.e_state in
  Mutex.unlock entry.e_mutex;
  state

let send_final send entry state =
  match state with
  | Done r -> send (Wire.Result_r { rr_id = entry.e_id; rr_result = r })
  | Failed msg -> send (Wire.Error_r (Printf.sprintf "session %s failed: %s" entry.e_id msg))
  | Cancelled why ->
      send (Wire.Error_r (Printf.sprintf "session %s cancelled: %s" entry.e_id why))
  | Running -> assert false

(* Stream progress as obs-shaped events: a counter frame whenever the
   session's rating count advances, closed by a span frame.  The socket
   write happens outside the entry mutex. *)
let stream_progress send_event entry =
  let t0 = Unix.gettimeofday () in
  let rec loop last =
    Mutex.lock entry.e_mutex;
    while entry.e_state = Running && entry.e_ratings = last do
      Condition.wait entry.e_cond entry.e_mutex
    done;
    let ratings = entry.e_ratings
    and fresh = entry.e_fresh
    and state = entry.e_state in
    Mutex.unlock entry.e_mutex;
    if ratings <> last then
      send_event (Wire.Ev_counter { ec_name = "session.ratings"; ec_value = ratings });
    match state with
    | Running -> loop ratings
    | terminal ->
        send_event
          (Wire.Ev_span
             {
               es_name = "session:" ^ entry.e_id;
               es_dur = Unix.gettimeofday () -. t0;
               es_args =
                 [
                   ("ratings", string_of_int ratings);
                   ("fresh", string_of_int fresh);
                   ("state", Wire.state_to_string (wire_state terminal));
                 ];
             });
        terminal
  in
  loop 0

let run_job t ~send ~send_event ~mode job =
  match start_or_attach t job with
  | Refused e -> send (Wire.Error_r e)
  | Busy retry_after ->
      send
        (Wire.Rejected
           { rj_id = (meta_of_job job).Peak_store.Codec.m_id; rj_retry_after = retry_after })
  | Started entry | Attached entry -> (
      match wait_open entry with
      | -1, state ->
          (* the session never opened (store refused) *)
          send_final send entry state
      | resumed, _ -> (
          send (Wire.Accepted { ac_id = entry.e_id; ac_resumed = resumed });
          match mode with
          | Wire.Detach -> ()
          | Wire.Wait -> send_final send entry (wait_terminal entry)
          | Wire.Stream ->
              send_event
                (Wire.Ev_instant
                   {
                     ei_name = "session.admitted";
                     ei_args =
                       [ ("id", entry.e_id); ("resumed", string_of_int resumed) ];
                   });
              send_final send entry (stream_progress send_event entry)))

let status_of t id =
  let entry =
    Mutex.lock t.reg_mutex;
    let e = Hashtbl.find_opt t.registry id in
    Mutex.unlock t.reg_mutex;
    e
  in
  match entry with
  | Some e ->
      Mutex.lock e.e_mutex;
      let st = wire_state e.e_state and ratings = e.e_ratings in
      Mutex.unlock e.e_mutex;
      Ok { Wire.st_id = id; st_state = st; st_ratings = ratings }
  | None ->
      (* not in this daemon's registry: consult the store *)
      let* info = Peak_store.Session.load_info ~dir:t.cfg.store ~id in
      let st =
        match info.Peak_store.Session.info_result with
        | Some _ -> Wire.Done
        | None -> Wire.Idle
      in
      Ok
        {
          Wire.st_id = id;
          st_state = st;
          st_ratings = info.Peak_store.Session.info_events;
        }

let handle_request t ~send ~send_event req =
  match req with
  | Wire.Ping -> send Wire.Pong
  | Wire.Stats_req ->
      let s = Admission.stats t.adm in
      send
        (Wire.Stats_r
           {
             Wire.ss_active = s.Admission.a_active;
             ss_capacity = s.Admission.a_capacity;
             ss_completed = s.Admission.a_completed;
             ss_rejected = s.Admission.a_rejected;
             ss_domains = Peak_util.Pool.domains t.pool;
           })
  | Wire.Submit sp -> (
      match job_of_spec sp with
      | Error e -> send (Wire.Error_r e)
      | Ok job -> run_job t ~send ~send_event ~mode:sp.Wire.sb_mode job)
  | Wire.Resume { rs_id; rs_mode } -> (
      match job_of_stored ~dir:t.cfg.store rs_id with
      | Error e -> send (Wire.Error_r e)
      | Ok job -> run_job t ~send ~send_event ~mode:rs_mode job)
  | Wire.Status_of id -> (
      match status_of t id with
      | Ok st -> send (Wire.Status_r st)
      | Error e -> send (Wire.Error_r e))
  | Wire.Stream_of id -> (
      let entry =
        Mutex.lock t.reg_mutex;
        let e = Hashtbl.find_opt t.registry id in
        Mutex.unlock t.reg_mutex;
        e
      in
      match entry with
      | Some e -> (
          Mutex.lock e.e_mutex;
          let state = e.e_state in
          Mutex.unlock e.e_mutex;
          match state with
          | Running -> send_final send e (stream_progress send_event e)
          | terminal -> send_final send e terminal)
      | None -> (
          (* maybe it completed in a previous daemon life *)
          match Peak_store.Session.load_info ~dir:t.cfg.store ~id with
          | Ok { Peak_store.Session.info_result = Some r; _ } ->
              send (Wire.Result_r { rr_id = id; rr_result = r })
          | Ok _ -> send (Wire.Error_r ("session " ^ id ^ " is not running"))
          | Error e -> send (Wire.Error_r e)))
  | Wire.Cancel_of id -> (
      let entry =
        Mutex.lock t.reg_mutex;
        let e = Hashtbl.find_opt t.registry id in
        Mutex.unlock t.reg_mutex;
        e
      in
      match entry with
      | Some e ->
          Atomic.set e.e_cancel true;
          (* wake it if it is parked in a fair-share wait *)
          Admission.kick t.adm;
          send (Wire.Cancel_ack id)
      | None -> send (Wire.Error_r ("session " ^ id ^ " is not running")))

let forget_conn t fd =
  Mutex.lock t.conn_mutex;
  t.conns <- List.filter (fun (f, _) -> f <> fd) t.conns;
  Mutex.unlock t.conn_mutex

let handle_conn t fd =
  let reader = Wire.reader_of_fd fd in
  let send resp = Wire.write_frame fd (Wire.response_to_json resp) in
  let send_event ev = Wire.write_frame fd (Wire.event_to_json ev) in
  let rec loop () =
    match Wire.read_frame reader with
    | `Eof -> ()
    | `Overflow ->
        (* cannot resync a stream mid-giant-line: error out and close *)
        send (Wire.Error_r (Printf.sprintf "frame exceeds %d bytes" Wire.max_frame))
    | `Malformed e ->
        send (Wire.Error_r ("malformed frame: " ^ e));
        loop ()
    | `Frame j ->
        (match Wire.request_of_json j with
        | Error e -> send (Wire.Error_r ("bad request: " ^ e))
        | Ok req -> handle_request t ~send ~send_event req);
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      forget_conn t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* a vanished client (EPIPE on send) just ends the connection *)
      try loop () with Unix.Unix_error _ -> ())

(* ---------------- the accept loop ---------------- *)

let serve t =
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.lsock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.lsock with
          | fd, _ ->
              Peak_obs.count "serve.connections";
              let th = Thread.create (fun () -> handle_conn t fd) () in
              Mutex.lock t.conn_mutex;
              t.conns <- (fd, th) :: t.conns;
              Mutex.unlock t.conn_mutex
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain, in dependency order: stop accepting; unblock fair-share
     waits; let every runner notice [stopping] at its next progress
     callback and reach a terminal state; then wake the connections
     (their terminal-state waits have already been broadcast) and join
     them; finally tear down the shared machinery. *)
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  Admission.close t.adm;
  let runners =
    Mutex.lock t.reg_mutex;
    let r = t.runners in
    t.runners <- [];
    Mutex.unlock t.reg_mutex;
    r
  in
  List.iter Thread.join runners;
  let conns =
    Mutex.lock t.conn_mutex;
    let c = t.conns in
    Mutex.unlock t.conn_mutex;
    c
  in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  Peak_util.Pool.shutdown t.pool;
  (match t.cfg.endpoint with
  | Wire.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Wire.Tcp _ -> ());
  release_store_lock t.cfg.store t.lock_fd
