(** The tuning service daemon: a long-running process that serves one
    store directory, accepting concurrent tuning sessions over a
    Unix-domain or TCP socket speaking the {!Wire} protocol.

    {b Multiplexing.}  Every accepted connection gets a thread; every
    admitted session gets a runner thread.  All sessions share a single
    {!Peak_util.Pool}, so the pool's deterministic per-candidate rating
    scheme applies and every session's result is bit-identical to
    running the same parameters through the batch CLI with [--store].

    {b Admission.}  {!Admission} bounds in-flight sessions and paces
    them to fair-share fresh-rating budgets via {!Peak.Driver.tune}'s
    [progress] hook; a saturated submit is rejected with a retry-after
    estimate rather than queued.

    {b Store discipline.}  One daemon per store, enforced by an
    exclusive [lockf] lock on [STORE/.peak-tuned.lock]; one journal
    writer per session id, enforced by the registry (a submit for a
    running id attaches to it) and by {!Peak_store.Session}'s [.writer]
    pidfile.

    {b Crash tolerance.}  SIGTERM mid-session aborts runners at their
    next progress callback, leaving journals consistent; restarting the
    daemon and resuming the session replays the journal and completes
    bit-identically. *)

exception Aborted of string
(** Raised from the driver's progress callback to stop a session
    (cancel or daemon shutdown).  The session journal is consistent at
    every callback point, so an aborted session resumes exactly. *)

type config = {
  store : string;  (** Store directory (created if missing). *)
  endpoint : Wire.endpoint;
  domains : int;  (** Worker-pool width shared by all sessions. *)
  max_sessions : int;  (** Admission capacity. *)
  quantum : int;  (** Fair-share fresh-rating quantum. *)
}

type t

val create : config -> (t, string) result
(** Acquire the store lock, bind the listener, build the shared pool
    and admission controller.  [Error] (store already served, address
    in use, …) leaves nothing held.
    @raise Invalid_argument if [domains < 1] ([max_sessions]/[quantum]
    bounds are checked by {!Admission.create}). *)

val serve : t -> unit
(** Run the accept loop until {!stop}, then drain: stop accepting,
    abort in-flight sessions at their next progress callback, join all
    runner and connection threads, shut the pool down, and release
    socket and lock.  Returns when the daemon is fully drained. *)

val stop : t -> unit
(** Request shutdown.  Only sets an atomic flag — safe to call from a
    signal handler; {!serve} notices within its 200 ms accept tick. *)

val endpoint : t -> Wire.endpoint
