(** Admission control and fair-share scheduling for concurrent tuning
    sessions.

    Two mechanisms, both non-intrusive to the sessions' results:

    {b Bounded in-flight.}  At most [capacity] sessions hold a ticket at
    once.  {!try_admit} never blocks: when saturated it returns
    [Saturated retry_after] (seconds, estimated from an EWMA of
    completed-session wall times) and the caller replies
    reject-with-retry-after instead of queueing unboundedly.

    {b Fair-share rating budgets.}  An admitted session calls {!charge}
    with its cumulative count of {e freshly computed} ratings (store
    replays are free — charging them would starve resumed sessions).
    The call blocks while the session is more than [quantum] fresh
    ratings ahead of the least-advanced active session, so concurrent
    sessions drain the shared pool at matched rates.  The least-advanced
    session never blocks, which makes the discipline deadlock-free; and
    because blocking only ever delays work without reordering it, the
    per-session results remain bit-identical to solo runs.

    All entry points are thread- and domain-safe. *)

type t

type ticket
(** One admitted session's handle. *)

type verdict = Admitted of ticket | Saturated of float  (** Retry-after seconds. *)

type stats = { a_active : int; a_capacity : int; a_completed : int; a_rejected : int }

val create : capacity:int -> quantum:int -> t
(** @raise Invalid_argument if [capacity < 1] or [quantum < 1]. *)

val try_admit : t -> verdict
(** Non-blocking.  [Saturated] when [capacity] sessions are in flight or
    the controller is {!close}d.  Updates the [serve.inflight] gauge and
    the [serve.admitted] / [serve.rejected] counters. *)

val charge :
  t -> ticket -> ?abort:(unit -> bool) -> fresh:int -> unit -> unit
(** Record the session's cumulative fresh-rating count and block while
    it is over fair-share budget.  Returns promptly once the controller
    is {!close}d, the ticket {!release}d, or [abort] turns true
    (re-evaluated on every {!kick}/state change — the cancellation
    hook). *)

val release : t -> ticket -> wall:float -> unit
(** Return the ticket, folding the session's wall-clock seconds into the
    retry-after estimate and waking blocked chargers.  Idempotent. *)

val kick : t -> unit
(** Wake all blocked {!charge} calls to re-evaluate their [abort]
    predicates (e.g. after flagging a session cancelled). *)

val close : t -> unit
(** Shut admission down: subsequent {!try_admit}s are [Saturated] and
    every blocked {!charge} returns.  Used at daemon shutdown. *)

val stats : t -> stats
