(** Client side of the tuning service protocol: connect to a
    [peak-tuned] daemon, exchange {!Wire} frames, and drive a session
    to completion.  Used by the [peak-tune client] command group and
    the bench fleet's synthetic clients. *)

type conn

val connect : Wire.endpoint -> (conn, string) result
val close : conn -> unit

val send : conn -> Wire.request -> (unit, string) result

val next_response :
  ?on_event:(Wire.event -> unit) -> conn -> (Wire.response, string) result
(** Block for the next response frame, routing any interleaved progress
    events to [on_event] (dropped by default). *)

val request :
  ?on_event:(Wire.event -> unit) ->
  conn ->
  Wire.request ->
  (Wire.response, string) result
(** {!send} then {!next_response}. *)

(** How a submit/resume ended, from the client's point of view. *)
type outcome =
  | Accepted_only of { id : string; resumed : int }
      (** {!Wire.Detach} mode: admitted, running in the background. *)
  | Finished of {
      id : string;
      resumed : int;  (** Journal events replayed at open. *)
      result : Peak_store.Codec.session_result;
    }
  | Saturated of float  (** Rejected; retry after this many seconds. *)

val run :
  ?on_event:(Wire.event -> unit) -> conn -> Wire.request -> (outcome, string) result
(** Drive a [Submit]/[Resume] to its outcome: waits for the final
    result in [Wait]/[Stream] modes, returns after admission in
    [Detach] mode.  Failed or cancelled sessions and protocol errors
    surface as [Error] with the server's one-line reason. *)
