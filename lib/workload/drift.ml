(* Deterministic workload drift.  See drift.mli for the model; the
   implementation note that matters is that the regime draw for
   invocation [i] derives a fresh splitmix64 generator from
   fnv64(seed | i) — the identity-keyed scheme of Peak_sim.Fault — so
   the stream never depends on draw order or pass wraps. *)

open Peak_util

type pattern = Step of int | Ramp of int * int | Periodic of int | Burst of int * int

type warp = { w_source : string; w_scale : bool; w_amount : float }

type t = { seed : int; patterns : pattern list; warps : warp list }

let validate_pattern = function
  | Step at when at < 0 -> Error (Printf.sprintf "drift spec: step=%d is negative" at)
  | Ramp (at, _) when at < 0 -> Error (Printf.sprintf "drift spec: ramp=%d+_ is negative" at)
  | Ramp (_, dur) when dur <= 0 ->
      Error (Printf.sprintf "drift spec: ramp duration %d must be positive" dur)
  | Periodic p when p <= 0 ->
      Error (Printf.sprintf "drift spec: periodic=%d must be positive" p)
  | Burst (at, _) when at < 0 -> Error (Printf.sprintf "drift spec: burst=%d+_ is negative" at)
  | Burst (_, dur) when dur <= 0 ->
      Error (Printf.sprintf "drift spec: burst duration %d must be positive" dur)
  | _ -> Ok ()

let validate_warp w =
  if w.w_source = "" then Error "drift spec: warp names an empty scalar"
  else if not (Float.is_finite w.w_amount) then
    Error (Printf.sprintf "drift spec: warp %s amount is not finite" w.w_source)
  else Ok ()

let validate t =
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        each f rest
  in
  let* () = each validate_pattern t.patterns in
  each validate_warp t.warps

let make ?(seed = 17) ?(warps = []) patterns =
  let t = { seed; patterns; warps } in
  (match validate t with Ok () -> () | Error e -> invalid_arg ("Drift.make: " ^ e));
  t

(* ---------------- schedule ---------------- *)

let pattern_weight p i =
  match p with
  | Step at -> if i >= at then 1.0 else 0.0
  | Ramp (at, dur) ->
      if i < at then 0.0
      else if i >= at + dur then 1.0
      else float_of_int (i - at) /. float_of_int dur
  | Periodic p -> if i / p mod 2 = 1 then 1.0 else 0.0
  | Burst (at, dur) -> if i >= at && i < at + dur then 1.0 else 0.0

let weight t i =
  List.fold_left (fun acc p -> Float.max acc (pattern_weight p i)) 0.0 t.patterns

(* ---------------- identity-keyed draws ---------------- *)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let rng_for t i = Rng.create ~seed:(Int64.to_int (fnv64 (Printf.sprintf "%d|drift|%d" t.seed i)))

(* One generator per invocation; regime first, replay index second, so
   both are pure functions of (spec, i). *)
let draw t i ~base_length =
  let rng = rng_for t i in
  let shifted = Rng.float rng < weight t i in
  let half = max 1 (base_length / 2) in
  let j =
    if shifted then half + Rng.int rng (max 1 (base_length - half)) else Rng.int rng half
  in
  (shifted, min j (base_length - 1))

let in_shifted_regime t i =
  (* the weight can be 0 or 1 without consulting the generator, but the
     draw must still burn the same stream position as [draw] *)
  Rng.float (rng_for t i) < weight t i

(* ---------------- ground truth ---------------- *)

let shift_points t ~length =
  let of_pattern = function
    | Step at -> [ at ]
    | Ramp (at, _) -> [ at ]
    | Burst (at, dur) -> [ at; at + dur ]
    | Periodic p ->
        let rec go k acc = if k >= length then List.rev acc else go (k + p) (k :: acc) in
        go p []
  in
  List.concat_map of_pattern t.patterns
  |> List.filter (fun i -> i > 0 && i < length)
  |> List.sort_uniq compare

(* ---------------- the drifting trace ---------------- *)

let apply ?length t (base : Trace.t) =
  let length =
    match length with
    | None -> base.Trace.length
    | Some l ->
        if l <= 0 then invalid_arg "Drift.apply: nonpositive length";
        l
  in
  let base_length = base.Trace.length in
  (* init-owned scalars a warp targets must be restored before every
     setup, or a regime-B invocation would latch the warped value into
     every later regime-A invocation *)
  let saved = ref [] in
  let init env =
    base.Trace.init env;
    saved := List.map (fun w -> (w.w_source, Peak_ir.Interp.get_scalar env w.w_source)) t.warps
  in
  let setup i env =
    List.iter (fun (name, v) -> Peak_ir.Interp.set_scalar env name v) !saved;
    let shifted, j = draw t i ~base_length in
    base.Trace.setup j env;
    if shifted then
      List.iter
        (fun w ->
          let v = Peak_ir.Interp.get_scalar env w.w_source in
          Peak_ir.Interp.set_scalar env w.w_source
            (if w.w_scale then v *. w.w_amount else v +. w.w_amount))
        t.warps
  in
  let class_of =
    match base.Trace.class_of with
    | None -> None
    | Some c ->
        Some
          (fun i ->
            let shifted, j = draw t i ~base_length in
            (2 * c j) + if shifted then 1 else 0)
  in
  Trace.make ~name:(base.Trace.name ^ "+drift") ~length ~init ?class_of
    ~mutated_arrays:base.Trace.mutated_arrays setup

(* ---------------- spec strings ---------------- *)

let to_string t =
  let pattern_str = function
    | Step at -> Printf.sprintf "step=%d" at
    | Ramp (at, dur) -> Printf.sprintf "ramp=%d+%d" at dur
    | Periodic p -> Printf.sprintf "periodic=%d" p
    | Burst (at, dur) -> Printf.sprintf "burst=%d+%d" at dur
  in
  let warp_str w =
    Printf.sprintf "warp=%s%c%.17g" w.w_source (if w.w_scale then '*' else '+') w.w_amount
  in
  String.concat ","
    ((Printf.sprintf "seed=%d" t.seed :: List.map pattern_str t.patterns)
    @ List.map warp_str t.warps)

let of_string s =
  let ( let* ) = Result.bind in
  let int_v k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "drift spec: %s=%S is not an integer" k v)
  in
  let at_dur k v =
    match String.index_opt v '+' with
    | None -> Error (Printf.sprintf "drift spec: %s=%S is not AT+DUR" k v)
    | Some i ->
        let* at = int_v k (String.sub v 0 i) in
        let* dur = int_v k (String.sub v (i + 1) (String.length v - i - 1)) in
        Ok (at, dur)
  in
  let parse_warp v =
    let split c =
      match String.rindex_opt v c with
      | Some i when i > 0 && i < String.length v - 1 ->
          Some (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
      | _ -> None
    in
    let finish w_source w_scale amount =
      match float_of_string_opt amount with
      | Some a when Float.is_finite a -> Ok { w_source; w_scale; w_amount = a }
      | Some _ -> Error (Printf.sprintf "drift spec: warp=%S amount is not finite" v)
      | None -> Error (Printf.sprintf "drift spec: warp=%S amount is not a number" v)
    in
    match split '*' with
    | Some (name, amount) -> finish name true amount
    | None -> (
        match split '+' with
        | Some (name, amount) -> finish name false amount
        | None -> Error (Printf.sprintf "drift spec: warp=%S is not NAME*F or NAME+F" v))
  in
  let parse_field acc field =
    let* t = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "drift spec: %S is not key=value" field)
    | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        (* patterns and warps append in declaration order *)
        match k with
        | "seed" ->
            let* n = int_v k v in
            Ok { t with seed = n }
        | "step" ->
            let* at = int_v k v in
            Ok { t with patterns = t.patterns @ [ Step at ] }
        | "ramp" ->
            let* at, dur = at_dur k v in
            Ok { t with patterns = t.patterns @ [ Ramp (at, dur) ] }
        | "periodic" ->
            let* p = int_v k v in
            Ok { t with patterns = t.patterns @ [ Periodic p ] }
        | "burst" ->
            let* at, dur = at_dur k v in
            Ok { t with patterns = t.patterns @ [ Burst (at, dur) ] }
        | "warp" ->
            let* w = parse_warp v in
            Ok { t with warps = t.warps @ [ w ] }
        | _ ->
            Error
              (Printf.sprintf
                 "drift spec: unknown key %S (valid: seed, step, ramp, periodic, burst, warp)" k))
  in
  let fields =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let* t = List.fold_left parse_field (Ok { seed = 17; patterns = []; warps = [] }) fields in
  let* () = validate t in
  Ok t
