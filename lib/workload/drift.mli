(** Deterministic, seeded workload drift.

    The PGO literature motivates {e profile drift} — the program's input
    distribution shifting away from the one it was tuned on — as the
    trigger for re-optimization in an online, adaptive scenario.  This
    module turns any benchmark {!Trace} into a drifting stream: each
    invocation belongs to one of two {e regimes}, and the probability of
    the shifted regime follows a declared schedule over the invocation
    index.

    {b Regimes.}  Regime A (the tuned-on distribution) replays base-trace
    invocations drawn from the first half of the base index space; regime
    B draws from the second half {e and} applies the spec's {e warps} —
    declared transformations of named scalar parameters after the base
    setup has run (e.g. [numf1s*4] quadruples ART's F1 walk).  For
    index-structured traces (MGRID's V-cycle warmup) the index remap
    alone shifts the context mix; for i.i.d. traces the warps carry the
    shift.  Both levers change the block-count profile, which is what a
    tuned configuration's rating was computed over.

    {b Determinism.}  Every per-invocation decision (regime membership
    and the replayed base index) derives a fresh generator from
    [fnv64(seed | invocation)] — the identity-keyed scheme of
    [Peak_sim.Fault] — so the stream is a pure function of (spec,
    invocation): independent of draw order, pass wraps and resume points.
    Same spec + seed ⇒ bit-identical stream.

    {b Class structure.}  A drifted trace refines the base trace's class
    function with the regime bit, so the execution harness's
    interpreter-result reuse stays sound: two drifted invocations share a
    class only if they replay the same base class under the same regime
    (warps are deterministic per regime, so equal classes still present
    identical workloads). *)

type pattern =
  | Step of int  (** [Step at]: regime B from invocation [at] onward. *)
  | Ramp of int * int
      (** [Ramp (at, dur)]: regime-B probability rises linearly 0 → 1
          over [[at, at+dur)]. *)
  | Periodic of int
      (** [Periodic p]: alternating blocks of [p] invocations — A for
          the first block, B for the second, and so on. *)
  | Burst of int * int
      (** [Burst (at, dur)]: regime B during [[at, at+dur)] only. *)

type warp = {
  w_source : string;  (** Scalar parameter name in the tuning section. *)
  w_scale : bool;  (** [true]: multiply ([name*f]); [false]: add ([name+f]). *)
  w_amount : float;
}

type t = {
  seed : int;
  patterns : pattern list;
  warps : warp list;
}

val make : ?seed:int -> ?warps:warp list -> pattern list -> t
(** [make patterns] builds a spec (default [seed] 17, no warps).
    @raise Invalid_argument on a negative breakpoint, a nonpositive
    duration or period, or a non-finite warp amount. *)

val weight : t -> int -> float
(** [weight t i] is the regime-B probability at invocation [i]: the
    maximum of the declared patterns' activations, in [[0, 1]].  No
    patterns means a permanent 0. *)

val in_shifted_regime : t -> int -> bool
(** The identity-keyed regime draw for invocation [i]:
    [u_i < weight t i] with [u_i] derived from [(seed, i)] alone. *)

val shift_points : t -> length:int -> int list
(** The invocations at which the declared distribution changes — the
    ground truth a staleness detector is tested against.  Sorted,
    deduplicated, restricted to [(0, length)).  [Step at] contributes
    [at]; [Ramp (at, _)] contributes [at] (the shift begins there);
    [Burst (at, dur)] contributes [at] and [at+dur]; [Periodic p]
    contributes every block boundary [p, 2p, ...]. *)

val apply : ?length:int -> t -> Trace.t -> Trace.t
(** [apply t base] is the drifting stream over [base]: invocation [i]
    replays a base invocation chosen by the regime draw (regime A from
    the first half of base indices, regime B from the second half) and,
    in regime B, applies each warp to its scalar after the base setup.
    [length] defaults to the base trace's length.

    Scalars a warp targets are snapshotted at [init] time and restored
    before every setup, so init-owned parameters (SWIM's [n]) drift only
    on regime-B invocations instead of latching the warped value.  Like
    a base trace with setup-time mutation (MCF), the returned trace
    carries per-trace mutable state: share it across runners only in
    the single-owner pattern the rest of the harness uses.
    @raise Invalid_argument if [length] is nonpositive. *)

val to_string : t -> string
(** Canonical spec string, e.g.
    [seed=17,step=500,warp=conv*0.25] — fields comma-separated, [seed]
    first, patterns in declaration order ([step=AT], [ramp=AT+DUR],
    [periodic=P], [burst=AT+DUR]), warps last ([warp=NAME*F] or
    [warp=NAME+F], [%.17g] amounts).  Round-trips through
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a spec string; [Error] carries a one-line message naming the
    offending field.  Unknown keys, malformed numbers and the
    validation rules of {!make} are all rejected. *)
