open Peak_machine

let flag name =
  match Flags.by_name name with
  | Some f -> f
  | None -> invalid_arg ("Effects: unknown flag " ^ name)

(* Model constants, named so the bench calibration and the ablation
   discussion can refer to them. *)
module K = struct
  let cse_follow_jumps = 0.30
  let cse_skip_blocks = 0.12
  let gcse = 0.45
  let rerun_cse = 0.13
  let cse_pressure_per_op = 0.25
  let expensive_amplifier = 1.2
  let loop_overhead_cut = 0.65
  let invariant_motion = 0.94
  let strength_reduce_moved = 0.65
  let sched1_ilp = 0.55
  let sched1_pressure = 1.2
  let sched2_ilp = 0.25
  let sched2_pressure = 0.5
  let interblock_ilp = 0.12
  let spec_ilp = 0.10
  let rename_ilp = 0.18
  let guess_branch_cut = 0.70
  let reorder_blocks_cut = 0.80
  let ifcvt_alu_cost = 2.0
  let ifcvt_max_ops = 5.0
  let strict_alias_mem = 0.85
  let strict_alias_ilp = 0.25
  let strict_alias_pressure_per_pointer = 6.6
  let spill_coefficient = 0.30
  let inline_overhead_cut = 0.35
  let inline_pressure = 0.5
end

type ctx = {
  machine : Machine.t;
  ts : Peak_ir.Features.ts;
  config : Optconfig.t;
  on : string -> bool;
  amplify : float;
}

let make_ctx machine ts config =
  let on name = Optconfig.is_enabled config (flag name) in
  {
    machine;
    ts;
    config;
    on;
    amplify = (if on "expensive-optimizations" then K.expensive_amplifier else 1.0);
  }

(* Mutable working copy of one block's state under optimization. *)
type work = {
  mutable alu : float;
  mutable muldiv : float;
  mutable transcendental : float;
  mutable mem : float;
  mutable branches : float;
  mutable mispredict : float;
  mutable ilp : float;
  mutable overhead : float;
  mutable pressure : float;
}

let work_of_block (b : Peak_ir.Features.block) =
  let base = Cost.of_features b in
  {
    alu = base.alu;
    muldiv = base.muldiv;
    transcendental = base.transcendental;
    mem = base.mem;
    branches = base.branches;
    mispredict = base.mispredict_rate;
    ilp = base.ilp;
    overhead = base.overhead;
    pressure = float_of_int b.pressure;
  }

let apply_scalar_cleanups ctx w =
  if ctx.on "cprop-registers" then w.alu <- w.alu *. 0.97;
  if ctx.on "regmove" then begin
    w.alu <- w.alu *. 0.98;
    w.pressure <- Float.max 0.0 (w.pressure -. 0.5)
  end;
  if ctx.on "peephole2" then begin
    w.alu <- w.alu *. 0.97;
    w.mem <- w.mem *. 0.99
  end;
  if ctx.on "merge-constants" then w.mem <- w.mem *. 0.995;
  if ctx.on "defer-pop" then w.overhead <- Float.max 0.0 (w.overhead -. 0.05);
  if ctx.on "force-mem" then begin
    w.alu <- w.alu *. 0.97;
    w.pressure <- w.pressure +. 0.5
  end;
  if ctx.on "delete-null-pointer-checks" && w.mem > 0.0 then
    w.alu <- Float.max 0.0 (w.alu -. 0.2);
  if ctx.on "reorder-functions" then w.overhead <- w.overhead *. 0.995

let apply_cse ctx (b : Peak_ir.Features.block) w =
  let power = ref 0.0 in
  if ctx.on "cse-follow-jumps" then power := !power +. K.cse_follow_jumps;
  if ctx.on "cse-skip-blocks" then power := !power +. K.cse_skip_blocks;
  if ctx.on "gcse" then power := !power +. K.gcse;
  if
    ctx.on "rerun-cse-after-loop" && b.loop_depth > 0
    && (ctx.on "gcse" || ctx.on "cse-follow-jumps")
  then power := !power +. K.rerun_cse;
  let fraction = Float.min 0.9 (!power *. ctx.amplify) in
  if fraction > 0.0 && b.redundancy > 0 then begin
    let eliminated = float_of_int b.redundancy *. fraction in
    let ops = w.alu +. w.muldiv in
    if ops > 0.0 then begin
      let cut_alu = eliminated *. (w.alu /. ops) in
      let cut_muldiv = eliminated *. (w.muldiv /. ops) in
      (* CSE cannot remove more than 60% of a block's arithmetic *)
      w.alu <- Float.max (w.alu *. 0.4) (w.alu -. cut_alu);
      w.muldiv <- Float.max (w.muldiv *. 0.4) (w.muldiv -. cut_muldiv)
    end;
    w.pressure <- w.pressure +. (eliminated *. K.cse_pressure_per_op)
  end;
  if ctx.on "gcse" && b.loop_depth > 0 then begin
    if ctx.on "gcse-lm" then w.mem <- w.mem *. 0.93;
    if ctx.on "gcse-sm" then w.mem <- w.mem *. 0.97
  end

let apply_loop ctx (b : Peak_ir.Features.block) w =
  if b.loop_depth > 0 || b.is_loop_header then begin
    if ctx.on "loop-optimize" then begin
      w.overhead <- w.overhead *. K.loop_overhead_cut;
      w.alu <- w.alu *. K.invariant_motion;
      w.pressure <- w.pressure +. 0.5;
      if ctx.on "rerun-loop-opt" then w.alu <- w.alu *. 0.985
    end;
    if ctx.on "strength-reduce" && w.muldiv > 0.0 then begin
      let moved = w.muldiv *. K.strength_reduce_moved in
      w.muldiv <- w.muldiv -. moved;
      w.alu <- w.alu +. moved;
      w.pressure <- w.pressure +. 0.5
    end;
    if ctx.on "align-loops" && b.is_loop_header then
      w.overhead <- Float.max 0.0 (w.overhead -. 0.05)
  end

let apply_branches ctx (b : Peak_ir.Features.block) w =
  if w.branches > 0.0 then begin
    (* if-conversion first: a converted branch leaves nothing for the
       layout/prediction flags to improve *)
    let convertible =
      ctx.on "if-conversion" && (not b.is_loop_header)
      && w.alu +. w.muldiv <= K.ifcvt_max_ops
      && w.mem <= 2.0
    in
    if convertible then begin
      w.branches <- 0.0;
      w.alu <- w.alu +. K.ifcvt_alu_cost;
      w.mispredict <- 0.0;
      if ctx.on "if-conversion2" then w.alu <- Float.max 0.0 (w.alu -. 0.5)
    end
    else begin
      if ctx.on "guess-branch-probability" then
        w.mispredict <- w.mispredict *. K.guess_branch_cut;
      if ctx.on "reorder-blocks" && ctx.on "guess-branch-probability" then begin
        w.mispredict <- w.mispredict *. K.reorder_blocks_cut;
        w.overhead <- Float.max 0.0 (w.overhead -. 0.05)
      end;
      if ctx.on "thread-jumps" then begin
        w.overhead <- w.overhead *. 0.97;
        w.mispredict <- w.mispredict *. 0.97
      end;
      if ctx.on "delayed-branch" && ctx.machine.branch_penalty <= 5.0 then
        w.overhead <- Float.max 0.0 (w.overhead -. 0.4);
      if ctx.on "align-jumps" then w.overhead <- Float.max 0.0 (w.overhead -. 0.01)
    end
  end

let apply_scheduling ctx w =
  if ctx.on "schedule-insns" then begin
    w.ilp <- w.ilp +. (K.sched1_ilp *. ctx.amplify);
    w.pressure <- w.pressure +. K.sched1_pressure;
    if ctx.on "sched-interblock" then w.ilp <- w.ilp +. K.interblock_ilp;
    if ctx.on "sched-spec" then begin
      w.ilp <- w.ilp +. K.spec_ilp;
      w.mem <- w.mem *. 1.02 (* speculative loads sometimes waste traffic *)
    end
  end;
  if ctx.on "schedule-insns2" then begin
    w.ilp <- w.ilp +. K.sched2_ilp;
    w.pressure <- w.pressure +. K.sched2_pressure
  end;
  if ctx.on "rename-registers" then w.ilp <- w.ilp +. K.rename_ilp

let apply_strict_aliasing ctx (b : Peak_ir.Features.block) w =
  let n_bases = List.length b.bases in
  let n_pointers = List.length b.pointer_bases in
  if ctx.on "strict-aliasing" && n_bases >= 2 then begin
    (* type-based disambiguation removes redundant reloads and lets loads
       move; with pointer-heavy code the disambiguated values live in
       registers across the ambiguous region, extending live ranges —
       the ART mechanism of Section 5.2 *)
    w.mem <- w.mem *. K.strict_alias_mem;
    w.ilp <- w.ilp +. K.strict_alias_ilp;
    w.pressure <- w.pressure +. (K.strict_alias_pressure_per_pointer *. float_of_int n_pointers)
  end

let apply_calls_and_alignment ctx (b : Peak_ir.Features.block) w =
  let has_calls = b.impure_calls > 0 || b.transcendental > 0 in
  if ctx.on "optimize-sibling-calls" && has_calls then
    w.overhead <- Float.max 0.0 (w.overhead -. 0.1);
  if ctx.on "inline-functions" && has_calls then begin
    w.overhead <- Float.max 0.0 (w.overhead -. K.inline_overhead_cut);
    w.pressure <- w.pressure +. K.inline_pressure
  end;
  if ctx.on "align-functions" then w.overhead <- w.overhead *. 0.995;
  if ctx.on "align-labels" then w.overhead <- w.overhead +. 0.005
(* label alignment pads straightline code: a (tiny) net loss *)

let available_registers ctx =
  let base = ctx.machine.int_registers in
  let base = if ctx.on "omit-frame-pointer" then base + 1 else base in
  if ctx.on "caller-saves" then base + 1 else base

let spill_traffic ctx w =
  let regs = float_of_int (available_registers ctx) in
  let excess = Float.max 0.0 (w.pressure -. regs) in
  if excess = 0.0 then 0.0
  else begin
    (* Quadratic in the excess: allocators shed a little pressure almost
       for free (rematerialization, coldest-first spilling), but traffic
       explodes once many hot values fight for the file.  Busier blocks
       re-touch spilled values more often. *)
    let density = Float.min 2.0 (Float.max 0.5 ((w.alu +. w.muldiv +. w.mem) /. 6.0)) in
    K.spill_coefficient *. excess *. excess /. regs *. density
  end

let optimize_block ctx (b : Peak_ir.Features.block) =
  let w = work_of_block b in
  apply_scalar_cleanups ctx w;
  apply_cse ctx b w;
  apply_loop ctx b w;
  apply_branches ctx b w;
  apply_scheduling ctx w;
  apply_strict_aliasing ctx b w;
  apply_calls_and_alignment ctx b w;
  let spill = spill_traffic ctx w in
  ( {
      Cost.alu = w.alu;
      muldiv = w.muldiv;
      transcendental = w.transcendental;
      mem = w.mem;
      spill_mem = spill;
      branches = w.branches;
      mispredict_rate = w.mispredict;
      ilp = w.ilp;
      overhead = w.overhead;
    },
    w.pressure )

let optimize machine ts config =
  let ctx = make_ctx machine ts config in
  Array.map (fun b -> fst (optimize_block ctx b)) ts.Peak_ir.Features.blocks

let effective_pressure machine ts config block_id =
  let ctx = make_ctx machine ts config in
  snd (optimize_block ctx ts.Peak_ir.Features.blocks.(block_id))

(* Machine-conditioned response signature: how this TS reacts to the
   flags whose profitability the paper ties to the register file
   (Section 5.2).  The same program gets different signatures on a
   SPARC and a Pentium IV, which is exactly what cross-machine
   similarity must distinguish. *)
let machine_signature_dims =
  [
    "o3_pressure_ratio";
    "o3_spill_block_share";
    "aliasing_pressure_delta";
    "scheduling_pressure_delta";
    "o3_ilp";
  ]

let machine_signature machine ts =
  let blocks = ts.Peak_ir.Features.blocks in
  let n = Array.length blocks in
  if n = 0 then Array.make (List.length machine_signature_dims) 0.0
  else begin
    let fn = float_of_int n in
    let run config =
      let ctx = make_ctx machine ts config in
      let regs = float_of_int (available_registers ctx) in
      let outs = Array.map (optimize_block ctx) blocks in
      let mean_p = Array.fold_left (fun acc (_, p) -> acc +. p) 0.0 outs /. fn in
      let spills =
        Array.fold_left (fun acc (_, p) -> if p > regs then acc + 1 else acc) 0 outs
      in
      let mean_ilp =
        Array.fold_left (fun acc (w, _) -> acc +. w.Cost.ilp) 0.0 outs /. fn
      in
      (mean_p /. regs, float_of_int spills /. fn, mean_ilp)
    in
    let off name =
      match Flags.by_name name with
      | Some f -> Optconfig.disable Optconfig.o3 f
      | None -> Optconfig.o3
    in
    let p3, s3, ilp3 = run Optconfig.o3 in
    let pa, _, _ = run (off "strict-aliasing") in
    let ps, _, _ = run (off "schedule-insns") in
    [| p3; s3; p3 -. pa; p3 -. ps; ilp3 |]
  end
