(** Flag effect engine: how a configuration reshapes each block's cost.

    The paper treats the backend compiler as a black box from flag sets
    to differently-performing code.  This module is that black box's
    behavioural model: each of the 38 flags transforms the per-block
    workload derived from static features, with the interactions the
    paper's experiments depend on —

    - CSE-family flags remove redundant operations but lengthen live
      ranges (register pressure);
    - instruction scheduling raises ILP at a pressure cost, which is
      profitable on a machine with many registers and can backfire on
      one with eight;
    - strict aliasing removes redundant memory traffic and unlocks load
      motion, but extends live ranges across ambiguous accesses — the
      Section 5.2 mechanism behind ART's 178% improvement on Pentium IV
      when it is turned {e off};
    - if-conversion trades branch misprediction for extra ALU work, a
      win only where branches are unpredictable;
    - prerequisite flags ([gcse-lm] without [gcse], [reorder-blocks]
      without branch probabilities, …) do nothing alone.

    The model is deterministic: a (machine, TS, configuration) triple
    always yields the same per-block workloads.  Measurement noise is
    injected later by the machine's noise model, never here. *)

val optimize :
  Peak_machine.Machine.t ->
  Peak_ir.Features.ts ->
  Optconfig.t ->
  Peak_machine.Cost.workload array
(** Per-block optimized workloads, indexed by CFG block id. *)

val effective_pressure :
  Peak_machine.Machine.t -> Peak_ir.Features.ts -> Optconfig.t -> int -> float
(** The register pressure of a block after flag effects (exposed so tests
    and the strict-aliasing ablation can observe the mechanism). *)

val machine_signature_dims : string list
(** Names of the components of {!machine_signature}, in order. *)

val machine_signature : Peak_machine.Machine.t -> Peak_ir.Features.ts -> float array
(** Machine-conditioned response features for cross-program similarity:
    mean -O3 effective pressure relative to the register file, the share
    of blocks whose -O3 pressure exceeds it (spill exposure), the mean
    pressure released by turning strict aliasing or scheduling off, and
    the mean -O3 ILP.  Deterministic and finite; length equals
    [List.length machine_signature_dims]. *)
