(* A configuration is a bitmask over flag indices; 38 flags fit easily in
   one native int. *)
type t = int

let full_mask = (1 lsl Flags.count) - 1

let o3 = full_mask
let o0 = 0

let bit (f : Flags.t) = 1 lsl f.index

let is_enabled t f = t land bit f <> 0
let enable t f = t lor bit f
let disable t f = t land lnot (bit f)
let toggle t f = t lxor bit f

let of_names names =
  List.fold_left
    (fun acc name ->
      match Flags.by_name name with
      | Some f -> enable acc f
      | None -> invalid_arg ("Optconfig.of_names: unknown flag " ^ name))
    o0 names

let o_level k =
  if k < 0 || k > 3 then invalid_arg "Optconfig.o_level: level must be in [0, 3]";
  Array.fold_left
    (fun acc (f : Flags.t) -> if f.Flags.level <= k then enable acc f else acc)
    o0 Flags.all

let of_string s =
  let tokens =
    String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> invalid_arg "Optconfig.of_string: empty string"
  | base :: rest ->
      let start =
        match base with
        | "-O0" | "-O0(+none)" -> o0
        | "-O1" -> o_level 1
        | "-O2" -> o_level 2
        | "-O3" -> full_mask
        | other -> invalid_arg ("Optconfig.of_string: unknown base " ^ other)
      in
      List.fold_left
        (fun acc token ->
          let apply prefix act =
            let n = String.length prefix in
            if String.length token > n && String.sub token 0 n = prefix then
              let name = String.sub token n (String.length token - n) in
              match Flags.by_name name with
              | Some f -> Some (act acc f)
              | None -> invalid_arg ("Optconfig.of_string: unknown flag " ^ token)
            else None
          in
          match apply "-fno-" disable with
          | Some c -> c
          | None -> (
              match apply "-f" enable with
              | Some c -> c
              | None -> invalid_arg ("Optconfig.of_string: unknown token " ^ token)))
        start rest

let enabled t = Array.to_list Flags.all |> List.filter (is_enabled t)
let disabled t = Array.to_list Flags.all |> List.filter (fun f -> not (is_enabled t f))

let cardinal t =
  let rec pop acc n = if n = 0 then acc else pop (acc + (n land 1)) (n lsr 1) in
  pop 0 t

let equal = Int.equal
let compare = Int.compare
let hash t = t

let canonical_names t =
  enabled t |> List.map (fun (f : Flags.t) -> f.Flags.name) |> List.sort String.compare

(* FNV-1a 64-bit over the newline-joined sorted names.  Hashing names
   rather than the bitmask keeps the digest stable even if the flag
   table is ever reordered or extended; sorting makes it independent of
   enumeration order by construction. *)
let digest t =
  let h = ref 0xcbf29ce484222325L in
  let feed c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L
  in
  List.iter
    (fun name ->
      String.iter feed name;
      feed '\n')
    (canonical_names t);
  Printf.sprintf "%016Lx" !h

let to_string t =
  if t = o3 then "-O3"
  else if t = o0 then "-O0(+none)"
  else begin
    let off = disabled t in
    if List.length off <= Flags.count / 2 then
      "-O3 " ^ String.concat " " (List.map (fun f -> "-fno-" ^ f.Flags.name) off)
    else
      "-O0 " ^ String.concat " " (List.map (fun f -> Flags.gcc_name f) (enabled t))
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
