(** Optimization configurations: subsets of the 38 [-O3] flags.

    A configuration is the coordinate the tuning search moves in; each
    distinct configuration compiled for a tuning section yields one code
    {!Version}. *)

type t

val o3 : t
(** All 38 flags on — the baseline every improvement is measured
    against. *)

val o0 : t
(** All flags off. *)

val o_level : int -> t
(** [o_level k] enables every flag whose GCC optimization level is at most
    [k]: [o_level 0 = o0], [o_level 3 = o3], and [o_level 1]/[o_level 2]
    are the -O1/-O2 presets.  @raise Invalid_argument outside [0, 3]. *)

val of_string : string -> t
(** Parse the {!to_string} syntax: ["-O3"], ["-O0(+none)"],
    ["-O3 -fno-gcse ..."], ["-O0 -fgcse ..."], or ["-O1"]/["-O2"] level
    presets optionally followed by [-f]/[-fno-] adjustments.
    @raise Invalid_argument on unknown syntax or flag names. *)

val is_enabled : t -> Flags.t -> bool
val enable : t -> Flags.t -> t
val disable : t -> Flags.t -> t
val toggle : t -> Flags.t -> t

val of_names : string list -> t
(** Configuration with exactly the named flags on.
    @raise Invalid_argument on an unknown flag name. *)

val enabled : t -> Flags.t list
val disabled : t -> Flags.t list

val cardinal : t -> int
(** Number of enabled flags. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order on the canonical (bitmask) representation.  Two
    configurations built from the same flag set in any order compare
    equal; [equal], [compare], [hash] and [digest] all agree. *)

val hash : t -> int

val canonical_names : t -> string list
(** Enabled flag names, sorted — the canonical order-independent
    description a configuration serializes to. *)

val digest : t -> string
(** Stable, order-independent 16-hex-digit digest (FNV-1a 64 over
    {!canonical_names}).  Semantically equal flag sets hash identically
    across processes and repo versions, which is what makes the digest
    usable as a persistent-store key; unlike {!hash} it does not depend
    on the flag table's index assignment. *)

val to_string : t -> string
(** Compact description relative to -O3, e.g.
    ["-O3 -fno-strict-aliasing -fno-gcse"]; plain ["-O3"] when complete. *)

val pp : Format.formatter -> t -> unit
