(** Aggregation for the Figure 7 experiments.

    Figure 7 (a)/(b): whole-program improvement over -O3 per (benchmark,
    rating method), tuned on train (left bar) and on ref (right bar),
    always measured on ref.  Figure 7 (c)/(d): tuning time normalized to
    what the same number of ratings would have cost at one whole-program
    run each — the WHL cost model, so 0.2 reads "tuned in 20% of the WHL
    time" (the paper's "tuning time reduced by 80%"). *)

type cell = {
  result : Driver.result;  (** The train-dataset tuning run. *)
  improvement_train_pct : float;
      (** Improvement on ref of the config found while tuning on train. *)
  improvement_ref_pct : float;
      (** Improvement on ref of the config found while tuning on ref. *)
  normalized_tuning_time : float;  (** vs the WHL-equivalent cost. *)
}

val whl_equivalent_cycles : Driver.result -> float
(** [ratings × (one whole-program pass)]. *)

val normalized_tuning_time : Driver.result -> float

val figure7_cell :
  ?seed:int ->
  method_:Method.t ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  cell
(** Tune on train and on ref with the method; evaluate both on ref. *)

val figure7_methods :
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  seed:int ->
  Method.t list
(** The methods Figure 7 charts for the benchmark: every possible rating
    method (CBR even when the consultant would reject it on context
    count — the MGRID_CBR bar), plus AVG and WHL. *)
