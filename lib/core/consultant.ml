(* The Rating Approach Consultant (Sections 3 and 4.2).  Applicability
   itself lives with the raters in Method; the consultant orders the
   applicable methods, estimates their per-rating cost and explains the
   exclusions. *)

type advice = {
  applicable : Method.t list;
  chosen : Method.t;
  n_contexts : int option;
  dominant_share : float option;
  n_components : int;
  estimates : (Method.t * float) list;
  reasons : string list;
}

let default_max_contexts = Method.default_max_contexts
let default_max_components = Method.default_max_components

(* Time factor of one RBR invocation relative to a plain one: the two
   timed executions, the preconditioning run, and the copies. *)
let rbr_cost_factor = 2.8

let advise ?(max_contexts = default_max_contexts) ?(max_components = default_max_components)
    ?(window = 40) tsec (profile : Profile.t) =
  let n_components = Component_analysis.n_components profile.Profile.components in
  let applicable, reasons =
    List.fold_left
      (fun (ok, reasons) m ->
        match Method.applicable ~max_contexts ~max_components m profile with
        | Ok () -> (m :: ok, reasons)
        | Error reason -> (ok, reason :: reasons))
      ([], []) Method.auto_chain
  in
  let applicable = List.rev applicable in
  if applicable = [] then
    invalid_arg
      (Printf.sprintf "Consultant.advise: no applicable rating method for %s"
         (Tsection.name tsec));
  let w = float_of_int window in
  let estimates =
    List.filter_map
      (fun m ->
        match m with
        | Method.Cbr ->
            Option.map
              (fun share -> (Method.Cbr, w /. Float.max 0.01 share))
              (Profile.dominant_share profile)
        | Method.Mbr -> Some (Method.Mbr, Float.max w (3.0 *. float_of_int n_components))
        | Method.Rbr -> Some (Method.Rbr, w *. rbr_cost_factor)
        | Method.Avg | Method.Whl -> None)
      applicable
  in
  {
    applicable;
    chosen = List.hd applicable;
    n_contexts = Profile.n_contexts profile;
    dominant_share = Profile.dominant_share profile;
    n_components;
    estimates;
    reasons = List.rev reasons;
  }
