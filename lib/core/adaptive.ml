open Peak_util
open Peak_compiler
open Peak_workload

(* The per-context staleness state machine (see the .mli diagram).
   [Stale] is the transition instant, not a resting state: a verdict
   immediately re-opens exploration, so the resting states are Fresh,
   Suspect and Retuning. *)
type phase = Fresh | Suspect | Retuning

type slot = {
  mutable best : Optconfig.t;
  mutable best_stats : Stats.Welford.t;
  mutable experimental : (Optconfig.t * Stats.Welford.t) option;
  mutable pending : Optconfig.t list;
  mutable ready_at : int;  (** invocation when the next compile lands *)
  mutable swaps : int;
  (* rating-time baseline of the incumbent: frozen when its window first
     fills, refrozen on every swap and after every re-tuning cycle *)
  mutable baseline_mean : float;
  mutable baseline_var : float;
  mutable baseline_n : int;
  (* sliding window of the incumbent's recent production samples *)
  recent : float array;
  mutable recent_n : int;
  mutable phase : phase;
  mutable stale_at : int;  (** invocation of the last stale verdict *)
}

type t = {
  tsec : Tsection.t;
  runner : Runner.t;
  machine : Peak_machine.Machine.t;
  window : int;
  compile_latency : int;
  stale_threshold : float;
  two_sided : bool;
  candidates : Optconfig.t list;
  context_sources : Peak_ir.Expr.source list;
  versions : (Optconfig.t, Version.t) Hashtbl.t;
  slots : (float array, slot) Hashtbl.t;
  (* whole-life ledger: [run] accumulates across calls *)
  mutable now : int;
  mutable total : float;
  mutable o3_total : float;
  mutable oracle_total : float;
  mutable stales : int;
  mutable stale_invocations : int list;  (** reverse order *)
  mutable readapts : int;
  mutable readapt_lag : int;  (** summed time-to-readapt *)
  mutable readapt_invs : int;
  mutable fresh_cycles : float;
  mutable suspect_cycles : float;
  mutable retuning_cycles : float;
  (* every invocation's noise-free cost, for the quantile summary *)
  mutable costs : float array;
  mutable ncosts : int;
}

type stats = {
  invocations : int;
  total_cycles : float;
  o3_cycles : float;
  oracle_cycles : float;
  swaps : int;
  contexts_seen : int;
  choices : (float array * Optconfig.t) list;
  stale_detections : int;
  stale_invocations : int list;
  readapts : int;
  mean_time_to_readapt : float;
  readapt_invocations : int;
  fresh_cycles : float;
  suspect_cycles : float;
  retuning_cycles : float;
  p99_invocation_cycles : float;
}

let create ?(seed = 17) ?(window = 12) ?(compile_latency = 25) ?(stale_threshold = 0.10)
    ?(two_sided = false) tsec trace machine ~candidates =
  if Float.is_nan stale_threshold then invalid_arg "Adaptive.create: stale_threshold is NaN";
  let context_sources =
    match Context_analysis.analyze tsec ~mutated_arrays:trace.Trace.mutated_arrays with
    | Context_analysis.Applicable { sources; _ } -> sources
    | Context_analysis.Not_applicable _ -> []
  in
  {
    tsec;
    runner = Runner.create ~seed tsec trace machine;
    machine;
    window;
    compile_latency;
    stale_threshold;
    two_sided;
    candidates;
    context_sources;
    versions = Hashtbl.create 16;
    slots = Hashtbl.create 8;
    now = 0;
    total = 0.0;
    o3_total = 0.0;
    oracle_total = 0.0;
    stales = 0;
    stale_invocations = [];
    readapts = 0;
    readapt_lag = 0;
    readapt_invs = 0;
    fresh_cycles = 0.0;
    suspect_cycles = 0.0;
    retuning_cycles = 0.0;
    costs = Array.make 1024 0.0;
    ncosts = 0;
  }

let version t config =
  match Hashtbl.find_opt t.versions config with
  | Some v -> v
  | None ->
      let v = Version.compile t.machine t.tsec.Tsection.features config in
      Hashtbl.add t.versions config v;
      v

let slot (t : t) now key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
      let s =
        {
          best = Optconfig.o3;
          best_stats = Stats.Welford.create ();
          experimental = None;
          pending = t.candidates;
          ready_at = now + t.compile_latency;
          swaps = 0;
          baseline_mean = nan;
          baseline_var = nan;
          baseline_n = 0;
          recent = Array.make (max 2 t.window) 0.0;
          recent_n = 0;
          phase = Fresh;
          stale_at = 0;
        }
      in
      Hashtbl.add t.slots key s;
      s

let detection_enabled t = Float.is_finite t.stale_threshold && t.stale_threshold > 0.0

let freeze_baseline (s : slot) w =
  s.baseline_mean <- Stats.Welford.mean w;
  s.baseline_var <- Stats.Welford.variance w;
  s.baseline_n <- Stats.Welford.count w;
  s.recent_n <- 0

(* Finish a re-tuning cycle: exploration drained, the incumbent's
   fresh-regime rating becomes the new baseline. *)
let finish_retuning (t : t) now (s : slot) =
  s.phase <- Fresh;
  t.readapts <- t.readapts + 1;
  t.readapt_lag <- t.readapt_lag + (now - s.stale_at);
  if Stats.Welford.count s.best_stats >= t.window then freeze_baseline s s.best_stats

(* Decide which version to run under this context, and which statistics
   bucket the measurement belongs to. *)
let choose_for (t : t) now (s : slot) =
  (* launch the next experiment once its compile has landed *)
  (match (s.experimental, s.pending) with
  | None, next :: rest when now >= s.ready_at ->
      s.experimental <- Some (next, Stats.Welford.create ());
      s.pending <- rest
  | _ -> ());
  match s.experimental with
  | Some (config, w)
    when Stats.Welford.count w < t.window
         || Stats.Welford.count s.best_stats < t.window ->
      (* alternate so both versions sample the same context mix *)
      if
        Stats.Welford.count w <= Stats.Welford.count s.best_stats
        && Stats.Welford.count w < t.window
      then `Experimental config
      else `Best
  | Some (config, w) ->
      (* both windows full: swap only on a statistically credible win
         (Welch's test at 97.5% one-sided), so measurement noise does not
         thrash the installed version *)
      let wins =
        Stats.significantly_less
          ~mean1:(Stats.Welford.mean w)
          ~var1:(Stats.Welford.variance w)
          ~n1:(Stats.Welford.count w)
          ~mean2:(Stats.Welford.mean s.best_stats)
          ~var2:(Stats.Welford.variance s.best_stats)
          ~n2:(Stats.Welford.count s.best_stats)
      in
      if wins then begin
        s.best <- config;
        s.best_stats <- w;
        s.swaps <- s.swaps + 1;
        Peak_obs.count "adaptive.swaps";
        freeze_baseline s w
      end;
      s.experimental <- None;
      s.ready_at <- now + t.compile_latency;
      if s.phase = Retuning && s.pending = [] then finish_retuning t now s;
      `Best
  | None ->
      if s.phase = Retuning && s.pending = [] then finish_retuning t now s;
      `Best

(* The staleness check: has the incumbent's recent production window
   credibly regressed against its rating-time baseline?  Significance
   comes from the Welch machinery the consistency experiment is built
   on; a monotone upward trend across the window (Pearson correlation
   of sample against ordinal) counts as confirmation too, so ramps that
   have not yet lifted the whole window past the threshold still
   confirm a Suspect verdict. *)
let window_regressed (t : t) (s : slot) =
  let n = s.recent_n in
  let m = Stats.mean (Array.sub s.recent 0 n) in
  let v = Stats.variance (Array.sub s.recent 0 n) in
  let credible =
    Stats.significantly_less ~mean1:s.baseline_mean ~var1:s.baseline_var ~n1:s.baseline_n
      ~mean2:m ~var2:v ~n2:n
  in
  let excess = m > s.baseline_mean *. (1.0 +. t.stale_threshold) in
  let trend =
    lazy
      (let xs = Array.init n float_of_int in
       Regression.pearson xs (Array.sub s.recent 0 n) > 0.6)
  in
  (* Downward mirror, consulted only in two-sided mode (so the default
     one-sided path computes bit-identically): the baseline credibly
     {e above} the window plus a negative excess means the workload got
     cheaper — the incumbent's rating is stale in the other direction,
     and a leaner configuration may now win.  A falling trend confirms
     a Suspect verdict the same way a rising one does upward. *)
  let credible_down () =
    Stats.significantly_greater ~mean1:s.baseline_mean ~var1:s.baseline_var
      ~n1:s.baseline_n ~mean2:m ~var2:v ~n2:n
  in
  let excess_down () = m < s.baseline_mean *. (1.0 -. t.stale_threshold) in
  let trend_down () =
    let xs = Array.init n float_of_int in
    Regression.pearson xs (Array.sub s.recent 0 n) < -0.6
  in
  let down ~fresh =
    t.two_sided
    && excess_down ()
    && (credible_down () || ((not fresh) && trend_down ()))
  in
  match s.phase with
  | Fresh -> (credible && excess) || down ~fresh:true
  | Suspect -> (credible && excess) || (excess && Lazy.force trend) || down ~fresh:false
  | Retuning -> false

(* A stale verdict: re-open exploration for this context only.  The
   incumbent keeps serving (and is re-rated from scratch in the new
   regime); every candidate goes back on the compile queue; the other
   contexts are untouched. *)
let go_stale (t : t) now (s : slot) =
  s.phase <- Retuning;
  s.stale_at <- now;
  t.stales <- t.stales + 1;
  t.stale_invocations <- now :: t.stale_invocations;
  s.pending <- t.candidates;
  s.experimental <- None;
  s.ready_at <- now + t.compile_latency;
  s.best_stats <- Stats.Welford.create ();
  s.baseline_n <- 0;
  s.recent_n <- 0;
  Peak_obs.count "adaptive.stale";
  if Peak_obs.active () then
    Peak_obs.instant ~cat:"adaptive"
      ~args:[ ("invocation", string_of_int now) ]
      "adaptive:stale";
  (* nothing to re-explore without candidates: re-baseline in place *)
  if t.candidates = [] then begin
    s.phase <- Fresh;
    t.readapts <- t.readapts + 1
  end

(* Record an incumbent production sample and advance the state machine. *)
let observe_best (t : t) now (s : slot) sample =
  Stats.Welford.add s.best_stats sample;
  if Stats.Welford.count s.best_stats >= t.window && s.baseline_n = 0 then
    freeze_baseline s s.best_stats
  else if detection_enabled t && s.baseline_n > 0 && s.phase <> Retuning then begin
    s.recent.(s.recent_n) <- sample;
    s.recent_n <- s.recent_n + 1;
    if s.recent_n >= Array.length s.recent then begin
      let regressed = window_regressed t s in
      (match (s.phase, regressed) with
      | Fresh, true -> s.phase <- Suspect
      | Suspect, true -> go_stale t now s
      | Suspect, false -> s.phase <- Fresh
      | (Fresh | Retuning), _ -> ());
      s.recent_n <- 0
    end
  end

let run (t : t) ~invocations =
  let o3_version = version t Optconfig.o3 in
  let all_versions = o3_version :: List.map (version t) t.candidates in
  let stop = t.now + invocations in
  while t.now < stop do
    let now = t.now in
    let bucket = ref `Best in
    let chosen_slot = ref None in
    let chosen_version = ref o3_version in
    let sample =
      Runner.step_choose ~context:t.context_sources t.runner (fun key ->
          let s = slot t now key in
          chosen_slot := Some s;
          let choice = choose_for t now s in
          bucket := choice;
          let config = match choice with `Best -> s.best | `Experimental c -> c in
          let v = version t config in
          chosen_version := v;
          v)
    in
    (* record the (noisy) measurement in the right bucket *)
    (match (!chosen_slot, !bucket) with
    | Some s, `Best -> observe_best t now s sample.Runner.time
    | Some s, `Experimental _ -> (
        match s.experimental with
        | Some (_, w) -> Stats.Welford.add w sample.Runner.time
        | None -> ())
    | None, _ -> ());
    (* noise-free accounting for the comparison *)
    let counts = sample.Runner.counts in
    let cycles v = Version.invocation_cycles v ~counts in
    let spent = cycles !chosen_version in
    if t.ncosts = Array.length t.costs then begin
      let grown = Array.make (2 * t.ncosts) 0.0 in
      Array.blit t.costs 0 grown 0 t.ncosts;
      t.costs <- grown
    end;
    t.costs.(t.ncosts) <- spent;
    t.ncosts <- t.ncosts + 1;
    t.total <- t.total +. spent;
    t.o3_total <- t.o3_total +. cycles o3_version;
    t.oracle_total <-
      t.oracle_total
      +. List.fold_left (fun acc v -> Float.min acc (cycles v)) infinity all_versions;
    (match !chosen_slot with
    | Some s -> (
        match s.phase with
        | Fresh -> t.fresh_cycles <- t.fresh_cycles +. spent
        | Suspect -> t.suspect_cycles <- t.suspect_cycles +. spent
        | Retuning ->
            t.retuning_cycles <- t.retuning_cycles +. spent;
            t.readapt_invs <- t.readapt_invs + 1;
            Peak_obs.count "adaptive.readapt_invocations")
    | None -> t.fresh_cycles <- t.fresh_cycles +. spent);
    t.now <- t.now + 1
  done;
  let swaps = Hashtbl.fold (fun _ (s : slot) acc -> acc + s.swaps) t.slots 0 in
  let choices = Hashtbl.fold (fun key (s : slot) acc -> (key, s.best) :: acc) t.slots [] in
  {
    invocations = t.now;
    total_cycles = t.total;
    o3_cycles = t.o3_total;
    oracle_cycles = t.oracle_total;
    swaps;
    contexts_seen = Hashtbl.length t.slots;
    choices;
    stale_detections = t.stales;
    stale_invocations = List.rev t.stale_invocations;
    readapts = t.readapts;
    mean_time_to_readapt =
      (if t.readapts = 0 then nan else float_of_int t.readapt_lag /. float_of_int t.readapts);
    readapt_invocations = t.readapt_invs;
    fresh_cycles = t.fresh_cycles;
    suspect_cycles = t.suspect_cycles;
    retuning_cycles = t.retuning_cycles;
    p99_invocation_cycles =
      (if t.ncosts = 0 then nan
       else begin
         let sorted = Array.sub t.costs 0 t.ncosts in
         Array.sort compare sorted;
         sorted.(min (t.ncosts - 1) (int_of_float (Float.of_int t.ncosts *. 0.99)))
       end);
  }
