(** The search-strategy layer: the one definition of "what a search
    strategy is" that the driver, CLI, store, service and bench all
    share — the search analogue of the {!Method} registry.

    A strategy is a staged plan for spending ratings.  Every registered
    strategy runs through the same {!ctx} harness: candidates are rated
    via the [rate_many] batch hook (so the driver can fan them out over
    a domain pool deterministically), stage transitions are announced
    through the [enter_stage]/[leave_stage] hooks (so the driver can
    emit [search:<strategy>:stage<k>] spans), and the per-stage rating
    spend comes back as {!stage} records that land in [result.json].

    The headline entry is {!constructor:Staged} — the learned search from
    Zhu et al.'s multiple-phase tuning, adapted to the rating journal:
    stage 1 fits per-flag importances by ridge regression
    ({!Peak_util.Regression.ridge}) over a handful of random probes plus
    whatever rating corpus the attached store has accumulated; stage 2
    freezes the flags that screening found unimportant and runs
    {!Search.focused_elimination} over the surviving subset. *)

type t = Ie | Be | Ce | Random of int | Ff | Ose | Staged

val all : t list
(** Every registered strategy, in registry order ([Random] appears with
    its default sample count). *)

val name : t -> string
(** Human-readable display name, e.g. ["Iterative Elimination"]. *)

val key : t -> string
(** Canonical wire/CLI spelling: ["ie"], ["be"], ["ce"], ["random<n>"],
    ["ff"], ["ose"], ["staged"].  Stable across versions — session ids
    and store metadata embed it. *)

val keys : string list
(** [List.map key all]. *)

val of_string : string -> (t, string) result
(** Inverse of {!key}, case-insensitive; ["random"] alone means
    [Random 100] and ["random<n>"] any positive sample count.  This is
    the one parser behind the CLI's [-s]/[--search] and the service
    protocol's submit requests.  The error is a one-line
    ["unknown search ..."] message listing the valid spellings. *)

val describe : t -> string
(** One-sentence description for the [strategies] registry table. *)

val stage_plan : t -> string
(** Compact stage structure, e.g. ["screen -> refine"] for [Staged]. *)

type stage = {
  sg_label : string;  (** Stage label, e.g. ["screen"]. *)
  sg_ratings : int;  (** Rating-oracle invocations spent in this stage. *)
  sg_flags : int;  (** Size of the flag universe the stage worked on. *)
}
(** One stage boundary of a finished search, recorded into
    {!Driver.result} and codec v5 [result.json]. *)

type ctx = {
  threshold : float;  (** Relative-improvement acceptance threshold. *)
  seed : int;
      (** Experiment seed; strategies derive their private RNG streams
          from it (never from the rating oracle), so the candidate
          sequence is deterministic and independent of rating order. *)
  prepare : Search.prepare;
  rate_many : Search.rate_many option;
  relative : Search.relative;
  corpus : (Peak_compiler.Optconfig.t * float) list;
      (** Prior (configuration, relative-eval) observations drawn from
          the store's rating index, if one is attached.  Coarse evidence:
          entries are kept only when their eval looks like a plausible
          relative time (finite, within [0.25, 4.0]).  Deterministic
          order is the caller's responsibility. *)
  enter_stage : int -> string -> unit;
      (** [enter_stage k label] announces stage [k] (1-based); the driver
          opens a [search:<strategy>:stage<k>] span here. *)
  leave_stage : unit -> unit;
}
(** The harness every strategy runs against. *)

val make_ctx :
  ?threshold:float ->
  ?seed:int ->
  ?prepare:Search.prepare ->
  ?rate_many:Search.rate_many ->
  ?corpus:(Peak_compiler.Optconfig.t * float) list ->
  ?enter_stage:(int -> string -> unit) ->
  ?leave_stage:(unit -> unit) ->
  relative:Search.relative ->
  unit ->
  ctx
(** Convenience constructor (threshold 0.005, seed 11, no-op hooks,
    empty corpus) — the defaults {!Driver.tune} uses. *)

module type STRATEGY = sig
  val strat : t

  val run :
    ctx -> Peak_compiler.Optconfig.t -> Peak_compiler.Optconfig.t * Search.stats * stage list
  (** Run the full staged plan from a start configuration.  Must call
      [ctx.enter_stage]/[ctx.leave_stage] around every stage, route all
      candidate scans through [ctx.rate_many] when present, and return
      one {!stage} record per stage in execution order. *)
end
(** The shared stage signature each registered search implements. *)

val strategy : t -> (module STRATEGY)
(** The registered module for a strategy ([Random n] closes over its
    sample count). *)

val run :
  t -> ctx -> Peak_compiler.Optconfig.t -> Peak_compiler.Optconfig.t * Search.stats * stage list
(** [run s ctx start] = [let module S = (val strategy s) in S.run ctx start]. *)

val staged_probe_count : trained:bool -> int -> int
(** Number of stage-1 screening probes [Staged] draws for an [n]-flag
    start configuration.  Untrained (no usable corpus): [max 8 ((n + 2)
    / 3)] — about a third of the ratings Batch Elimination's full scan
    would spend.  Trained (the corpus already holds at least [n]
    plausible observations for this benchmark/machine): [max 4 ((n + 7)
    / 8)] — the probes only recalibrate the fit. *)

val staged_keep_count : int -> int
(** Survivor count for a screen over [n] flags: the top
    [max 1 ((11n + 19) / 20)] (about 55%) flags by fitted importance
    move on to the refine stage. *)

val staged_screen :
  ctx -> Peak_compiler.Optconfig.t -> (Peak_compiler.Flags.t * float) list * int
(** Stage 1 of [Staged], exposed for tests: rate the screening probes,
    fold in the corpus, fit ridge importances, and return the surviving
    [(flag, importance)] list (positive importance estimates the
    relative-time increase from enabling the flag) together with the
    number of ratings spent.  The top [staged_keep_count]-ranked slice
    by fitted importance survives regardless of sign — a rank cut keeps
    interaction-only flags (near-zero main effect) alive, which a
    threshold cut would freeze.  A trained corpus (at least [n]
    plausible rows) sharpens the ranking and shrinks the probe budget.
    Survivors preserve {!Peak_compiler.Flags.all} order.  When every
    observation is non-finite (all probes quarantined and no usable
    corpus) the screen keeps every enabled flag, so stage 2 degrades to
    plain Combined Elimination rather than freezing the whole
    configuration. *)
