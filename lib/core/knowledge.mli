(** Canonical feature resolver for the knowledge base.

    {!Peak_store.Kb} is deliberately agnostic about where program
    feature vectors come from; this module supplies the canonical
    ones — the static TS summary ({!Peak_ir.Features.vector})
    concatenated with the machine-conditioned response signature
    ({!Peak_compiler.Effects.machine_signature}) — and the build /
    recommend glue over the workload registry, so the CLI, the driver
    and the bench all agree on what a program looks like. *)

open Peak_workload

val dims : string list
(** Names of the feature-vector components, in order:
    [Features.vector_dims @ Effects.machine_signature_dims]. *)

val program_features : Benchmark.t -> Peak_machine.Machine.t -> float array
(** Feature vector of one registry benchmark on one machine. *)

val features : benchmark:string -> machine:string -> float array option
(** Resolver for {!Peak_store.Kb.of_sessions}: case-insensitive
    registry and machine lookup; [None] for names the registry does
    not know (e.g. fabricated test sessions). *)

val build : dir:string -> (Peak_store.Kb.t, string) result
(** [Kb.build] over the store at [dir] with the canonical resolver. *)

val recommend :
  Peak_store.Kb.t ->
  benchmark:string ->
  machine:string ->
  ?k:int ->
  ?exclude:string ->
  unit ->
  Peak_store.Kb.recommendation list
(** Ranked recommendations for a benchmark/machine named in the
    registry; [] when either name is unknown. *)

val recommend_start :
  Peak_store.Kb.t -> Benchmark.t -> Peak_machine.Machine.t -> Peak_store.Kb.recommendation list
(** Driver-side variant taking resolved values. *)
