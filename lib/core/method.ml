(* The rating-method layer: the one definition of "what a rating method
   is" that the driver, harness, CLI, store and bench all share.  See
   method.mli for the contract. *)

type t = Cbr | Mbr | Rbr | Avg | Whl

exception Not_applicable of string

let all = [ Cbr; Mbr; Rbr; Avg; Whl ]
let auto_chain = [ Cbr; Mbr; Rbr ]

let name = function
  | Cbr -> "CBR"
  | Mbr -> "MBR"
  | Rbr -> "RBR"
  | Avg -> "AVG"
  | Whl -> "WHL"

let key m = String.lowercase_ascii (name m)

let of_string s =
  let u = String.uppercase_ascii s in
  List.find_opt (fun m -> name m = u) all

let names = List.map name all
let keys = List.map key all

let default_max_contexts = 4
let default_max_components = 5

type prepared =
  | Absolute of (Runner.t -> Peak_compiler.Version.t -> Rating.t)
  | Relative of {
      rate : Runner.t -> base:Peak_compiler.Version.t -> Peak_compiler.Version.t -> Rating.t;
      rate_many :
        Runner.t -> base:Peak_compiler.Version.t -> Peak_compiler.Version.t list -> Rating.t list;
    }

module type RATER = sig
  val meth : t
  val name : string
  val in_auto_chain : bool
  val condition : string
  val describe : string
  val applicable : max_contexts:int -> max_components:int -> Profile.t -> (unit, string) result
  val prepare : params:Rating.params -> non_ts_cycles:float -> Profile.t -> prepared
end

module Cbr_rater : RATER = struct
  let meth = Cbr
  let name = "CBR"
  let in_auto_chain = true
  let condition = "context analysis succeeds and the observed contexts stay few"

  let describe =
    "average invocation times observed under one specific context (Section 2.2)"

  let applicable ~max_contexts ~max_components:_ (profile : Profile.t) =
    match profile.Profile.context with
    | Profile.Cbr_no reason -> Error (Printf.sprintf "CBR: %s" reason)
    | Profile.Cbr_ok { stats; _ } ->
        let n = List.length stats in
        if n > max_contexts then
          Error (Printf.sprintf "CBR: %d contexts exceed the limit of %d" n max_contexts)
        else Ok ()

  (* Forcing CBR past the context-count limit is allowed (the paper's
     MGRID_CBR bar); only a failed context analysis is structural. *)
  let prepare ~params ~non_ts_cycles:_ (profile : Profile.t) =
    match profile.Profile.context with
    | Profile.Cbr_no reason -> raise (Not_applicable ("CBR: " ^ reason))
    | Profile.Cbr_ok { sources; stats; _ } ->
        let target = match stats with s :: _ -> s.Profile.values | [] -> [||] in
        Absolute (fun runner v -> Cbr.rate ~params runner ~sources ~target v)
end

module Mbr_rater : RATER = struct
  let meth = Mbr
  let name = "MBR"
  let in_auto_chain = true
  let condition = "the basic-block component model stays small"

  let describe =
    "regress invocation time onto basic-block component counts (Section 2.3)"

  let applicable ~max_contexts:_ ~max_components (profile : Profile.t) =
    let n = Component_analysis.n_components profile.Profile.components in
    if n > max_components then
      Error (Printf.sprintf "MBR: %d components exceed the limit of %d" n max_components)
    else Ok ()

  let prepare ~params ~non_ts_cycles:_ (profile : Profile.t) =
    let components = profile.Profile.components in
    let avg_counts = profile.Profile.avg_component_counts in
    let dominant = profile.Profile.dominant_component in
    Absolute (fun runner v -> Mbr.rate ~params runner ~components ~avg_counts ~dominant v)
end

module Rbr_rater : RATER = struct
  let meth = Rbr
  let name = "RBR"
  let in_auto_chain = true
  let condition = "the tuning section calls no side-effecting externals"

  let describe =
    "re-execute base and candidate back to back under a restored context (Section 2.4)"

  let applicable ~max_contexts:_ ~max_components:_ (profile : Profile.t) =
    if profile.Profile.impure_calls then
      Error "RBR: tuning section calls side-effecting externals"
    else Ok ()

  let prepare ~params ~non_ts_cycles:_ (_ : Profile.t) =
    Relative
      {
        rate = (fun runner ~base v -> Rbr.rate ~params runner ~base v);
        rate_many = (fun runner ~base vs -> Rbr.rate_many ~params runner ~base vs);
      }
end

module Avg_rater : RATER = struct
  let meth = Avg
  let name = "AVG"
  let in_auto_chain = false
  let condition = "always (baseline; never chosen automatically)"

  let describe =
    "average invocation times regardless of context — the unfair strawman (Section 5.2)"

  let applicable ~max_contexts:_ ~max_components:_ (_ : Profile.t) = Ok ()

  let prepare ~params ~non_ts_cycles:_ (_ : Profile.t) =
    Absolute (fun runner v -> Avg.rate ~params runner v)
end

module Whl_rater : RATER = struct
  let meth = Whl
  let name = "WHL"
  let in_auto_chain = false
  let condition = "always (baseline; never chosen automatically)"

  let describe =
    "time whole program runs, non-TS portion included (Section 5.2)"

  let applicable ~max_contexts:_ ~max_components:_ (_ : Profile.t) = Ok ()

  let prepare ~params:_ ~non_ts_cycles (_ : Profile.t) =
    Absolute (fun runner v -> Whl.rate runner ~non_ts_cycles v)
end

let rater : t -> (module RATER) = function
  | Cbr -> (module Cbr_rater)
  | Mbr -> (module Mbr_rater)
  | Rbr -> (module Rbr_rater)
  | Avg -> (module Avg_rater)
  | Whl -> (module Whl_rater)

let describe m =
  let module R = (val rater m) in
  R.describe

let condition m =
  let module R = (val rater m) in
  R.condition

let applicable ?(max_contexts = default_max_contexts)
    ?(max_components = default_max_components) m profile =
  let module R = (val rater m) in
  R.applicable ~max_contexts ~max_components profile

let fallback_chain ?max_contexts ?max_components profile =
  List.filter
    (fun m -> Result.is_ok (applicable ?max_contexts ?max_components m profile))
    auto_chain

(* Per-rating observability: when a tracer sink is installed, every
   rating call emits a "rating:<METHOD>" instant carrying the number of
   ratings produced and invocations consumed, plus method-keyed
   counters.  With tracing off the wrappers reduce to the raw raters —
   one branch, no clock reads. *)
let observed mname prepared =
  let emit runner before ~ratings outcome =
    let delta = Runner.invocations_consumed runner - before in
    Peak_obs.count ~n:ratings ("method.ratings." ^ mname);
    Peak_obs.count ~n:delta ("method.invocations." ^ mname);
    Peak_obs.instant ~cat:"method"
      ~args:
        [
          ("ratings", string_of_int ratings);
          ("invocations", string_of_int delta);
          ("outcome", outcome);
        ]
      ("rating:" ^ mname)
  in
  let watch runner ~ratings f =
    if not (Peak_obs.active ()) then f ()
    else
      let before = Runner.invocations_consumed runner in
      match f () with
      | r ->
          emit runner before ~ratings "rated";
          r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          emit runner before ~ratings
            (match e with Rating.No_samples _ -> "no-samples" | _ -> "raised");
          Printexc.raise_with_backtrace e bt
  in
  match prepared with
  | Absolute rate ->
      Absolute (fun runner v -> watch runner ~ratings:1 (fun () -> rate runner v))
  | Relative { rate; rate_many } ->
      Relative
        {
          rate =
            (fun runner ~base v -> watch runner ~ratings:1 (fun () -> rate runner ~base v));
          rate_many =
            (fun runner ~base vs ->
              watch runner ~ratings:(List.length vs) (fun () -> rate_many runner ~base vs));
        }

let prepare ?(params = Rating.default_params) ~non_ts_cycles m profile =
  let module R = (val rater m) in
  observed R.name (R.prepare ~params ~non_ts_cycles profile)

type attempt = { a_method : t; a_converged : bool; a_ratings : int }

let chain_string attempts = String.concat ">" (List.map (fun a -> name a.a_method) attempts)
