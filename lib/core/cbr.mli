(** Context-based rating — Section 2.2.

    Rate a version by averaging the execution times of invocations that
    occur under one specific context; invocations under other contexts
    still execute (and are charged to tuning time) but contribute no
    sample. *)

val rate :
  ?params:Rating.params ->
  Runner.t ->
  sources:Peak_ir.Expr.source list ->
  target:float array ->
  Peak_compiler.Version.t ->
  Rating.t
(** [target] is the context-variable value vector to match; [[||]] with
    empty [sources] matches every invocation (the single-context case).
    @raise Rating.No_samples if no invocation matched the target context
    within [max_invocations] — a silent NaN rating would otherwise be
    cached and poison the search. *)

val rate_all_contexts :
  ?params:Rating.params ->
  Runner.t ->
  sources:Peak_ir.Expr.source list ->
  Peak_compiler.Version.t ->
  (float array * Rating.t) list
(** The adaptive-scenario variant: one rating per context observed while
    consuming up to [max_invocations] invocations. *)
