open Peak_compiler
open Peak_workload

let dims = Peak_ir.Features.vector_dims @ Effects.machine_signature_dims

let program_features (b : Benchmark.t) (m : Peak_machine.Machine.t) =
  let tsec = Tsection.make b.Benchmark.ts in
  Array.append
    (Peak_ir.Features.vector tsec.Tsection.features)
    (Effects.machine_signature m tsec.Tsection.features)

let features ~benchmark ~machine =
  match (Registry.by_name benchmark, Peak_machine.Machine.by_name machine) with
  | Some b, Some m -> Some (program_features b m)
  | _ -> None

let build ~dir = Peak_store.Kb.build ~dir ~features

let recommend kb ~benchmark ~machine ?k ?exclude () =
  match features ~benchmark ~machine with
  | None -> []
  | Some fv -> Peak_store.Kb.recommend kb ~features:fv ~machine ?k ?exclude ()

let recommend_start kb (b : Benchmark.t) (m : Peak_machine.Machine.t) =
  Peak_store.Kb.recommend kb ~features:(program_features b m) ~machine:m.Peak_machine.Machine.name ()
