(** The Rating Approach Consultant (Sections 3 and 4.2).

    Decides, per tuning section, which rating methods are applicable and
    which to try first.  The applicability rules themselves live with
    the raters ({!Method.applicable}):

    - {b CBR} needs the Figure-1 analysis to succeed and the number of
      observed contexts to stay small ("to keep the number of contexts
      reasonable", Section 2.2);
    - {b MBR} needs the component model to stay small, or the regression
      would demand too many invocations (Section 2.3);
    - {b RBR} is applicable to almost everything — only sections calling
      side-effecting externals are excluded (Section 2.4.1).

    The initial choice follows the paper's preference order CBR, MBR,
    RBR; at tuning time {!Driver.tune} (auto mode) falls back along the
    applicable list if the chosen method fails its convergence probe. *)

type advice = {
  applicable : Method.t list;  (** In preference order. *)
  chosen : Method.t;
  n_contexts : int option;  (** When the context analysis succeeded. *)
  dominant_share : float option;  (** Time share of the dominant context. *)
  n_components : int;
  estimates : (Method.t * float) list;
      (** Estimated invocations consumed per version rating. *)
  reasons : string list;  (** Why methods were excluded. *)
}

val default_max_contexts : int
(** {!Method.default_max_contexts} (4) — chosen so the Table 1
    benchmarks partition as in the paper. *)

val default_max_components : int
(** {!Method.default_max_components} (5). *)

val advise :
  ?max_contexts:int -> ?max_components:int -> ?window:int -> Tsection.t -> Profile.t -> advice
(** @raise Invalid_argument if no method is applicable (cannot happen for
    sections without impure calls). *)
