(** Online, adaptive tuning — the scenario of Section 6, under drift.

    The paper demonstrates offline tuning but stresses that the rating
    methods "are also applicable to an online, adaptive optimization
    scenario ... facilitating dynamic tuning of applications that are
    very long running, or that exhibit different behavior across their
    execution time."  This engine realizes that scenario on the ADAPT
    mechanism of Figure 6: per context, a {e best} and an {e experimental}
    code version are kept and dynamically swapped; new experimental
    versions arrive asynchronously from a remote optimizer with a compile
    latency, are rated in place with the context-aware machinery, and
    replace the best on a win.

    {b Staleness.}  A tuned configuration is only as good as the input
    distribution it was rated on.  Each context slot therefore freezes a
    {e baseline} (the incumbent's rating-time mean and variance) and keeps
    a sliding window of its recent production samples; a Welch comparison
    of window against baseline — the significance machinery the
    consistency experiment is built on, confirmed by the window's
    {!Peak_util.Regression.pearson} trend — drives a per-slot state
    machine:

    {v Fresh --regression--> Suspect --confirmed--> (Stale) --> Re-tuning --done--> Fresh
      ^                        | window recovers                   |
      +------------------------+----------------------------------+ v}

    A [Stale] verdict re-opens candidate exploration for that context
    only — service never pauses; the other contexts keep their tuned
    versions — re-rates the incumbent in the new regime, and counts the
    invocations until exploration drains as that context's
    time-to-readapt.

    Unlike the offline driver there is no separate tuning phase: every
    invocation is production work, and the engine's quality measure is
    the total cycles the application spent, compared against running -O3
    throughout and against a drift-aware oracle that picks each
    invocation's cheapest version.

    Observability: the engine bumps [adaptive.swaps], [adaptive.stale]
    and [adaptive.readapt_invocations] counters through [Peak_obs] and
    emits an [adaptive:stale] instant per detection. *)

type t

type stats = {
  invocations : int;
  total_cycles : float;  (** Everything the application spent, experiments included. *)
  o3_cycles : float;  (** The same invocations under -O3 throughout. *)
  oracle_cycles : float;
      (** The same invocations under each invocation's cheapest candidate
          (noise-free evaluation) — the drift-aware adaptivity target. *)
  swaps : int;  (** Times a context's best version changed. *)
  contexts_seen : int;
  choices : (float array * Peak_compiler.Optconfig.t) list;
      (** Final best configuration per context key. *)
  stale_detections : int;  (** Stale verdicts across all contexts. *)
  stale_invocations : int list;
      (** Invocation index of each stale verdict, sorted ascending —
          compared against the drift spec's declared shift points by the
          differential tests. *)
  readapts : int;  (** Re-tuning cycles that ran to completion. *)
  mean_time_to_readapt : float;
      (** Mean invocations from a stale verdict to the context's
          exploration draining; [nan] when no re-tuning completed. *)
  readapt_invocations : int;
      (** Production invocations served while their context was
          re-tuning (service continues during re-tuning; this is the
          exposure, not a pause). *)
  fresh_cycles : float;  (** Cycles spent in each state — the per-phase ledger. *)
  suspect_cycles : float;
  retuning_cycles : float;
  p99_invocation_cycles : float;
      (** 99th-percentile noise-free invocation cost — the tail a drift
          burst or an unlucky experiment inflates; [nan] before the
          first invocation. *)
}

val create :
  ?seed:int ->
  ?window:int ->
  ?compile_latency:int ->
  ?stale_threshold:float ->
  ?two_sided:bool ->
  Tsection.t ->
  Peak_workload.Trace.t ->
  Peak_machine.Machine.t ->
  candidates:Peak_compiler.Optconfig.t list ->
  t
(** [window] is the samples needed per (context, version) rating before a
    swap decision (default 12); [compile_latency] the invocations a
    requested version spends at the remote optimizer before it can be
    swapped in (default 25, per ADAPT's asynchronous dynamic
    compilation).  [candidates] are explored in order, per context, with
    -O3 as the initial best.

    [stale_threshold] (default 0.10) is the minimum relative regression
    of a context's recent window against its rating-time baseline for a
    staleness verdict; the window must also be statistically credibly
    worse (one-sided Welch at 97.5%), and the verdict needs two
    consecutive regressed windows (Fresh → Suspect → Stale), so
    measurement noise does not trigger spurious re-tuning.  A
    non-finite or nonpositive threshold disables detection.

    [two_sided] (default [false]) additionally detects {e downward}
    shifts — the recent window credibly {e below} the baseline (Welch
    [significantly_greater] on the baseline side) by more than
    [stale_threshold], confirmed in Suspect by a falling trend — so a
    workload that gets cheaper also re-tunes toward a leaner
    configuration.  The default one-sided path is bit-identical to
    engines built before this option existed.
    @raise Invalid_argument if [stale_threshold] is NaN. *)

val run : t -> invocations:int -> stats
(** Drive the application for the given number of invocations.  [run]
    may be called repeatedly; states, ratings and the cycle ledger carry
    over, and the returned stats cover the whole life of [t]. *)
