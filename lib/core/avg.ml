(** The AVG strawman (Section 5.2).

    "AVG simply takes the timing average of a number of invocations,
    regardless of the TS's context."  Cheap, but the sample's context mix
    depends on where in the program the window lands, so two versions
    can be compared on different workloads — the unfairness the three
    real rating methods exist to prevent.  Included as the paper's
    baseline. *)

let rate ?(params = Rating.default_params) runner version =
  let samples = ref [] in
  let consumed = ref 0 in
  let result = ref None in
  while !result = None do
    let added = ref 0 in
    while !added < params.Rating.window && !consumed < params.Rating.max_invocations do
      let s = Runner.step runner version in
      incr consumed;
      incr added;
      samples := s.Runner.time :: !samples
    done;
    (match Rating.summarize ~params !samples with
    | Rating.Summary { eval; var; kept; converged } ->
        (* AVG ships after one window regardless of convergence when the
           mix is unstable, mirroring its naive usage; it still reports
           the convergence flag honestly. *)
        if
          converged
          || !consumed >= params.Rating.max_invocations
          || !consumed >= 4 * params.Rating.window
        then
          result := Some { Rating.eval; var; samples = kept; invocations = !consumed; converged }
    | Rating.Insufficient { observed } ->
        if !consumed >= params.Rating.max_invocations then
          raise
            (Rating.No_samples
               (Printf.sprintf "Avg.rate: only %d usable sample(s) of %s within %d invocations"
                  observed
                  (Tsection.name (Runner.tsection runner))
                  !consumed)))
  done;
  Option.get !result
