open Peak_ir

let source_to_c = function
  | Expr.Scalar v -> v
  | Expr.Array_elem (a, Some k) -> Printf.sprintf "%s[%d]" a k
  | Expr.Array_elem (a, None) -> a ^ "[*]"
  | Expr.Pointer_deref p -> "*" ^ p

let region_to_c name = function
  | Liveness.Whole -> Printf.sprintf "%s (whole array)" name
  | Liveness.Cells cs ->
      Printf.sprintf "%s cells {%s}" name (String.concat ", " (List.map string_of_int cs))
  | Liveness.Span (lo, hi) ->
      Printf.sprintf "%s[%s .. %s)" name (Expr.to_string lo) (Expr.to_string hi)
  | Liveness.Union rs ->
      String.concat " and "
        (List.map
           (fun r ->
             match r with
             | Liveness.Whole -> name ^ " (whole array)"
             | Liveness.Cells cs ->
                 Printf.sprintf "%s cells {%s}" name
                   (String.concat ", " (List.map string_of_int cs))
             | Liveness.Span (lo, hi) ->
                 Printf.sprintf "%s[%s .. %s)" name (Expr.to_string lo) (Expr.to_string hi)
             | Liveness.Union _ -> name)
           rs)

let render (tsec : Tsection.t) (profile : Profile.t) (advice : Consultant.advice) =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let ts = tsec.Tsection.ts in
  let lv = tsec.Tsection.liveness in
  out "/* ================================================================";
  out " * PEAK instrumented tuning section: %s" ts.Types.name;
  out " * Rating approach: %s (applicable: %s)"
    (Method.name advice.Consultant.chosen)
    (String.concat ", " (List.map Method.name advice.Consultant.applicable));
  out " * ================================================================ */";
  out "";
  (* (1) RBR save/restore + precondition *)
  let modified = Liveness.modified_input lv in
  if List.mem Method.Rbr advice.Consultant.applicable then begin
    out "/* (1) re-execution support: Modified_Input(TS) = Input n Def */";
    if Loc.Set.is_empty modified then out "static void peak_save(void)    { /* empty */ }"
    else begin
      out "static void peak_save(void) {";
      Loc.Set.iter
        (fun loc ->
          match loc with
          | Loc.Scalar v -> out "  peak_save_scalar(%s);" v
          | Loc.Pointer p -> out "  peak_save_pointer(%s);" p
          | Loc.Array a ->
              out "  peak_save_region(%s);  /* %s */" a
                (region_to_c a (Liveness.modified_region lv loc)))
        modified;
      out "}"
    end;
    out "static void peak_precondition(void) { /* stripped copy of %s: warms the cache */ }"
      ts.Types.name;
    out ""
  end;
  (* (2) CBR context capture *)
  (match profile.Profile.context with
  | Profile.Cbr_ok { sources; runtime_constant_arrays; pruned; stats } ->
      out "/* (2) context capture: %d distinct context(s) observed in the profile */"
        (List.length stats);
      if sources = [] then out "/*     all context variables are run-time constants */"
      else
        out "static void peak_context(void) { peak_record(%s); }"
          (String.concat ", " (List.map source_to_c sources));
      if pruned <> [] then
        out "/*     pruned run-time constants: %s */"
          (String.concat ", " (List.map source_to_c pruned));
      if runtime_constant_arrays <> [] then
        out "/*     run-time-constant arrays feeding control: %s */"
          (String.concat ", " runtime_constant_arrays)
  | Profile.Cbr_no reason -> out "/* (2) CBR not applicable: %s */" reason);
  out "";
  (* (3) MBR counters *)
  let components = profile.Profile.components in
  let reps = Component_analysis.representatives components in
  out "/* (3) performance model: %d component(s); counters on representative"
    (Component_analysis.n_components components);
  out " *     blocks %s; merged blocks' counters removed after the profile */"
    (if reps = [] then "(none: constant component only)"
     else String.concat ", " (List.map (Printf.sprintf "B%d") reps));
  List.iter (fun b -> out "static long peak_counter_B%d;" b) reps;
  out "";
  (* (4) timing wrapper + body *)
  out "/* (4) timing instrumentation triggering the rating */";
  out "double peak_timed_%s(void) {" ts.Types.name;
  out "  peak_timer_t t0 = peak_now();";
  out "  %s(...);" ts.Types.name;
  out "  return peak_elapsed(t0);  /* -> EVAL/VAR window */";
  out "}";
  out "";
  (* (5) activation *)
  out "/* (5) main() is instrumented to activate tuning:";
  out " *     peak_tune_section(\"%s\", /* versions from the Remote Optimizer */);"
    ts.Types.name;
  out " */";
  out "";
  Buffer.add_string buf (Pretty.ts_to_c ts);
  Buffer.contents buf
