(** Model-based rating (Section 2.3).

    Every invocation contributes an observation (component counts,
    time); solving the regression [Y = T·C] (Eq. 3) yields the
    component-time vector.  The version's EVAL is either the dominant
    component's time (mode [Dominant]) or the model-predicted average
    invocation time [T_avg = Σ T_i · C_avg,i] (mode [Avg], Eq. 4).  VAR
    is the residual-to-total sum-of-squares ratio of the fit, per
    Section 3.

    Counter instrumentation is charged per invocation: only the
    representative block of each component keeps its counter after the
    profile-driven merge removes the rest. *)

type mode = Dominant | Avg

let counter_cost_per_entry = 0.3

let rate ?(params = Rating.default_params) ?(mode = Avg) runner ~components
    ~avg_counts ~dominant version =
  let reps = Component_analysis.representatives components in
  let times = ref [] in
  let counts = ref [] in
  let n_collected = ref 0 in
  let consumed = ref 0 in
  let k = Component_analysis.n_components components in
  let scratch = Peak_util.Stats.Scratch.create () in
  let min_obs = max params.Rating.window (3 * k) in
  let target = ref min_obs in
  let result = ref None in
  while !result = None do
    while !n_collected < !target && !consumed < params.Rating.max_invocations do
      let s = Runner.step runner version in
      incr consumed;
      incr n_collected;
      let counted = List.fold_left (fun acc b -> acc + s.Runner.counts.(b)) 0 reps in
      Runner.charge_overhead runner (counter_cost_per_entry *. float_of_int counted);
      times := s.Runner.time :: !times;
      (* Dominant mode is the paper's rule (a): valid when one component
         consumes ~all the time, so the regression collapses to that
         component's count plus the constant — which also sidesteps the
         collinearity of a deep loop nest's count polynomials. *)
      let full = Component_analysis.counts components s.Runner.counts in
      let row =
        match mode with
        | Avg -> full
        | Dominant ->
            if dominant = Array.length full - 1 then [| 1.0 |]
            else [| full.(dominant); 1.0 |]
      in
      counts := row :: !counts
    done;
    let times_a = Array.of_list (List.rev !times) in
    let counts_a = Array.of_list (List.rev !counts) in
    let fit =
      if Array.length times_a >= k then
        try
          (* Outlier elimination (Section 3): fit once, drop observations
             whose residuals are perturbation-sized (interrupt spikes and
             cache-flush events dwarf the model error), refit on the
             rest. *)
          let first = Peak_util.Regression.fit ~counts:counts_a ~times:times_a in
          let module Sc = Peak_util.Stats.Scratch in
          Sc.clear scratch;
          Array.iteri
            (fun j t -> Sc.push scratch (t -. Peak_util.Regression.predict first counts_a.(j)))
            times_a;
          Sc.outlier_mask ~k:params.Rating.outlier_k scratch;
          let kept = Sc.kept_count scratch in
          if kept = Array.length times_a || kept < k then Some first
          else begin
            let keep a =
              let out = ref [] in
              Array.iteri (fun j x -> if Sc.kept scratch j then out := x :: !out) a;
              Array.of_list (List.rev !out)
            in
            Some (Peak_util.Regression.fit ~counts:(keep counts_a) ~times:(keep times_a))
          end
        with Failure _ | Invalid_argument _ -> None
      else None
    in
    let finish eval var converged =
      result :=
        Some
          {
            Rating.eval;
            var;
            samples = Array.length times_a;
            invocations = !consumed;
            converged;
          }
    in
    (match fit with
    | Some fit ->
        let eval =
          match mode with
          | Dominant -> fit.Peak_util.Regression.coefficients.(0)
          | Avg -> Peak_util.Regression.predict fit avg_counts
        in
        let var = fit.Peak_util.Regression.var_ratio in
        let converged = Array.length times_a >= min_obs && var <= 4.0 *. params.Rating.rel_threshold in
        if converged then finish eval var true
        else if !consumed >= params.Rating.max_invocations then finish eval var false
    | None ->
        (* budget exhausted before the regression could be fit (fewer
           observations than components, or a singular system): a NaN
           eval here would flow into Search comparison/sort paths and
           poison the candidate ranking, so fail loudly like CBR does *)
        if !consumed >= params.Rating.max_invocations then
          raise
            (Rating.No_samples
               (Printf.sprintf
                  "Mbr.rate: no model fit for %s after %d invocation(s) (%d component(s) \
                   need at least %d observations)"
                  (Tsection.name (Runner.tsection runner))
                  !consumed k k)));
    target := !target + params.Rating.window
  done;
  Option.get !result
