(** The rating-method layer: one first-class definition of "what a
    rating method is" (Section 3).

    Every consumer — the tuning driver, the fallback harness, the CLI,
    the persistent store's codecs and the bench grids — speaks this one
    type; there is no second method enum anywhere in the tree.  A method
    is described by a {!RATER} instance: a stable name, an applicability
    judgment against a {!Profile.t}, and a [prepare] step that closes
    over the profile's context/component data and returns the rating
    functions themselves.

    The paper's §3 fallback rule ("if the system cannot achieve enough
    accuracy ... within some number of invocations, it switches to the
    next applicable rating method") operates over {!fallback_chain}: the
    applicable subset of {!auto_chain} in the consultant's preference
    order CBR, MBR, RBR.  AVG and WHL are the Section 5.2 baselines —
    always ratable, never chosen automatically. *)

type t = Cbr | Mbr | Rbr | Avg | Whl

exception Not_applicable of string
(** Raised by {!prepare} when a method structurally cannot rate the
    given profile (e.g. CBR on a section whose Figure-1 context analysis
    failed).  Distinct from {!Rating.No_samples}, which signals a data
    condition met while rating (budget exhausted without a usable
    sample): [Not_applicable] means the caller forced a method the
    section does not support. *)

val all : t list
(** The registry, in canonical order: CBR, MBR, RBR, AVG, WHL. *)

val auto_chain : t list
(** The methods auto mode may choose, in the consultant's preference
    order: CBR, MBR, RBR. *)

val name : t -> string
(** Stable upper-case name (["CBR"]) — the canonical spelling used in
    store journals, session results and reports. *)

val key : t -> string
(** Stable lower-case name (["cbr"]) — the spelling used in CLI
    arguments and session ids. *)

val of_string : string -> t option
(** Case-insensitive parse of {!name}/{!key}. *)

val names : string list
(** [List.map name all]. *)

val keys : string list
(** [List.map key all]. *)

val describe : t -> string
(** One-line description of how the method rates. *)

val condition : t -> string
(** One-line applicability condition (the consultant's rule), for
    generated documentation and [peak-tune methods]. *)

val default_max_contexts : int
(** 4 — chosen so the Table 1 benchmarks partition as in the paper. *)

val default_max_components : int
(** 5. *)

val applicable :
  ?max_contexts:int -> ?max_components:int -> t -> Profile.t -> (unit, string) result
(** The consultant's applicability judgment: [Error reason] explains the
    exclusion (e.g. ["CBR: 7 contexts exceed the limit of 4"]).  AVG and
    WHL are always applicable. *)

val fallback_chain : ?max_contexts:int -> ?max_components:int -> Profile.t -> t list
(** The applicable subset of {!auto_chain}, in preference order — the
    chain the driver's §3 fallback walks in auto mode. *)

(** What {!prepare} returns: the rating functions, closed over the
    profile.  [Absolute] methods rate a version by itself (the EVAL is a
    time; relative comparisons divide two EVALs); [Relative] methods
    (RBR) natively rate a version against a base. *)
type prepared =
  | Absolute of (Runner.t -> Peak_compiler.Version.t -> Rating.t)
  | Relative of {
      rate : Runner.t -> base:Peak_compiler.Version.t -> Peak_compiler.Version.t -> Rating.t;
      rate_many :
        Runner.t -> base:Peak_compiler.Version.t -> Peak_compiler.Version.t list -> Rating.t list;
          (** Section 2.4.2's batching: fixed per-invocation overheads
              are amortized across all versions sharing one base. *)
    }

(** One rating method as a first-class module — the registry's unit. *)
module type RATER = sig
  val meth : t
  val name : string

  val in_auto_chain : bool
  (** False for the AVG/WHL baselines. *)

  val condition : string
  (** Applicability condition, prose. *)

  val describe : string

  val applicable : max_contexts:int -> max_components:int -> Profile.t -> (unit, string) result

  val prepare : params:Rating.params -> non_ts_cycles:float -> Profile.t -> prepared
  (** @raise Not_applicable when the profile lacks what the method
      needs.  Note [prepare] is deliberately more permissive than
      [applicable]: a method the consultant would reject on cost grounds
      (CBR with too many contexts) can still be forced, matching the
      paper's MGRID_CBR bar. *)
end

val rater : t -> (module RATER)
(** The registry lookup. *)

val prepare :
  ?params:Rating.params -> non_ts_cycles:float -> t -> Profile.t -> prepared
(** [rater m |> prepare] with defaulted params.
    @raise Not_applicable as {!RATER.prepare}. *)

(** {1 Fallback attempts} *)

type attempt = {
  a_method : t;
  a_converged : bool;
      (** False for a method abandoned after a failed convergence probe;
          true for the method finally committed. *)
  a_ratings : int;
      (** Ratings performed under this method: 1 for a failed probe, the
          search's rating count for the committed method. *)
}
(** One entry of the driver's attempted-method chain, the committed
    method last. *)

val chain_string : attempt list -> string
(** Compact rendering of an attempt chain, e.g. ["CBR>MBR"] (abandoned
    methods first, committed method last) or just ["RBR"]. *)
