(** Program partitioning — the TS Selector of Section 4.1/4.2 step (1).

    "We choose as TS's the most time-consuming functions and loops,
    according to the program execution profiles."  Given a whole program,
    profile every candidate section, compute its share of program time,
    keep the sections above a share threshold, and tune each selected
    section independently with its consultant-chosen rating method.  The
    whole-program improvement composes the per-section wins with the
    untouched serial remainder (Amdahl). *)

type section_profile = {
  section : Peak_workload.Program.section;
  tsec : Tsection.t;
  profile : Profile.t;
  time_share : float;  (** Of whole-program time, serial code included. *)
}

val profile_program :
  ?seed:int ->
  Peak_workload.Program.t ->
  Peak_machine.Machine.t ->
  Peak_workload.Trace.dataset ->
  section_profile list
(** Profiles sorted by descending time share; shares sum to
    [1 - serial_fraction]. *)

val select :
  ?min_share:float -> ?max_sections:int -> section_profile list -> section_profile list
(** The sections worth tuning (default: share >= 0.10, at most 8). *)

type section_result = {
  sp : section_profile;
  method_used : Method.t;
  result : Driver.result;
  section_improvement_pct : float;
      (** TS-level (section-only, pre-Amdahl) improvement of the found
          configuration, noise-free on the ref data set. *)
}

type program_result = {
  sections : section_result list;
  skipped : section_profile list;
  program_improvement_pct : float;
      (** Whole-program improvement with every tuned section's winner
          installed, serial code unchanged. *)
  tuning_seconds : float;  (** Summed over the tuned sections. *)
}

val tune_program :
  ?seed:int ->
  ?min_share:float ->
  ?max_sections:int ->
  Peak_workload.Program.t ->
  Peak_machine.Machine.t ->
  Peak_workload.Trace.dataset ->
  program_result
(** The full Section 4.2 pipeline over a program: select, consult, tune
    each section with its own method, compose the result. *)
