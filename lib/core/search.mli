(** Optimization-space search (Section 5.2).

    An exhaustive sweep of the 38-flag space is O(2^n); the paper uses
    the authors' Iterative Elimination algorithm [11], which starts from
    [-O3] and repeatedly removes the flag whose removal helps most, at
    O(n²) ratings.  Batch Elimination and Combined Elimination (from the
    same line of work) and two simple baselines are provided for the
    search ablation bench.

    All searches consume a [relative] oracle:
    [relative ~base candidate] is the measured relative time
    [T(candidate)/T(base)] — below 1.0 means the candidate is faster.
    This is exactly what every rating method produces (RBR natively; the
    others as a ratio of EVALs). *)

type relative = base:Peak_compiler.Optconfig.t -> Peak_compiler.Optconfig.t -> float

type rate_many = base:Peak_compiler.Optconfig.t -> Peak_compiler.Optconfig.t list -> float list
(** Batch form of the rating oracle: rate a whole candidate set against
    one base, returning the relative times in candidate order.  Search
    algorithms route every embarrassingly-parallel candidate scan through
    this hook, so a driver can fan the batch out over a domain pool
    ({!Peak_util.Pool}).  When omitted, it defaults to rating the
    candidates one at a time with [relative], in submission order —
    bit-identical to the historical sequential behavior. *)

type prepare = Peak_compiler.Optconfig.t list -> unit
(** Called with each iteration's candidate configurations before any of
    them is rated — the hook the driver uses to prefetch compiles at the
    remote optimizer (Figure 6) so they overlap with rating. *)

val sequential_rate_many : relative:relative -> rate_many
(** The default batch hook: rate the candidates one at a time with
    [relative], in submission order.  Exposed so strategy code and
    tests can compare batched against sequential rating. *)

type stats = {
  ratings : int;  (** Rating-oracle invocations. *)
  iterations : int;
  trajectory : (Peak_compiler.Optconfig.t * float) list;
      (** Accepted configurations with their relative gain vs the
          previous baseline, in order. *)
}

val iterative_elimination :
  ?threshold:float ->
  ?prepare:prepare ->
  ?rate_many:rate_many ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Remove one worst flag per iteration until no removal improves by more
    than [threshold] (default 0.005 relative).  Each iteration's
    candidate scan is one [rate_many] batch. *)

val batch_elimination :
  ?threshold:float ->
  ?prepare:prepare ->
  ?rate_many:rate_many ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Measure each flag's removal once against the start configuration
    (one [rate_many] batch) and drop every flag that helped — n+0
    ratings, no interaction handling.  The trajectory lists the
    cumulative configurations adopted while stacking the removals, so
    its final entry is the returned configuration. *)

val combined_elimination :
  ?threshold:float ->
  ?prepare:prepare ->
  ?rate_many:rate_many ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Batch-style first measurement, then iteratively re-test only the
    initially-harmful flags against the evolving baseline; every scan is
    a [rate_many] batch. *)

val focused_elimination :
  ?threshold:float ->
  ?prepare:prepare ->
  ?rate_many:rate_many ->
  flags:Peak_compiler.Flags.t list ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** {!combined_elimination} restricted to an explicit flag universe:
    only [flags] (intersected with the flags enabled in the start
    configuration) are considered for removal.  This is the focused
    stage-2 engine of the [staged] strategy, which hands it the flags
    surviving importance screening.  An empty effective universe
    returns the start configuration untouched with [ratings = 0]. *)

val random_search :
  ?samples:int ->
  ?rate_many:rate_many ->
  rng:Peak_util.Rng.t ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Uniformly random configurations, all rated against the start
    configuration as one [rate_many] batch; returns the best found
    (default 100 samples).  [samples <= 0] returns the start
    configuration with [ratings = 0] without touching the oracle. *)

val exhaustive :
  flags:Peak_compiler.Flags.t list ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Enumerate all on/off assignments of [flags] (others untouched).
    @raise Invalid_argument beyond 16 flags. *)

val fractional_factorial :
  ?runs:int ->
  ?threshold:float ->
  ?rate_many:rate_many ->
  rng:Peak_util.Rng.t ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Chow & Wu's fractional-factorial flag selection [2], foldover style:
    rate [runs] random configurations together with their complements
    (all against the start configuration), estimate each flag's main
    effect as the mean rating difference between its on- and off-halves,
    and disable the flags whose presence measurably slows the code.
    2·[runs] + 1 ratings total (default [runs] = 20). *)

val ose :
  ?threshold:float ->
  relative:relative ->
  Peak_compiler.Optconfig.t ->
  Peak_compiler.Optconfig.t * stats
(** Optimization-Space Exploration [13]: walk a small predefined tree of
    configurations — level one removes whole optimization groups
    (scheduling, CSE, aliasing, loop, branch, inlining) from the start
    configuration; subsequent levels combine the winning group removals —
    keeping the best configuration seen.  A few dozen ratings at most. *)
