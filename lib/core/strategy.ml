(* The search-strategy layer: one registry of staged search plans shared
   by the driver, CLI, store, service and bench.  See strategy.mli for
   the contract. *)

open Peak_compiler

type t = Ie | Be | Ce | Random of int | Ff | Ose | Staged

let all = [ Ie; Be; Ce; Random 100; Ff; Ose; Staged ]

let name = function
  | Ie -> "Iterative Elimination"
  | Be -> "Batch Elimination"
  | Ce -> "Combined Elimination"
  | Random n -> Printf.sprintf "Random (%d)" n
  | Ff -> "Fractional Factorial"
  | Ose -> "Opt-Space Exploration"
  | Staged -> "Staged (learned)"

let key = function
  | Ie -> "ie"
  | Be -> "be"
  | Ce -> "ce"
  | Random n -> Printf.sprintf "random%d" n
  | Ff -> "ff"
  | Ose -> "ose"
  | Staged -> "staged"

let keys = List.map key all

let valid_spellings = "ie, be, ce, random[N], ff, ose or staged"

let of_string s =
  match String.lowercase_ascii s with
  | "ie" -> Ok Ie
  | "be" -> Ok Be
  | "ce" -> Ok Ce
  | "ff" -> Ok Ff
  | "ose" -> Ok Ose
  | "staged" -> Ok Staged
  | "random" -> Ok (Random 100)
  | other when String.length other > 6 && String.sub other 0 6 = "random" -> (
      match int_of_string_opt (String.sub other 6 (String.length other - 6)) with
      | Some n when n > 0 -> Ok (Random n)
      | _ -> Error (Printf.sprintf "unknown search %s (valid: %s)" other valid_spellings))
  | other -> Error (Printf.sprintf "unknown search %s (valid: %s)" other valid_spellings)

let describe = function
  | Ie ->
      "Remove the single worst flag per pass until no removal improves by the threshold \
       (paper Section 5.2)."
  | Be -> "Rate every single-flag removal once against the start and drop all harmful flags."
  | Ce ->
      "Batch first pass, then re-test the initially-harmful flags against the evolving \
       baseline."
  | Random n -> Printf.sprintf "Rate %d uniformly random configurations and keep the best." n
  | Ff ->
      "Chow & Wu foldover screening: estimate per-flag main effects from random designs, \
       confirm survivors individually."
  | Ose ->
      "Walk a predefined tree of optimization-group removals and stack the winning groups."
  | Staged ->
      "Learned search: ridge-regression flag importances from live probes plus the store's \
       rating corpus, then focused elimination over the survivors."

let stage_plan = function
  | Ie | Ce -> "eliminate"
  | Be -> "batch"
  | Random _ -> "sample"
  | Ff -> "factorial"
  | Ose -> "explore"
  | Staged -> "screen -> refine"

type stage = { sg_label : string; sg_ratings : int; sg_flags : int }

type ctx = {
  threshold : float;
  seed : int;
  prepare : Search.prepare;
  rate_many : Search.rate_many option;
  relative : Search.relative;
  corpus : (Optconfig.t * float) list;
  enter_stage : int -> string -> unit;
  leave_stage : unit -> unit;
}

let make_ctx ?(threshold = 0.005) ?(seed = 11) ?(prepare = fun _ -> ()) ?rate_many
    ?(corpus = []) ?(enter_stage = fun _ _ -> ()) ?(leave_stage = fun () -> ()) ~relative () =
  { threshold; seed; prepare; rate_many; relative; corpus; enter_stage; leave_stage }

let run_stage ctx k label f =
  ctx.enter_stage k label;
  Fun.protect ~finally:ctx.leave_stage f

(* A one-stage strategy: wrap a classic Search function, announce its
   single stage, and derive the stage record from the returned stats. *)
let single ctx ~label ~scope f start =
  let best, stats = run_stage ctx 1 label (fun () -> f start) in
  (best, stats, [ { sg_label = label; sg_ratings = stats.Search.ratings; sg_flags = scope } ])

module type STRATEGY = sig
  val strat : t

  val run : ctx -> Optconfig.t -> Optconfig.t * Search.stats * stage list
end

(* Random and FF draw their candidate streams from [seed + 3] — the
   exact RNG the driver historically created for them — so results stay
   bit-identical with pre-registry runs. *)
let search_rng ctx = Peak_util.Rng.create ~seed:(ctx.seed + 3)

module Ie_strategy = struct
  let strat = Ie

  let run ctx start =
    single ctx ~label:"eliminate" ~scope:(List.length (Optconfig.enabled start))
      (Search.iterative_elimination ~threshold:ctx.threshold ~prepare:ctx.prepare
         ?rate_many:ctx.rate_many ~relative:ctx.relative)
      start
end

module Be_strategy = struct
  let strat = Be

  let run ctx start =
    single ctx ~label:"batch" ~scope:(List.length (Optconfig.enabled start))
      (Search.batch_elimination ~threshold:ctx.threshold ~prepare:ctx.prepare
         ?rate_many:ctx.rate_many ~relative:ctx.relative)
      start
end

module Ce_strategy = struct
  let strat = Ce

  let run ctx start =
    single ctx ~label:"eliminate" ~scope:(List.length (Optconfig.enabled start))
      (Search.combined_elimination ~threshold:ctx.threshold ~prepare:ctx.prepare
         ?rate_many:ctx.rate_many ~relative:ctx.relative)
      start
end

let random_strategy n : (module STRATEGY) =
  (module struct
    let strat = Random n

    let run ctx start =
      single ctx ~label:"sample" ~scope:(Array.length Flags.all)
        (Search.random_search ~samples:n ?rate_many:ctx.rate_many ~rng:(search_rng ctx)
           ~relative:ctx.relative)
        start
  end)

module Ff_strategy = struct
  let strat = Ff

  let run ctx start =
    single ctx ~label:"factorial" ~scope:(Array.length Flags.all)
      (Search.fractional_factorial ~threshold:ctx.threshold ?rate_many:ctx.rate_many
         ~rng:(search_rng ctx) ~relative:ctx.relative)
      start
end

module Ose_strategy = struct
  let strat = Ose

  let run ctx start =
    single ctx ~label:"explore" ~scope:(List.length (Optconfig.enabled start))
      (Search.ose ~threshold:ctx.threshold ~relative:ctx.relative)
      start
end

(* ---- the staged (learned) strategy ---------------------------------- *)

let staged_probe_count ~trained n = if trained then max 4 ((n + 7) / 8) else max 8 ((n + 2) / 3)

(* Survivor count for an untrained stage 2: with only probe evidence the
   screen can merely *rank* the harmful flags into the kept set, not pin
   their effects to zero, so keep a generous top fraction.  Everything
   below the cut is frozen. *)
let staged_keep_count n = max 1 ((11 * n + 19) / 20)

(* Keep only corpus rows whose eval plausibly is a relative time: index
   entries mix absolute cycle counts (huge) with relative ratings
   (around 1.0), and only the latter say anything about flag harm. *)
let plausible_relative e = Float.is_finite e && e > 0.25 && e < 4.0

let staged_screen ctx start =
  let flags = Array.of_list (Optconfig.enabled start) in
  let n = Array.length flags in
  if n = 0 then ([], 0)
  else begin
    let prior = List.filter (fun (_, e) -> plausible_relative e) ctx.corpus in
    (* a corpus at least as large as the flag universe pins the per-flag
       effects about as well as Batch Elimination's full scan would, so
       the screen can trust a tight threshold cut and spend fewer live
       probes; an untrained screen falls back to a rank cut *)
    let trained = List.length prior >= n in
    let probes = staged_probe_count ~trained n in
    let rng = search_rng ctx in
    (* candidates are drawn before any rating (the oracle never touches
       the rng), so the probe set is a pure function of the seed *)
    let candidates =
      List.init probes (fun _ ->
          Array.fold_left
            (fun c f -> if Peak_util.Rng.bool rng then c else Optconfig.disable c f)
            start flags)
    in
    ctx.prepare candidates;
    let rate_all =
      Option.value ctx.rate_many ~default:(Search.sequential_rate_many ~relative:ctx.relative)
    in
    let rs = rate_all ~base:start candidates in
    let live =
      List.filter (fun (_, r) -> Float.is_finite r) (List.combine candidates rs)
    in
    let observations = live @ prior in
    if observations = [] then
      (* every probe quarantined and no usable corpus: keep the whole
         universe so stage 2 degrades to plain combined elimination *)
      (Array.to_list flags |> List.map (fun f -> (f, infinity)), probes)
    else begin
      (* centered ±1 factorial coding: +1 when the flag is on, −1 when
         off, with the mean response subtracted instead of an intercept
         column.  Random draws make the columns near-orthogonal, so the
         ridge solve recovers per-flag main effects even with fewer
         observations than flags; coefficient i estimates *half* the
         relative-time increase from enabling flag i, so positive =
         harmful *)
      let mean_time =
        List.fold_left (fun acc (_, t) -> acc +. t) 0.0 observations
        /. float_of_int (List.length observations)
      in
      let row c =
        Array.init n (fun i -> if Optconfig.is_enabled c flags.(i) then 1.0 else -1.0)
      in
      let counts = Array.of_list (List.map (fun (c, _) -> row c) observations) in
      let times = Array.of_list (List.map (fun (_, t) -> t -. mean_time) observations) in
      let f = Peak_util.Regression.ridge ~counts ~times () in
      let scored =
        List.init n (fun i -> (i, 2.0 *. f.Peak_util.Regression.coefficients.(i)))
      in
      (* Rank by fitted effect (positive = enabling the flag makes the
         program slower) and keep the top slice.  A rank cut beats a
         threshold cut even on a trained corpus: flags that only hurt in
         interaction with another flag have a near-zero *main* effect,
         which still ranks above the mostly-beneficial majority — and a
         false survivor costs one rating in the refine stage's first
         pass, while a false elimination is unrecoverable. *)
      let ranked =
        List.sort
          (fun (ia, a) (ib, b) ->
            match compare (b : float) a with 0 -> compare ia ib | c -> c)
          scored
      in
      let kept = List.filteri (fun rank _ -> rank < staged_keep_count n) ranked in
      (* restore flag-universe order so the refine stage walks survivors
         in the same order combined elimination would *)
      let survivors =
        List.sort (fun (ia, _) (ib, _) -> compare ia ib) kept
        |> List.map (fun (i, importance) -> (flags.(i), importance))
      in
      (survivors, probes)
    end
  end

module Staged_strategy = struct
  let strat = Staged

  let run ctx start =
    let scope = List.length (Optconfig.enabled start) in
    let survivors, probe_ratings = run_stage ctx 1 "screen" (fun () -> staged_screen ctx start) in
    let stage1 = { sg_label = "screen"; sg_ratings = probe_ratings; sg_flags = scope } in
    let flags = List.map fst survivors in
    (* screening eliminated everything (or the start had no flags):
       return the start untouched instead of running an empty stage 2 *)
    let best, refine_stats =
      if flags = [] then (start, { Search.ratings = 0; iterations = 0; trajectory = [] })
      else
        run_stage ctx 2 "refine" (fun () ->
            Search.focused_elimination ~threshold:ctx.threshold ~prepare:ctx.prepare
              ?rate_many:ctx.rate_many ~flags ~relative:ctx.relative start)
    in
    let stage2 =
      {
        sg_label = "refine";
        sg_ratings = refine_stats.Search.ratings;
        sg_flags = List.length flags;
      }
    in
    ( best,
      {
        Search.ratings = probe_ratings + refine_stats.Search.ratings;
        iterations = 1 + refine_stats.Search.iterations;
        trajectory = refine_stats.Search.trajectory;
      },
      [ stage1; stage2 ] )
end

let strategy : t -> (module STRATEGY) = function
  | Ie -> (module Ie_strategy)
  | Be -> (module Be_strategy)
  | Ce -> (module Ce_strategy)
  | Random n -> random_strategy n
  | Ff -> (module Ff_strategy)
  | Ose -> (module Ose_strategy)
  | Staged -> (module Staged_strategy)

let run s ctx start =
  let module S = (val strategy s) in
  S.run ctx start
