open Peak_store

let ( let* ) r f = Result.bind r f

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_ts : float;  (* microseconds *)
  sp_dur : float;  (* microseconds *)
  sp_unclosed : bool;
}

type instant = { i_name : string; i_cat : string; i_ts : float }

type t = {
  spans : span list;
  instants : instant list;
  counters : (string * int) list;
  gauges : (string * int) list;
  timings : (string * (int * float)) list;
  dropped : int;
  open_spans : int;
}

let arg name v =
  match Json.member "args" v with
  | Error _ -> None
  | Ok args -> ( match Json.get_str name args with Ok s -> Some s | Error _ -> None)

let int_arg name v = Option.bind (arg name v) int_of_string_opt

let span_of_json v =
  let* sp_name = Json.get_str "name" v in
  let* sp_cat = Json.get_str "cat" v in
  let* sp_tid = Json.get_int "tid" v in
  let* sp_ts = Json.get_float "ts" v in
  let* sp_dur = Json.get_float "dur" v in
  let* sp_id =
    match int_arg "span_id" v with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "span %S: missing args.span_id" sp_name)
  in
  let* sp_parent =
    match int_arg "parent_id" v with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "span %S: missing args.parent_id" sp_name)
  in
  let sp_unclosed = arg "unclosed" v = Some "true" in
  Ok { sp_id; sp_parent; sp_name; sp_cat; sp_tid; sp_ts; sp_dur; sp_unclosed }

let instant_of_json v =
  let* i_name = Json.get_str "name" v in
  let* i_cat = Json.get_str "cat" v in
  let* i_ts = Json.get_float "ts" v in
  Ok { i_name; i_cat; i_ts }

(* otherData scalars and counter values are serialized as JSON strings;
   timings as "count:total_seconds". *)
let str_int name v =
  let* s = Json.get_str name v in
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "member %S: not an integer: %s" name s)

let timing_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some c, Some t -> Some (c, t)
      | _ -> None)

let of_json v =
  let* events = Json.get_list "traceEvents" v in
  let* spans, instants =
    List.fold_left
      (fun acc ev ->
        let* spans, instants = acc in
        let* ph = Json.get_str "ph" ev in
        match ph with
        | "X" ->
            let* s = span_of_json ev in
            Ok (s :: spans, instants)
        | "i" ->
            let* i = instant_of_json ev in
            Ok (spans, i :: instants)
        | other -> Error (Printf.sprintf "unsupported event phase %S" other))
      (Ok ([], [])) events
  in
  let* other = Json.member "otherData" v in
  let* dropped = str_int "dropped" other in
  let* open_spans = str_int "open_spans" other in
  let int_table label j =
    match j with
    | Json.Obj kvs ->
        List.fold_left
          (fun acc (k, jv) ->
            let* acc = acc in
            let* s = Json.to_str jv in
            match int_of_string_opt s with
            | Some n -> Ok ((k, n) :: acc)
            | None -> Error (Printf.sprintf "%s %S: not an integer: %s" label k s))
          (Ok []) kvs
        |> Result.map List.rev
    | _ -> Error (Printf.sprintf "member %S: expected an object" label)
  in
  let* counters =
    let* c = Json.member "counters" other in
    int_table "counters" c
  in
  (* gauges arrived with the serve subsystem; traces written before then
     simply have none *)
  let* gauges =
    match Json.member "gauges" other with
    | Error _ -> Ok []
    | Ok g -> int_table "gauges" g
  in
  let* timings =
    let* tj = Json.member "timings" other in
    match tj with
    | Json.Obj kvs ->
        List.fold_left
          (fun acc (k, jv) ->
            let* acc = acc in
            let* s = Json.to_str jv in
            match timing_of_string s with
            | Some ct -> Ok ((k, ct) :: acc)
            | None -> Error (Printf.sprintf "timing %S: malformed: %s" k s))
          (Ok []) kvs
        |> Result.map List.rev
    | _ -> Error "member \"timings\": expected an object"
  in
  Ok
    {
      spans = List.rev spans;
      instants = List.rev instants;
      counters;
      gauges;
      timings;
      dropped;
      open_spans;
    }

let load path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* v = Json.of_string (String.trim content) in
    of_json v

(* Schema validation: the invariants the tracer promises.  Any failure
   here means a bug in the exporter (or a hand-edited file), not a bad
   tuning run. *)
let validate t =
  let ids = Hashtbl.create 256 in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Hashtbl.mem ids s.sp_id then
          Error (Printf.sprintf "span id %d appears twice" s.sp_id)
        else begin
          Hashtbl.replace ids s.sp_id ();
          Ok ()
        end)
      (Ok ()) t.spans
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if s.sp_dur < 0.0 then
          Error (Printf.sprintf "span %S (id %d): negative duration" s.sp_name s.sp_id)
        else if s.sp_ts < 0.0 then
          Error (Printf.sprintf "span %S (id %d): negative timestamp" s.sp_name s.sp_id)
        else if s.sp_parent <> 0 && not (Hashtbl.mem ids s.sp_parent) then
          Error
            (Printf.sprintf "span %S (id %d): parent %d not in trace" s.sp_name s.sp_id
               s.sp_parent)
        else Ok ())
      (Ok ()) t.spans
  in
  let unclosed = List.filter (fun s -> s.sp_unclosed) t.spans in
  let* () =
    if List.length unclosed <> t.open_spans then
      Error
        (Printf.sprintf "otherData.open_spans is %d but %d span(s) are flagged unclosed"
           t.open_spans (List.length unclosed))
    else Ok ()
  in
  List.fold_left
    (fun acc i ->
      let* () = acc in
      if i.i_ts < 0.0 then Error (Printf.sprintf "instant %S: negative timestamp" i.i_name)
      else Ok ())
    (Ok ()) t.instants

let ms us = Printf.sprintf "%.3f" (us /. 1e3)

let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d span(s), %d instant(s), %d dropped, %d unclosed\n"
       (List.length t.spans) (List.length t.instants) t.dropped t.open_spans);
  let by_cat = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let c, d =
        match Hashtbl.find_opt by_cat s.sp_cat with
        | Some cd -> cd
        | None ->
            let cd = (ref 0, ref 0.0) in
            Hashtbl.replace by_cat s.sp_cat cd;
            cd
      in
      incr c;
      d := !d +. s.sp_dur)
    t.spans;
  let cats =
    Hashtbl.fold (fun k (c, d) acc -> (k, !c, !d) :: acc) by_cat []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  if cats <> [] then begin
    let tbl =
      Peak_util.Table.create ~title:"Spans by category"
        ~header:[ "category"; "count"; "total (ms)" ] ()
    in
    List.iter
      (fun (cat, c, d) -> Peak_util.Table.add_row tbl [ cat; string_of_int c; ms d ])
      cats;
    Buffer.add_string buf (Peak_util.Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  if t.counters <> [] then begin
    let tbl = Peak_util.Table.create ~title:"Counters" ~header:[ "counter"; "value" ] () in
    List.iter
      (fun (k, v) -> Peak_util.Table.add_row tbl [ k; string_of_int v ])
      t.counters;
    Buffer.add_string buf (Peak_util.Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  if t.gauges <> [] then begin
    let tbl = Peak_util.Table.create ~title:"Gauges" ~header:[ "gauge"; "value" ] () in
    List.iter (fun (k, v) -> Peak_util.Table.add_row tbl [ k; string_of_int v ]) t.gauges;
    Buffer.add_string buf (Peak_util.Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  if t.timings <> [] then begin
    let tbl =
      Peak_util.Table.create ~title:"Timings"
        ~header:[ "timing"; "count"; "total (ms)" ] ()
    in
    List.iter
      (fun (k, (c, total)) ->
        Peak_util.Table.add_row tbl [ k; string_of_int c; ms (total *. 1e6) ])
      t.timings;
    Buffer.add_string buf (Peak_util.Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
