(** Method fallback over a single runner (Section 3): "if the system
    cannot achieve enough accuracy ... within some number of
    invocations, it switches to the next applicable rating method."

    This is the library-level wrapper over the {!Method} registry for
    callers that hold their own {!Runner.t} and want one rating with
    fallback; {!Driver.tune}'s auto mode performs the same §3 walk
    in-search (with probes, persistence and parallelism). *)

type outcome = {
  method_used : Method.t;
  rating : Rating.t;
  attempts : (Method.t * Rating.t) list;
      (** Every method tried, in order, the used one last. *)
}

val rate_one :
  ?params:Rating.params ->
  ?non_ts_cycles:float ->
  Runner.t ->
  Profile.t ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t ->
  Method.t ->
  Rating.t
(** Rate with one specific method via {!Method.prepare}.
    [non_ts_cycles] (default 0) only matters for WHL.
    @raise Method.Not_applicable for a method the profile structurally
    cannot support (e.g. CBR on a section whose context analysis
    failed).
    @raise Rating.No_samples if the method ran out of budget without a
    usable sample — a data condition, not a caller bug. *)

val rate_with_fallback :
  ?params:Rating.params ->
  ?non_ts_cycles:float ->
  Runner.t ->
  Profile.t ->
  Consultant.advice ->
  base:Peak_compiler.Version.t ->
  Peak_compiler.Version.t ->
  outcome
(** Try the consultant's applicable methods in order; return the first
    converged rating (or the last attempt if none converged).  A
    {!Rating.No_samples} attempt counts as non-converged (recorded with
    a NaN rating) and falls through to the next method. *)
