open Peak_workload

type section_profile = {
  section : Program.section;
  tsec : Tsection.t;
  profile : Profile.t;
  time_share : float;
}

let profile_program ?(seed = 11) (program : Program.t) machine dataset =
  let raw =
    List.map
      (fun (section : Program.section) ->
        let tsec = Tsection.make section.Program.ts in
        let trace = section.Program.trace dataset ~seed in
        let profile = Profile.run ~seed tsec trace machine in
        (section, tsec, profile))
      program.Program.sections
  in
  let total_section_cycles =
    List.fold_left (fun acc (_, _, p) -> acc +. p.Profile.ts_pass_cycles) 0.0 raw
  in
  let sectionable = 1.0 -. program.Program.serial_fraction in
  List.map
    (fun (section, tsec, profile) ->
      {
        section;
        tsec;
        profile;
        time_share =
          (if total_section_cycles > 0.0 then
             profile.Profile.ts_pass_cycles /. total_section_cycles *. sectionable
           else 0.0);
      })
    raw
  |> List.sort (fun a b -> compare b.time_share a.time_share)

let select ?(min_share = 0.10) ?(max_sections = 8) profiles =
  List.filteri (fun i sp -> i < max_sections && sp.time_share >= min_share) profiles

type section_result = {
  sp : section_profile;
  method_used : Method.t;
  result : Driver.result;
  section_improvement_pct : float;
}

type program_result = {
  sections : section_result list;
  skipped : section_profile list;
  program_improvement_pct : float;
  tuning_seconds : float;
}

(* Wrap a program section as a standalone benchmark so the section driver
   can run unchanged; the share drives its non-TS accounting. *)
let as_benchmark (program : Program.t) (sp : section_profile) =
  {
    Benchmark.name = program.Program.name ^ "." ^ sp.section.Program.name;
    ts_name = sp.section.Program.name;
    kind = Benchmark.Floating_point;
    ts = sp.section.Program.ts;
    paper_invocations = "n/a";
    paper_method = "n/a";
    scale = "n/a";
    time_share = Float.max 0.01 sp.time_share;
    trace = sp.section.Program.trace;
  }

let tune_program ?(seed = 11) ?min_share ?max_sections (program : Program.t) machine dataset
    =
  let profiles = profile_program ~seed program machine dataset in
  let selected = select ?min_share ?max_sections profiles in
  let skipped = List.filter (fun sp -> not (List.memq sp selected)) profiles in
  (* TS-level speedup of a section under a configuration, noise-free on
     the ref data set *)
  let section_speedup sp best_config =
    let machine0 =
      { machine with Peak_machine.Machine.noise_sigma = 0.0; spike_probability = 0.0 }
    in
    let cycles config =
      let trace = sp.section.Program.trace Trace.Ref ~seed in
      let runner = Runner.create ~seed ~context_switch_rate:0.0 sp.tsec trace machine0 in
      let v = Peak_compiler.Version.compile machine0 sp.tsec.Tsection.features config in
      Runner.run_full_pass runner v
    in
    cycles Peak_compiler.Optconfig.o3 /. cycles best_config
  in
  let sections =
    List.map
      (fun sp ->
        let b = as_benchmark program sp in
        let method_ = Driver.auto_method sp.profile sp.tsec in
        let result = Driver.tune ~seed ~method_ b machine dataset in
        let section_improvement_pct =
          (section_speedup sp result.Driver.best_config -. 1.0) *. 100.0
        in
        { sp; method_used = method_; result; section_improvement_pct })
      selected
  in
  let tuned_time =
    List.fold_left
      (fun acc sr ->
        acc +. (sr.sp.time_share /. (1.0 +. (sr.section_improvement_pct /. 100.0))))
      0.0 sections
  in
  let untouched =
    program.Program.serial_fraction
    +. List.fold_left (fun acc sp -> acc +. sp.time_share) 0.0 skipped
  in
  let program_improvement_pct = ((1.0 /. (tuned_time +. untouched)) -. 1.0) *. 100.0 in
  {
    sections;
    skipped;
    program_improvement_pct;
    tuning_seconds =
      List.fold_left (fun acc sr -> acc +. sr.result.Driver.tuning_seconds) 0.0 sections;
  }
