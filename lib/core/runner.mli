(** Execution harness: drives a tuning section through its invocation
    trace under dynamically swapped code versions, the way PEAK's
    instrumented application does during tuning (Section 4.2).

    The runner owns the simulated machine state (memory system, noise
    stream) and the tuning-time ledger.  All raters consume invocations
    through {!step} (one timed execution of one version) or {!step_pair}
    (RBR's save / precondition / restore / time / restore / time
    sequence).  Interpreter results are cached per workload class when
    the trace declares classes, which is what makes whole-search sweeps
    cheap for regular codes.

    Pass boundaries rerun the trace initializer and flush the memory
    system (a fresh program run starts cold).  Mid-pass, rare simulated
    context switches flush the cache too — the perturbation that biases
    basic RBR and that the improved method's preconditioning execution
    absorbs (Section 2.4.2). *)

type t

type sample = {
  index : int;  (** Invocation index within the pass. *)
  time : float;  (** Measured (noisy) cycles. *)
  counts : int array;  (** Block entry counts. *)
  context : float array;  (** Context-variable values, if requested. *)
}

type failure =
  | Crashed  (** The version died mid-invocation (injected or transient). *)
  | Hung  (** The invocation outlived the watchdog budget. *)

type failure_info = {
  failure : failure;
  config : string;  (** Digest of the configuration that failed. *)
  invocation : int;  (** 0-based invocation ordinal within this runner. *)
}

exception Failed of failure_info
(** The typed outcome of an execution the harness could not complete.
    By the time it is raised the ledger already carries the cost of the
    doomed run (the executed cycles for a crash, the full watchdog
    budget for a hang), so retrying callers charge failures naturally. *)

val create :
  ?seed:int ->
  ?context_switch_rate:float ->
  ?faults:Peak_sim.Fault.t ->
  ?fault_attempt:int ->
  ?invocation_budget:float ->
  Tsection.t ->
  Peak_workload.Trace.t ->
  Peak_machine.Machine.t ->
  t
(** [context_switch_rate] is the per-invocation probability of a
    cache-flushing perturbation (default 0.02).

    [faults] subjects every execution to the fault plan: config-keyed
    crashes/hangs and per-attempt transients surface as {!Failed},
    noise bursts multiply measured times, and {!output_digest} reports
    corrupted output for miscompiled configurations.  [fault_attempt]
    (default 0) is the retry ordinal the plan keys transient decisions
    on — a retrying caller passes a fresh attempt number to redraw them.

    [invocation_budget] is the per-execution watchdog in cycles: an
    execution that exceeds it raises [Failed Hung] with the budget
    charged to the ledger.  Defaults to infinity without [faults] (the
    pre-fault runner, bit-identical) and to [1e8] cycles with them. *)

val machine : t -> Peak_machine.Machine.t
val tsection : t -> Tsection.t

val step :
  ?context:Peak_ir.Expr.source list -> t -> Peak_compiler.Version.t -> sample
(** Advance to the next invocation and execute it under the version. *)

val step_choose :
  context:Peak_ir.Expr.source list ->
  t ->
  (float array -> Peak_compiler.Version.t) ->
  sample
(** Advance, read the invocation's context, then execute the version the
    callback picks for it — the dynamic swap of the online scenario. *)

val step_pair :
  ?improved:bool ->
  ?use_ranges:bool ->
  t ->
  base:Peak_compiler.Version.t ->
  experimental:Peak_compiler.Version.t ->
  float * float
(** One RBR invocation: returns (base time, experimental time).  With
    [improved] (default true) a preconditioning execution warms the cache
    first and the two versions alternate execution order across
    invocations; without it, the first-executed version pays any cold
    cache and the order is fixed — the bias the paper's Section 2.4.2
    corrects.  Save/restore of the modified input set is charged per the
    liveness analysis. *)

val step_batch :
  ?use_ranges:bool ->
  t ->
  base:Peak_compiler.Version.t ->
  experimentals:Peak_compiler.Version.t list ->
  float * float list
(** One invocation rating the base and several experimental versions
    back to back — Section 2.4.2's batching optimization.  One save and
    one preconditioning run serve the whole batch; each version adds a
    restore plus its timed execution.  Returns the base time and the
    experimental times in order. *)

val charge_overhead : t -> float -> unit
(** Add instrumentation cycles (counter updates, context reads) to the
    tuning-time ledger. *)

val run_full_pass : t -> Peak_compiler.Version.t -> float
(** Execute every remaining invocation of the current pass under one
    version and return the summed TS time — the WHL primitive. *)

val output_digest : t -> Peak_compiler.Version.t -> int64
(** Execute the version on the next invocation (charged like any timed
    run) and digest its observable outcome.  At equal invocation
    ordinals every correct version produces the identical digest
    regardless of runner seed, so comparing a candidate's digest with
    the base version's is a differential correctness check; a fault
    plan's miscompiled configurations yield a corrupted digest.  May
    raise {!Failed} like {!step}. *)

(** {1 Accounting} *)

val invocations_consumed : t -> int
val passes_started : t -> int
val tuning_cycles : t -> float
val tuning_seconds : t -> float

val interp_steps_hint : t -> int
(** Total interpreter block entries executed (cache misses only) —
    exposed for performance tests. *)
