(** Re-execution-based rating (Section 2.4).

    Each invocation times the base and the experimental version back to
    back under the bit-identical (saved and restored) context; the sample
    is the relative time [T_exp / T_base].  EVAL is the mean relative
    time (1.0 = parity, below 1.0 = experimental faster — the reciprocal
    of the paper's improvement ratio, kept time-like so that lower is
    better across all raters); VAR its variance.

    [improved] (the Section 2.4.2 method, default) adds the cache
    preconditioning execution and alternates the execution order across
    invocations; the basic method times the versions in fixed order with
    no preconditioning and inherits whatever cache state the previous
    invocation left — its measurable bias is the subject of the RBR
    ablation bench. *)

(** Batched rating (Section 2.4.2's batching optimization): rate several
    experimental versions against the base with one save/precondition per
    invocation, amortizing RBR's fixed overheads across the whole batch.
    All versions are sampled under the identical contexts, so the ratings
    are mutually comparable as well as base-relative. *)
let rate_many ?(params = Rating.default_params) runner ~base versions =
  let n = List.length versions in
  if n = 0 then []
  else begin
    let samples = Array.make n [] in
    let consumed = ref 0 in
    let finished = ref false in
    let summaries = Array.make n (Rating.Insufficient { observed = 0 }) in
    let scratch = Rating.make_scratch () in
    while not !finished do
      for _ = 1 to params.Rating.window do
        if !consumed < params.Rating.max_invocations then begin
          let t_base, t_exps = Runner.step_batch runner ~base ~experimentals:versions in
          incr consumed;
          List.iteri (fun i t -> samples.(i) <- (t /. t_base) :: samples.(i)) t_exps
        end
      done;
      Array.iteri (fun i s -> summaries.(i) <- Rating.summarize_into scratch ~params s) samples;
      let all_converged =
        Array.for_all
          (function Rating.Summary { converged; _ } -> converged | Rating.Insufficient _ -> false)
          summaries
      in
      finished := all_converged || !consumed >= params.Rating.max_invocations
    done;
    Array.to_list
      (Array.map
         (function
           | Rating.Summary { eval; var; kept; converged } ->
               { Rating.eval; var; samples = kept; invocations = !consumed; converged }
           | Rating.Insufficient { observed } ->
               raise
                 (Rating.No_samples
                    (Printf.sprintf
                       "Rbr.rate_many: only %d usable relative sample(s) of %s within %d \
                        invocations"
                       observed
                       (Tsection.name (Runner.tsection runner))
                       !consumed)))
         summaries)
  end

let rate ?(params = Rating.default_params) ?(improved = true) runner ~base version =
  let samples = ref [] in
  let consumed = ref 0 in
  let result = ref None in
  let scratch = Rating.make_scratch () in
  while !result = None do
    let added = ref 0 in
    while !added < params.Rating.window && !consumed < params.Rating.max_invocations do
      let t_base, t_exp = Runner.step_pair ~improved runner ~base ~experimental:version in
      incr consumed;
      incr added;
      samples := (t_exp /. t_base) :: !samples
    done;
    (match Rating.summarize_into scratch ~params !samples with
    | Rating.Summary { eval; var; kept; converged } ->
        if converged || !consumed >= params.Rating.max_invocations then
          result := Some { Rating.eval; var; samples = kept; invocations = !consumed; converged }
    | Rating.Insufficient { observed } ->
        if !consumed >= params.Rating.max_invocations then
          raise
            (Rating.No_samples
               (Printf.sprintf
                  "Rbr.rate: only %d usable relative sample(s) of %s within %d invocations"
                  observed
                  (Tsection.name (Runner.tsection runner))
                  !consumed)))
  done;
  Option.get !result
