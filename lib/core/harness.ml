(* Method fallback over a single runner (Section 3) — the library-level
   wrapper over the same Method registry the driver's in-search fallback
   uses.  See harness.mli. *)

type outcome = {
  method_used : Method.t;
  rating : Rating.t;
  attempts : (Method.t * Rating.t) list;
}

let no_samples_rating =
  { Rating.eval = nan; var = infinity; samples = 0; invocations = 0; converged = false }

let rate_one ?(params = Rating.default_params) ?(non_ts_cycles = 0.0) runner
    (profile : Profile.t) ~base version m =
  match Method.prepare ~params ~non_ts_cycles m profile with
  | Method.Absolute rate -> rate runner version
  | Method.Relative { rate; _ } -> rate runner ~base version

let rate_with_fallback ?(params = Rating.default_params) ?(non_ts_cycles = 0.0) runner profile
    (advice : Consultant.advice) ~base version =
  let rec go attempts = function
    | [] -> (
        match attempts with
        | (m, r) :: _ -> { method_used = m; rating = r; attempts = List.rev attempts }
        | [] -> invalid_arg "Harness.rate_with_fallback: no applicable method")
    | m :: rest -> (
        match rate_one ~params ~non_ts_cycles runner profile ~base version m with
        | r when r.Rating.converged ->
            { method_used = m; rating = r; attempts = List.rev ((m, r) :: attempts) }
        | r -> go ((m, r) :: attempts) rest
        (* a rater that found no usable sample is a failed attempt, not
           an error: the next applicable method takes over *)
        | exception Rating.No_samples _ -> go ((m, no_samples_rating) :: attempts) rest)
  in
  go [] advice.Consultant.applicable
