open Peak_compiler

type relative = base:Optconfig.t -> Optconfig.t -> float

type rate_many = base:Optconfig.t -> Optconfig.t list -> float list

type prepare = Optconfig.t list -> unit

type stats = {
  ratings : int;
  iterations : int;
  trajectory : (Optconfig.t * float) list;
}

(* Without an explicit batch-rating hook, a batch is just the sequential
   ratings in submission order — which keeps every algorithm's oracle
   call sequence identical to the historical one-at-a-time code path. *)
let sequential_rate_many ~relative : rate_many =
 fun ~base candidates -> List.map (fun c -> relative ~base c) candidates

let with_counter ratings (rate_many : rate_many) : rate_many =
 fun ~base candidates ->
  ratings := !ratings + List.length candidates;
  rate_many ~base candidates

(* An empty candidate universe (all flags already off, or a screening
   stage that eliminated everything) returns the start configuration
   without touching the rating oracle at all — notably without the
   implicit base rating a driver-side [rate_many] performs. *)
let no_search start = (start, { ratings = 0; iterations = 0; trajectory = [] })

let iterative_elimination ?(threshold = 0.005) ?(prepare = fun _ -> ()) ?rate_many ~relative
    start =
  let ratings = ref 0 in
  let iterations = ref 0 in
  let trajectory = ref [] in
  let rate_all =
    with_counter ratings
      (Option.value rate_many ~default:(sequential_rate_many ~relative))
  in
  let current = ref start in
  let continue_ = ref true in
  while !continue_ do
    incr iterations;
    let candidates = List.map (Optconfig.disable !current) (Optconfig.enabled !current) in
    if candidates = [] then continue_ := false
    else begin
      prepare candidates;
      let rs = rate_all ~base:!current candidates in
      let best = ref None in
      List.iter2
        (fun candidate r ->
          if r < 1.0 -. threshold then
            match !best with
            | Some (_, best_r) when best_r <= r -> ()
            | _ -> best := Some (candidate, r))
        candidates rs;
      match !best with
      | Some (candidate, r) ->
          trajectory := (candidate, 1.0 -. r) :: !trajectory;
          current := candidate
      | None -> continue_ := false
    end
  done;
  (!current, { ratings = !ratings; iterations = !iterations; trajectory = List.rev !trajectory })

let batch_elimination ?(threshold = 0.005) ?(prepare = fun _ -> ()) ?rate_many ~relative start =
  let rate_all =
    Option.value rate_many ~default:(sequential_rate_many ~relative)
  in
  let flags = Optconfig.enabled start in
  if flags = [] then no_search start
  else begin
  let candidates = List.map (Optconfig.disable start) flags in
  prepare candidates;
  let rs = rate_all ~base:start candidates in
  let harmful =
    List.filter_map
      (fun (f, r) -> if r < 1.0 -. threshold then Some (f, 1.0 -. r) else None)
      (List.combine flags rs)
  in
  let final = List.fold_left (fun c (f, _) -> Optconfig.disable c f) start harmful in
  (* the trajectory records the cumulative configurations actually
     adopted, so its last entry is the returned configuration *)
  let trajectory, _ =
    List.fold_left
      (fun (acc, c) (f, gain) ->
        let c = Optconfig.disable c f in
        ((c, gain) :: acc, c))
      ([], start) harmful
  in
  ( final,
    { ratings = List.length candidates; iterations = 1; trajectory = List.rev trajectory } )
  end

(* Combined Elimination restricted to an explicit flag universe: the
   shared engine behind [combined_elimination] (universe = every flag
   enabled in the start configuration) and the staged strategy's
   focused stage 2 (universe = the flags surviving screening). *)
let focused_elimination ?(threshold = 0.005) ?(prepare = fun _ -> ()) ?rate_many ~flags
    ~relative start =
  let flags = List.filter (Optconfig.is_enabled start) flags in
  if flags = [] then no_search start
  else begin
  let ratings = ref 0 in
  let iterations = ref 0 in
  let rate_all =
    with_counter ratings
      (Option.value rate_many ~default:(sequential_rate_many ~relative))
  in
  let first_candidates = List.map (Optconfig.disable start) flags in
  prepare first_candidates;
  let trajectory = ref [] in
  (* first pass: find the initially harmful flags *)
  incr iterations;
  let first_ratings = rate_all ~base:start first_candidates in
  let candidates =
    List.filter (fun (_, r) -> r < 1.0 -. threshold) (List.combine flags first_ratings)
  in
  let current = ref start in
  let remaining = ref (List.map fst candidates) in
  (* remove the best first based on the initial measurement *)
  (match List.sort (fun (_, a) (_, b) -> compare a b) candidates with
  | (f, r) :: _ ->
      current := Optconfig.disable !current f;
      remaining := List.filter (fun g -> g <> f) !remaining;
      trajectory := (!current, 1.0 -. r) :: !trajectory
  | [] -> ());
  let continue_ = ref (!remaining <> []) in
  while !continue_ do
    incr iterations;
    let scan = List.map (Optconfig.disable !current) !remaining in
    let rs = rate_all ~base:!current scan in
    let best = ref None in
    List.iter2
      (fun f r ->
        if r < 1.0 -. threshold then
          match !best with
          | Some (_, best_r) when best_r <= r -> ()
          | _ -> best := Some (f, r))
      !remaining rs;
    match !best with
    | Some (f, r) ->
        current := Optconfig.disable !current f;
        remaining := List.filter (fun g -> g <> f) !remaining;
        trajectory := (!current, 1.0 -. r) :: !trajectory;
        continue_ := !remaining <> []
    | None -> continue_ := false
  done;
  (!current, { ratings = !ratings; iterations = !iterations; trajectory = List.rev !trajectory })
  end

let combined_elimination ?threshold ?prepare ?rate_many ~relative start =
  focused_elimination ?threshold ?prepare ?rate_many ~flags:(Optconfig.enabled start)
    ~relative start

let random_search ?(samples = 100) ?rate_many ~rng ~relative start =
  if samples <= 0 then no_search start
  else begin
  let ratings = ref 0 in
  let rate_all =
    with_counter ratings
      (Option.value rate_many ~default:(sequential_rate_many ~relative))
  in
  (* draw every candidate first (the rating oracle never touches the rng,
     so the stream of draws matches the historical interleaved code) *)
  let candidates = ref [] in
  for _ = 1 to samples do
    let candidate =
      Array.fold_left
        (fun c f -> if Peak_util.Rng.bool rng then Optconfig.enable c f else Optconfig.disable c f)
        Optconfig.o0 Flags.all
    in
    candidates := candidate :: !candidates
  done;
  let candidates = List.rev !candidates in
  let rs = rate_all ~base:start candidates in
  let best = ref (start, 1.0) in
  List.iter2 (fun c r -> if r < snd !best then best := (c, r)) candidates rs;
  let config, r = !best in
  ( config,
    {
      ratings = !ratings;
      iterations = 1;
      trajectory = (if r < 1.0 then [ (config, 1.0 -. r) ] else []);
    } )
  end

let fractional_factorial ?(runs = 20) ?(threshold = 0.005) ?rate_many ~rng ~relative start =
  if runs <= 0 || Optconfig.enabled start = [] then no_search start
  else begin
  let ratings = ref 0 in
  let rate_all =
    with_counter ratings
      (Option.value rate_many ~default:(sequential_rate_many ~relative))
  in
  (* design matrix: random assignments plus their foldover complements,
     so every flag sees a balanced on/off split *)
  let designs =
    List.concat
      (List.init runs (fun _ ->
           let c =
             Array.fold_left
               (fun acc f ->
                 if Peak_util.Rng.bool rng then Optconfig.enable acc f
                 else Optconfig.disable acc f)
               Optconfig.o0 Flags.all
           in
           let complement =
             Array.fold_left
               (fun acc f ->
                 if Optconfig.is_enabled c f then Optconfig.disable acc f
                 else Optconfig.enable acc f)
               Optconfig.o0 Flags.all
           in
           [ c; complement ]))
  in
  let rated = List.combine designs (rate_all ~base:start designs) in
  (* main effect of each flag: mean rating with it on minus off.
     Quarantined designs carry an infinite rating; they are excluded so
     one condemned configuration cannot poison every flag's effect. *)
  let rated = List.filter (fun (_, r) -> Float.is_finite r) rated in
  let effect f =
    let on, off =
      List.fold_left
        (fun (on, off) (c, r) ->
          if Optconfig.is_enabled c f then (r :: on, off) else (on, r :: off))
        ([], []) rated
    in
    match (on, off) with
    | [], _ | _, [] -> 0.0
    | _ -> Peak_util.Stats.mean_list on -. Peak_util.Stats.mean_list off
  in
  (* screening: flags whose main effect says "slower when on", strongest
     first; the random-background estimate is coarse, so each survivor is
     then confirmed individually against the start configuration *)
  let screened =
    Array.to_list Flags.all
    |> List.filter_map (fun f ->
           if Optconfig.is_enabled start f then
             let e = effect f in
             if e > threshold then Some (f, e) else None
           else None)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 10)
  in
  let confirm_ratings =
    if screened = [] then []
    else rate_all ~base:start (List.map (fun (f, _) -> Optconfig.disable start f) screened)
  in
  let confirmed =
    List.filter_map
      (fun ((f, e), r) -> if r < 1.0 -. threshold then Some (f, e) else None)
      (List.combine screened confirm_ratings)
  in
  let final = List.fold_left (fun c (f, _) -> Optconfig.disable c f) start confirmed in
  (* final sanity: the combination must beat the start too *)
  let combined =
    if Optconfig.equal final start then 1.0
    else match rate_all ~base:start [ final ] with [ r ] -> r | _ -> assert false
  in
  let final = if combined < 1.0 then final else start in
  ( final,
    {
      ratings = !ratings;
      iterations = 2;
      trajectory = (if combined < 1.0 then [ (final, 1.0 -. combined) ] else []);
    } )
  end

(* The OSE configuration groups: coarse knobs an expert would expose. *)
let ose_groups =
  [
    ("scheduling", [ "schedule-insns"; "schedule-insns2"; "sched-interblock"; "sched-spec" ]);
    ("cse", [ "gcse"; "gcse-lm"; "gcse-sm"; "cse-follow-jumps"; "cse-skip-blocks"; "rerun-cse-after-loop" ]);
    ("aliasing", [ "strict-aliasing" ]);
    ("loop", [ "loop-optimize"; "rerun-loop-opt"; "strength-reduce"; "force-mem" ]);
    ("branch", [ "if-conversion"; "if-conversion2"; "reorder-blocks"; "guess-branch-probability" ]);
    ("inlining", [ "inline-functions"; "optimize-sibling-calls" ]);
  ]

let disable_group config names =
  List.fold_left
    (fun acc name ->
      match Flags.by_name name with Some f -> Optconfig.disable acc f | None -> acc)
    config names

let ose ?(threshold = 0.005) ~relative start =
  if Optconfig.enabled start = [] then no_search start
  else begin
  let ratings = ref 0 in
  let trajectory = ref [] in
  let rate ~base c =
    incr ratings;
    relative ~base c
  in
  (* level 1: drop each group from the start configuration *)
  let level1 =
    List.map
      (fun (name, flags) ->
        let c = disable_group start flags in
        (name, flags, rate ~base:start c))
      ose_groups
  in
  let winners =
    List.filter (fun (_, _, r) -> r < 1.0 -. threshold) level1
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  (* level 2: greedily stack the winning group removals, re-rating each
     combination against the current best *)
  let current = ref start in
  let iterations = ref 1 in
  List.iter
    (fun (_, flags, _) ->
      incr iterations;
      let candidate = disable_group !current flags in
      if not (Optconfig.equal candidate !current) then begin
        let r = rate ~base:!current candidate in
        if r < 1.0 -. threshold then begin
          trajectory := (candidate, 1.0 -. r) :: !trajectory;
          current := candidate
        end
      end)
    winners;
  (!current, { ratings = !ratings; iterations = !iterations; trajectory = List.rev !trajectory })
  end

let exhaustive ~flags ~relative start =
  let k = List.length flags in
  if k > 16 then invalid_arg "Search.exhaustive: too many flags";
  let ratings = ref 0 in
  let best = ref (start, 1.0) in
  for mask = 0 to (1 lsl k) - 1 do
    let candidate =
      List.fold_left
        (fun (c, i) f ->
          ((if mask land (1 lsl i) <> 0 then Optconfig.enable c f else Optconfig.disable c f), i + 1))
        (start, 0) flags
      |> fst
    in
    if not (Optconfig.equal candidate start) then begin
      incr ratings;
      let r = relative ~base:start candidate in
      if r < snd !best then best := (candidate, r)
    end
  done;
  let config, r = !best in
  ( config,
    {
      ratings = !ratings;
      iterations = 1;
      trajectory = (if r < 1.0 then [ (config, 1.0 -. r) ] else []);
    } )
