open Peak_util
open Peak_ir
open Peak_machine
open Peak_workload

type sample = {
  index : int;
  time : float;
  counts : int array;
  context : float array;
}

type failure = Crashed | Hung

type failure_info = { failure : failure; config : string; invocation : int }

exception Failed of failure_info

let () =
  Printexc.register_printer (function
    | Failed { failure; config; invocation } ->
        Some
          (Printf.sprintf "Runner.Failed(%s, config %s, invocation %d)"
             (match failure with Crashed -> "crashed" | Hung -> "hung")
             config invocation)
    | _ -> None)

type t = {
  tsec : Tsection.t;
  trace : Trace.t;
  machine : Machine.t;
  memsys : Memsys.t;
  noise : Noise.t;
  perturb_rng : Rng.t;
  env : Interp.env;
  compiled : Interp.compiled;
  scratch : Interp.scratch;
  array_bytes : (string * int) list;
  class_cache : (int, Interp.result) Hashtbl.t;
  context_switch_rate : float;
  timer_overhead : float;
  save_words : int;
  faults : Peak_sim.Fault.t option;
  fault_attempt : int;
  invocation_budget : float;
  fault_keys : (Peak_compiler.Optconfig.t, string) Hashtbl.t;
  mutable pos : int;
  mutable passes : int;
  mutable invocations : int;
  mutable tuning_cycles : float;
  mutable interp_steps : int;
  mutable initialized : bool;
}

let create ?(seed = 42) ?(context_switch_rate = 0.02) ?faults ?(fault_attempt = 0)
    ?invocation_budget tsec trace machine =
  (* fold the trace identity into the seed: distinct benchmarks must not
     share a measurement-noise stream *)
  let root = Rng.create ~seed:(seed + (Hashtbl.hash trace.Trace.name * 7919)) in
  let noise_rng = Rng.split root in
  let perturb_rng = Rng.split root in
  (* a noise-free machine (used by deterministic evaluation) also turns
     off the memory system's conflict jitter *)
  let memsys_rng =
    if machine.Machine.noise_sigma > 0.0 then Some (Rng.split root) else None
  in
  (* The watchdog that turns an injected hang into a charged, typed
     failure; without faults the default budget is infinite, so the
     no-fault timing path is bit-identical to the pre-fault runner. *)
  let invocation_budget =
    match (invocation_budget, faults) with
    | Some b, _ ->
        if b <= 0.0 then invalid_arg "Runner.create: invocation_budget must be positive";
        b
    | None, Some _ -> 1e8
    | None, None -> infinity
  in
  (* compile once against this runner's environment; every invocation
     reuses the same instruction arrays and scratch *)
  let env = Interp.make_env tsec.Tsection.ts in
  let compiled = Interp.compile tsec.Tsection.cfg env in
  {
    tsec;
    trace;
    machine;
    memsys = Memsys.create ?rng:memsys_rng machine;
    noise = Noise.create ~rng:noise_rng machine;
    perturb_rng;
    env;
    compiled;
    scratch = Interp.make_scratch compiled;
    array_bytes =
      List.map (fun (a, n) -> (a, 8 * n)) tsec.Tsection.ts.Peak_ir.Types.arrays;
    class_cache = Hashtbl.create 16;
    context_switch_rate;
    timer_overhead = 40.0;
    save_words = (Tsection.save_restore_bytes tsec + 7) / 8;
    faults;
    fault_attempt;
    invocation_budget;
    fault_keys = Hashtbl.create 8;
    pos = 0;
    passes = 0;
    invocations = 0;
    tuning_cycles = 0.0;
    interp_steps = 0;
    initialized = false;
  }

let machine t = t.machine
let tsection t = t.tsec

(* Move to the next invocation: handle pass wrap, program init, the
   occasional cache-flushing perturbation, and the trace's setup. *)
let advance t =
  if (not t.initialized) || t.pos >= t.trace.Trace.length then begin
    t.trace.Trace.init t.env;
    Memsys.flush t.memsys;
    if t.initialized then t.passes <- t.passes + 1 else t.passes <- 1;
    t.initialized <- true;
    t.pos <- 0
  end;
  if Rng.float t.perturb_rng < t.context_switch_rate then Memsys.flush t.memsys;
  t.trace.Trace.setup t.pos t.env;
  t.invocations <- t.invocations + 1;
  t.pos <- t.pos + 1

let interp_result t =
  let index = t.pos - 1 in
  let run () =
    Interp.run_compiled t.compiled t.scratch;
    t.interp_steps <- t.interp_steps + Interp.scratch_steps t.scratch;
    (* fresh snapshot: the counts array escapes into samples and the
       class cache, so it must not alias the reused scratch *)
    Interp.result_of_scratch t.compiled t.scratch
  in
  match t.trace.Trace.class_of with
  | None -> run ()
  | Some class_of -> (
      let k = class_of index in
      match Hashtbl.find_opt t.class_cache k with
      | Some r -> r
      | None ->
          let r = run () in
          Hashtbl.add t.class_cache k r;
          r)

let accesses_of t (r : Interp.result) =
  List.filter_map
    (fun (base, touches) ->
      let bytes =
        match List.assoc_opt base t.array_bytes with Some b -> b | None -> 8
        (* pointer pointee *)
      in
      if touches > 0 then Some { Memsys.base; bytes; touches } else None)
    r.Interp.array_accesses

let fault_key t (version : Peak_compiler.Version.t) =
  let config = version.Peak_compiler.Version.config in
  match Hashtbl.find_opt t.fault_keys config with
  | Some k -> k
  | None ->
      let k = Peak_compiler.Optconfig.digest config in
      Hashtbl.add t.fault_keys config k;
      k

let fail t failure version =
  let config = fault_key t version in
  let kind = match failure with Crashed -> "crashed" | Hung -> "hung" in
  Peak_obs.count ("runner." ^ kind);
  if Peak_obs.active () then
    Peak_obs.instant ~cat:"runner"
      ~args:[ ("config", config); ("invocation", string_of_int (t.invocations - 1)) ]
      ("runner:" ^ kind);
  raise (Failed { failure; config; invocation = t.invocations - 1 })

let hang t version =
  (* the watchdog kills the run only after waiting out the budget; the
     wasted wall-clock is real tuning time *)
  if Float.is_finite t.invocation_budget then
    t.tuning_cycles <- t.tuning_cycles +. t.invocation_budget;
  fail t Hung version

(* Time one execution of [version] on the already-set-up invocation. *)
let time_execution t version (r : Interp.result) =
  let base = Peak_compiler.Version.invocation_cycles version ~counts:r.Interp.block_counts in
  let mem = Memsys.charge t.memsys (accesses_of t r) in
  let time = Noise.apply t.noise (base +. mem) in
  let time =
    match t.faults with
    | None -> time
    | Some plan ->
        time
        *. Peak_sim.Fault.noise_factor plan ~key:(fault_key t version)
             ~invocation:(t.invocations - 1)
  in
  (* the step budget: an execution that outlives it counts as hung even
     without an injected fault *)
  if time > t.invocation_budget then hang t version;
  t.tuning_cycles <- t.tuning_cycles +. time +. t.timer_overhead;
  time

(* Consult the fault plan about the invocation that [advance] just
   started.  A crash (injected or transient) still pays for the doomed
   execution — the version ran and died, and the harness spent that time
   watching it — so the ledger and the memory-system state advance
   exactly as for a completed run before the typed failure surfaces. *)
let fault_check t version (r : Interp.result) =
  match t.faults with
  | None -> ()
  | Some plan -> (
      match
        Peak_sim.Fault.exec_failure plan ~key:(fault_key t version)
          ~attempt:t.fault_attempt ~invocation:(t.invocations - 1)
      with
      | None -> ()
      | Some (Peak_sim.Fault.Crash | Peak_sim.Fault.Transient) ->
          let (_ : float) = time_execution t version r in
          fail t Crashed version
      | Some Peak_sim.Fault.Hang -> hang t version)

let read_context t sources =
  Array.of_list (List.map (Interp.read_source t.env) sources)

let step ?(context = []) t version =
  advance t;
  let ctx = read_context t context in
  if context <> [] then begin
    (* context-read instrumentation: a few cycles per variable *)
    t.tuning_cycles <- t.tuning_cycles +. (4.0 *. float_of_int (List.length context))
  end;
  let r = interp_result t in
  fault_check t version r;
  let time = time_execution t version r in
  { index = t.pos - 1; time; counts = r.Interp.block_counts; context = ctx }

(* Like [step], but the version is chosen after the invocation's context
   is known — the dynamic swapping of the adaptive scenario. *)
let step_choose ~context t choose =
  advance t;
  let ctx = read_context t context in
  if context <> [] then
    t.tuning_cycles <- t.tuning_cycles +. (4.0 *. float_of_int (List.length context));
  let version = choose ctx in
  let r = interp_result t in
  fault_check t version r;
  let time = time_execution t version r in
  { index = t.pos - 1; time; counts = r.Interp.block_counts; context = ctx }

(* Cycles to copy the modified-input set once (a load+store per word).
   The payload is measured against the live environment, so symbolic
   store spans (the Section 2.4.2 range-analysis optimization) shrink the
   copy to the cells the invocation can actually write.  [use_ranges]
   exists for the ablation that runs without the optimization. *)
let copy_cycles ?(use_ranges = true) t =
  let words =
    if use_ranges then (Snapshot.measure_bytes t.tsec t.env + 7) / 8 else t.save_words
  in
  float_of_int words *. 2.0 *. t.machine.Machine.l1_hit_cycles

let step_pair ?(improved = true) ?(use_ranges = true) t ~base ~experimental =
  advance t;
  let r = interp_result t in
  fault_check t experimental r;
  let charge c = t.tuning_cycles <- t.tuning_cycles +. c in
  let copy_cycles t = copy_cycles ~use_ranges t in
  charge (copy_cycles t);
  (* save *)
  if improved then begin
    (* precondition execution: bring the data into the cache; its cost is
       that of a stripped version, charged but not timed *)
    let pre_cycles =
      0.6 *. Peak_compiler.Version.invocation_cycles base ~counts:r.Interp.block_counts
    in
    let mem = Memsys.charge t.memsys (accesses_of t r) in
    charge (pre_cycles +. mem);
    charge (copy_cycles t) (* restore *)
  end;
  let first_is_base = (not improved) || t.invocations mod 2 = 0 in
  let v1, v2 = if first_is_base then (base, experimental) else (experimental, base) in
  let t1 = time_execution t v1 r in
  charge (copy_cycles t);
  (* restore between the two timed runs *)
  let t2 = time_execution t v2 r in
  if first_is_base then (t1, t2) else (t2, t1)

(* Batched re-execution (Section 2.4.2's "combination of a number of
   experimental runs into a batch"): one invocation rates the base and k
   experimental versions, amortizing the save and the preconditioning
   over the whole batch — each extra version costs one restore and one
   timed execution. *)
let step_batch ?(use_ranges = true) t ~base ~experimentals =
  advance t;
  let r = interp_result t in
  List.iter (fun v -> fault_check t v r) experimentals;
  let charge c = t.tuning_cycles <- t.tuning_cycles +. c in
  let copy = copy_cycles ~use_ranges t in
  charge copy;
  (* save *)
  let pre_cycles =
    0.6 *. Peak_compiler.Version.invocation_cycles base ~counts:r.Interp.block_counts
  in
  let mem = Memsys.charge t.memsys (accesses_of t r) in
  charge (pre_cycles +. mem);
  charge copy;
  (* restore before the first timed run *)
  let t_base = time_execution t base r in
  let t_exps =
    List.map
      (fun version ->
        charge copy;
        time_execution t version r)
      experimentals
  in
  (t_base, t_exps)

let charge_overhead t c = t.tuning_cycles <- t.tuning_cycles +. c

let run_full_pass t version =
  let total = ref 0.0 in
  let remaining = t.trace.Trace.length - t.pos in
  let n = if t.initialized && remaining > 0 then remaining else t.trace.Trace.length in
  for _ = 1 to n do
    let s = step t version in
    total := !total +. s.time
  done;
  !total

(* One validation run: execute the version on the next invocation and
   digest the observable outcome (block-entry counts — the interpreter's
   trajectory — plus the invocation index).  The interpreter is
   version-independent, so at equal invocation ordinals every healthy
   version yields the same digest on every runner seed; a fault plan
   marks a miscompiled version by corrupting its digest, which the
   driver's differential oracle then catches against the base version's.
   The run is charged like any other timed execution, and crash/hang
   faults fire through {!step} as usual. *)
let output_digest t version =
  let s = step t version in
  let h = ref 0xcbf29ce484222325L in
  let fold i =
    h := Int64.mul (Int64.logxor !h (Int64.of_int i)) 0x100000001b3L
  in
  fold s.index;
  Array.iter fold s.counts;
  let miscompiled =
    match t.faults with
    | None -> false
    | Some plan -> Peak_sim.Fault.miscompiled plan (fault_key t version)
  in
  if miscompiled then Int64.lognot !h else !h

let invocations_consumed t = t.invocations
let passes_started t = t.passes
let tuning_cycles t = t.tuning_cycles
let tuning_seconds t = Machine.seconds_of_cycles t.machine t.tuning_cycles
let interp_steps_hint t = t.interp_steps
