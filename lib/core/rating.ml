(** Shared rating types (Section 3).

    Every rating method reduces a window of measurements to an EVAL (the
    rating — a time-like score where {e lower is better}; for RBR it is
    the relative time of the experimental version vs the base, so 1.0
    means parity) and a VAR (the confidence measure whose convergence
    stops the window growth).  Outliers are eliminated before the
    statistics, per the paper's measurement-perturbation discussion. *)

type t = {
  eval : float;  (** The rating; lower is better. *)
  var : float;  (** Variance measure (method-specific, see paper §3). *)
  samples : int;  (** Measurements used (after outlier elimination). *)
  invocations : int;  (** Trace invocations consumed to produce it. *)
  converged : bool;  (** VAR fell under the threshold before the cap. *)
}

type params = {
  window : int;  (** Samples added per convergence check. *)
  rel_threshold : float;
      (** Convergence: stderr(EVAL)/EVAL must fall below this. *)
  max_invocations : int;  (** Hard cap per rating. *)
  outlier_k : float;  (** Robust-sigma multiplier for outlier dropping. *)
}

let default_params =
  { window = 40; rel_threshold = 0.01; max_invocations = 20_000; outlier_k = 3.5 }

let params_signature p =
  (* %.17g round-trips doubles exactly, so two parameter records are
     textually equal iff they are bit-identical — required for the
     persistent store's context keys *)
  Printf.sprintf "w%d:t%.17g:m%d:k%.17g" p.window p.rel_threshold p.max_invocations
    p.outlier_k

(* float_of_string accepts "inf"/"nan", which %.17g emits for non-finite
   values; a non-finite threshold or outlier factor read back from a
   journal would make every convergence test and outlier mask vacuous,
   so decoding rejects them outright. *)
let finite_float_opt s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Some f
  | Some _ | None -> None

let params_of_signature s =
  match String.split_on_char ':' s with
  | [ w; t; m; k ] ->
      let field prefix v conv =
        if String.length v > 1 && v.[0] = prefix then
          conv (String.sub v 1 (String.length v - 1))
        else None
      in
      Option.bind (field 'w' w int_of_string_opt) (fun window ->
          Option.bind (field 't' t finite_float_opt) (fun rel_threshold ->
              Option.bind (field 'm' m int_of_string_opt) (fun max_invocations ->
                  Option.map
                    (fun outlier_k -> { window; rel_threshold; max_invocations; outlier_k })
                    (field 'k' k finite_float_opt))))
  | _ -> None

exception No_samples of string

type summary =
  | Insufficient of { observed : int }
  | Summary of { eval : float; var : float; kept : int; converged : bool }

(* Reduce a set of raw samples to a summary.  Non-finite samples (an
   all-NaN window, an infinite ratio from a degenerate base time) are
   discarded before outlier elimination: they carry no timing
   information, and one NaN would otherwise poison the mean.  Fewer than
   two usable samples cannot support a variance estimate, so the window
   is reported as Insufficient rather than as a rating with a made-up
   confidence — the typed replacement for the old NaN-eval tuple. *)
type scratch = Peak_util.Stats.Scratch.t

let make_scratch () = Peak_util.Stats.Scratch.create ()

let summarize_into scratch ~params values =
  let open Peak_util.Stats in
  Scratch.clear scratch;
  List.iter (fun x -> if Float.is_finite x then Scratch.push scratch x) values;
  let observed = Scratch.length scratch in
  if observed < 2 then Insufficient { observed }
  else begin
    Scratch.outlier_mask ~k:params.outlier_k scratch;
    let n = Scratch.kept_count scratch in
    if n < 2 then Insufficient { observed }
    else begin
      let eval = Scratch.kept_mean scratch in
      let var = Scratch.kept_variance scratch in
      let stderr = sqrt (var /. float_of_int n) in
      let converged =
        n >= params.window && stderr <= params.rel_threshold *. Float.max 1e-9 (abs_float eval)
      in
      Summary { eval; var; kept = n; converged }
    end
  end

let summarize ~params values = summarize_into (make_scratch ()) ~params values
