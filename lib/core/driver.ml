open Peak_machine
open Peak_compiler
open Peak_workload

(* Search identity is owned by the Strategy registry; the re-export
   keeps the historical [Driver.Ie]-style constructors valid at every
   existing call site. *)
type search_algo = Strategy.t = Ie | Be | Ce | Random of int | Ff | Ose | Staged

let search_name = Strategy.key
let search_of_string = Strategy.of_string

type result = {
  benchmark : Benchmark.t;
  machine : Machine.t;
  dataset : Trace.dataset;
  method_used : Method.t;
  attempts : Method.attempt list;
  strategy : Strategy.t;
  stages : Strategy.stage list;
  best_config : Optconfig.t;
  search_stats : Search.stats;
  tuning_cycles : float;
  tuning_seconds : float;
  passes : int;
  invocations : int;
  quarantined : (Optconfig.t * string) list;
  fault_retries : int;
  metrics : Peak_store.Codec.metrics;
  profile : Profile.t;
  advice : Consultant.advice;
}

let non_ts_cycles_of (benchmark : Benchmark.t) (profile : Profile.t) =
  let share = benchmark.Benchmark.time_share in
  profile.Profile.ts_pass_cycles *. (1.0 -. share) /. share

let auto_method profile tsec = (Consultant.advise tsec profile).Consultant.chosen

let result_summary (r : result) : Peak_store.Codec.session_result =
  {
    Peak_store.Codec.r_method = Method.name r.method_used;
    r_attempts =
      List.map
        (fun (a : Method.attempt) ->
          {
            Peak_store.Codec.at_method = Method.name a.Method.a_method;
            at_converged = a.Method.a_converged;
            at_ratings = a.Method.a_ratings;
          })
        r.attempts;
    r_strategy = Strategy.key r.strategy;
    r_stages =
      List.map
        (fun (s : Strategy.stage) ->
          {
            Peak_store.Codec.st_label = s.Strategy.sg_label;
            st_ratings = s.Strategy.sg_ratings;
            st_flags = s.Strategy.sg_flags;
          })
        r.stages;
    r_best = r.best_config;
    r_ratings = r.search_stats.Search.ratings;
    r_iterations = r.search_stats.Search.iterations;
    r_trajectory = r.search_stats.Search.trajectory;
    r_tuning_cycles = r.tuning_cycles;
    r_tuning_seconds = r.tuning_seconds;
    r_passes = r.passes;
    r_invocations = r.invocations;
    r_quarantined = r.quarantined;
    r_retries = r.fault_retries;
    r_metrics = Some r.metrics;
  }

(* [?strategy] is the first-class spelling; [?search] remains as the
   historical alias.  When both are given, [strategy] wins. *)
let pick_strategy ?search ?strategy () =
  match (strategy, search) with Some s, _ -> s | None, Some s -> s | None, None -> Ie

let session_meta ?method_ ?search ?strategy ?(rating_params = Rating.default_params)
    ?(threshold = 0.005) ?(seed = 11) ?(start = Optconfig.o3) ?faults (benchmark : Benchmark.t)
    machine dataset : Peak_store.Codec.session_meta =
  let search = pick_strategy ?search ?strategy () in
  let method_str = match method_ with Some m -> Method.key m | None -> "auto" in
  let bench_name = benchmark.Benchmark.name in
  let machine_name = machine.Machine.name in
  let dataset_name = Trace.dataset_name dataset in
  {
    Peak_store.Codec.m_id =
      Peak_store.Session.id_for ~benchmark:bench_name ~machine:machine_name
        ~dataset:dataset_name ~search:(search_name search) ~method_:method_str ~seed;
    m_benchmark = bench_name;
    m_machine = machine_name;
    m_dataset = dataset_name;
    m_search = search_name search;
    m_seed = seed;
    m_threshold = threshold;
    m_params = Rating.params_signature rating_params;
    m_method = method_str;
    m_start = start;
    m_faults = (match faults with Some p -> Peak_sim.Fault.to_string p | None -> "-");
  }

let tune ?(seed = 11) ?search ?strategy ?(rating_params = Rating.default_params)
    ?(threshold = 0.005) ?compile ?pool ?method_ ?store ?start ?kb ?faults ?(retries = 2)
    ?progress (benchmark : Benchmark.t) machine dataset =
  let search = pick_strategy ?search ?strategy () in
  if retries < 0 then invalid_arg "Driver.tune: retries must be >= 0";
  (* Tracing is observational only: spans and counters are emitted on
     the side and nothing below ever reads the tracer back, so a traced
     run computes bit-identical results to an untraced one. *)
  let tune_span =
    Peak_obs.begin_span ~cat:"tune"
      (Printf.sprintf "tune:%s:%s:%s" benchmark.Benchmark.name machine.Machine.name
         (Trace.dataset_name dataset))
  in
  Fun.protect ~finally:(fun () -> Peak_obs.end_span tune_span) @@ fun () ->
  (* rating spans begun on pool domains attach to the phase that
     submitted their batch; the ref is only ever written between
     batches, so workers read a stable value *)
  let span_parent = ref tune_span in
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace dataset ~seed in
  let profile =
    Peak_obs.with_span ~parent:tune_span ~cat:"phase.profile" "profile" (fun _ ->
        Profile.run ~seed:(seed + 1) tsec trace machine)
  in
  let advice = Consultant.advise tsec profile in
  (* [method_] forces a single-entry chain (no fallback, no probes — a
     forced run is bit-identical to the pre-fallback driver); omitted
     means "auto": walk the consultant's applicable methods with the §3
     convergence probe below. *)
  let chain =
    match method_ with Some m -> [ m ] | None -> advice.Consultant.applicable
  in
  let non_ts = non_ts_cycles_of benchmark profile in
  let runner = Runner.create ~seed:(seed + 2) tsec trace machine in
  (* Parallel rating bookkeeping: each concurrently-rated candidate runs
     on its own deterministically-seeded runner; its consumption is folded
     back into these totals in submission order after the batch joins, so
     the aggregate is bit-identical for every domain count. *)
  let extra_cycles = ref 0.0 in
  let extra_invocations = ref 0 in
  let extra_passes = ref 0 in
  let account (inv, p, cyc) =
    extra_invocations := !extra_invocations + inv;
    extra_passes := !extra_passes + p;
    extra_cycles := !extra_cycles +. cyc
  in
  (* Per-method metrics (result.json v4): ratings produced and
     invocations consumed, tallied at the same submission-order fold
     positions as [account] — so the block is a pure function of the
     rating outcomes, identical for traced/untraced, -j 1/-j N and
     resumed runs. *)
  let method_tally : (string, int * int) Hashtbl.t = Hashtbl.create 4 in
  let tally mname inv =
    let r, i =
      match Hashtbl.find_opt method_tally mname with Some x -> x | None -> (0, 0)
    in
    Hashtbl.replace method_tally mname (r + 1, i + inv)
  in
  (* Progress reporting rides the same submission-order fold as [tally]:
     [ratings] counts every rating folded into the session (store
     replays included), [fresh] only the freshly computed ones.  The
     callback runs on the submitting domain, outside any pool worker,
     and may raise to abort the session — the store journal is already
     consistent at every callback point, so an aborted session resumes
     cleanly. *)
  let ratings_done = ref 0 in
  let fresh_done = ref 0 in
  let note_progress fresh =
    incr ratings_done;
    if fresh then incr fresh_done;
    match progress with
    | None -> ()
    | Some f -> f ~ratings:!ratings_done ~fresh:!fresh_done
  in
  let now () = Runner.tuning_cycles runner +. !extra_cycles in
  (* the Remote Optimizer of Figure 6: versions must be compiled before
     they can be swapped in; Local blocks tuning, Remote overlaps *)
  let optimizer =
    Option.map (fun (mode, seconds) -> Optimizer.create ~compile_seconds:seconds mode machine)
      compile
  in
  let await_compiled config =
    match optimizer with
    | None -> ()
    | Some opt ->
        let stall = Optimizer.stall_for opt ~now:(now ()) config in
        if stall > 0.0 then begin
          match pool with
          | None -> Runner.charge_overhead runner stall
          | Some _ -> extra_cycles := !extra_cycles +. stall
        end
  in
  let prepare configs =
    match optimizer with
    | None -> ()
    | Some opt -> List.iter (fun c -> Optimizer.request opt ~now:(now ()) c) configs
  in
  let versions = Hashtbl.create 64 in
  let version config =
    match Hashtbl.find_opt versions config with
    | Some v -> v
    | None ->
        await_compiled config;
        let v = Version.compile machine tsec.Tsection.features config in
        Hashtbl.add versions config v;
        v
  in
  let params = rating_params in
  (* Search start configuration: an explicit [start] wins; otherwise a
     store session's recorded start (so a resumed — possibly
     warm-started — session continues from its original start); then
     the knowledge base's top recommendation; -O3 when nothing else
     applies.  Store-backed callers who want a KB warm start must pass
     it as an explicit [start] recorded in the session meta (as the CLI
     does), so a resume never depends on re-supplying the KB. *)
  let start =
    match (start, store) with
    | Some s, _ -> s
    | None, Some session -> (Peak_store.Session.meta session).Peak_store.Codec.m_start
    | None, None -> (
        match kb with
        | None -> Optconfig.o3
        | Some kb -> (
            match Knowledge.recommend_start kb benchmark machine with
            | r :: _ -> r.Peak_store.Kb.rec_config
            | [] -> Optconfig.o3))
  in
  (* ---------------- persistent store hooks ---------------------------
     A stored rating replays the value, the convergence flag (what the
     fallback probes decide on) and the consumed
     invocations/passes/cycles, folded back at the same submission-order
     position a fresh rating would occupy — which keeps the tuning-time
     ledger of a resumed session bit-identical to an uninterrupted
     one. *)
  let store_base_key base =
    match store with None -> "-" | Some _ -> Optconfig.digest base
  in
  let store_find ~mname ~base ~idx config =
    match store with
    | None -> None
    | Some s ->
        Peak_store.Session.find s ~method_:mname ~base ~idx config
        |> Option.map (fun (e, conv, (u : Peak_store.Codec.consumption), fail, job_retries) ->
               (e, conv, (u.Peak_store.Codec.c_invocations, u.c_passes, u.c_cycles), fail, job_retries))
  in
  let store_record ~mname ~base ~idx config (eval, converged, (inv, p, cyc), fail, job_retries) =
    match store with
    | None -> ()
    | Some s ->
        Peak_store.Session.record s ~method_:mname ~base ~idx ~config ~eval ~converged ?fail
          ~retries:job_retries
          ~used:{ Peak_store.Codec.c_invocations = inv; c_passes = p; c_cycles = cyc }
          ()
  in
  (* ---------------- sequential rating (one shared runner) ------------ *)
  let sequential_relative prepared eval_cache mname : Search.relative =
    (* the shared runner's ledger is simulated (cycle counts), so the
       per-rating invocation delta is deterministic *)
    let tallied f =
      let before = Runner.invocations_consumed runner in
      let e = f () in
      tally mname (Runner.invocations_consumed runner - before);
      note_progress true;
      e
    in
    let eval_with f config =
      match Hashtbl.find_opt eval_cache config with
      | Some e -> e
      | None ->
          let e = f config in
          Hashtbl.add eval_cache config e;
          e
    in
    match prepared with
    | Method.Relative { rate; _ } ->
        fun ~base candidate ->
          tallied (fun () ->
              (rate runner ~base:(version base) (version candidate)).Rating.eval)
    | Method.Absolute rate ->
        let eval =
          eval_with (fun c -> tallied (fun () -> (rate runner (version c)).Rating.eval))
        in
        fun ~base candidate -> eval candidate /. eval base
  in
  (* ---------------- parallel rating (one runner per candidate) ------- *)
  (* Candidate seeds mix the experiment seed, the candidate's index in
     its batch and the configuration identity, so a rating depends only
     on (seed, idx, config) — never on which domain ran it or on what was
     rated before it.  That is what makes [~domains:1] and [~domains:4]
     produce bit-identical searches. *)
  let job_seed ?(base_hash = 0) ~idx config =
    seed + ((idx + 2) * 1_000_003) + (Optconfig.hash config * 8191) + (base_hash * 131)
  in
  let fresh_runner ?fault_attempt jseed =
    let trace = benchmark.Benchmark.trace dataset ~seed in
    Runner.create ~seed:jseed ?faults ?fault_attempt tsec trace machine
  in
  let consumption r = (Runner.invocations_consumed r, Runner.passes_started r, Runner.tuning_cycles r) in
  let deterministic = Option.is_some pool || Option.is_some store || Option.is_some faults in
  (* ---------------- fault tolerance --------------------------------
     The start configuration is protected (tuning must be able to
     finish, and the differential oracle needs an uncorrupted anchor);
     every other configuration is validated against the base version's
     output digest before it is rated, and crash/hang/transient
     failures are retried on fresh runners — the attempt ordinal redraws
     the plan's transient decisions — up to [retries] times.  A config
     still failing, or producing wrong output, is quarantined: its eval
     is [+infinity] (elimination searches then never adopt it, and FF
     filters non-finite ratings out of its effect estimates), and it is
     reported in submission order.  All decisions are keyed on config
     identity and attempt ordinal, never on draw order, so fault-tolerant
     runs keep the -j 1/2/4 and kill/resume bit-identity guarantees. *)
  let oracle =
    match faults with
    | None -> None
    | Some plan ->
        Peak_obs.with_span ~parent:tune_span ~cat:"phase.oracle" "oracle" @@ fun _ ->
        Peak_sim.Fault.protect plan (Optconfig.digest start);
        let r = fresh_runner (job_seed ~idx:(-2) start) in
        let d = Runner.output_digest r (version start) in
        account (consumption r);
        Some d
  in
  let quarantine_tbl = Hashtbl.create 8 in
  let quarantined = ref [] in
  let total_retries = ref 0 in
  (* folded in submission order by the rating loops below, so the
     quarantine list and retry total are deterministic too *)
  let note_outcome config (fail, job_retries) =
    total_retries := !total_retries + job_retries;
    if job_retries > 0 then Peak_obs.count ~n:job_retries "driver.fault_retries";
    match fail with
    | None -> ()
    | Some reason ->
        let d = Optconfig.digest config in
        if not (Hashtbl.mem quarantine_tbl d) then begin
          Hashtbl.add quarantine_tbl d reason;
          Peak_obs.count "driver.quarantined";
          quarantined := (config, reason) :: !quarantined
        end
  in
  (* One rating job: validate against the oracle, rate, retry failures.
     Returns (eval, converged, total consumption, fail reason, retries
     used) — the exact shape the store journals, so a replayed job is
     indistinguishable from a fresh one. *)
  let run_rated ~mname ~jseed (v : Version.t) rate_fn =
    (* span names are deterministic — method, config digest, attempt
       ordinal — so the traces of two runs of the same session differ
       only in timestamps *)
    let span_name attempt =
      Printf.sprintf "rate:%s:%s:a%d" mname (Optconfig.digest v.Version.config) attempt
    in
    match faults with
    | None ->
        Peak_obs.with_span ~parent:!span_parent ~cat:"rate" (span_name 0) @@ fun _ ->
        let r = fresh_runner jseed in
        let rating = rate_fn r in
        (rating.Rating.eval, rating.Rating.converged, consumption r, None, 0)
    | Some _ ->
        let sum (i1, p1, c1) (i2, p2, c2) = (i1 + i2, p1 + p2, c1 +. c2) in
        let rec go attempt used =
          let sid = Peak_obs.begin_span ~parent:!span_parent ~cat:"rate" (span_name attempt) in
          let r = fresh_runner ~fault_attempt:attempt jseed in
          let outcome =
            match
              match oracle with
              | Some d when not (Int64.equal (Runner.output_digest r v) d) -> `Wrong
              | _ -> `Rated (rate_fn r)
            with
            | o -> o
            | exception Runner.Failed { failure; _ } -> `Failed failure
          in
          let used = sum used (consumption r) in
          match outcome with
          | `Rated rating ->
              Peak_obs.end_span ~args:[ ("outcome", "rated") ] sid;
              (rating.Rating.eval, rating.Rating.converged, used, None, attempt)
          | `Wrong ->
              Peak_obs.end_span ~args:[ ("outcome", "wrong-output") ] sid;
              (infinity, true, used, Some "wrong-output", attempt)
          | `Failed failure ->
              let reason =
                match failure with Runner.Crashed -> "crashed" | Runner.Hung -> "hung"
              in
              if attempt >= retries then begin
                Peak_obs.end_span ~args:[ ("outcome", reason) ] sid;
                (infinity, true, used, Some reason, attempt)
              end
              else begin
                Peak_obs.end_span ~args:[ ("outcome", reason ^ ":retry") ] sid;
                go (attempt + 1) used
              end
        in
        go 0 (0, 0, 0.0)
  in
  (* [pmap] is how a batch of rating jobs runs: Pool.map on a domain
     pool, plain List.map when a store demands the deterministic
     per-candidate scheme without a pool.  Either way every job is a
     pure function of (seed, idx, config[, base]), which is what lets a
     stored rating stand in for a fresh one bit-for-bit. *)
  let pmap f jobs =
    match pool with Some p -> Peak_util.Pool.map p f jobs | None -> List.map f jobs
  in
  let deterministic_rating prepared eval_cache mname :
      Search.relative * Search.rate_many option =
    let take q =
      match !q with
      | hit :: rest ->
          q := rest;
          hit
      | [] -> assert false
    in
    match prepared with
    | Method.Absolute rate ->
        (* compile caller-side (the versions table is not shared across
           domains), dispatch only configurations missing from both the
           eval cache and the store, keeping the first occurrence of a
           duplicate *)
        let ensure idxed =
          let seen = Hashtbl.create 8 in
          let work =
            List.filter_map
              (fun (idx, c) ->
                if Hashtbl.mem eval_cache c || Hashtbl.mem seen c then None
                else begin
                  Hashtbl.add seen c ();
                  Some (idx, c, store_find ~mname ~base:"-" ~idx c)
                end)
              idxed
          in
          let jobs =
            List.filter_map
              (fun (idx, c, stored) ->
                if Option.is_none stored then Some (idx, version c) else None)
              work
          in
          let results =
            pmap
              (fun (idx, (v : Version.t)) ->
                run_rated ~mname ~jseed:(job_seed ~idx v.Version.config) v (fun r -> rate r v))
              jobs
          in
          let q = ref results in
          List.iter
            (fun (idx, c, stored) ->
              let e, _converged, used, fail, job_retries =
                match stored with
                | Some hit -> hit
                | None ->
                    let hit = take q in
                    store_record ~mname ~base:"-" ~idx c hit;
                    hit
              in
              account used;
              (let inv, _, _ = used in
               tally mname inv);
              note_progress (Option.is_none stored);
              note_outcome c (fail, job_retries);
              Hashtbl.replace eval_cache c e)
            work
        in
        let rate_many : Search.rate_many =
         fun ~base candidates ->
          ensure ((-1, base) :: List.mapi (fun i c -> (i, c)) candidates);
          let eval_base = Hashtbl.find eval_cache base in
          List.map (fun c -> Hashtbl.find eval_cache c /. eval_base) candidates
        in
        let relative : Search.relative = (fun ~base c -> List.hd (rate_many ~base [ c ])) in
        (relative, Some rate_many)
    | Method.Relative { rate; _ } ->
        let rate_many : Search.rate_many =
         fun ~base candidates ->
          let vb = version base in
          let base_hash = Optconfig.hash base in
          let base_key = store_base_key base in
          let work =
            List.mapi (fun i c -> (i, c, store_find ~mname ~base:base_key ~idx:i c)) candidates
          in
          let jobs =
            List.filter_map
              (fun (idx, c, stored) ->
                if Option.is_none stored then Some (idx, version c) else None)
              work
          in
          let results =
            pmap
              (fun (idx, (v : Version.t)) ->
                run_rated ~mname
                  ~jseed:(job_seed ~base_hash ~idx v.Version.config)
                  v
                  (fun r -> rate r ~base:vb v))
              jobs
          in
          let q = ref results in
          List.map
            (fun (idx, c, stored) ->
              let e, _converged, used, fail, job_retries =
                match stored with
                | Some hit -> hit
                | None ->
                    let hit = take q in
                    store_record ~mname ~base:base_key ~idx c hit;
                    hit
              in
              account used;
              (let inv, _, _ = used in
               tally mname inv);
              note_progress (Option.is_none stored);
              note_outcome c (fail, job_retries);
              e)
            work
        in
        let relative : Search.relative = (fun ~base c -> List.hd (rate_many ~base [ c ])) in
        (relative, Some rate_many)
  in
  (* ---------------- §3 method fallback ------------------------------
     "If the system cannot achieve enough accuracy ... within some
     number of invocations, it switches to the next applicable rating
     method."  Before committing to a method (except the chain's last —
     there is nothing to fall back to), probe it by rating the start
     configuration once; a non-converged (or sample-less) probe
     abandons the method.  For absolute methods the probe is exactly
     the base rating the search's first batch would perform (same
     deterministic seed, same store key), so a converged probe is
     cached and the committed run is bit-identical to forcing that
     method.  Probes are recorded in the store with their convergence
     flag, so a resumed session replays every fallback decision. *)
  let probe prepared eval_cache mname =
    match prepared with
    | Method.Relative _ -> true
    | Method.Absolute rate ->
        if deterministic then begin
          let stored_probe = store_find ~mname ~base:"-" ~idx:(-1) start in
          let eval, converged, used, _fail, _retries =
            match stored_probe with
            | Some hit -> hit
            | None ->
                let v = version start in
                let r = fresh_runner (job_seed ~idx:(-1) start) in
                let eval, converged, fail =
                  (* the probe is exactly the search's base rating, so
                     with faults it consumes the same oracle-check
                     invocation a regular job does ([start] is
                     protected — the check cannot fail) *)
                  match
                    if Option.is_some faults then ignore (Runner.output_digest r v);
                    rate r v
                  with
                  | rating -> (rating.Rating.eval, rating.Rating.converged, None)
                  | exception Rating.No_samples _ ->
                      (* journaled as an infinite-eval sentinel with a
                         reason, never as NaN: codec v4 rejects NaN
                         ratings, and the probe path only consults the
                         convergence flag on replay *)
                      (infinity, false, Some "no-samples")
                in
                let hit = (eval, converged, consumption r, fail, 0) in
                store_record ~mname ~base:"-" ~idx:(-1) start hit;
                hit
          in
          account used;
          (let inv, _, _ = used in
           tally mname inv);
          note_progress (Option.is_none stored_probe);
          if converged then Hashtbl.replace eval_cache start eval;
          converged
        end
        else begin
          (* the shared runner consumes the probe's invocations in
             stream order, charging the attempt naturally *)
          let before = Runner.invocations_consumed runner in
          let verdict =
            match rate runner (version start) with
            | rating when rating.Rating.converged ->
                Hashtbl.replace eval_cache start rating.Rating.eval;
                true
            | _ -> false
            | exception Rating.No_samples _ -> false
          in
          tally mname (Runner.invocations_consumed runner - before);
          note_progress true;
          verdict
        end
  in
  let failed_attempts = ref [] in
  let rec select = function
    | [] ->
        raise
          (Method.Not_applicable
             (Printf.sprintf "Driver.tune: no applicable rating method for %s"
                benchmark.Benchmark.name))
    | m :: rest ->
        let prepared = Method.prepare ~params ~non_ts_cycles:non_ts m profile in
        let eval_cache = Hashtbl.create 64 in
        let committed =
          rest = []
          || begin
               let pid =
                 Peak_obs.begin_span ~parent:tune_span ~cat:"probe"
                   ("probe:" ^ Method.name m)
               in
               let ok = probe prepared eval_cache (Method.name m) in
               Peak_obs.end_span
                 ~args:[ ("outcome", if ok then "commit" else "abandon") ]
                 pid;
               ok
             end
        in
        if committed then (m, prepared, eval_cache)
        else begin
          failed_attempts :=
            { Method.a_method = m; a_converged = false; a_ratings = 1 } :: !failed_attempts;
          select rest
        end
  in
  let method_, prepared, eval_cache = select chain in
  let relative, rate_many =
    if deterministic then deterministic_rating prepared eval_cache (Method.name method_)
    else (sequential_relative prepared eval_cache (Method.name method_), None)
  in
  (* Staged screening trains on the store's rating index when one is
     attached.  The index is rewritten only by [Session.gc] — never by
     live rating — so a killed-and-resumed session reads the identical
     corpus and replays its stage transitions bit-identically.  Rows
     are restricted to this benchmark/machine and folded in the index's
     deterministic sorted order. *)
  let corpus =
    match (search, store) with
    | Staged, Some session -> (
        let bench_name = benchmark.Benchmark.name in
        let machine_name = machine.Machine.name in
        let index_path =
          Filename.concat (Peak_store.Session.store_dir session) "index.json"
        in
        match Peak_store.Index.load index_path with
        | Error _ -> []
        | Ok index ->
            let rows =
              Peak_store.Index.fold
                (fun (e : Peak_store.Index.entry) acc ->
                  if
                    e.Peak_store.Index.key.Peak_store.Index.k_benchmark = bench_name
                    && e.Peak_store.Index.key.Peak_store.Index.k_machine = machine_name
                  then (e.Peak_store.Index.config, e.Peak_store.Index.eval) :: acc
                  else acc)
                index []
            in
            List.rev rows)
    | _ -> []
  in
  (* The knowledge base contributes its rows for this program too: a
     KB row's 1/speedup is the config's relative time vs the donor
     session's start, the same scale as an index eval.  KB rows are in
     canonical order, so the corpus stays deterministic; a resumed
     store session only sees them if the caller re-supplies the same
     KB (the CLI records the KB start in the session meta instead). *)
  let corpus =
    match (search, kb) with
    | Staged, Some kb ->
        let bench_name = String.lowercase_ascii benchmark.Benchmark.name in
        let machine_name = String.lowercase_ascii machine.Machine.name in
        corpus
        @ List.filter_map
            (fun (r : Peak_store.Kb.row) ->
              if
                r.Peak_store.Kb.rw_benchmark = bench_name
                && r.Peak_store.Kb.rw_machine = machine_name
              then Some (r.Peak_store.Kb.rw_config, 1.0 /. r.Peak_store.Kb.rw_speedup)
              else None)
            (Peak_store.Kb.rows kb)
    | _ -> corpus
  in
  if corpus <> [] then
    Peak_obs.count ~n:(List.length corpus) ("search." ^ search_name search ^ ".corpus");
  let best_config, search_stats, stages =
    let sid =
      Peak_obs.begin_span ~parent:tune_span ~cat:"phase.search"
        ("search:" ^ search_name search)
    in
    span_parent := sid;
    Fun.protect
      ~finally:(fun () ->
        span_parent := tune_span;
        Peak_obs.end_span sid)
    @@ fun () ->
    (* each strategy stage gets its own span nested under the search
       span; rating spans begun inside the stage attach to it via
       [span_parent] *)
    let stage_span = ref None in
    let enter_stage k label =
      let s =
        Peak_obs.begin_span ~parent:sid ~cat:"phase.search.stage"
          (Printf.sprintf "search:%s:stage%d" (search_name search) k)
      in
      Peak_obs.count (Printf.sprintf "search.%s.%s" (search_name search) label);
      stage_span := Some s;
      span_parent := s
    in
    let leave_stage () =
      (match !stage_span with Some s -> Peak_obs.end_span s | None -> ());
      stage_span := None;
      span_parent := sid
    in
    let ctx =
      Strategy.make_ctx ~threshold ~seed ~prepare ?rate_many ~corpus ~enter_stage
        ~leave_stage ~relative ()
    in
    Strategy.run search ctx start
  in
  let attempts =
    List.rev
      ({
         Method.a_method = method_;
         a_converged = true;
         a_ratings = search_stats.Search.ratings;
       }
      :: !failed_attempts)
  in
  let passes = Runner.passes_started runner + !extra_passes in
  let tuning_cycles = now () +. (float_of_int passes *. non_ts) in
  let invocations = Runner.invocations_consumed runner + !extra_invocations in
  let quarantined = List.rev !quarantined in
  let metrics =
    {
      Peak_store.Codec.x_methods =
        List.filter_map
          (fun m ->
            let n = Method.name m in
            Option.map
              (fun (ratings, inv) ->
                { Peak_store.Codec.mm_method = n; mm_ratings = ratings; mm_invocations = inv })
              (Hashtbl.find_opt method_tally n))
          Method.all;
      x_quarantined = List.length quarantined;
      x_retries = !total_retries;
      x_invocations = invocations;
      x_cycles = tuning_cycles;
    }
  in
  let result =
    {
      benchmark;
      machine;
      dataset;
      method_used = method_;
      attempts;
      strategy = search;
      stages;
      best_config;
      search_stats;
      tuning_cycles;
      tuning_seconds = Machine.seconds_of_cycles machine tuning_cycles;
      passes;
      invocations;
      quarantined;
      fault_retries = !total_retries;
      metrics;
      profile;
      advice;
    }
  in
  Option.iter
    (fun s -> Peak_store.Session.complete s (result_summary result))
    store;
  result

let tune_suite ?(seed = 11) ?search ?strategy ?(rating_params = Rating.default_params)
    ?(threshold = 0.005) ?method_ ?(domains = 1) ?store_dir ?faults ?retries benchmarks machine
    dataset =
  let search = pick_strategy ?search ?strategy () in
  (* Each benchmark gets its own session (own journal file); the
     journal writers themselves are mutex-serialized, so concurrent
     domain runners log safely through them. *)
  let open_session benchmark =
    match store_dir with
    | None -> None
    | Some dir ->
        let meta =
          session_meta ?method_ ~search ~rating_params ~threshold ~seed ?faults benchmark
            machine dataset
        in
        (match Peak_store.Session.open_ ~dir ~meta () with
        | Ok s -> Some s
        | Error e -> failwith ("tuning store: " ^ e))
  in
  Peak_obs.with_span ~cat:"suite"
    (Printf.sprintf "suite:%d-benchmarks:j%d" (List.length benchmarks) domains)
  @@ fun _ ->
  Peak_util.Pool.run ~domains (fun pool ->
      Peak_util.Pool.map pool
        (fun benchmark ->
          let store = open_session benchmark in
          Fun.protect
            ~finally:(fun () -> Option.iter Peak_store.Session.close store)
            (fun () ->
              tune ~seed ~search ~rating_params ~threshold ~pool ?method_ ?store ?faults
                ?retries benchmark machine dataset))
        benchmarks)

(* Deterministic evaluation: same machinery, but a noise-free machine and
   no cache-flushing perturbations. *)
let ts_pass_cycles ?(seed = 5) (benchmark : Benchmark.t) machine config dataset =
  let machine = { machine with Machine.noise_sigma = 0.0; spike_probability = 0.0 } in
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace dataset ~seed in
  let runner = Runner.create ~seed ~context_switch_rate:0.0 tsec trace machine in
  let v = Version.compile machine tsec.Tsection.features config in
  Runner.run_full_pass runner v

let evaluate_program_cycles ?(seed = 5) benchmark machine config dataset =
  let ts = ts_pass_cycles ~seed benchmark machine config dataset in
  let ts_o3 =
    if Optconfig.equal config Optconfig.o3 then ts
    else ts_pass_cycles ~seed benchmark machine Optconfig.o3 dataset
  in
  let share = benchmark.Benchmark.time_share in
  ts +. (ts_o3 *. (1.0 -. share) /. share)

let improvement_pct ?(seed = 5) benchmark machine ~best dataset =
  let t_best = evaluate_program_cycles ~seed benchmark machine best dataset in
  let t_o3 = evaluate_program_cycles ~seed benchmark machine Optconfig.o3 dataset in
  ((t_o3 /. t_best) -. 1.0) *. 100.0
