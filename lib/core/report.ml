(** Aggregation for the Figure 7 experiments.

    Figure 7 (a)/(b): whole-program improvement over -O3 per (benchmark,
    rating method), tuned on train (left bar) and on ref (right bar),
    always measured on ref.

    Figure 7 (c)/(d): tuning time normalized to "the state-of-the-art
    approach of using full application [runs]" — i.e. what the same
    number of version ratings would have cost had each required a whole
    program execution, which is the WHL baseline's cost model.  A value
    of 0.2 therefore reads "this method tuned in 20% of the WHL time",
    the paper's "tuning time reduced by 80%". *)

open Peak_workload

type cell = {
  result : Driver.result;
  improvement_train_pct : float;
      (** Improvement on ref of the config found while tuning on train. *)
  improvement_ref_pct : float;
      (** Improvement on ref of the config found while tuning on ref. *)
  normalized_tuning_time : float;  (** vs the WHL-equivalent cost. *)
}

let whl_equivalent_cycles (r : Driver.result) =
  let profile = r.Driver.profile in
  let share = r.Driver.benchmark.Benchmark.time_share in
  let pass = profile.Profile.ts_pass_cycles /. share in
  float_of_int (max 1 r.Driver.search_stats.Search.ratings) *. pass

let normalized_tuning_time r = r.Driver.tuning_cycles /. whl_equivalent_cycles r

(** One Figure-7 cell: tune on train and on ref with the given method,
    evaluate both results on ref. *)
let figure7_cell ?(seed = 11) ~method_ benchmark machine =
  let train = Driver.tune ~seed ~method_ benchmark machine Trace.Train in
  let ref_run = Driver.tune ~seed:(seed + 100) ~method_ benchmark machine Trace.Ref in
  {
    result = train;
    improvement_train_pct =
      Driver.improvement_pct benchmark machine ~best:train.Driver.best_config Trace.Ref;
    improvement_ref_pct =
      Driver.improvement_pct benchmark machine ~best:ref_run.Driver.best_config Trace.Ref;
    normalized_tuning_time = normalized_tuning_time train;
  }

(** The methods Figure 7 shows for a benchmark: every applicable rating
    method (CBR even when the consultant would reject it for context
    count, matching the MGRID_CBR bar), plus AVG and WHL. *)
let figure7_methods benchmark machine ~seed =
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace Trace.Train ~seed in
  let profile = Profile.run ~seed tsec trace machine in
  let cbr_possible =
    match profile.Profile.context with Profile.Cbr_ok _ -> true | Profile.Cbr_no _ -> false
  in
  let mbr_possible =
    Component_analysis.n_components profile.Profile.components
    <= Consultant.default_max_components
  in
  List.filter_map
    (fun (ok, m) -> if ok then Some m else None)
    [
      (cbr_possible, Method.Cbr);
      (mbr_possible, Method.Mbr);
      (true, Method.Rbr);
      (true, Method.Avg);
      (true, Method.Whl);
    ]
