open Peak_ir

type entry =
  | Scalar of string * float
  | Pointer of string * string
  | Whole_array of string * float array
  | Array_cells of string * (int * float) list
  | Array_span of string * int * float array  (** base offset + saved slice *)

type t = { entries : entry list; bytes : int }

(* Evaluate a symbolic span against the environment, clamped to the
   array's extent. *)
let concrete_span env arr lo hi =
  let n = Array.length arr in
  let l = max 0 (min n (int_of_float (Interp.eval env lo))) in
  let h = max l (min n (int_of_float (Interp.eval env hi))) in
  (l, h)

let save (tsec : Tsection.t) env =
  let lv = tsec.Tsection.liveness in
  let entries, bytes =
    Loc.Set.fold
      (fun loc (entries, bytes) ->
        match loc with
        | Loc.Scalar v -> (Scalar (v, Interp.get_scalar env v) :: entries, bytes + 8)
        | Loc.Pointer p ->
            let target = Interp.get_pointer env p in
            (Pointer (p, target) :: entries, bytes + 8)
        | Loc.Array a ->
            let arr = Interp.get_array env a in
            let rec capture (entries, bytes) region =
              match region with
              | Liveness.Whole ->
                  (Whole_array (a, Array.copy arr) :: entries, bytes + (8 * Array.length arr))
              | Liveness.Cells cells ->
                  let saved = List.map (fun i -> (i, arr.(i))) cells in
                  (Array_cells (a, saved) :: entries, bytes + (8 * List.length cells))
              | Liveness.Span (lo, hi) ->
                  let l, h = concrete_span env arr lo hi in
                  (Array_span (a, l, Array.sub arr l (h - l)) :: entries, bytes + (8 * (h - l)))
              | Liveness.Union rs -> List.fold_left capture (entries, bytes) rs
            in
            capture (entries, bytes) (Liveness.modified_region lv loc))
      (Liveness.modified_input lv)
      ([], 0)
  in
  { entries; bytes }

(** Dynamic payload size without performing the copy — what the execution
    harness charges per RBR save/restore. *)
let measure_bytes (tsec : Tsection.t) env =
  let lv = tsec.Tsection.liveness in
  Loc.Set.fold
    (fun loc acc ->
      match loc with
      | Loc.Scalar _ | Loc.Pointer _ -> acc + 8
      | Loc.Array a ->
          let arr = Interp.get_array env a in
          let rec size region =
            match region with
            | Liveness.Whole -> Array.length arr
            | Liveness.Cells cells -> List.length cells
            | Liveness.Span (lo, hi) ->
                let l, h = concrete_span env arr lo hi in
                h - l
            | Liveness.Union rs -> List.fold_left (fun s r -> s + size r) 0 rs
          in
          acc + (8 * size (Liveness.modified_region lv loc)))
    (Liveness.modified_input lv)
    0

let restore t env =
  List.iter
    (function
      | Scalar (v, x) -> Interp.set_scalar env v x
      | Pointer (p, target) -> Interp.set_pointer env p target
      | Whole_array (a, saved) ->
          let arr = Interp.get_array env a in
          Array.blit saved 0 arr 0 (Array.length saved)
      | Array_cells (a, cells) ->
          let arr = Interp.get_array env a in
          List.iter (fun (i, x) -> arr.(i) <- x) cells
      | Array_span (a, offset, saved) ->
          let arr = Interp.get_array env a in
          Array.blit saved 0 arr offset (Array.length saved))
    t.entries

let bytes t = t.bytes

let locations t =
  List.map
    (function
      | Scalar (v, _) -> Loc.Scalar v
      | Pointer (p, _) -> Loc.Pointer p
      | Whole_array (a, _) | Array_cells (a, _) | Array_span (a, _, _) -> Loc.Array a)
    t.entries
