(** The Performance Tuning Driver (Section 4.2, step 5).

    Ties everything together for one (benchmark, machine, rating method,
    dataset) cell of the paper's Figure 7: profile the tuning section,
    consult on rating methods, then drive the optimization-space search,
    rating every candidate version with the selected method and charging
    every simulated cycle — TS executions, instrumentation, RBR
    re-execution overheads, and the non-TS portion of each program pass —
    to the tuning-time ledger.

    Rating methods themselves live in {!Method} (the registry) — the
    driver only distinguishes {!Method.prepared} shapes (absolute vs
    relative), never individual methods.  When no method is forced the
    driver walks the consultant's applicable chain with the §3 fallback
    protocol: each method but the chain's last is probed by rating the
    start configuration once, and a non-converged probe falls through to
    the next method.  Every attempt — failed probes and the committed
    method — is recorded in {!result.attempts}. *)

type search_algo = Strategy.t = Ie | Be | Ce | Random of int | Ff | Ose | Staged
(** Re-export of {!Strategy.t}: search identity is owned by the
    Strategy registry, and the historical [Driver.Ie]-style
    constructors remain valid. *)

val search_name : search_algo -> string
(** = {!Strategy.key}: the stable lower-case key used in store session
    ids and metadata (["ie"], ["be"], ["ce"], ["random100"], ["ff"],
    ["ose"], ["staged"]). *)

val search_of_string : string -> (search_algo, string) result
(** = {!Strategy.of_string}, the inverse of {!search_name}
    (case-insensitive; ["random"] alone means [Random 100] and
    ["random<n>"] any positive sample count).  The one parser behind
    the CLI's [-s]/[--search] and the service protocol's submit
    requests. *)

type result = {
  benchmark : Peak_workload.Benchmark.t;
  machine : Peak_machine.Machine.t;
  dataset : Peak_workload.Trace.dataset;
  method_used : Method.t;
  attempts : Method.attempt list;
      (** The §3 fallback chain as executed: zero or more non-converged
          probe attempts followed by the committed method.  A forced
          [?method_] yields a single-attempt list. *)
  strategy : Strategy.t;
      (** The search strategy that produced {!result.best_config} —
          recorded in [result.json] (codec v5) as its canonical key. *)
  stages : Strategy.stage list;
      (** The strategy's stage boundaries as executed: per-stage rating
          spend and flag-universe size, in order.  One entry for the
          classic single-stage searches; [screen]/[refine] for
          [Staged].  Serialized alongside [strategy]. *)
  best_config : Peak_compiler.Optconfig.t;
  search_stats : Search.stats;
  tuning_cycles : float;  (** Simulated cycles spent tuning. *)
  tuning_seconds : float;
  passes : int;  (** Program runs consumed. *)
  invocations : int;
  quarantined : (Peak_compiler.Optconfig.t * string) list;
      (** Configurations condemned under fault injection, in submission
          order, each with its reason (["crashed"], ["hung"],
          ["wrong-output"]).  Empty without [?faults]. *)
  fault_retries : int;
      (** Transient-failure retries absorbed across the session —
          charged to the tuning ledger like any other execution.  [0]
          without [?faults]. *)
  metrics : Peak_store.Codec.metrics;
      (** Deterministic per-method accounting (ratings produced and
          invocations consumed per method, quarantine/retry totals,
          session-wide invocation and cycle charges).  Computed from the
          rating outcomes in submission order — never from wall-clock
          time or the tracer — so it is bit-identical for traced and
          untraced runs, every domain count, and kill/resume.
          Serialized as the [metrics] block of [result.json] (store
          codec v4).  Wall-clock observability (phase timings, queue
          depths, journal fsync costs) lives in {!Peak_obs} instead. *)
  profile : Profile.t;
  advice : Consultant.advice;
}

val result_summary : result -> Peak_store.Codec.session_result
(** The durable summary a completed session stores ([result.json]):
    method used, attempted-method chain, best configuration, search
    statistics and trajectory, and the tuning-time ledger.  Profile and
    advice are recomputed deterministically on resume, so they are not
    persisted. *)

val session_meta :
  ?method_:Method.t ->
  ?search:search_algo ->
  ?strategy:Strategy.t ->
  ?rating_params:Rating.params ->
  ?threshold:float ->
  ?seed:int ->
  ?start:Peak_compiler.Optconfig.t ->
  ?faults:Peak_sim.Fault.t ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  Peak_workload.Trace.dataset ->
  Peak_store.Codec.session_meta
(** Canonical store metadata (including the deterministic session id)
    for a {!tune} call with the same parameters — what a CLI or library
    caller passes to {!Peak_store.Session.open_} before tuning with
    [?store].  Defaults mirror {!tune}'s. *)

val tune :
  ?seed:int ->
  ?search:search_algo ->
  ?strategy:Strategy.t ->
  ?rating_params:Rating.params ->
  ?threshold:float ->
  ?compile:Optimizer.mode * float ->
  ?pool:Peak_util.Pool.t ->
  ?method_:Method.t ->
  ?store:Peak_store.Session.t ->
  ?start:Peak_compiler.Optconfig.t ->
  ?kb:Peak_store.Kb.t ->
  ?faults:Peak_sim.Fault.t ->
  ?retries:int ->
  ?progress:(ratings:int -> fresh:int -> unit) ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  Peak_workload.Trace.dataset ->
  result
(** Run one full offline tuning session.

    [kb] plugs the collaborative knowledge base in twice: its top
    recommendation becomes the warm-start configuration when neither
    [start] nor a store session supplies one, and its rows for this
    benchmark × machine join the [Staged] strategy's training corpus
    (after the store-index rows, in the KB's canonical order).  A
    store-backed session never takes its start from [kb] — pass the
    recommendation as an explicit [start] recorded in the session meta,
    as the CLI's [--kb] does, so resume stays KB-independent.

    [strategy] (first-class spelling) and [search] (historical alias;
    [strategy] wins when both are given) select the search plan from
    the {!Strategy} registry — default Iterative Elimination.  The
    chosen strategy and its executed stage boundaries are recorded in
    {!result.strategy}/{!result.stages} (and in [result.json], codec
    v5), each stage runs under a [search:<key>:stage<k>] span, and the
    [Staged] strategy additionally trains its screening regression on
    the attached store's rating index (rebuilt only by [session gc],
    so kill/resume replays stage transitions bit-identically).

    [method_] may force a method
    the consultant would not choose (the Figure-7 bars include such
    cells, e.g. MGRID under CBR); forcing is exempt from fallback — the
    chain is just that method, never probed — so a forced run is
    bit-identical to a driver without the fallback layer.  Forcing CBR
    on a section whose context analysis failed raises
    {!Method.Not_applicable}.

    Omitted, the method is resolved by the §3 fallback protocol over the
    consultant's applicable chain (from the session's own profiling
    pass; no second profile is run): each chain method except the last
    is probed by rating the start configuration once with the method's
    rater; if the probe's VAR fails to converge within the rating
    invocation cap (or the rater finds no samples at all), the method is
    abandoned and the next applicable one is tried.  RBR — relative,
    always last among applicable auto methods — is never probed.  A
    converged probe is cached as the search's base rating, so in the
    deterministic rating scheme (with [pool] or [store]) a successful
    first probe makes the auto run bit-identical to forcing the chosen
    method.  In the plain sequential scheme the probe shares the single
    runner's invocation stream, so an auto run's stream interleaving
    differs from a forced run's (both remain deterministic per seed).

    [compile] models the Remote Optimizer: (mode, seconds-per-version);
    omitted, compiles are free (the default the Figure-7 numbers use,
    matching the paper's tuning-time accounting, which counts program
    runs).

    [pool] routes every candidate scan through {!Peak_util.Pool.map},
    rating candidates concurrently.  Each candidate then runs on its own
    runner whose seed is derived from [seed], the candidate's batch index
    and the configuration's identity, and the consumed
    invocations/passes/cycles are folded back into the session totals in
    submission order — so the result (best configuration, attempted
    chain, search stats, tuning-cycle ledger) is bit-identical regardless
    of the pool's domain count.  Note the parallel path rates each batch
    on fresh runners rather than one shared invocation stream, so its
    results differ from the no-pool sequential path (but not across pool
    sizes).

    [store] logs every rating event — fallback probes included, with
    their convergence flag — to a persistent session
    ({!Peak_store.Session}) and serves already-stored ratings from it —
    value and consumed resources both — so re-running (resuming) a
    killed session replays instantly up to the interruption point, {e
    including every fallback decision}, and then continues, with final
    results bit-identical to an uninterrupted run.  A store-enabled
    session always rates through the deterministic per-candidate scheme
    above, with or without [pool] (so its numbers match across
    [~domains] 1/2/4 and differ from the plain sequential path, exactly
    as with [pool]).  On completion the session's [result.json] is
    written automatically; closing the session remains the caller's job.
    Caveat: combining [store] with [compile] resumes correctly but the
    remote-optimizer stall charges of skipped compiles are not replayed,
    so the tuning-time ledger can differ there.

    [start] overrides the search's start configuration (default [-O3];
    a store session's recorded start — e.g. a warm start proposed by
    {!Peak_store.Warmstart} — wins over the default when [store] is
    given).

    [faults] subjects every candidate execution to the given
    {!Peak_sim.Fault} plan and makes the driver fault-tolerant: the
    start configuration is protected (tuning always completes and
    anchors the output oracle), every other configuration's output is
    validated against the base version's digest before rating, and
    failed executions are retried on fresh attempt-keyed runners up to
    [retries] (default 2) times, every attempt charged to the tuning
    ledger.  Configurations that keep failing or produce wrong output
    are quarantined — rated [+infinity] so no search adopts them — and
    reported in {!result.quarantined} (and, with [store], journaled so
    a resumed session replays the quarantine decisions).  Fault
    injection forces the deterministic per-candidate rating scheme, so
    fault-tolerant runs stay bit-identical across [~domains] 1/2/4 and
    across kill/resume.

    [progress] is called after each rating is folded into the session,
    always on the calling domain (never inside a pool worker), with
    cumulative totals: [ratings] counts every rating including ones
    replayed from [store], [fresh] only freshly computed ones — the
    quantity a fair-share scheduler should charge, since replays cost
    nothing.  The callback is observational (its return value is unit
    and nothing reads it back), but it may {e raise} to abort the
    session: every callback point leaves the store journal consistent,
    so an aborted store-backed session resumes bit-identically.  This is
    the hook the tuning service daemon uses for streamed progress,
    fair-share budgets and cancellation. *)

val tune_suite :
  ?seed:int ->
  ?search:search_algo ->
  ?strategy:Strategy.t ->
  ?rating_params:Rating.params ->
  ?threshold:float ->
  ?method_:Method.t ->
  ?domains:int ->
  ?store_dir:string ->
  ?faults:Peak_sim.Fault.t ->
  ?retries:int ->
  Peak_workload.Benchmark.t list ->
  Peak_machine.Machine.t ->
  Peak_workload.Trace.dataset ->
  result list
(** Tune a list of benchmarks concurrently on a [domains]-wide pool
    (default 1).  The benchmarks themselves are distributed over the pool
    and each session also fans its candidate scans out on the same pool
    (nested batches are safe: {!Peak_util.Pool.map} callers help drain
    the queue).  Results are in benchmark order and — by the per-candidate
    seeding scheme described at {!tune} — bit-identical for every value of
    [domains].

    [store_dir] opens (or resumes) one persistent session per benchmark
    under that store directory, as {!tune}'s [store] does for a single
    session; each session has its own journal file with a serialized
    writer, so concurrent domain runners log safely.
    @raise Failure if a session cannot be opened (e.g. it exists with
    different parameters). *)

val auto_method : Profile.t -> Tsection.t -> Method.t
(** The consultant's first choice — the head of the fallback chain
    {!tune} walks when no method is forced. *)

val evaluate_program_cycles :
  ?seed:int ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  Peak_compiler.Optconfig.t ->
  Peak_workload.Trace.dataset ->
  float
(** Deterministic (noise-free) whole-program cycles under a
    configuration: TS time measured over one pass plus the program's
    non-TS time (which is configuration-independent, since only the TS is
    re-optimized). *)

val improvement_pct :
  ?seed:int ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  best:Peak_compiler.Optconfig.t ->
  Peak_workload.Trace.dataset ->
  float
(** Whole-program improvement of [best] over -O3 in percent —
    [ (T(-O3)/T(best) - 1) · 100 ], the quantity of Figure 7 (a)/(b). *)
