(** The rating-consistency experiment of Table 1 (Section 5.1).

    For each tuning section: rate a single experimental version (compiled
    under -O3, identical to the base) repeatedly across the run with
    fixed window sizes, and report the mean and standard deviation of the
    rating errors ×100 — [V_i/mean(V) − 1] for CBR/MBR, [V_i − 1] for RBR
    (whose ideal rating against an identical base is exactly 1). *)

type cell = { window : int; mean_x100 : float; stddev_x100 : float }

type row = {
  benchmark : Peak_workload.Benchmark.t;
  method_used : Method.t;
  context_label : string option;
      (** ["Context k"] for multi-context CBR sections (APSI, WUPWISE). *)
  n_invocations : int;  (** Trace length (Table 1's scaled column). *)
  cells : cell list;  (** One per window size. *)
}

val default_windows : int list
(** The paper's w ∈ \{10, 20, 40, 80, 160\}. *)

val measure :
  ?seed:int ->
  ?n_ratings:int ->
  ?windows:int list ->
  Peak_workload.Benchmark.t ->
  Peak_machine.Machine.t ->
  row list
(** One or more rows (one per CBR context) using the consultant-chosen
    method. *)
