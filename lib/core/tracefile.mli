(** Reading back Chrome-trace files written by {!Peak_obs.export}.

    The tracer serializes without a JSON library (it must not depend on
    the store); this module is the read side — parse a [trace.json],
    check the invariants the exporter promises, and render the summary
    tables behind [peak-tune trace summarize].  Durations and
    timestamps are in microseconds, as in the file. *)

type span = {
  sp_id : int;
  sp_parent : int;  (** 0 at top level. *)
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_ts : float;  (** Start, microseconds since sink install. *)
  sp_dur : float;  (** Microseconds. *)
  sp_unclosed : bool;  (** Still open at export time. *)
}

type instant = { i_name : string; i_cat : string; i_ts : float }

type t = {
  spans : span list;
  instants : instant list;
  counters : (string * int) list;
  gauges : (string * int) list;
      (** Last value per gauge, from {!Peak_obs.gauge}; empty for
          traces written before gauges existed. *)
  timings : (string * (int * float)) list;
      (** Name → (count, total seconds), from {!Peak_obs.observe}. *)
  dropped : int;
  open_spans : int;
}

val of_json : Peak_store.Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a trace file. *)

val validate : t -> (unit, string) result
(** Check the exporter's invariants: span ids unique, every non-zero
    parent id present in the trace, no negative timestamps or
    durations, and the unclosed-span flags consistent with
    [otherData.open_spans].  A failure indicates a tracer bug or a
    corrupted file. *)

val summary : t -> string
(** Human-readable report: event totals, spans aggregated by category,
    counters, gauges and timings — the output of
    [peak-tune trace summarize]. *)
