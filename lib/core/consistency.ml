(** The rating-consistency experiment of Table 1 (Section 5.1).

    For each tuning section: rate a single experimental version (compiled
    under -O3, i.e. identical to the base) repeatedly across the run,
    with fixed window sizes w ∈ {10, 20, 40, 80, 160}, producing a vector
    of ratings [V_1..V_n].  The rating error is
    [X_i = V_i / mean(V) - 1] for CBR and MBR (whose EVAL is a time) and
    [X_i = V_i - 1] for RBR (whose ideal rating against an identical base
    is exactly 1).  The table reports mean and standard deviation of the
    errors, ×100 for readability. *)

open Peak_compiler
open Peak_workload

type cell = { window : int; mean_x100 : float; stddev_x100 : float }

type row = {
  benchmark : Benchmark.t;
  method_used : Method.t;
  context_label : string option;
  n_invocations : int;  (** Trace length (scaled counterpart of Table 1's column). *)
  cells : cell list;
}

let default_windows = [ 10; 20; 40; 80; 160 ]

(* Fixed-window parameters: converge as soon as the window is full. *)
let fixed_window_params w =
  {
    Rating.window = w;
    rel_threshold = infinity;
    max_invocations = (w * 400) + 4000;
    outlier_k = 3.5;
  }

let summarize_errors ~relative_to_mean evals =
  let open Peak_util in
  let v = Array.of_list evals in
  let xs =
    if relative_to_mean then begin
      let vbar = Stats.mean v in
      Array.map (fun x -> (x /. vbar) -. 1.0) v
    end
    else Array.map (fun x -> x -. 1.0) v
  in
  (Stats.mean xs *. 100.0, Stats.stddev xs *. 100.0)

let gather_evals ~n_ratings rate =
  List.init n_ratings (fun _ -> (rate ()).Rating.eval)

let measure ?(seed = 23) ?(n_ratings = 25) ?(windows = default_windows)
    (benchmark : Benchmark.t) machine =
  let tsec = Tsection.make benchmark.Benchmark.ts in
  let trace = benchmark.Benchmark.trace Trace.Train ~seed in
  let profile = Profile.run ~seed:(seed + 1) tsec trace machine in
  let advice = Consultant.advise tsec profile in
  let version = Version.compile machine tsec.Tsection.features Optconfig.o3 in
  let runner = Runner.create ~seed:(seed + 2) tsec trace machine in
  let cells_for rate ~relative_to_mean =
    List.map
      (fun w ->
        let evals = gather_evals ~n_ratings (fun () -> rate (fixed_window_params w)) in
        let mean_x100, stddev_x100 = summarize_errors ~relative_to_mean evals in
        { window = w; mean_x100; stddev_x100 })
      windows
  in
  match advice.Consultant.chosen with
  | Method.Avg | Method.Whl -> invalid_arg "Consistency: baseline method chosen"
  | Method.Rbr ->
      [
        {
          benchmark;
          method_used = Method.Rbr;
          context_label = None;
          n_invocations = trace.Trace.length;
          cells =
            cells_for
              (fun params -> Rbr.rate ~params runner ~base:version version)
              ~relative_to_mean:false;
        };
      ]
  | Method.Mbr ->
      [
        {
          benchmark;
          method_used = Method.Mbr;
          context_label = None;
          n_invocations = trace.Trace.length;
          cells =
            cells_for
              (fun params ->
                Mbr.rate ~params runner ~components:profile.Profile.components
                  ~avg_counts:profile.Profile.avg_component_counts
                  ~dominant:profile.Profile.dominant_component version)
              ~relative_to_mean:true;
        };
      ]
  | Method.Cbr ->
      let sources, stats =
        match profile.Profile.context with
        | Profile.Cbr_ok { sources; stats; _ } -> (sources, stats)
        | Profile.Cbr_no reason -> invalid_arg ("Consistency: CBR chosen but " ^ reason)
      in
      let contexts =
        match stats with
        | [] -> [ (None, [||]) ]
        | [ only ] -> [ (None, only.Profile.values) ]
        | several ->
            List.mapi
              (fun i s -> (Some (Printf.sprintf "Context %d" (i + 1)), s.Profile.values))
              several
      in
      List.map
        (fun (context_label, target) ->
          {
            benchmark;
            method_used = Method.Cbr;
            context_label;
            n_invocations = trace.Trace.length;
            cells =
              cells_for
                (fun params -> Cbr.rate ~params runner ~sources ~target version)
                ~relative_to_mean:true;
          })
        contexts
