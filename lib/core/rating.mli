(** Shared rating types (Section 3).

    Every rating method reduces a window of measurements to an EVAL (the
    rating — a time-like score where {e lower is better}; for RBR it is
    the relative time of the experimental version vs the base, so 1.0
    means parity) and a VAR (the confidence measure whose convergence
    stops the window growth).  Outliers are eliminated before the
    statistics, per the paper's measurement-perturbation discussion. *)

type t = {
  eval : float;  (** The rating; lower is better. *)
  var : float;  (** Variance measure (method-specific, see paper §3). *)
  samples : int;  (** Measurements used (after outlier elimination). *)
  invocations : int;  (** Trace invocations consumed to produce it. *)
  converged : bool;  (** VAR fell under the threshold before the cap. *)
}

type params = {
  window : int;  (** Samples added per convergence check. *)
  rel_threshold : float;
      (** Convergence: stderr(EVAL)/EVAL must fall below this. *)
  max_invocations : int;  (** Hard cap per rating. *)
  outlier_k : float;  (** Robust-sigma multiplier for outlier dropping. *)
}

val default_params : params
(** window 40, threshold 1%, cap 20k invocations, k 3.5. *)

val params_signature : params -> string
(** Canonical textual form of a parameter record, equal iff the records
    are bit-identical (floats are printed with full precision).  The
    persistent tuning store folds this into its context keys so ratings
    produced under different windows or thresholds never alias. *)

val params_of_signature : string -> params option
(** Inverse of {!params_signature} — how [session resume] reconstructs
    the rating parameters a stored session was created with.
    [params_of_signature (params_signature p) = Some p] for every [p]
    with finite float fields.  Signatures carrying non-finite floats
    ("inf"/"nan", which [float_of_string] would happily accept) are
    rejected with [None]: a non-finite threshold or outlier factor read
    from a journal would silently disable convergence testing. *)

val finite_float_opt : string -> float option
(** [float_of_string_opt] restricted to finite results — the shared
    decode-boundary guard (rating params, store codec, CLI) against
    "inf"/"nan" strings entering numeric state. *)

exception No_samples of string
(** Raised by a rater that exhausted its invocation budget without a
    single usable sample (e.g. CBR with a target context that never
    occurs).  Failing loudly here matters: a silent NaN rating would be
    cached by the driver and poison every subsequent relative ratio. *)

type summary =
  | Insufficient of { observed : int }
      (** Fewer than two usable (finite) samples — no variance estimate,
          hence no rating.  [observed] counts the finite samples seen.
          The typed replacement for the old NaN-eval answer on empty,
          single-sample or all-NaN windows: callers must decide (keep
          sampling, or raise {!No_samples} at the budget cap) instead of
          silently caching NaN. *)
  | Summary of { eval : float; var : float; kept : int; converged : bool }
      (** A usable rating window: mean and variance of the [kept]
          samples that survived outlier elimination, plus the §3
          convergence verdict. *)

val summarize : params:params -> float list -> summary
(** Summary of a sample list after dropping non-finite values and
    outliers.  Allocates fresh working buffers per call; raters on the
    hot path use {!summarize_into} with a reused {!scratch}. *)

type scratch
(** Reusable working buffers for {!summarize_into} — the convergence
    check runs once per rating window, and with a warm scratch it
    allocates nothing.  Single-owner mutable state: one scratch per
    rate call (never shared across pool domains). *)

val make_scratch : unit -> scratch

val summarize_into : scratch -> params:params -> float list -> summary
(** [summarize ~params values] out of preallocated buffers;
    bit-identical results. *)
