(** Context-based rating (Section 2.2).

    Rate a version by averaging the execution times of invocations that
    occur under one specific context — the fair comparison comes from
    only ever comparing like workloads.  Invocations under other
    contexts still execute (and are charged to tuning time); they simply
    contribute no sample.  The tuning flow rates versions under the most
    important context (by time share); an adaptive system would keep
    per-context winners. *)

let rate ?(params = Rating.default_params) runner ~sources ~target version =
  let samples = ref [] in
  let consumed = ref 0 in
  let result = ref None in
  let scratch = Rating.make_scratch () in
  while !result = None do
    (* gather one window's worth of matching invocations *)
    let matched = ref 0 in
    while !matched < params.Rating.window && !consumed < params.Rating.max_invocations do
      let s = Runner.step ~context:sources runner version in
      incr consumed;
      if s.Runner.context = target then begin
        incr matched;
        samples := s.Runner.time :: !samples
      end
    done;
    (match Rating.summarize_into scratch ~params !samples with
    | Rating.Summary { eval; var; kept; converged } ->
        if converged || !consumed >= params.Rating.max_invocations then
          result :=
            Some
              {
                Rating.eval;
                var;
                samples = kept;
                invocations = !consumed;
                converged;
              }
    | Rating.Insufficient { observed } ->
        (* a rating cannot be built from under two matching samples;
           caching a NaN here would silently corrupt every later relative
           ratio, so a target context that (almost) never occurred within
           the budget fails loudly instead *)
        if !consumed >= params.Rating.max_invocations then
          raise
            (Rating.No_samples
               (Printf.sprintf
                  "Cbr.rate: only %d invocation(s) of %s matched target context [%s] within \
                   %d invocations"
                  observed
                  (Tsection.name (Runner.tsection runner))
                  (String.concat "; " (Array.to_list (Array.map string_of_float target)))
                  !consumed)))
  done;
  Option.get !result

(** Rating per context: the adaptive-scenario variant that reports every
    context's EVAL.  Contexts are identified by their value vectors. *)
let rate_all_contexts ?(params = Rating.default_params) runner ~sources version =
  let by_context = Hashtbl.create 8 in
  let consumed = ref 0 in
  let scratch = Rating.make_scratch () in
  while !consumed < params.Rating.max_invocations do
    let s = Runner.step ~context:sources runner version in
    incr consumed;
    let existing = Option.value ~default:[] (Hashtbl.find_opt by_context s.Runner.context) in
    Hashtbl.replace by_context s.Runner.context (s.Runner.time :: existing)
  done;
  Hashtbl.fold
    (fun ctx times acc ->
      match Rating.summarize_into scratch ~params times with
      | Rating.Insufficient _ ->
          (* a context observed once cannot be rated; reporting it with a
             NaN EVAL would poison the adaptive engine's winner table *)
          acc
      | Rating.Summary { eval; var; kept; converged } ->
          (ctx, { Rating.eval; var; samples = kept; invocations = !consumed; converged })
          :: acc)
    by_context []
