(* Deterministic, identity-keyed fault injection.  See fault.mli for the
   model; the implementation note that matters is that every decision
   derives a fresh splitmix64 generator from a textual identity
   (seed | kind | config key | ordinals) — no query ever advances shared
   state, so answers are independent of draw order, domain count and
   resume point. *)

open Peak_util

type spec = {
  crash : float;
  hang : float;
  wrong : float;
  transient : float;
  burst : float;
  burst_factor : float;
  tear : float;
}

let no_faults =
  {
    crash = 0.0;
    hang = 0.0;
    wrong = 0.0;
    transient = 0.0;
    burst = 0.0;
    burst_factor = 8.0;
    tear = 0.0;
  }

let default_spec = { no_faults with crash = 0.05; wrong = 0.02 }

type t = {
  seed : int;
  spec : spec;
  protected : (string, unit) Hashtbl.t;
  mutex : Mutex.t;
}

let validate spec =
  let rate name r =
    if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
      Error (Printf.sprintf "fault rate %s=%g outside [0, 1]" name r)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = rate "crash" spec.crash in
  let* () = rate "hang" spec.hang in
  let* () = rate "wrong" spec.wrong in
  let* () = rate "transient" spec.transient in
  let* () = rate "burst" spec.burst in
  let* () = rate "tear" spec.tear in
  if not (Float.is_finite spec.burst_factor) || spec.burst_factor < 1.0 then
    Error (Printf.sprintf "burstf=%g must be >= 1" spec.burst_factor)
  else Ok ()

let create ?(spec = default_spec) ~seed () =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fault.create: " ^ e));
  { seed; spec; protected = Hashtbl.create 4; mutex = Mutex.create () }

let seed t = t.seed
let spec t = t.spec

let protect t key =
  Mutex.lock t.mutex;
  if not (Hashtbl.mem t.protected key) then Hashtbl.add t.protected key ();
  Mutex.unlock t.mutex

let is_protected t key =
  Mutex.lock t.mutex;
  let p = Hashtbl.mem t.protected key in
  Mutex.unlock t.mutex;
  p

(* ---------------- identity-keyed draws ---------------- *)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let rng_for t kind key =
  Rng.create ~seed:(Int64.to_int (fnv64 (Printf.sprintf "%d|%s|%s" t.seed kind key)))

let draw t kind key = Rng.float (rng_for t kind key)

(* ---------------- per-configuration properties ---------------- *)

let crash_faulty t key =
  (not (is_protected t key)) && draw t "crash-cfg" key < t.spec.crash

let hang_faulty t key =
  (not (is_protected t key)) && draw t "hang-cfg" key < t.spec.hang

let miscompiled t key =
  (not (is_protected t key)) && draw t "wrong-cfg" key < t.spec.wrong

let faulty t key = crash_faulty t key || hang_faulty t key || miscompiled t key

(* The chosen failure ordinal sits below every rating window (the
   smallest budget any caller uses is a few dozen invocations), so a
   faulty configuration cannot slip through a rating undetected. *)
let fail_ordinal t kind key = Rng.int (rng_for t kind key) 24

(* ---------------- execution-time queries ---------------- *)

type exec_failure = Crash | Hang | Transient

let exec_failure t ~key ~attempt ~invocation =
  if is_protected t key then None
  else if crash_faulty t key && invocation = fail_ordinal t "crash-at" key then
    Some Crash
  else if hang_faulty t key && invocation = fail_ordinal t "hang-at" key then
    Some Hang
  else begin
    let akey = Printf.sprintf "%s|a%d" key attempt in
    if
      t.spec.transient > 0.0
      && draw t "transient" akey < t.spec.transient
      && invocation = fail_ordinal t "transient-at" akey
    then Some Transient
    else None
  end

let burst_window = 32

let noise_factor t ~key ~invocation =
  if t.spec.burst <= 0.0 then 1.0
  else begin
    let wkey = Printf.sprintf "%s|w%d" key (invocation / burst_window) in
    if draw t "burst" wkey < t.spec.burst then t.spec.burst_factor else 1.0
  end

let torn_write t ~flush ~size =
  if t.spec.tear <= 0.0 || size <= 0 then None
  else begin
    let fkey = Printf.sprintf "f%d" flush in
    if draw t "tear" fkey < t.spec.tear then
      Some (Rng.int (rng_for t "tear-at" fkey) size)
    else None
  end

(* ---------------- spec strings ---------------- *)

let to_string t =
  Printf.sprintf
    "seed=%d,crash=%.17g,hang=%.17g,wrong=%.17g,transient=%.17g,burst=%.17g,burstf=%.17g,tear=%.17g"
    t.seed t.spec.crash t.spec.hang t.spec.wrong t.spec.transient t.spec.burst
    t.spec.burst_factor t.spec.tear

let of_string s =
  let ( let* ) = Result.bind in
  let parse_field acc field =
    let* seed, spec = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "fault spec: %S is not key=value" field)
    | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let float_v f =
          (* float_of_string accepts "inf"/"nan"; a non-finite rate
             would make every probability draw vacuous, so the spec
             decode boundary rejects them like the rating params do *)
          match float_of_string_opt v with
          | Some x when Float.is_finite x -> Ok (seed, f x)
          | Some _ -> Error (Printf.sprintf "fault spec: %s=%S is not finite" k v)
          | None -> Error (Printf.sprintf "fault spec: %s=%S is not a number" k v)
        in
        match k with
        | "seed" -> (
            match int_of_string_opt v with
            | Some n -> Ok (n, spec)
            | None -> Error (Printf.sprintf "fault spec: seed=%S is not an integer" v))
        | "crash" -> float_v (fun x -> { spec with crash = x })
        | "hang" -> float_v (fun x -> { spec with hang = x })
        | "wrong" -> float_v (fun x -> { spec with wrong = x })
        | "transient" -> float_v (fun x -> { spec with transient = x })
        | "burst" -> float_v (fun x -> { spec with burst = x })
        | "burstf" -> float_v (fun x -> { spec with burst_factor = x })
        | "tear" -> float_v (fun x -> { spec with tear = x })
        | _ ->
            Error
              (Printf.sprintf
                 "fault spec: unknown key %S (valid: seed, crash, hang, wrong, \
                  transient, burst, burstf, tear)"
                 k))
  in
  let fields =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  let* seed, spec = List.fold_left parse_field (Ok (11, no_faults)) fields in
  let* () = validate spec in
  Ok { seed; spec; protected = Hashtbl.create 4; mutex = Mutex.create () }
