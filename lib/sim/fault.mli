(** Deterministic fault injection for the tuning pipeline.

    A fault plan turns the failure modes of real offline tuning —
    experimental versions that crash, hang or compute wrong answers,
    measurement noise arriving in bursts, and torn store writes — into
    reproducible events.  Every decision is a pure function of the plan
    seed and the identity of the thing being decided about (a
    configuration digest, an invocation ordinal, a retry attempt, a
    journal flush index), {e never} of draw order.  That identity keying
    is what lets the determinism guarantees of the tuning engine survive
    the failure path: two domains rating candidates in different orders,
    or a killed-and-resumed session, see the exact same faults.

    Fault kinds:

    - {b crash / hang}: a per-configuration property ("this version was
      miscompiled into a crashing binary").  Every execution of a faulty
      configuration fails at the same chosen invocation ordinal, on every
      attempt — retries cannot save it, which is what lets the driver
      quarantine it.
    - {b wrong output}: also per-configuration; the version runs to
      completion but its output digest is corrupted, to be caught by a
      differential check against a known-good base version.
    - {b transient}: an environmental failure (scheduler kill, flaky
      node).  Keyed by (configuration, attempt), so a retry of the same
      rating redraws and usually succeeds.
    - {b noise burst}: multiplies measured times inside chosen
      invocation windows — the co-located-job interference outlier
      rejection must absorb.
    - {b torn write}: truncates a journal flush mid-batch, simulating a
      crash between [write] and [fsync].

    Configurations are identified by their {!Peak_compiler.Optconfig}
    digest, passed as a string so this library sits right above
    [peak_util] in the dependency order. *)

type spec = {
  crash : float;  (** Fraction of configurations that crash when run. *)
  hang : float;  (** Fraction of configurations that hang when run. *)
  wrong : float;  (** Fraction of configurations with corrupted output. *)
  transient : float;
      (** Per-(configuration, attempt) probability of an environmental
          crash, independent of the configuration's own health. *)
  burst : float;  (** Per-window probability of a measurement-noise burst. *)
  burst_factor : float;
      (** Multiplier applied to measured times inside a burst window. *)
  tear : float;  (** Per-flush probability of tearing a journal write. *)
}

val no_faults : spec
(** All rates zero (the identity plan). *)

val default_spec : spec
(** The acceptance-test mix: 5% crashing configs, 2% wrong-output
    configs, everything else off. *)

type t
(** A fault plan: a seed, a spec, and the set of protected
    configurations. *)

val create : ?spec:spec -> seed:int -> unit -> t
(** [create ~seed ()] builds a plan.  Equal seeds and specs make equal
    plans: every query below answers identically. *)

val seed : t -> int
val spec : t -> spec

val protect : t -> string -> unit
(** Exempt a configuration digest from config-keyed faults (crash, hang,
    wrong output).  The driver protects the search's start configuration:
    the base version is the known-good build the differential oracle is
    anchored on, so it must run clean.  Thread-safe; idempotent. *)

val is_protected : t -> string -> bool

(** {1 Ground truth (per-configuration properties)} *)

val crash_faulty : t -> string -> bool
(** Does the plan make this configuration crash?  [false] for protected
    configurations.  Tests use these predicates as the ground truth the
    driver's quarantine list is checked against. *)

val hang_faulty : t -> string -> bool
val miscompiled : t -> string -> bool

val faulty : t -> string -> bool
(** Any of the three config-keyed faults. *)

(** {1 Execution-time queries (the runner's hooks)} *)

type exec_failure = Crash | Hang | Transient

val exec_failure :
  t -> key:string -> attempt:int -> invocation:int -> exec_failure option
(** Should the [invocation]-th execution (0-based, within one runner) of
    the configuration [key] on retry [attempt] fail?  Config-keyed
    crashes and hangs fire at a per-configuration chosen ordinal below
    any rating window, so every rating of a faulty configuration fails;
    transients fire at a per-(key, attempt) ordinal with probability
    [spec.transient]. *)

val noise_factor : t -> key:string -> invocation:int -> float
(** Measurement-noise multiplier for one execution: [burst_factor]
    inside a burst window, 1.0 outside.  Windows are 32 invocations
    wide and chosen per configuration. *)

val torn_write : t -> flush:int -> size:int -> int option
(** Should the [flush]-th journal flush of [size] bytes be torn?
    [Some n] truncates the write to its first [n < size] bytes. *)

(** {1 Spec strings}

    The textual form used by [peak-tune --faults] and stored in session
    metadata so a resumed session reconstructs the exact plan. *)

val to_string : t -> string
(** Canonical ["seed=11,crash=0.05,..."] form; floats are printed with
    full precision, so [of_string (to_string t)] rebuilds an equivalent
    plan (protections excluded — the driver re-derives them). *)

val of_string : string -> (t, string) result
(** Parse a comma-separated [key=value] list.  Keys: [seed], [crash],
    [hang], [wrong], [transient], [burst], [burstf], [tear]; omitted
    keys default to [no_faults] with seed 11.  Rates must lie in
    [0, 1]; [burstf] must be >= 1. *)
