let ensure_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty input")

let mean a =
  ensure_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let mean_list = function
  | [] -> invalid_arg "Stats.mean_list: empty input"
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let variance a =
  ensure_nonempty "Stats.variance" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  ensure_nonempty "Stats.median" a;
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a ~p =
  ensure_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let mad a =
  ensure_nonempty "Stats.mad" a;
  let m = median a in
  median (Array.map (fun x -> abs_float (x -. m)) a)

let coefficient_of_variation a =
  let m = mean a in
  if m = 0.0 then 0.0 else stddev a /. m

let geometric_mean a =
  ensure_nonempty "Stats.geometric_mean" a;
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive element") a;
  exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 a /. float_of_int (Array.length a))

module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    let delta2 = x -. t.mean in
    t.m2 <- t.m2 +. (delta *. delta2)

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2 }
    end
end

let outlier_mask ?(k = 3.5) a =
  ensure_nonempty "Stats.outlier_mask" a;
  let n = Array.length a in
  let m = median a in
  let spread = 1.4826 *. mad a in
  if spread <= 0.0 then Array.make n true
  else begin
    let mask = Array.map (fun x -> abs_float (x -. m) <= k *. spread) a in
    let kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
    if kept * 2 >= n then mask
    else begin
      (* Pathological spread: retain the half closest to the median. *)
      let idx = Array.init n (fun i -> i) in
      Array.sort
        (fun i j -> compare (abs_float (a.(i) -. m)) (abs_float (a.(j) -. m)))
        idx;
      let mask = Array.make n false in
      let keep = (n + 1) / 2 in
      for r = 0 to keep - 1 do
        mask.(idx.(r)) <- true
      done;
      mask
    end
  end

let drop_outliers ?k a =
  let mask = outlier_mask ?k a in
  let out = ref [] in
  for i = Array.length a - 1 downto 0 do
    if mask.(i) then out := a.(i) :: !out
  done;
  Array.of_list !out

(* Reusable buffers for the statistics the rating loop recomputes at
   every convergence check.  The heap-allocating entry points above stay
   as the reference implementations; [Scratch] gives bit-identical
   results out of preallocated storage — the per-check [List.filter] +
   [Array.of_list] + mask/kept arrays were the rating layer's dominant
   allocation.  A scratch is single-owner mutable state: use one per
   domain. *)
module Scratch = struct
  type t = {
    mutable vals : float array;  (* collected values, indices 0..n-1 *)
    mutable aux : float array;  (* order-statistics working buffer *)
    mutable mask : Bytes.t;  (* '\001' = kept by the last outlier pass *)
    mutable n : int;
  }

  let create () =
    { vals = Array.make 64 0.0; aux = Array.make 64 0.0; mask = Bytes.make 64 '\000'; n = 0 }

  let grow t needed =
    let cap = max needed (2 * Array.length t.vals) in
    let v = Array.make cap 0.0 in
    Array.blit t.vals 0 v 0 t.n;
    t.vals <- v;
    (* aux and mask carry no live data across operations *)
    t.aux <- Array.make cap 0.0;
    t.mask <- Bytes.make cap '\000'

  let clear t = t.n <- 0

  let push t x =
    if t.n >= Array.length t.vals then grow t (t.n + 1);
    t.vals.(t.n) <- x;
    t.n <- t.n + 1

  let length t = t.n
  let get t i = t.vals.(i)
  let kept t i = Bytes.get t.mask i <> '\000'

  (* In-place heapsort of a.(0..n-1).  The buffer holds finite floats
     (callers filter non-finite values first), so plain [<] agrees with
     [compare]'s total order up to the placement of equal keys — and
     only order statistics of the sorted prefix are ever read, which
     equal-key placement cannot change. *)
  let sort_prefix (a : float array) n =
    let sift root last =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let child = (2 * !r) + 1 in
        if child > last then continue := false
        else begin
          let child = if child < last && a.(child) < a.(child + 1) then child + 1 else child in
          if a.(!r) < a.(child) then begin
            let tmp = a.(!r) in
            a.(!r) <- a.(child);
            a.(child) <- tmp;
            r := child
          end
          else continue := false
        end
      done
    in
    for root = (n - 2) / 2 downto 0 do
      sift root (n - 1)
    done;
    for last = n - 1 downto 1 do
      let tmp = a.(0) in
      a.(0) <- a.(last);
      a.(last) <- tmp;
      sift 0 (last - 1)
    done

  (* Median of the sorted prefix a.(0..n-1). *)
  let median_sorted (a : float array) n =
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

  let all_finite t =
    let ok = ref true in
    for i = 0 to t.n - 1 do
      if not (Float.is_finite t.vals.(i)) then ok := false
    done;
    !ok

  (* [outlier_mask] over the collected values, writing the verdicts into
     [t.mask].  Bit-identical to the array version above: same median,
     same MAD, same keep-at-least-half fallback (which reuses the
     original index-sorting code verbatim — its allocation only happens
     on pathological spreads).  Buffers containing non-finite values
     (possible for MBR residuals from a degenerate fit) delegate to the
     reference implementation, whose polymorphic compare has defined NaN
     ordering. *)
  let outlier_mask ?(k = 3.5) t =
    let n = t.n in
    if n = 0 then invalid_arg "Stats.Scratch.outlier_mask: empty input";
    if not (all_finite t) then begin
      let mask = outlier_mask ~k (Array.sub t.vals 0 n) in
      for i = 0 to n - 1 do
        Bytes.set t.mask i (if mask.(i) then '\001' else '\000')
      done
    end
    else begin
      let a = t.vals and aux = t.aux in
      Array.blit a 0 aux 0 n;
      sort_prefix aux n;
      let m = median_sorted aux n in
      for i = 0 to n - 1 do
        aux.(i) <- abs_float (a.(i) -. m)
      done;
      sort_prefix aux n;
      let spread = 1.4826 *. median_sorted aux n in
      if spread <= 0.0 then Bytes.fill t.mask 0 n '\001'
      else begin
        let kept = ref 0 in
        for i = 0 to n - 1 do
          if abs_float (a.(i) -. m) <= k *. spread then begin
            Bytes.set t.mask i '\001';
            incr kept
          end
          else Bytes.set t.mask i '\000'
        done;
        if !kept * 2 < n then begin
          (* Pathological spread: retain the half closest to the median. *)
          let idx = Array.init n (fun i -> i) in
          Array.sort
            (fun i j -> compare (abs_float (a.(i) -. m)) (abs_float (a.(j) -. m)))
            idx;
          Bytes.fill t.mask 0 n '\000';
          let keep = (n + 1) / 2 in
          for r = 0 to keep - 1 do
            Bytes.set t.mask idx.(r) '\001'
          done
        end
      end
    end

  let kept_count t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if kept t i then incr c
    done;
    !c

  (* Mean over the kept values in collection order — the same ascending
     fold (hence the same partial sums) as [mean (drop_outliers a)]. *)
  let kept_mean t =
    let sum = ref 0.0 in
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if kept t i then begin
        sum := !sum +. t.vals.(i);
        incr c
      end
    done;
    if !c = 0 then invalid_arg "Stats.Scratch.kept_mean: nothing kept";
    !sum /. float_of_int !c

  (* Two-pass unbiased variance over the kept values, matching
     [variance] on the dropped-outliers array. *)
  let kept_variance t =
    let n = kept_count t in
    if n = 0 then invalid_arg "Stats.Scratch.kept_variance: nothing kept";
    if n = 1 then 0.0
    else begin
      let m = kept_mean t in
      let acc = ref 0.0 in
      for i = 0 to t.n - 1 do
        if kept t i then begin
          let d = t.vals.(i) -. m in
          acc := !acc +. (d *. d)
        end
      done;
      !acc /. float_of_int (n - 1)
    end
end

type welch = Insufficient_data | Equal | Welch of { t_stat : float; df : float }

let welch_t_summary ~mean1 ~var1 ~n1 ~mean2 ~var2 ~n2 =
  if
    n1 < 2 || n2 < 2
    || not (Float.is_finite mean1)
    || not (Float.is_finite mean2)
    || not (Float.is_finite var1)
    || not (Float.is_finite var2)
  then
    (* a sample that cannot support a variance estimate (or carries NaN
       summary statistics) must not masquerade as "no difference" *)
    Insufficient_data
  else begin
    let s1 = var1 /. float_of_int n1 and s2 = var2 /. float_of_int n2 in
    let se2 = s1 +. s2 in
    if se2 <= 0.0 then
      (* zero pooled variance: the difference is deterministic, so report
         a signed infinite statistic rather than losing the direction.
         Equal constant samples are exactly equal — a degenerate verdict,
         not a t = 0 at a made-up df = 1 (which misreported the strength
         of the "no difference" conclusion). *)
      if mean1 = mean2 then Equal
      else if mean1 < mean2 then Welch { t_stat = neg_infinity; df = 1.0 }
      else Welch { t_stat = infinity; df = 1.0 }
    else begin
      let t = (mean1 -. mean2) /. sqrt se2 in
      let df =
        se2 *. se2
        /. ((s1 *. s1 /. float_of_int (n1 - 1)) +. (s2 *. s2 /. float_of_int (n2 - 1)))
      in
      Welch { t_stat = t; df }
    end
  end

(* Two-sided 95% quantiles of Student's t, linearly interpolated. *)
let t_table =
  [|
    (1.0, 12.706); (2.0, 4.303); (3.0, 3.182); (4.0, 2.776); (5.0, 2.571);
    (6.0, 2.447); (7.0, 2.365); (8.0, 2.306); (9.0, 2.262); (10.0, 2.228);
    (12.0, 2.179); (15.0, 2.131); (20.0, 2.086); (25.0, 2.060); (30.0, 2.042);
    (40.0, 2.021); (60.0, 2.000); (120.0, 1.980); (1e9, 1.960);
  |]

let t_critical95 ~df =
  let df = Float.max 1.0 df in
  let n = Array.length t_table in
  let rec find i =
    if i >= n - 1 then snd t_table.(n - 1)
    else begin
      let d0, c0 = t_table.(i) and d1, c1 = t_table.(i + 1) in
      if df <= d1 then c0 +. ((c1 -. c0) *. (df -. d0) /. (d1 -. d0)) else find (i + 1)
    end
  in
  if df <= 1.0 then snd t_table.(0) else find 0

let significantly_less ~mean1 ~var1 ~n1 ~mean2 ~var2 ~n2 =
  match welch_t_summary ~mean1 ~var1 ~n1 ~mean2 ~var2 ~n2 with
  | Insufficient_data | Equal -> false
  | Welch { t_stat; df } -> t_stat < -.t_critical95 ~df

let significantly_greater ~mean1 ~var1 ~n1 ~mean2 ~var2 ~n2 =
  match welch_t_summary ~mean1 ~var1 ~n1 ~mean2 ~var2 ~n2 with
  | Insufficient_data | Equal -> false
  | Welch { t_stat; df } -> t_stat > t_critical95 ~df

let windows a ~size =
  if size <= 0 then invalid_arg "Stats.windows: size must be positive";
  let n = Array.length a / size in
  Array.init n (fun w -> Array.sub a (w * size) size)

let normalize_by a ~base =
  if base = 0.0 then invalid_arg "Stats.normalize_by: zero base";
  Array.map (fun x -> x /. base) a
