(** Fixed-size work pool over OCaml 5 domains.

    A pool owns [domains - 1] worker domains plus the calling domain:
    {!map} submits one task per list element to a shared queue and the
    caller executes tasks alongside the workers until its own batch has
    completed.  Because the submitting domain always participates, [map]
    may be called re-entrantly from inside a task running on the same
    pool (nested batches) without risk of deadlock: every batch's
    submitter can drain the queue itself even when all workers are busy.

    Results are returned in submission order regardless of which domain
    executed which task.  A task that raises does not poison the pool:
    the remaining tasks of the batch still run to completion, the first
    exception (in submission order) is re-raised to the caller with its
    backtrace, and the pool stays usable for further batches.

    Determinism contract: if each task computes a value independent of
    the other tasks (no shared mutable state), the result list — and any
    aggregation folded over it in order — is identical for every pool
    size, including [~domains:1] (no worker domains at all).  This is the
    property the tuning driver's parallel rating path builds on. *)

type t

val create : domains:int -> t
(** Spawn a pool executing up to [domains] tasks concurrently
    ([domains - 1] worker domains; the caller of {!map} is the last).
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** The concurrency level the pool was created with. *)

val depth : t -> int
(** Tasks currently queued and not yet picked up by any domain.  A
    point-in-time level for admission control; also published as the
    [pool.depth] gauge when tracing is on. *)

val in_flight : t -> int
(** Tasks dequeued and currently executing on some domain (workers and
    helping submitters alike).  Published as the [pool.inflight] gauge
    when tracing is on. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every element, executing the
    applications on the pool, and returns the results in the order of
    [items].  Blocks until the whole batch has finished.  If one or more
    tasks raised, re-raises the exception of the earliest-submitted
    failing task after the batch completes. *)

val shutdown : t -> unit
(** Finish any queued tasks, stop the worker domains and join them.
    The pool must not be used afterwards.  Idempotent. *)

val run : domains:int -> (t -> 'a) -> 'a
(** [run ~domains f] brackets [f] between {!create} and {!shutdown},
    shutting the pool down on exceptions too. *)
