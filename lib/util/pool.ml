type task = unit -> unit

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : task Queue.t;
  mutable running : int;  (* tasks dequeued but not yet finished *)
  mutable live : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

(* Gauges mirror the level of the queue and of dequeued-but-unfinished
   tasks; both are read and written only under [pool.mutex]. *)
let note_levels pool =
  if Peak_obs.active () then begin
    Peak_obs.gauge "pool.depth" (Queue.length pool.queue);
    Peak_obs.gauge "pool.inflight" pool.running
  end

(* Workers drain the queue until shutdown; a task never raises (map wraps
   user code in a result), so a worker cannot die early. *)
let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && pool.live do
    Condition.wait pool.cond pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | Some task ->
      pool.running <- pool.running + 1;
      note_levels pool;
      Mutex.unlock pool.mutex;
      Peak_obs.count "pool.worker_tasks";
      task ();
      Mutex.lock pool.mutex;
      pool.running <- pool.running - 1;
      note_levels pool;
      Mutex.unlock pool.mutex;
      worker_loop pool
  | None ->
      (* queue empty and pool no longer live *)
      Mutex.unlock pool.mutex

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      running = 0;
      live = true;
      workers = [];
      domains;
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let domains pool = pool.domains

let depth pool =
  Mutex.lock pool.mutex;
  let d = Queue.length pool.queue in
  Mutex.unlock pool.mutex;
  d

let in_flight pool =
  Mutex.lock pool.mutex;
  let r = pool.running in
  Mutex.unlock pool.mutex;
  r

let map (type b) pool (f : 'a -> b) items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    (* one slot per item, written exactly once before [remaining] hits 0;
       the placeholder is never read back *)
    let placeholder : (b, exn * Printexc.raw_backtrace) result =
      Error (Not_found, Printexc.get_callstack 0)
    in
    let results = Array.make n placeholder in
    let remaining = ref n in
    let task i () =
      let r =
        try Ok (f items.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock pool.mutex;
      results.(i) <- r;
      decr remaining;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) pool.queue
    done;
    Peak_obs.count ~n "pool.submitted";
    if Peak_obs.active () then
      Peak_obs.instant ~cat:"pool"
        ~args:
          [
            ("batch", string_of_int n);
            ("depth", string_of_int (Queue.length pool.queue));
          ]
        "pool:batch";
    note_levels pool;
    Condition.broadcast pool.cond;
    (* The caller works too.  It may pick up a task from another batch
       (nested maps share the queue); that only delays this batch, and
       the helped batch's submitter is woken by the broadcast above. *)
    while !remaining > 0 do
      match Queue.take_opt pool.queue with
      | Some task ->
          pool.running <- pool.running + 1;
          note_levels pool;
          Mutex.unlock pool.mutex;
          (* the submitter helping drain its own (or a nested) batch *)
          Peak_obs.count "pool.steals";
          task ();
          Mutex.lock pool.mutex;
          pool.running <- pool.running - 1;
          note_levels pool
      | None -> if !remaining > 0 then Condition.wait pool.cond pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (* The whole batch has completed, so re-raising here leaves no task
       of this batch behind in the queue: the pool stays reusable.  The
       scan is in index order — the error surfaced is the first failing
       item's, independent of which domain finished when. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Ok _ -> ()
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Ok v -> out := v :: !out
      | Error _ -> assert false
    done;
    !out
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.live <- false;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let run ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
