type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  arity : int;
  mutable rows : row list;  (* reverse order *)
}

let create ?title ~header () =
  let arity = List.length header in
  if arity = 0 then invalid_arg "Table.create: empty header";
  { title; header; arity; rows = [] }

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
        let left = (width - n) / 2 in
        String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render ?align t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let aligns =
    match align with
    | Some a when List.length a = t.arity -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: align arity mismatch"
    | None -> Array.init t.arity (fun i -> if i = 0 then Left else Right)
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells align_per_col cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (align_per_col i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_cells (fun _ -> Center) t.header;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> emit_cells (fun i -> aligns.(i)) cells)
    rows;
  rule ();
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_percent ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)

let fmt_signed_percent ?(decimals = 1) v =
  (* The sign comes from the rounded text, not the raw float: a tiny
     regression that rounds to zero must print "0.0%", never "-0.0%",
     and anything positive gets an explicit "+" so gains and losses read
     consistently across every table. *)
  let s = Printf.sprintf "%.*f" decimals v in
  let zero = Printf.sprintf "%.*f" decimals 0.0 in
  if s = zero || s = "-" ^ zero then zero ^ "%"
  else if s.[0] = '-' then s ^ "%"
  else "+" ^ s ^ "%"
