(** Linear regression for the MBR execution-time model.

    MBR solves [Y = T · C] (paper Eq. 3): each observation is one TS
    invocation with time [y_j] and component counts [c_{i,j}]; the
    unknowns are the per-component times [T_i].  The fit quality VAR is
    reported as the ratio of the residual sum of squares to the total sum
    of squares of the observed times (Section 3), i.e. [1 − R²] against a
    zero baseline. *)

type fit = {
  coefficients : float array;  (** The component-time vector [T]. *)
  residual_ss : float;  (** Sum of squared residuals of the fit. *)
  total_ss : float;  (** Sum of squares of the observations. *)
  var_ratio : float;  (** [residual_ss / total_ss]; the paper's MBR VAR. *)
  n_observations : int;
}

val fit :
  counts:float array array ->
  times:float array ->
  fit
(** [fit ~counts ~times] solves the least-squares system where
    [counts.(j)] is the component-count row of invocation [j] and
    [times.(j)] its measured time.  Requires at least as many
    observations as components.  A rank-deficient design (e.g. a
    component whose count never varies alongside the constant
    component) falls back to the ridge solve of {!ridge}, so the
    coefficients are always finite.
    @raise Invalid_argument on shape mismatch, empty input, or
    non-finite observations. *)

val ridge :
  ?lambda:float ->
  counts:float array array ->
  times:float array ->
  unit ->
  fit
(** [ridge ~counts ~times ()] solves the L2-regularised normal
    equations [(AᵀA + λI)·T = Aᵀy].  Unlike {!fit} it accepts any
    number of observations — including fewer rows than components
    (the staged-search screening regime) — and never fails on a
    singular or ill-conditioned design: the regularised system is
    positive definite, so the coefficients are always finite.
    [lambda] (default [1e-6]) is scaled by the mean diagonal of
    [AᵀA], making the shrinkage relative to the design's own scale.
    @raise Invalid_argument on shape mismatch, empty input, or
    non-finite observations. *)

val predict : fit -> float array -> float
(** [predict f counts] evaluates [Σ T_i · counts_i]. *)

val linear_relation :
  ?tolerance:float ->
  float array ->
  float array ->
  (float * float) option
(** [linear_relation xs ys] tests whether [ys_j = α·xs_j + β] holds for
    every observation within a relative [tolerance] (default 1e-6),
    returning [Some (α, β)] when it does.  This is the profile-time test
    the MBR component analysis uses to merge two basic blocks whose entry
    counts are linearly dependent across invocations (Section 2.3).
    Constant [xs] with varying [ys] yields [None]; two constants are
    related with [α = 0]. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side has zero
    variance.  @raise Invalid_argument on length mismatch or empty
    input. *)
