type fit = {
  coefficients : float array;
  residual_ss : float;
  total_ss : float;
  var_ratio : float;
  n_observations : int;
}

(* Ridge solve of the normal equations (AᵀA + λI)·x = Aᵀy.  λ is scaled
   to the mean diagonal magnitude of AᵀA, so the shrinkage is relative
   to the design's own scale and the system is well-conditioned even
   when A is rank deficient or has fewer rows than columns. *)
let ridge_coefficients ?(lambda = 1e-6) a times =
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  let aty = Matrix.mul_vec at times in
  let k = Matrix.cols a in
  let trace = ref 0.0 in
  for i = 0 to k - 1 do
    trace := !trace +. Matrix.get ata i i
  done;
  let l = (lambda *. Float.max (!trace /. float_of_int k) 1.0) +. 1e-12 in
  let reg = Matrix.add ata (Matrix.scale (Matrix.identity k) l) in
  Matrix.solve reg aty

let shape_check ~fn ~counts ~times =
  let n = Array.length times in
  if n = 0 then invalid_arg (fn ^ ": no observations");
  if Array.length counts <> n then invalid_arg (fn ^ ": counts/times length mismatch");
  let k = Array.length counts.(0) in
  if k = 0 then invalid_arg (fn ^ ": no components");
  (n, k)

let goodness ~counts ~times ~coefficients =
  let n = Array.length times and k = Array.length coefficients in
  let residual_ss = ref 0.0 in
  let total_ss = ref 0.0 in
  for j = 0 to n - 1 do
    let pred = ref 0.0 in
    for i = 0 to k - 1 do
      pred := !pred +. (coefficients.(i) *. counts.(j).(i))
    done;
    let r = times.(j) -. !pred in
    residual_ss := !residual_ss +. (r *. r);
    total_ss := !total_ss +. (times.(j) *. times.(j))
  done;
  let var_ratio = if !total_ss > 0.0 then !residual_ss /. !total_ss else 0.0 in
  {
    coefficients;
    residual_ss = !residual_ss;
    total_ss = !total_ss;
    var_ratio;
    n_observations = n;
  }

let ridge ?lambda ~counts ~times () =
  ignore (shape_check ~fn:"Regression.ridge" ~counts ~times);
  let a = Matrix.of_arrays counts in
  let coefficients = ridge_coefficients ?lambda a times in
  (* the regularized normal equations are positive definite for λ > 0,
     so a non-finite coefficient can only come from non-finite input —
     refuse it rather than let a NaN importance escape *)
  if not (Array.for_all Float.is_finite coefficients) then
    invalid_arg "Regression.ridge: non-finite observations";
  goodness ~counts ~times ~coefficients

let fit ~counts ~times =
  let n, k = shape_check ~fn:"Regression.fit" ~counts ~times in
  if n < k then invalid_arg "Regression.fit: fewer observations than components";
  let a = Matrix.of_arrays counts in
  (* QR least squares when the design has full column rank; on rank
     deficiency (a component whose counts never vary independently)
     fall back to the ridge solve instead of failing — callers get
     finite, slightly-shrunk coefficients either way *)
  let coefficients =
    match Matrix.least_squares a times with
    | c -> c
    | exception Failure _ -> ridge_coefficients a times
  in
  if not (Array.for_all Float.is_finite coefficients) then
    invalid_arg "Regression.fit: non-finite observations";
  goodness ~counts ~times ~coefficients

let predict f counts =
  if Array.length counts <> Array.length f.coefficients then
    invalid_arg "Regression.predict: component count mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (f.coefficients.(i) *. c)) counts;
  !acc

let linear_relation ?(tolerance = 1e-6) xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.linear_relation: length mismatch";
  if n = 0 then invalid_arg "Regression.linear_relation: empty input";
  if n = 1 then Some (0.0, ys.(0))
  else begin
    (* Find two observations with distinct x to fix alpha/beta, then check
       all others.  If x is constant, y must be constant too. *)
    let x0 = xs.(0) in
    let distinct = ref None in
    Array.iteri (fun i x -> if !distinct = None && x <> x0 then distinct := Some i) xs;
    let scale = Array.fold_left (fun acc y -> Float.max acc (abs_float y)) 1.0 ys in
    let close a b = abs_float (a -. b) <= tolerance *. Float.max scale 1.0 in
    match !distinct with
    | None ->
        (* constant xs: linear iff ys constant *)
        let y0 = ys.(0) in
        if Array.for_all (fun y -> close y y0) ys then Some (0.0, y0) else None
    | Some i ->
        let alpha = (ys.(i) -. ys.(0)) /. (xs.(i) -. x0) in
        let beta = ys.(0) -. (alpha *. x0) in
        let ok = ref true in
        Array.iteri (fun j x -> if not (close ys.(j) ((alpha *. x) +. beta)) then ok := false) xs;
        if !ok then Some (alpha, beta) else None
  end

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.pearson: length mismatch";
  if n = 0 then invalid_arg "Regression.pearson: empty input";
  let mx = Stats.mean xs and my = Stats.mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
