(** Descriptive statistics used by the rating harness.

    The paper's rating methods reduce windows of noisy timing samples to a
    rating EVAL and a confidence VAR (Section 3), identify and drop
    measurement outliers caused by system perturbation, and iterate until
    VAR falls under a threshold.  This module supplies those primitives. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input.
    @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val mean_list : float list -> float

val median : float array -> float
(** Median (average of middle two for even lengths); input is not
    modified.  @raise Invalid_argument on empty input. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] with [p] in [0,100], linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or [p]
    outside the range. *)

val mad : float array -> float
(** Median absolute deviation (robust spread estimate). *)

val coefficient_of_variation : float array -> float
(** [stddev / mean]; 0 when the mean is 0. *)

val geometric_mean : float array -> float
(** Geometric mean; requires all elements positive. *)

(** {1 Streaming moments} *)

module Welford : sig
  (** Numerically stable streaming mean/variance (Welford's algorithm);
      used where windows are consumed incrementally so the harness can
      test convergence after every sample without rescanning. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float

  (** Unbiased sample variance; 0 while fewer than two samples. *)

  val stddev : t -> float
  val merge : t -> t -> t
  (** Combine two disjoint sample streams (Chan's parallel update). *)
end

(** {1 Outlier handling} *)

val drop_outliers : ?k:float -> float array -> float array
(** [drop_outliers ~k a] removes samples farther than [k] robust standard
    deviations (1.4826·MAD) from the median — the paper's "measurements
    far away from the average ... resulting from system perturbations".
    Defaults to [k = 3.5].  If the MAD is zero (constant data) the input
    is returned unchanged.  Always keeps at least half of the samples:
    if the filter would drop more, the farthest-surviving ordering is
    used to retain the closest half. *)

val outlier_mask : ?k:float -> float array -> bool array
(** Mask form of {!drop_outliers}: [true] marks a kept sample. *)

(** {1 Reusable-buffer statistics}

    The rating loop recomputes median/MAD/mean/variance at every
    convergence check; the entry points above allocate fresh arrays per
    call.  A [Scratch.t] owns growable buffers reused across checks, and
    its operations return bit-identical results to the allocating forms
    (same fold orders, same outlier fallback).  Steady-state (buffers
    already grown, no pathological outlier spread, finite data) they
    allocate nothing.  Single-owner mutable state: use one per domain. *)
module Scratch : sig
  type t

  val create : unit -> t
  val clear : t -> unit
  val push : t -> float -> unit
  val length : t -> int
  val get : t -> int -> float

  val outlier_mask : ?k:float -> t -> unit
  (** {!outlier_mask} over the collected values, recording verdicts
      queryable via {!kept}.  Defaults to [k = 3.5].
      @raise Invalid_argument on an empty buffer. *)

  val kept : t -> int -> bool
  (** Verdict of the last {!outlier_mask} for index [i]. *)

  val kept_count : t -> int

  val kept_mean : t -> float
  (** Mean of the kept values, equal to [mean (drop_outliers a)].
      @raise Invalid_argument when nothing is kept. *)

  val kept_variance : t -> float
  (** Unbiased variance of the kept values, equal to
      [variance (drop_outliers a)]. *)
end

(** {1 Significance testing} *)

type welch = Insufficient_data | Equal | Welch of { t_stat : float; df : float }
(** Outcome of a Welch comparison.  [Insufficient_data] replaces the old
    silent [(0, 1)] answer: a sample with fewer than two points (or NaN
    summary statistics, e.g. from an all-NaN measurement window) carries
    no evidence either way, and pretending it showed "no difference"
    propagated into rating decisions.  [Equal] is the degenerate verdict
    for two constant samples with the same mean: both variances are
    zero, so no finite t statistic or honest degrees of freedom exists —
    the old [t_stat = 0, df = 1] answer misreported significance. *)

val welch_t_summary :
  mean1:float -> var1:float -> n1:int -> mean2:float -> var2:float -> n2:int -> welch
(** Welch's t statistic and Welch–Satterthwaite degrees of freedom for
    two independent samples given by their summary statistics.
    [Insufficient_data] when either sample has fewer than two points or
    any summary statistic is non-finite.  Both variances zero with equal
    means yields [Equal]; unequal means with zero variances yield a
    signed infinity ([neg_infinity] when [mean1 < mean2]) so that
    directional tests keep working on deterministic data. *)

val t_critical95 : df:float -> float
(** Two-sided 95% critical value of Student's t distribution,
    interpolated from a standard table (exact at the tabulated points,
    1.960 in the limit). *)

val significantly_less :
  mean1:float -> var1:float -> n1:int -> mean2:float -> var2:float -> n2:int -> bool
(** One-sided test at 97.5%: is population 1's mean credibly below
    population 2's?  [false] on {!Insufficient_data} — no evidence, no
    swap — and [false] on {!Equal} — exactly equal constants are never a
    win.  (Used by the adaptive engine to swap versions only on
    statistically real wins.) *)

val significantly_greater :
  mean1:float -> var1:float -> n1:int -> mean2:float -> var2:float -> n2:int -> bool
(** Mirror of {!significantly_less}: is population 1's mean credibly
    above population 2's?  Same [false] verdicts on
    {!Insufficient_data} and {!Equal}.  (Used by the two-sided
    staleness detector: a rating-time baseline credibly above the
    recent window means the workload got cheaper.) *)

(** {1 Aggregation helpers} *)

val windows : float array -> size:int -> float array array
(** Split samples into consecutive disjoint windows of [size]; a trailing
    partial window is discarded.  @raise Invalid_argument if
    [size <= 0]. *)

val normalize_by : float array -> base:float -> float array
(** Pointwise division by [base].  @raise Invalid_argument if [base]
    is 0. *)
