(** ASCII table rendering for experiment reports.

    The bench harness prints paper-style tables (Table 1, Figure 7 series)
    to stdout; this module handles column sizing and alignment so every
    experiment's output is uniform and diffable. *)

type align = Left | Right | Center

type t

val create : ?title:string -> header:string list -> unit -> t
(** New table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    header's. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : ?align:align list -> t -> string
(** Render with box-drawing in plain ASCII.  [align] defaults to
    left-aligning the first column and right-aligning the rest, the usual
    layout for a label column followed by numeric columns. *)

val print : ?align:align list -> t -> unit
(** [render] to stdout followed by a newline. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper (default 2 decimals). *)

val fmt_percent : ?decimals:int -> float -> string
(** [fmt_percent 0.26] is ["26.0%"] with default decimals = 1. *)

val fmt_signed_percent : ?decimals:int -> float -> string
(** Signed percent for values already in percent units:
    [fmt_signed_percent 3.14] is ["+3.1%"], [fmt_signed_percent (-2.0)]
    is ["-2.0%"].  Values that round to zero — including negative zero
    and tiny regressions — print as ["0.0%"], so reports never show the
    confusing ["-0.0%"]. *)
