type block = {
  alu : int;
  muldiv : int;
  transcendental : int;
  mem_read : int;
  mem_write : int;
  redundancy : int;
  pressure : int;
  bases : string list;
  pointer_bases : string list;
  has_branch : bool;
  loop_depth : int;
  is_loop_header : bool;
  impure_calls : int;
}

type ts = {
  blocks : block array;
  max_pressure : int;
  alias_pairs : int;
  n_loops : int;
}

let empty_block =
  {
    alu = 0;
    muldiv = 0;
    transcendental = 0;
    mem_read = 0;
    mem_write = 0;
    redundancy = 0;
    pressure = 0;
    bases = [];
    pointer_bases = [];
    has_branch = false;
    loop_depth = 0;
    is_loop_header = false;
    impure_calls = 0;
  }

(* Operation counts of one expression. *)
let rec expr_ops e =
  let open Types in
  match e with
  | Const _ | Var _ -> (0, 0, 0, 0)
  | Deref _ -> (0, 0, 0, 1)
  | Index (_, sub) ->
      let a, m, t, r = expr_ops sub in
      (a + 1, m, t, r + 1) (* address arithmetic + load *)
  | Unop (Sqrt, e) ->
      let a, m, t, r = expr_ops e in
      (a, m, t + 1, r)
  | Unop (_, e) ->
      let a, m, t, r = expr_ops e in
      (a + 1, m, t, r)
  | Binop ((Mul | Div | Mod), x, y) ->
      let a1, m1, t1, r1 = expr_ops x and a2, m2, t2, r2 = expr_ops y in
      (a1 + a2, m1 + m2 + 1, t1 + t2, r1 + r2)
  | Binop (_, x, y) | Cmp (_, x, y) ->
      let a1, m1, t1, r1 = expr_ops x and a2, m2, t2, r2 = expr_ops y in
      (a1 + a2 + 1, m1 + m2, t1 + t2, r1 + r2)

let block_exprs (b : Cfg.bblock) =
  let stmt_exprs = function
    | Cfg.SAssign (_, e) -> [ e ]
    | Cfg.SStore (_, i, e) -> [ i; e ]
    | Cfg.SPtrStore (_, e) -> [ e ]
    | Cfg.SPtrSet _ -> []
    | Cfg.SCall _ -> []
  in
  let from_stmts = List.concat_map stmt_exprs (Array.to_list b.stmts) in
  match b.term with Cfg.Branch (c, _, _) -> c :: from_stmts | _ -> from_stmts

(* Redundancy: extra occurrences of nontrivial subexpressions repeated
   within the block. *)
let redundancy_of exprs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun sub ->
          if Expr.size sub >= 2 then
            Hashtbl.replace tbl sub (1 + Option.value ~default:0 (Hashtbl.find_opt tbl sub)))
        (Expr.subexpressions e))
    exprs;
  Hashtbl.fold (fun _ n acc -> if n > 1 then acc + n - 1 else acc) tbl 0

let dedup l =
  List.rev (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let block_features (b : Cfg.bblock) =
  let exprs = block_exprs b in
  let alu, muldiv, transcendental, mem_read =
    List.fold_left
      (fun (a, m, t, r) e ->
        let a', m', t', r' = expr_ops e in
        (a + a', m + m', t + t', r + r'))
      (0, 0, 0, 0) exprs
  in
  let mem_write, impure_calls, pure_calls =
    Array.fold_left
      (fun (w, ic, pc) s ->
        match s with
        | Cfg.SStore _ | Cfg.SPtrStore _ -> (w + 1, ic, pc)
        | Cfg.SCall f -> if Types.is_pure_external f then (w, ic, pc + 1) else (w, ic + 1, pc)
        | Cfg.SAssign _ | Cfg.SPtrSet _ -> (w, ic, pc))
      (0, 0, 0) b.stmts
  in
  let scalars = dedup (List.concat_map Expr.scalar_uses exprs) in
  let defined =
    Array.to_list b.stmts
    |> List.filter_map (function Cfg.SAssign (x, _) -> Some x | _ -> None)
    |> dedup
  in
  let sources = List.concat_map Expr.sources exprs in
  let pointer_bases =
    dedup
      (List.filter_map (function Expr.Pointer_deref p -> Some p | _ -> None) sources
      @ (Array.to_list b.stmts
        |> List.filter_map (function Cfg.SPtrStore (p, _) -> Some p | _ -> None)))
  in
  let bases =
    dedup
      (List.concat_map Expr.array_bases exprs
      @ pointer_bases
      @ (Array.to_list b.stmts
        |> List.filter_map (function Cfg.SStore (a, _, _) -> Some a | _ -> None)))
  in
  let max_depth = List.fold_left (fun acc e -> max acc (Expr.depth e)) 0 exprs in
  {
    alu;
    muldiv;
    transcendental = transcendental + pure_calls;
    mem_read;
    mem_write;
    redundancy = redundancy_of exprs;
    pressure = List.length (dedup (scalars @ defined)) + List.length bases + max_depth;
    bases;
    pointer_bases;
    has_branch = (match b.term with Cfg.Branch _ -> true | _ -> false);
    loop_depth = b.loop_depth;
    is_loop_header = b.is_loop_header;
    impure_calls;
  }

(* Whole-TS summary vector for cross-program similarity (knowledge
   base).  Kept in lockstep with [vector_dims]; every component is a
   finite float by construction (counts, shares and means over counts). *)
let vector_dims =
  [
    "blocks";
    "loops";
    "max_loop_depth";
    "loop_mass";
    "alu";
    "muldiv";
    "transcendental";
    "mem_read";
    "mem_write";
    "redundancy";
    "max_pressure";
    "mean_pressure";
    "alias_pairs";
    "branch_share";
    "pointer_block_share";
    "impure_calls";
  ]

let vector (ts : ts) =
  let n = Array.length ts.blocks in
  let fn = float_of_int n in
  let sum f = Array.fold_left (fun acc b -> acc + f b) 0 ts.blocks in
  let fsum f = float_of_int (sum f) in
  let share p =
    if n = 0 then 0.0 else float_of_int (sum (fun b -> if p b then 1 else 0)) /. fn
  in
  let max_depth = Array.fold_left (fun acc b -> max acc b.loop_depth) 0 ts.blocks in
  [|
    fn;
    float_of_int ts.n_loops;
    float_of_int max_depth;
    fsum (fun b -> b.loop_depth);
    fsum (fun b -> b.alu);
    fsum (fun b -> b.muldiv);
    fsum (fun b -> b.transcendental);
    fsum (fun b -> b.mem_read);
    fsum (fun b -> b.mem_write);
    fsum (fun b -> b.redundancy);
    float_of_int ts.max_pressure;
    (if n = 0 then 0.0 else fsum (fun b -> b.pressure) /. fn);
    float_of_int ts.alias_pairs;
    share (fun b -> b.has_branch);
    share (fun b -> b.pointer_bases <> []);
    fsum (fun b -> b.impure_calls);
  |]

let of_cfg (cfg : Cfg.t) =
  let blocks = Array.map block_features cfg.blocks in
  let max_pressure = Array.fold_left (fun acc b -> max acc b.pressure) 0 blocks in
  let alias_pairs =
    Array.fold_left
      (fun acc b ->
        let k = List.length b.bases in
        acc + (k * (k - 1) / 2))
      0 blocks
  in
  let n_loops = Array.fold_left (fun acc b -> if b.is_loop_header then acc + 1 else acc) 0 blocks in
  { blocks; max_pressure; alias_pairs; n_loops }
