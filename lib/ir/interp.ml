(* Counting interpreter over a slot-compiled environment.

   The environment used to be three string-keyed hashtables; every
   lookup allocated an [option] and every recursive evaluation boxed a
   float, which made the interpreter — the system's innermost loop — the
   dominant allocator of a tuning run.  Names are now interned once into
   integer slots: scalars live in one [float array], arrays and pointer
   targets are indexed by slot id, and a CFG is compiled against a
   specific environment into flat per-operator instruction arrays
   executed on a preallocated operand stack.  The steady-state execution
   loop ([run_compiled] on a warm {!scratch}) performs no allocation at
   all; the allocation-budget gate in ci/check.sh holds it to that.

   The string API ([get_scalar], [set_array], ...) survives as a thin
   compatibility wrapper, including the original semantics that a write
   to an undeclared name creates the binding (Cfg lowering relies on
   this for its [__tN] loop-limit temporaries, which are assigned before
   they are read but are absent from the [ts] the environment was built
   from). *)

exception Out_of_bounds of string
exception Step_limit_exceeded of string

(* ------------------------------------------------------------------ *)
(* Slot environment                                                    *)
(* ------------------------------------------------------------------ *)

(* Each name space (scalars, arrays, pointers) is a growable parallel
   table: name <-> slot, value per slot, and a bound flag.  A slot can
   exist unbound: compilation interns every name the CFG mentions, and a
   name first written at run time becomes bound then — reading it before
   that raises the same "unknown ..." error the hashtable miss used to. *)
type env = {
  scalar_slots : (string, int) Hashtbl.t;
  mutable scalar_names : string array;
  mutable scalar_vals : float array;
  mutable scalar_bound : Bytes.t;
  mutable n_scalars : int;
  array_slots : (string, int) Hashtbl.t;
  mutable array_names : string array;
  mutable array_vals : float array array;
  mutable array_bound : Bytes.t;
  mutable n_arrays : int;
  pointer_slots : (string, int) Hashtbl.t;
  mutable pointer_names : string array;
  mutable pointer_targets : int array;  (* scalar slot; -1 = unbound *)
  mutable n_pointers : int;
}

let empty_env () =
  {
    scalar_slots = Hashtbl.create 16;
    scalar_names = [||];
    scalar_vals = [||];
    scalar_bound = Bytes.empty;
    n_scalars = 0;
    array_slots = Hashtbl.create 8;
    array_names = [||];
    array_vals = [||];
    array_bound = Bytes.empty;
    n_arrays = 0;
    pointer_slots = Hashtbl.create 4;
    pointer_names = [||];
    pointer_targets = [||];
    n_pointers = 0;
  }

let grow_strings a cap =
  let b = Array.make cap "" in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_floats a cap =
  let b = Array.make cap 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bytes a cap =
  let b = Bytes.make cap '\000' in
  Bytes.blit a 0 b 0 (Bytes.length a);
  b

(* Intern a name without binding it; returns its slot. *)
let scalar_slot env v =
  match Hashtbl.find env.scalar_slots v with
  | s -> s
  | exception Not_found ->
      let s = env.n_scalars in
      if s >= Array.length env.scalar_vals then begin
        let cap = max 8 (2 * s) in
        env.scalar_names <- grow_strings env.scalar_names cap;
        env.scalar_vals <- grow_floats env.scalar_vals cap;
        env.scalar_bound <- grow_bytes env.scalar_bound cap
      end;
      env.scalar_names.(s) <- v;
      Hashtbl.add env.scalar_slots v s;
      env.n_scalars <- s + 1;
      s

let array_slot env a =
  match Hashtbl.find env.array_slots a with
  | s -> s
  | exception Not_found ->
      let s = env.n_arrays in
      if s >= Array.length env.array_vals then begin
        let cap = max 8 (2 * s) in
        env.array_names <- grow_strings env.array_names cap;
        let vals = Array.make cap [||] in
        Array.blit env.array_vals 0 vals 0 (Array.length env.array_vals);
        env.array_vals <- vals;
        env.array_bound <- grow_bytes env.array_bound cap
      end;
      env.array_names.(s) <- a;
      Hashtbl.add env.array_slots a s;
      env.n_arrays <- s + 1;
      s

let pointer_slot env p =
  match Hashtbl.find env.pointer_slots p with
  | s -> s
  | exception Not_found ->
      let s = env.n_pointers in
      if s >= Array.length env.pointer_targets then begin
        let cap = max 4 (2 * s) in
        env.pointer_names <- grow_strings env.pointer_names cap;
        let tg = Array.make cap (-1) in
        Array.blit env.pointer_targets 0 tg 0 (Array.length env.pointer_targets);
        env.pointer_targets <- tg
      end;
      env.pointer_names.(s) <- p;
      Hashtbl.add env.pointer_slots p s;
      env.n_pointers <- s + 1;
      s

let set_scalar env v x =
  let s = scalar_slot env v in
  env.scalar_vals.(s) <- x;
  Bytes.set env.scalar_bound s '\001'

let unknown_scalar v = raise (Out_of_bounds (Printf.sprintf "unknown scalar %s" v))
let unknown_array a = raise (Out_of_bounds (Printf.sprintf "unknown array %s" a))
let unknown_pointer p = raise (Out_of_bounds (Printf.sprintf "unknown pointer %s" p))

let get_scalar env v =
  match Hashtbl.find env.scalar_slots v with
  | s when Bytes.get env.scalar_bound s <> '\000' -> env.scalar_vals.(s)
  | _ | (exception Not_found) -> unknown_scalar v

let set_array env a x =
  let s = array_slot env a in
  env.array_vals.(s) <- x;
  Bytes.set env.array_bound s '\001'

let get_array env a =
  match Hashtbl.find env.array_slots a with
  | s when Bytes.get env.array_bound s <> '\000' -> env.array_vals.(s)
  | _ | (exception Not_found) -> unknown_array a

let set_pointer env p target =
  let ps = pointer_slot env p in
  env.pointer_targets.(ps) <- scalar_slot env target

let get_pointer env p =
  match Hashtbl.find env.pointer_slots p with
  | ps when env.pointer_targets.(ps) >= 0 -> env.scalar_names.(env.pointer_targets.(ps))
  | _ | (exception Not_found) -> unknown_pointer p

let make_env (ts : Types.ts) =
  let env = empty_env () in
  List.iter (fun v -> set_scalar env v 0.0) ts.params;
  List.iter (fun v -> set_scalar env v 0.0) ts.locals;
  List.iter (fun (a, n) -> set_array env a (Array.make n 0.0)) ts.arrays;
  List.iter (fun (p, target) -> set_pointer env p target) ts.pointers;
  env

let copy_env env =
  {
    scalar_slots = Hashtbl.copy env.scalar_slots;
    scalar_names = Array.copy env.scalar_names;
    scalar_vals = Array.copy env.scalar_vals;
    scalar_bound = Bytes.copy env.scalar_bound;
    n_scalars = env.n_scalars;
    array_slots = Hashtbl.copy env.array_slots;
    array_names = Array.copy env.array_names;
    array_vals = Array.map Array.copy env.array_vals;
    array_bound = Bytes.copy env.array_bound;
    n_arrays = env.n_arrays;
    pointer_slots = Hashtbl.copy env.pointer_slots;
    pointer_names = Array.copy env.pointer_names;
    pointer_targets = Array.copy env.pointer_targets;
    n_pointers = env.n_pointers;
  }

(* Name-keyed equality over the bound bindings (slot layouts may
   differ between two envs that interned names in different orders). *)
let env_equal a b =
  let scalars_sub x y =
    let ok = ref true in
    for s = 0 to x.n_scalars - 1 do
      if Bytes.get x.scalar_bound s <> '\000' then begin
        match Hashtbl.find y.scalar_slots x.scalar_names.(s) with
        | t ->
            if Bytes.get y.scalar_bound t = '\000' || y.scalar_vals.(t) <> x.scalar_vals.(s)
            then ok := false
        | exception Not_found -> ok := false
      end
    done;
    !ok
  in
  let arrays_sub x y =
    let ok = ref true in
    for s = 0 to x.n_arrays - 1 do
      if Bytes.get x.array_bound s <> '\000' then begin
        match Hashtbl.find y.array_slots x.array_names.(s) with
        | t ->
            if Bytes.get y.array_bound t = '\000' || y.array_vals.(t) <> x.array_vals.(s)
            then ok := false
        | exception Not_found -> ok := false
      end
    done;
    !ok
  in
  let pointers_sub x y =
    let ok = ref true in
    for s = 0 to x.n_pointers - 1 do
      if x.pointer_targets.(s) >= 0 then begin
        let name = x.pointer_names.(s) in
        match get_pointer y name with
        | target -> if target <> x.scalar_names.(x.pointer_targets.(s)) then ok := false
        | exception Out_of_bounds _ -> ok := false
      end
    done;
    !ok
  in
  scalars_sub a b && scalars_sub b a && arrays_sub a b && arrays_sub b a
  && pointers_sub a b && pointers_sub b a

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  block_counts : int array;
  mem_reads : int;
  mem_writes : int;
  flops : int;
  array_accesses : (string * int) list;
  impure_calls : int;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Expressions compile to postfix instruction arrays executed on a flat
   float stack; every operator gets its own constructor so the execution
   match lands directly on an unboxed float-array store.  [Iscalar] is
   used when the slot was already bound at compile time (nothing ever
   unbinds a slot, so the runtime check is dropped); names the CFG
   mentions but the environment has not bound yet get the checked
   variant. *)
type instr =
  | Iconst of float
  | Iscalar of int
  | Iscalar_checked of int
  | Iload of int * int  (* array slot, access-counter id; pops the index *)
  | Ideref of int * int  (* pointer slot, access-counter id *)
  | Ineg
  | Inot
  | Iabs
  | Isqrt
  | Ifloor
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Imod
  | Imin
  | Imax
  | Ieq
  | Ine
  | Ilt
  | Ile
  | Igt
  | Ige

type code = instr array

type cstmt =
  | Cassign of int * code  (* scalar slot <- expr *)
  | Cstore of int * int * code  (* array slot, counter id; code leaves [idx; value] *)
  | Cptr_store of int * int * code  (* pointer slot, counter id; code leaves [value] *)
  | Cptr_set of int * int  (* pointer slot <- scalar slot *)
  | Ccall_impure

type cterm = Cgoto of int | Cbranch of code * int * int | Cexit

type cblock = { c_stmts : cstmt array; c_term : cterm }

type compiled = {
  cp_env : env;
  cp_name : string;
  cp_blocks : cblock array;
  cp_entry : int;
  cp_stack_depth : int;
  cp_base_names : string array;  (* counter id -> base name *)
  cp_base_order : int array;  (* counter ids in ascending name order *)
}

type scratch = {
  sc_stack : float array;
  sc_block_counts : int array;
  sc_accesses : int array;  (* per counter id *)
  mutable sc_reads : int;
  mutable sc_writes : int;
  mutable sc_flops : int;
  mutable sc_calls : int;
  mutable sc_sp : int;
  mutable sc_steps : int;
}

let compile (cfg : Cfg.t) env =
  let base_ids = Hashtbl.create 8 in
  let base_names = ref [] in
  let n_bases = ref 0 in
  let base_id name =
    match Hashtbl.find_opt base_ids name with
    | Some b -> b
    | None ->
        let b = !n_bases in
        Hashtbl.add base_ids name b;
        base_names := name :: !base_names;
        incr n_bases;
        b
  in
  let max_depth = ref 1 in
  let scalar_read_instr v =
    let s = scalar_slot env v in
    if Bytes.get env.scalar_bound s <> '\000' then Iscalar s else Iscalar_checked s
  in
  (* [emit acc depth e] appends e's postfix code (reversed) to [acc];
     [depth] is the operand-stack occupancy before e executes. *)
  let rec emit acc depth e =
    if depth + 1 > !max_depth then max_depth := depth + 1;
    match e with
    | Types.Const k -> Iconst k :: acc
    | Types.Var v -> scalar_read_instr v :: acc
    | Types.Index (a, sub) ->
        let acc = emit acc depth sub in
        Iload (array_slot env a, base_id a) :: acc
    | Types.Deref p -> Ideref (pointer_slot env p, base_id p) :: acc
    | Types.Unop (op, e) ->
        let acc = emit acc depth e in
        (match op with
        | Types.Neg -> Ineg
        | Types.Not -> Inot
        | Types.Abs -> Iabs
        | Types.Sqrt -> Isqrt
        | Types.Floor -> Ifloor)
        :: acc
    | Types.Binop (op, a, b) ->
        let acc = emit acc depth a in
        let acc = emit acc (depth + 1) b in
        (match op with
        | Types.Add -> Iadd
        | Types.Sub -> Isub
        | Types.Mul -> Imul
        | Types.Div -> Idiv
        | Types.Mod -> Imod
        | Types.Min -> Imin
        | Types.Max -> Imax)
        :: acc
    | Types.Cmp (op, a, b) ->
        let acc = emit acc depth a in
        let acc = emit acc (depth + 1) b in
        (match op with
        | Types.Eq -> Ieq
        | Types.Ne -> Ine
        | Types.Lt -> Ilt
        | Types.Le -> Ile
        | Types.Gt -> Igt
        | Types.Ge -> Ige)
        :: acc
  in
  let code_of ?(depth = 0) e = Array.of_list (List.rev (emit [] depth e)) in
  let compile_stmt (s : Cfg.simple) =
    match s with
    | Cfg.SAssign (x, e) -> Some (Cassign (scalar_slot env x, code_of e))
    | Cfg.SStore (a, i, e) ->
        (* index code then value code: the combined run leaves the stack
           as [idx; value], evaluated in the original order with the
           bounds check after both — matching the reference. *)
        let idx = emit [] 0 i in
        let both = emit idx 1 e in
        Some (Cstore (array_slot env a, base_id a, Array.of_list (List.rev both)))
    | Cfg.SPtrStore (p, e) -> Some (Cptr_store (pointer_slot env p, base_id p, code_of e))
    | Cfg.SPtrSet (p, v) -> Some (Cptr_set (pointer_slot env p, scalar_slot env v))
    | Cfg.SCall f -> if Types.is_pure_external f then None else Some Ccall_impure
  in
  let blocks =
    Array.map
      (fun (b : Cfg.bblock) ->
        {
          c_stmts =
            Array.of_list (List.filter_map compile_stmt (Array.to_list b.Cfg.stmts));
          c_term =
            (match b.Cfg.term with
            | Cfg.Goto n -> Cgoto n
            | Cfg.Branch (c, t, f) -> Cbranch (code_of c, t, f)
            | Cfg.Exit -> Cexit);
        })
      cfg.Cfg.blocks
  in
  let names = Array.of_list (List.rev !base_names) in
  let order = Array.init (Array.length names) (fun i -> i) in
  Array.sort (fun i j -> compare names.(i) names.(j)) order;
  {
    cp_env = env;
    cp_name = cfg.Cfg.ts.Types.name;
    cp_blocks = blocks;
    cp_entry = cfg.Cfg.entry;
    cp_stack_depth = !max_depth;
    cp_base_names = names;
    cp_base_order = order;
  }

let make_scratch cp =
  {
    sc_stack = Array.make (max 1 cp.cp_stack_depth) 0.0;
    sc_block_counts = Array.make (Array.length cp.cp_blocks) 0;
    sc_accesses = Array.make (Array.length cp.cp_base_names) 0;
    sc_reads = 0;
    sc_writes = 0;
    sc_flops = 0;
    sc_calls = 0;
    sc_sp = 0;
    sc_steps = 0;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* All raising paths live out of line so the hot loop only allocates
   when an exception actually fires. *)
let oob_index name i_float len context =
  raise
    (Out_of_bounds
       (Printf.sprintf "%s[%d] out of [0,%d) in %s" name
          (int_of_float (floor i_float))
          len context))

(* Execute one postfix code array; the result is left in sc_stack.(0).
   Returning it instead would box a float per expression. *)
let exec_code env sc (code : code) =
  let st = sc.sc_stack in
  sc.sc_sp <- 0;
  for pc = 0 to Array.length code - 1 do
    match Array.unsafe_get code pc with
    | Iconst k ->
        let sp = sc.sc_sp in
        st.(sp) <- k;
        sc.sc_sp <- sp + 1
    | Iscalar s ->
        let sp = sc.sc_sp in
        st.(sp) <- env.scalar_vals.(s);
        sc.sc_sp <- sp + 1
    | Iscalar_checked s ->
        if Bytes.get env.scalar_bound s = '\000' then unknown_scalar env.scalar_names.(s);
        let sp = sc.sc_sp in
        st.(sp) <- env.scalar_vals.(s);
        sc.sc_sp <- sp + 1
    | Iload (a, b) ->
        if Bytes.get env.array_bound a = '\000' then unknown_array env.array_names.(a);
        let arr = env.array_vals.(a) in
        let sp = sc.sc_sp - 1 in
        let i_float = st.(sp) in
        let i = int_of_float i_float in
        if i_float < 0.0 || i >= Array.length arr then
          oob_index env.array_names.(a) i_float (Array.length arr) "read";
        sc.sc_accesses.(b) <- sc.sc_accesses.(b) + 1;
        sc.sc_reads <- sc.sc_reads + 1;
        st.(sp) <- Array.unsafe_get arr i
    | Ideref (p, b) ->
        let target = env.pointer_targets.(p) in
        if target < 0 then unknown_pointer env.pointer_names.(p);
        sc.sc_accesses.(b) <- sc.sc_accesses.(b) + 1;
        sc.sc_reads <- sc.sc_reads + 1;
        if Bytes.get env.scalar_bound target = '\000' then
          unknown_scalar env.scalar_names.(target);
        let sp = sc.sc_sp in
        st.(sp) <- env.scalar_vals.(target);
        sc.sc_sp <- sp + 1
    | Ineg ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp) <- -.st.(sp)
    | Inot ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp) <- (if st.(sp) = 0.0 then 1.0 else 0.0)
    | Iabs ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp) <- abs_float st.(sp)
    | Isqrt ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp) <- sqrt st.(sp)
    | Ifloor ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp) <- floor st.(sp)
    | Iadd ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- st.(sp - 1) +. st.(sp);
        sc.sc_sp <- sp
    | Isub ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- st.(sp - 1) -. st.(sp);
        sc.sc_sp <- sp
    | Imul ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- st.(sp - 1) *. st.(sp);
        sc.sc_sp <- sp
    | Idiv ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- st.(sp - 1) /. st.(sp);
        sc.sc_sp <- sp
    | Imod ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- Float.rem st.(sp - 1) st.(sp);
        sc.sc_sp <- sp
    | Imin ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- Float.min st.(sp - 1) st.(sp);
        sc.sc_sp <- sp
    | Imax ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- Float.max st.(sp - 1) st.(sp);
        sc.sc_sp <- sp
    | Ieq ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) = st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
    | Ine ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) <> st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
    | Ilt ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) < st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
    | Ile ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) <= st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
    | Igt ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) > st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
    | Ige ->
        let sp = sc.sc_sp - 1 in
        sc.sc_flops <- sc.sc_flops + 1;
        st.(sp - 1) <- (if st.(sp - 1) >= st.(sp) then 1.0 else 0.0);
        sc.sc_sp <- sp
  done

let exec_stmt env sc (s : cstmt) =
  match s with
  | Cassign (slot, code) ->
      exec_code env sc code;
      env.scalar_vals.(slot) <- sc.sc_stack.(0);
      Bytes.set env.scalar_bound slot '\001'
  | Cstore (a, b, code) ->
      exec_code env sc code;
      if Bytes.get env.array_bound a = '\000' then unknown_array env.array_names.(a);
      let arr = env.array_vals.(a) in
      let i_float = sc.sc_stack.(0) in
      let i = int_of_float i_float in
      if i_float < 0.0 || i >= Array.length arr then
        oob_index env.array_names.(a) i_float (Array.length arr) "write";
      sc.sc_accesses.(b) <- sc.sc_accesses.(b) + 1;
      sc.sc_writes <- sc.sc_writes + 1;
      Array.unsafe_set arr i sc.sc_stack.(1)
  | Cptr_store (p, b, code) ->
      exec_code env sc code;
      let target = env.pointer_targets.(p) in
      if target < 0 then unknown_pointer env.pointer_names.(p);
      sc.sc_writes <- sc.sc_writes + 1;
      sc.sc_accesses.(b) <- sc.sc_accesses.(b) + 1;
      env.scalar_vals.(target) <- sc.sc_stack.(0);
      Bytes.set env.scalar_bound target '\001'
  | Cptr_set (p, v) -> env.pointer_targets.(p) <- v
  | Ccall_impure -> sc.sc_calls <- sc.sc_calls + 1

let step_limit name max_steps =
  raise (Step_limit_exceeded (Printf.sprintf "%s: > %d block entries" name max_steps))

let rec exec_block cp env sc max_steps id =
  sc.sc_steps <- sc.sc_steps + 1;
  if sc.sc_steps > max_steps then step_limit cp.cp_name max_steps;
  sc.sc_block_counts.(id) <- sc.sc_block_counts.(id) + 1;
  let b = cp.cp_blocks.(id) in
  let stmts = b.c_stmts in
  for i = 0 to Array.length stmts - 1 do
    exec_stmt env sc (Array.unsafe_get stmts i)
  done;
  match b.c_term with
  | Cgoto next -> exec_block cp env sc max_steps next
  | Cbranch (code, if_true, if_false) ->
      (* the comparison itself was charged by its Cmp instruction; the
         branch decision adds no flop (the old double charge is gone) *)
      exec_code env sc code;
      exec_block cp env sc max_steps (if sc.sc_stack.(0) <> 0.0 then if_true else if_false)
  | Cexit -> ()

let run_compiled ?(max_steps = 10_000_000) cp sc =
  Array.fill sc.sc_block_counts 0 (Array.length sc.sc_block_counts) 0;
  Array.fill sc.sc_accesses 0 (Array.length sc.sc_accesses) 0;
  sc.sc_reads <- 0;
  sc.sc_writes <- 0;
  sc.sc_flops <- 0;
  sc.sc_calls <- 0;
  sc.sc_sp <- 0;
  sc.sc_steps <- 0;
  exec_block cp cp.cp_env sc max_steps cp.cp_entry

let scratch_steps sc = Array.fold_left ( + ) 0 sc.sc_block_counts

(* Snapshot a scratch into a fresh result.  Accesses are emitted in
   ascending base-name order — a deterministic, documented ordering
   (the hashtable fold it replaces surfaced them in unspecified order). *)
let result_of_scratch cp sc =
  let accesses = ref [] in
  for k = Array.length cp.cp_base_order - 1 downto 0 do
    let b = cp.cp_base_order.(k) in
    if sc.sc_accesses.(b) > 0 then
      accesses := (cp.cp_base_names.(b), sc.sc_accesses.(b)) :: !accesses
  done;
  {
    block_counts = Array.copy sc.sc_block_counts;
    mem_reads = sc.sc_reads;
    mem_writes = sc.sc_writes;
    flops = sc.sc_flops;
    array_accesses = !accesses;
    impure_calls = sc.sc_calls;
  }

let run ?max_steps (cfg : Cfg.t) env =
  let cp = compile cfg env in
  let sc = make_scratch cp in
  run_compiled ?max_steps cp sc;
  result_of_scratch cp sc

(* ------------------------------------------------------------------ *)
(* Uncounted evaluation (compat)                                       *)
(* ------------------------------------------------------------------ *)

let deref_target env p = get_pointer env p

let rec eval env e =
  match e with
  | Types.Const k -> k
  | Types.Var v -> get_scalar env v
  | Types.Index (a, sub) ->
      let i_float = eval env sub in
      let arr = get_array env a in
      let i = int_of_float i_float in
      if i_float < 0.0 || i >= Array.length arr then
        oob_index a i_float (Array.length arr) "read";
      arr.(i)
  | Types.Deref p -> get_scalar env (deref_target env p)
  | Types.Unop (op, e) -> Expr.apply_unop op (eval env e)
  | Types.Binop (op, a, b) ->
      let x = eval env a in
      let y = eval env b in
      Expr.apply_binop op x y
  | Types.Cmp (op, a, b) ->
      let x = eval env a in
      let y = eval env b in
      Expr.apply_cmp op x y

let read_source env = function
  | Expr.Scalar v -> get_scalar env v
  | Expr.Array_elem (a, Some k) ->
      let arr = get_array env a in
      if k < 0 || k >= Array.length arr then
        raise (Out_of_bounds (Printf.sprintf "%s[%d] (context read)" a k));
      arr.(k)
  | Expr.Array_elem (a, None) ->
      raise (Out_of_bounds (Printf.sprintf "%s[non-constant] is not a context source" a))
  | Expr.Pointer_deref p -> get_scalar env (deref_target env p)

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)
(* ------------------------------------------------------------------ *)

(* The original string-keyed hashtable interpreter, kept as the
   executable specification the compiled path is differentially tested
   against (see test/test_compile.ml).  It carries the same three bug
   fixes as the compiled path: negative fractional indices raise, access
   lists are name-sorted, and a branch charges no flop beyond its
   comparison. *)
module Reference = struct
  type renv = {
    scalars : (string, float) Hashtbl.t;
    arrays : (string, float array) Hashtbl.t;
    pointers : (string, string) Hashtbl.t;
  }

  let make_env (ts : Types.ts) =
    let scalars = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace scalars v 0.0) ts.params;
    List.iter (fun v -> Hashtbl.replace scalars v 0.0) ts.locals;
    let arrays = Hashtbl.create 8 in
    List.iter (fun (a, n) -> Hashtbl.replace arrays a (Array.make n 0.0)) ts.arrays;
    let pointers = Hashtbl.create 4 in
    List.iter (fun (p, target) -> Hashtbl.replace pointers p target) ts.pointers;
    { scalars; arrays; pointers }

  let set_scalar env v x = Hashtbl.replace env.scalars v x

  let get_scalar env v =
    match Hashtbl.find_opt env.scalars v with Some x -> x | None -> unknown_scalar v

  let set_array env a x = Hashtbl.replace env.arrays a x

  let get_array env a =
    match Hashtbl.find_opt env.arrays a with Some x -> x | None -> unknown_array a

  let get_pointer env p =
    match Hashtbl.find_opt env.pointers p with Some t -> t | None -> unknown_pointer p

  type counters = {
    mutable reads : int;
    mutable writes : int;
    mutable flops : int;
    mutable calls : int;
    accesses : (string, int) Hashtbl.t;
  }

  let touch counters base =
    Hashtbl.replace counters.accesses base
      (1 + Option.value ~default:0 (Hashtbl.find_opt counters.accesses base))

  let array_ref env counters a i_float context =
    let arr = get_array env a in
    let i = int_of_float i_float in
    if i_float < 0.0 || i >= Array.length arr then
      oob_index a i_float (Array.length arr) context;
    touch counters a;
    (arr, i)

  let rec eval_counted env counters e =
    match e with
    | Types.Const k -> k
    | Types.Var v -> get_scalar env v
    | Types.Index (a, sub) ->
        let i = eval_counted env counters sub in
        let arr, idx = array_ref env counters a i "read" in
        counters.reads <- counters.reads + 1;
        arr.(idx)
    | Types.Deref p ->
        let target = get_pointer env p in
        counters.reads <- counters.reads + 1;
        touch counters p;
        get_scalar env target
    | Types.Unop (op, e) ->
        counters.flops <- counters.flops + 1;
        Expr.apply_unop op (eval_counted env counters e)
    | Types.Binop (op, a, b) ->
        let x = eval_counted env counters a in
        let y = eval_counted env counters b in
        counters.flops <- counters.flops + 1;
        Expr.apply_binop op x y
    | Types.Cmp (op, a, b) ->
        let x = eval_counted env counters a in
        let y = eval_counted env counters b in
        counters.flops <- counters.flops + 1;
        Expr.apply_cmp op x y

  let run ?(max_steps = 10_000_000) (cfg : Cfg.t) env =
    let counters =
      { reads = 0; writes = 0; flops = 0; calls = 0; accesses = Hashtbl.create 8 }
    in
    let n = Cfg.n_blocks cfg in
    let block_counts = Array.make n 0 in
    let steps = ref 0 in
    let exec_simple (s : Cfg.simple) =
      match s with
      | SAssign (x, e) -> set_scalar env x (eval_counted env counters e)
      | SStore (a, i, e) ->
          let idx_v = eval_counted env counters i in
          let value = eval_counted env counters e in
          let arr, idx = array_ref env counters a idx_v "write" in
          counters.writes <- counters.writes + 1;
          arr.(idx) <- value
      | SPtrStore (p, e) ->
          let value = eval_counted env counters e in
          let target = get_pointer env p in
          counters.writes <- counters.writes + 1;
          touch counters p;
          set_scalar env target value
      | SPtrSet (p, v) -> Hashtbl.replace env.pointers p v
      | SCall f ->
          if not (Types.is_pure_external f) then counters.calls <- counters.calls + 1
    in
    let rec go id =
      incr steps;
      if !steps > max_steps then step_limit cfg.ts.name max_steps;
      block_counts.(id) <- block_counts.(id) + 1;
      let b = Cfg.block cfg id in
      Array.iter exec_simple b.stmts;
      match b.term with
      | Goto next -> go next
      | Branch (c, if_true, if_false) ->
          go (if eval_counted env counters c <> 0.0 then if_true else if_false)
      | Exit -> ()
    in
    go cfg.entry;
    {
      block_counts;
      mem_reads = counters.reads;
      mem_writes = counters.writes;
      flops = counters.flops;
      array_accesses =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters.accesses []);
      impure_calls = counters.calls;
    }
end
