(** Static per-block features.

    The compiler substrate prices a code version by transforming these
    features under a set of optimization flags and mapping the result to
    cycles on a machine description.  The features are exactly the
    block-level quantities classic scalar optimizations act on: ALU and
    multiply/divide counts, memory references, redundant subexpressions
    (targets for CSE/GCSE), live scalar pressure (register allocation and
    the strict-aliasing interaction of Section 5.2), distinct memory
    bases (alias analysis), branchiness and loop nesting (if-conversion,
    unrolling, scheduling). *)

type block = {
  alu : int;  (** Additive/compare/logical operations. *)
  muldiv : int;  (** Multiplies, divides, modulo. *)
  transcendental : int;  (** sqrt and pure external calls. *)
  mem_read : int;
  mem_write : int;
  redundancy : int;
      (** Occurrences of repeated nontrivial subexpressions within the
          block — the opportunity count for (G)CSE. *)
  pressure : int;
      (** Register-pressure proxy: distinct scalars + distinct memory
          bases (base addresses occupy registers) + the deepest
          expression tree (Sethi–Ullman temporaries). *)
  bases : string list;  (** Distinct arrays/pointers accessed. *)
  pointer_bases : string list;
      (** The subset of [bases] accessed through pointers — the C-style
          ambiguity that strict aliasing disambiguates at a live-range
          cost (Section 5.2). *)
  has_branch : bool;
  loop_depth : int;
  is_loop_header : bool;
  impure_calls : int;
}

type ts = {
  blocks : block array;  (** Indexed by CFG block id. *)
  max_pressure : int;
  alias_pairs : int;
      (** Pairs of distinct memory bases co-accessed in some block: each is
          an ambiguity that alias-analysis-dependent flags must respect. *)
  n_loops : int;
}

val of_cfg : Cfg.t -> ts

val empty_block : block
(** All-zero feature vector (identity for accumulation). *)

val vector_dims : string list
(** Names of the components of {!vector}, in order. *)

val vector : ts -> float array
(** Whole-TS static summary vector (block/loop counts, operation
    totals, pressure and aliasing summaries, branch and pointer-access
    shares) used for cross-program similarity in the knowledge base.
    Every component is finite by construction; length equals
    [List.length vector_dims]. *)
