(** Counting interpreter.

    One [run] is one invocation of the tuning section under a concrete
    context.  The interpreter executes the CFG against a mutable
    environment and records, per basic block, how many times the block
    was entered — the [C_b] counts of the paper's Eq. 1 — plus dynamic
    memory/arithmetic tallies used by the machine cost model.  Version
    timing never re-executes the interpreter per version: a code
    version's simulated time is a function of these counts and the
    version's per-block cycle table, which is what makes full Figure-7
    sweeps tractable.

    The environment interns names into integer slots; the hot path
    ([compile] + [run_compiled] on a reused {!scratch}) executes
    slot-resolved instruction arrays and performs no allocation in the
    steady state.  The string-keyed accessors below are a thin
    compatibility layer over the slot tables. *)

type env
(** Mutable execution environment: scalar values, array storage, and
    pointer targets, keyed by interned name slots.  A write to an
    undeclared name creates the binding (matching [Hashtbl.replace]
    semantics the original environment had); a read of a name never
    written raises {!Out_of_bounds}. *)

type result = {
  block_counts : int array;  (** Entry count per CFG block id. *)
  mem_reads : int;
  mem_writes : int;
  flops : int;
  array_accesses : (string * int) list;
      (** Accesses per array/pointee base, sorted by base name. *)
  impure_calls : int;
}

exception Out_of_bounds of string
(** Raised on an array access outside the declared extent. *)

exception Step_limit_exceeded of string

val make_env : Types.ts -> env
(** Environment with params/locals at 0.0, arrays zero-filled at their
    declared sizes, pointers at their declared pointees. *)

val copy_env : env -> env
(** Deep copy (used by RBR's save/restore and by tests). *)

val env_equal : env -> env -> bool
(** Name-keyed equality of the bound bindings of two environments
    (slot layouts may differ; only visible state is compared). *)

val set_scalar : env -> string -> float -> unit
val get_scalar : env -> string -> float
val set_array : env -> string -> float array -> unit
val get_array : env -> string -> float array

val set_pointer : env -> string -> string -> unit
(** [set_pointer env p target] retargets pointer [p] at scalar [target]. *)

val get_pointer : env -> string -> string
(** Current target scalar of a pointer; raises {!Out_of_bounds} on an
    unbound pointer. *)

val read_source : env -> Expr.source -> float
(** Current value of a context-variable source (scalar, constant-subscript
    array element, or pointer dereference). *)

(** {1 Compiled execution — the zero-allocation hot path} *)

type compiled
(** A CFG lowered to slot-resolved instruction arrays, bound to the
    specific environment it was compiled against (compilation interns
    every name the CFG mentions into that environment). *)

type scratch
(** Preallocated per-invocation state: operand stack and counter
    accumulators.  Reusing one scratch across invocations is what makes
    the steady-state loop allocation-free.  Not domain-safe — use one
    scratch per domain. *)

val compile : Cfg.t -> env -> compiled
val make_scratch : compiled -> scratch

val run_compiled : ?max_steps:int -> compiled -> scratch -> unit
(** Execute one invocation, mutating the compiled-against environment
    and accumulating counts into [scratch] (reset on entry).  Allocates
    nothing on the non-raising path.  [max_steps] (default 10e6 block
    transitions) guards against non-terminating sections. *)

val scratch_steps : scratch -> int
(** Total block entries recorded by the last [run_compiled]. *)

val result_of_scratch : compiled -> scratch -> result
(** Fresh {!result} snapshot of the scratch counters ([array_accesses]
    sorted by base name). *)

val run : ?max_steps:int -> Cfg.t -> env -> result
(** Compatibility one-shot: [compile] + [run_compiled] + snapshot.
    Prefer the compiled API when invoking the same section repeatedly. *)

val eval : env -> Types.expr -> float
(** Expression evaluation against the environment (exposed for tests). *)

(** {1 Reference interpreter}

    The original string-keyed hashtable interpreter, kept as the
    executable specification that the compiled path is differentially
    tested against (test/test_compile.ml).  It shares the three
    accounting fixes: negative fractional indices raise, access lists
    are name-sorted, and a branch charges no flop beyond its
    comparison's. *)
module Reference : sig
  type renv = {
    scalars : (string, float) Hashtbl.t;
    arrays : (string, float array) Hashtbl.t;
    pointers : (string, string) Hashtbl.t;
  }

  val make_env : Types.ts -> renv
  val set_scalar : renv -> string -> float -> unit
  val get_scalar : renv -> string -> float
  val set_array : renv -> string -> float array -> unit
  val get_array : renv -> string -> float array
  val get_pointer : renv -> string -> string
  val run : ?max_steps:int -> Cfg.t -> renv -> result
end
