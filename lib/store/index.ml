open Peak_compiler

type key = {
  k_benchmark : string;
  k_machine : string;
  k_method : string;
  k_config : string;
  k_ctx : string;
}

type entry = {
  key : key;
  session : string;
  config : Optconfig.t;
  eval : float;
  used : Codec.consumption;
}

type t = (key, entry) Hashtbl.t

let create () : t = Hashtbl.create 256
let add t e = Hashtbl.replace t e.key e
let size = Hashtbl.length

let compare_keys a b =
  let c = String.compare a.k_benchmark b.k_benchmark in
  if c <> 0 then c
  else
    let c = String.compare a.k_machine b.k_machine in
    if c <> 0 then c
    else
      let c = String.compare a.k_method b.k_method in
      if c <> 0 then c
      else
        let c = String.compare a.k_config b.k_config in
        if c <> 0 then c else String.compare a.k_ctx b.k_ctx

let sorted_entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t []
  |> List.sort (fun a b -> compare_keys a.key b.key)

let fold f t init = List.fold_left (fun acc e -> f e acc) init (sorted_entries t)

let ( let* ) r f = Result.bind r f

let entry_to_json e =
  Json.Obj
    [
      ("benchmark", Json.String e.key.k_benchmark);
      ("machine", Json.String e.key.k_machine);
      ("method", Json.String e.key.k_method);
      ("ctx", Json.String e.key.k_ctx);
      ("session", Json.String e.session);
      ("config", Codec.optconfig_to_json e.config);
      ("eval", Codec.float_to_json e.eval);
      ("inv", Json.Int e.used.Codec.c_invocations);
      ("passes", Json.Int e.used.Codec.c_passes);
      ("cycles", Codec.float_to_json e.used.Codec.c_cycles);
    ]

let entry_of_json v =
  let* k_benchmark = Json.get_str "benchmark" v in
  let* k_machine = Json.get_str "machine" v in
  let* k_method = Json.get_str "method" v in
  let* k_ctx = Json.get_str "ctx" v in
  let* session = Json.get_str "session" v in
  let* cj = Json.member "config" v in
  let* config = Codec.optconfig_of_json cj in
  let* eval = Result.bind (Json.member "eval" v) Codec.float_of_json in
  (* a non-finite eval here would poison every warm-start
     nearest-neighbor distance computed against it; the gc never writes
     one (failed ratings are filtered), so reading one back means a
     corrupted or hand-edited index *)
  let* () =
    if Float.is_finite eval then Ok ()
    else Error "member \"eval\": non-finite rating in index entry"
  in
  let* c_invocations = Json.get_int "inv" v in
  let* c_passes = Json.get_int "passes" v in
  let* c_cycles = Result.bind (Json.member "cycles" v) Codec.float_of_json in
  let* () =
    if Float.is_finite c_cycles then Ok ()
    else Error "member \"cycles\": non-finite cycle count in index entry"
  in
  Ok
    {
      key =
        {
          k_benchmark;
          k_machine;
          k_method;
          k_config = Optconfig.digest config;
          k_ctx;
        };
      session;
      config;
      eval;
      used = { Codec.c_invocations; c_passes; c_cycles };
    }

let to_json t =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("t", Json.String "index");
      ("entries", Json.List (List.map entry_to_json (sorted_entries t)));
    ]

let of_json v =
  let* n = Json.get_int "v" v in
  if n > Codec.version then
    Error (Printf.sprintf "index format v%d is newer than v%d" n Codec.version)
  else
    let* items = Json.get_list "entries" v in
    let t = create () in
    let* () =
      List.fold_left
        (fun acc item ->
          let* () = acc in
          match entry_of_json item with
          | Ok e ->
              add t e;
              Ok ()
          | Error _ when n < 4 ->
              (* pre-v4 indexes could legitimately contain entries the
                 tightened rules now reject (e.g. a non-finite eval from
                 an old failed rating); skip them — warm start simply
                 loses those proposals *)
              Ok ()
          | Error _ as e -> e)
        (Ok ()) items
    in
    Ok t

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* v = Json.of_string content in
    of_json v
