open Peak_compiler

type row = {
  rw_benchmark : string;
  rw_machine : string;
  rw_features : float array;
  rw_config : Optconfig.t;
  rw_speedup : float;
  rw_samples : int;
}

type t = { kb_rows : row list }  (* canonical (benchmark, machine, digest) order *)

let empty = { kb_rows = [] }
let size t = List.length t.kb_rows
let rows t = t.kb_rows

let programs t =
  List.sort_uniq compare (List.map (fun r -> (r.rw_benchmark, r.rw_machine)) t.kb_rows)

let finite_vector v = Array.for_all Float.is_finite v

(* Canonicalization.  Contributions sharing a (benchmark, machine,
   config digest) key merge into one row; the fold runs in a sorted
   order on both the keys and the contributions within a key, so the
   floating-point sums — and therefore the result — are independent of
   input order. *)
let of_rows contribs =
  let contribs =
    List.map
      (fun r ->
        if not (finite_vector r.rw_features) then
          invalid_arg "Kb.of_rows: non-finite feature";
        if not (Float.is_finite r.rw_speedup && r.rw_speedup > 0.0) then
          invalid_arg "Kb.of_rows: speedup must be finite and positive";
        if r.rw_samples < 1 then invalid_arg "Kb.of_rows: samples must be >= 1";
        {
          r with
          rw_benchmark = String.lowercase_ascii r.rw_benchmark;
          rw_machine = String.lowercase_ascii r.rw_machine;
        })
      contribs
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = (r.rw_benchmark, r.rw_machine, Optconfig.digest r.rw_config) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (r :: prev))
    contribs;
  let merged =
    Hashtbl.fold (fun key rs acc -> (key, rs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (_, rs) ->
           let rs =
             List.sort
               (fun a b ->
                 let c = Float.compare a.rw_speedup b.rw_speedup in
                 if c <> 0 then c
                 else
                   let c = compare a.rw_samples b.rw_samples in
                   if c <> 0 then c else compare a.rw_features b.rw_features)
               rs
           in
           let first = List.hd rs in
           let samples = List.fold_left (fun acc r -> acc + r.rw_samples) 0 rs in
           let weighted =
             List.fold_left
               (fun acc r -> acc +. (float_of_int r.rw_samples *. r.rw_speedup))
               0.0 rs
           in
           {
             first with
             rw_speedup = weighted /. float_of_int samples;
             rw_samples = samples;
           })
  in
  { kb_rows = merged }

let merge ts = of_rows (List.concat_map rows ts)

(* The trajectory records each accepted step's relative gain g vs the
   previous incumbent (candidate time = (1 - g) x incumbent time), so
   the whole-session speedup vs the start is the inverse product of the
   residuals.  An empty trajectory is a session that never improved on
   its start: speedup 1. *)
let speedup_of_result (r : Codec.session_result) =
  let residual =
    List.fold_left (fun acc (_, g) -> acc *. (1.0 -. g)) 1.0 r.Codec.r_trajectory
  in
  if Float.is_finite residual && residual > 0.0 then begin
    let s = 1.0 /. residual in
    if Float.is_finite s && s > 0.0 then Some s else None
  end
  else None

let of_sessions ~features infos =
  let contribs =
    List.filter_map
      (fun (i : Session.info) ->
        match i.Session.info_result with
        | None -> None
        | Some r -> (
            let benchmark =
              String.lowercase_ascii i.Session.info_meta.Codec.m_benchmark
            in
            let machine = String.lowercase_ascii i.Session.info_meta.Codec.m_machine in
            match speedup_of_result r with
            | None -> None
            | Some speedup -> (
                match features ~benchmark ~machine with
                | Some fv when finite_vector fv ->
                    Some
                      {
                        rw_benchmark = benchmark;
                        rw_machine = machine;
                        rw_features = Array.copy fv;
                        rw_config = r.Codec.r_best;
                        rw_speedup = speedup;
                        rw_samples = 1;
                      }
                | Some _ | None -> None)))
      infos
  in
  of_rows contribs

let build ~dir ~features =
  Result.map (of_sessions ~features) (Session.list ~dir)

(* ------------------------------------------------------------------ *)
(* Recommendation                                                      *)
(* ------------------------------------------------------------------ *)

type recommendation = {
  rec_config : Optconfig.t;
  rec_predicted : float;
  rec_support : int;
  rec_neighbors : (string * float) list;
}

let similarity d = 1.0 /. (1.0 +. d)

let recommend t ~features ~machine ?(k = 8) ?exclude () =
  let machine = String.lowercase_ascii machine in
  let exclude = Option.map String.lowercase_ascii exclude in
  let dims = Array.length features in
  let usable =
    List.filter
      (fun r ->
        Array.length r.rw_features = dims
        && match exclude with Some b -> r.rw_benchmark <> b | None -> true)
      t.kb_rows
  in
  let usable =
    match List.filter (fun r -> r.rw_machine = machine) usable with
    | [] -> usable
    | same_machine -> same_machine
  in
  if usable = [] || k <= 0 then []
  else begin
    (* one representative vector per donor program, in canonical order *)
    let donors =
      List.fold_left
        (fun acc r ->
          match acc with
          | (b, m, _) :: _ when b = r.rw_benchmark && m = r.rw_machine -> acc
          | _ -> (r.rw_benchmark, r.rw_machine, r.rw_features) :: acc)
        [] usable
      |> List.rev
    in
    (* z-score statistics over donor vectors plus the query; a
       zero-variance (or non-finite-σ) dimension carries no signal and
       drops out of the distance rather than dividing by zero *)
    let vectors = features :: List.map (fun (_, _, fv) -> fv) donors in
    let n = List.length vectors in
    let fn = float_of_int n in
    let mean =
      Array.init dims (fun d ->
          List.fold_left (fun acc fv -> acc +. fv.(d)) 0.0 vectors /. fn)
    in
    let sd =
      Array.init dims (fun d ->
          if n < 2 then 0.0
          else
            sqrt
              (List.fold_left
                 (fun acc fv ->
                   let dx = fv.(d) -. mean.(d) in
                   acc +. (dx *. dx))
                 0.0 vectors
              /. float_of_int (n - 1)))
    in
    let active d =
      Float.is_finite sd.(d) && sd.(d) > 0.0 && Float.is_finite features.(d)
    in
    let distance fv =
      let acc = ref 0.0 in
      for d = 0 to dims - 1 do
        if active d && Float.is_finite fv.(d) then begin
          let dz = (features.(d) -. fv.(d)) /. sd.(d) in
          acc := !acc +. (dz *. dz)
        end
      done;
      sqrt !acc
    in
    let nearest =
      List.map (fun (b, m, fv) -> (b, m, distance fv)) donors
      |> List.sort (fun (b1, m1, d1) (b2, m2, d2) ->
             let c = Float.compare d1 d2 in
             if c <> 0 then c
             else
               let c = String.compare b1 b2 in
               if c <> 0 then c else String.compare m1 m2)
      |> List.filteri (fun i _ -> i < k)
    in
    (* each nearest program votes for its rows with similarity x samples *)
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (b, m, d) ->
        let w = similarity d in
        List.iter
          (fun r ->
            if r.rw_benchmark = b && r.rw_machine = m then begin
              let key = Optconfig.digest r.rw_config in
              let config, wsum, wssum, support, nbrs =
                Option.value
                  ~default:(r.rw_config, 0.0, 0.0, 0, [])
                  (Hashtbl.find_opt tbl key)
              in
              let vote = w *. float_of_int r.rw_samples in
              Hashtbl.replace tbl key
                ( config,
                  wsum +. vote,
                  wssum +. (vote *. r.rw_speedup),
                  support + r.rw_samples,
                  (b, d) :: nbrs )
            end)
          usable)
      nearest;
    Hashtbl.fold (fun key v acc -> (key, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (_, (config, wsum, wssum, support, nbrs)) ->
           (* shrink toward speedup 1 with one pseudo-observation so a
              lone distant donor cannot promise its whole win *)
           let predicted = (1.0 +. wssum) /. (1.0 +. wsum) in
           let nbrs =
             List.sort_uniq compare nbrs
             |> List.sort (fun (b1, d1) (b2, d2) ->
                    let c = Float.compare d1 d2 in
                    if c <> 0 then c else String.compare b1 b2)
           in
           { rec_config = config; rec_predicted = predicted; rec_support = support;
             rec_neighbors = nbrs })
    |> List.sort (fun a b ->
           let c = Float.compare b.rec_predicted a.rec_predicted in
           if c <> 0 then c
           else
             let c = compare b.rec_support a.rec_support in
             if c <> 0 then c
             else
               String.compare
                 (Optconfig.digest a.rec_config)
                 (Optconfig.digest b.rec_config))
  end

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let row_to_json r =
  Json.Obj
    [
      ("benchmark", Json.String r.rw_benchmark);
      ("machine", Json.String r.rw_machine);
      ( "features",
        Json.List (List.map Codec.float_to_json (Array.to_list r.rw_features)) );
      ("config", Codec.optconfig_to_json r.rw_config);
      ("speedup", Codec.float_to_json r.rw_speedup);
      ("samples", Json.Int r.rw_samples);
    ]

let row_of_json v =
  let* rw_benchmark = Json.get_str "benchmark" v in
  let* rw_machine = Json.get_str "machine" v in
  let* fj = Json.get_list "features" v in
  let* feats =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* f = Codec.float_of_json x in
        if Float.is_finite f then Ok (f :: acc)
        else Error "member \"features\": non-finite feature in kb row")
      (Ok []) fj
  in
  let rw_features = Array.of_list (List.rev feats) in
  let* cj = Json.member "config" v in
  let* rw_config = Codec.optconfig_of_json cj in
  let* rw_speedup = Result.bind (Json.member "speedup" v) Codec.float_of_json in
  let* () =
    if Float.is_finite rw_speedup && rw_speedup > 0.0 then Ok ()
    else Error "member \"speedup\": speedup must be finite and positive"
  in
  let* rw_samples = Json.get_int "samples" v in
  let* () =
    if rw_samples >= 1 then Ok () else Error "member \"samples\": samples must be >= 1"
  in
  Ok { rw_benchmark; rw_machine; rw_features; rw_config; rw_speedup; rw_samples }

let to_json t =
  Json.Obj
    [
      ("v", Json.Int Codec.version);
      ("t", Json.String "kb");
      ("rows", Json.List (List.map row_to_json t.kb_rows));
    ]

let of_json v =
  let* n = Json.get_int "v" v in
  if n > Codec.version then
    Error (Printf.sprintf "kb format v%d is newer than v%d" n Codec.version)
  else
    let* items = Json.get_list "rows" v in
    let* parsed =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* r = row_of_json item in
          Ok (r :: acc))
        (Ok []) items
    in
    Ok (of_rows (List.rev parsed))

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n');
  Sys.rename tmp path

let load path =
  if not (Sys.file_exists path) then Error (path ^ ": no such knowledge base")
  else begin
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let* v = Json.of_string content in
    Result.map_error (fun e -> path ^ ": " ^ e) (of_json v)
  end

let load_corpus ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (dir ^ ": no such corpus directory")
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    in
    let* kbs =
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          let* kb = load (Filename.concat dir f) in
          Ok (kb :: acc))
        (Ok []) files
    in
    Ok (merge kbs)
  end
