(** Append-only JSONL journal with crash-tolerant reads.

    One JSON document per line.  A writer buffers appends and flushes
    them to the file descriptor in batches, following each batch with an
    [fsync] — so at most [fsync_every - 1] rating events (plus whatever
    the OS already wrote) can be lost to a crash, and a torn write can
    only corrupt the final line.  The reader therefore treats a
    malformed {e last} line as an expected crash artifact (dropped
    silently into the [dropped] count) rather than an error.

    A writer is serialized by an internal mutex: concurrent domains
    (e.g. [-j N] suite runners sharing one store) may call {!append}
    freely and each line lands whole. *)

type t

exception Torn_write
(** Raised by a [?tear]-injected flush after persisting only a prefix
    of the batch — the simulated power cut (see {!open_append}). *)

val open_append : ?fsync_every:int -> ?tear:(flush:int -> size:int -> int option) -> string -> t
(** Open (creating if needed) a journal for appending.  [fsync_every]
    (default 32) is the batch size between fsyncs.

    [tear] is a fault-injection hook consulted at every flush with the
    0-based flush ordinal and the batch size in bytes.  Returning
    [Some n] with [0 <= n < size] simulates a power cut mid-batch: only
    the first [n] bytes are written and fsynced, the descriptor is
    closed, and {!Torn_write} is raised; the journal behaves as closed
    thereafter, so recovery exercises the same {!read} path a real
    crash does.  [None] (and any out-of-range cut) writes normally.
    @raise Sys_error on filesystem failure. *)

val append : t -> Json.t -> unit
(** Append one record as one line.  Thread/domain-safe. *)

val flush : t -> unit
(** Write out and fsync any buffered lines now. *)

val close : t -> unit
(** Flush and close.  Idempotent. *)

val read : string -> Json.t list * int
(** [read path] parses every line of the journal: the decoded records in
    file order, plus the number of malformed lines dropped (a truncated
    crash tail, or — defensively — any corrupt interior line).  A
    missing file reads as [([], 0)]. *)
