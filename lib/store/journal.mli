(** Append-only JSONL journal with crash-tolerant reads.

    One JSON document per line.  A writer buffers appends and flushes
    them to the file descriptor in batches, following each batch with an
    [fsync] — so at most [fsync_every - 1] rating events (plus whatever
    the OS already wrote) can be lost to a crash, and a torn write can
    only corrupt the final line.  The reader therefore treats a
    malformed {e last} line as an expected crash artifact (dropped
    silently into the [dropped] count) rather than an error.

    A writer is serialized by an internal mutex: concurrent domains
    (e.g. [-j N] suite runners sharing one store) may call {!append}
    freely and each line lands whole. *)

type t

val open_append : ?fsync_every:int -> string -> t
(** Open (creating if needed) a journal for appending.  [fsync_every]
    (default 32) is the batch size between fsyncs.
    @raise Sys_error on filesystem failure. *)

val append : t -> Json.t -> unit
(** Append one record as one line.  Thread/domain-safe. *)

val flush : t -> unit
(** Write out and fsync any buffered lines now. *)

val close : t -> unit
(** Flush and close.  Idempotent. *)

val read : string -> Json.t list * int
(** [read path] parses every line of the journal: the decoded records in
    file order, plus the number of malformed lines dropped (a truncated
    crash tail, or — defensively — any corrupt interior line).  A
    missing file reads as [([], 0)]. *)
