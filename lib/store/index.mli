(** Compacted rating index.

    The journals are the write path; this is the read path: one entry
    per [(benchmark, machine, method, config-digest, context-digest)]
    key, built by folding every session journal in order with
    last-write-wins merge — so concurrent [-j N] runners appending
    through the serialized journal writers compact to a deterministic
    table.  [session gc] materializes it as [index.json] at the store
    root. *)

open Peak_compiler

type key = {
  k_benchmark : string;
  k_machine : string;
  k_method : string;
  k_config : string;  (** {!Optconfig.digest} of the rated configuration. *)
  k_ctx : string;  (** Context digest (seed, dataset, params, base, idx). *)
}

type entry = {
  key : key;
  session : string;  (** Session id the winning record came from. *)
  config : Optconfig.t;
  eval : float;
  used : Codec.consumption;
}

type t

val create : unit -> t
val add : t -> entry -> unit
(** Insert or overwrite (last write wins). *)

val size : t -> int
val fold : (entry -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds in sorted key order (deterministic). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : t -> string -> unit
(** Atomic write (temp file + rename).  @raise Sys_error on failure. *)

val load : string -> (t, string) result
(** A missing file loads as an empty index. *)
