open Peak_compiler

type origin = Nearest_neighbor of float | Most_frequent

type proposal = {
  start : Optconfig.t;
  neighbor : string;
  origin : origin;
  sessions : int;
}

let flag_vector c =
  Array.map (fun f -> if Optconfig.is_enabled c f then 1.0 else 0.0) Flags.all

let mean_vector vs =
  let n = List.length vs in
  let acc = Array.make Flags.count 0.0 in
  List.iter (fun v -> Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v) vs;
  Array.map (fun x -> x /. float_of_int n) acc

let distance a b =
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  sqrt !s

(* Completed sessions only, as (benchmark, machine, id, best) rows in
   deterministic (id-sorted, via Session.list) order. *)
let completed_rows infos =
  List.filter_map
    (fun (i : Session.info) ->
      match i.Session.info_result with
      | Some r ->
          Some
            ( String.lowercase_ascii i.Session.info_meta.Codec.m_benchmark,
              String.lowercase_ascii i.Session.info_meta.Codec.m_machine,
              i.Session.info_meta.Codec.m_id,
              r.Codec.r_best )
      | None -> None)
    infos

(* Pick the configuration to transfer from a neighbor: prefer sessions
   on the target machine, then the smallest session id. *)
let config_of_neighbor rows ~neighbor ~machine =
  let own = List.filter (fun (b, _, _, _) -> b = neighbor) rows in
  let preferred =
    match List.filter (fun (_, m, _, _) -> m = machine) own with [] -> own | l -> l
  in
  match preferred with
  | (_, _, _, best) :: _ -> Some best
  | [] -> None

let propose ~dir ~benchmark ~machine =
  match Session.list ~dir with
  | Error e -> Error e
  | Ok infos ->
      let target = String.lowercase_ascii benchmark in
      let machine = String.lowercase_ascii machine in
      let rows = completed_rows infos in
      let others = List.filter (fun (b, _, _, _) -> b <> target) rows in
      if others = [] then Ok None
      else begin
        let signature name =
          match List.filter_map (fun (b, _, _, best) -> if b = name then Some (flag_vector best) else None) rows with
          | [] -> None
          | vs -> Some (mean_vector vs)
        in
        let consulted = List.length rows in
        match signature target with
        | Some target_sig ->
            (* nearest neighbor over benchmark signatures *)
            let names =
              List.sort_uniq String.compare (List.map (fun (b, _, _, _) -> b) others)
            in
            let scored =
              List.filter_map
                (fun name ->
                  Option.map (fun s -> (name, distance target_sig s)) (signature name))
                names
            in
            let best =
              List.fold_left
                (fun acc (name, d) ->
                  match acc with
                  | Some (_, best_d) when best_d <= d -> acc
                  | _ -> Some (name, d))
                None scored
            in
            Ok
              (Option.bind best (fun (neighbor, d) ->
                   Option.map
                     (fun start ->
                       { start; neighbor; origin = Nearest_neighbor d; sessions = consulted })
                     (config_of_neighbor rows ~neighbor ~machine)))
        | None ->
            (* no history for this benchmark: modal best configuration,
               preferring sessions on the target machine *)
            let pool =
              match List.filter (fun (_, m, _, _) -> m = machine) others with
              | [] -> others
              | l -> l
            in
            let counts = Hashtbl.create 16 in
            List.iter
              (fun (_, _, _, best) ->
                let d = Optconfig.digest best in
                Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
              pool;
            let winner =
              (* max count, ties to the smallest digest *)
              Hashtbl.fold (fun d n acc -> (n, d) :: acc) counts []
              |> List.sort (fun (na, da) (nb, db) ->
                     match compare nb na with 0 -> String.compare da db | c -> c)
              |> function
              | [] -> None
              | (_, d) :: _ -> Some d
            in
            Ok
              (Option.bind winner (fun digest ->
                   List.find_opt (fun (_, _, _, best) -> Optconfig.digest best = digest) pool
                   |> Option.map (fun (neighbor, _, _, best) ->
                          { start = best; neighbor; origin = Most_frequent; sessions = consulted })))
      end
