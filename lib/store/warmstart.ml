open Peak_compiler

type origin = Nearest_neighbor of float | Most_frequent

type proposal = {
  start : Optconfig.t;
  neighbor : string;
  origin : origin;
  sessions : int;
}

let flag_vector c =
  Array.map (fun f -> if Optconfig.is_enabled c f then 1.0 else 0.0) Flags.all

let mean_vector vs =
  if vs = [] then invalid_arg "Warmstart.mean_vector: empty sample";
  let n = List.length vs in
  let acc = Array.make Flags.count 0.0 in
  List.iter (fun v -> Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v) vs;
  Array.map (fun x -> x /. float_of_int n) acc

(* Completed sessions only, as (benchmark, machine, id, best) rows in
   deterministic (id-sorted, via Session.list) order. *)
let completed_rows infos =
  List.filter_map
    (fun (i : Session.info) ->
      match i.Session.info_result with
      | Some r ->
          Some
            ( String.lowercase_ascii i.Session.info_meta.Codec.m_benchmark,
              String.lowercase_ascii i.Session.info_meta.Codec.m_machine,
              i.Session.info_meta.Codec.m_id,
              r.Codec.r_best )
      | None -> None)
    infos

let propose ~dir ~benchmark ~machine =
  match Session.list ~dir with
  | Error e -> Error e
  | Ok infos ->
      let target = String.lowercase_ascii benchmark in
      let machine = String.lowercase_ascii machine in
      let rows = completed_rows infos in
      let others = List.filter (fun (b, _, _, _) -> b <> target) rows in
      if others = [] then Ok None
      else begin
        (* a benchmark's signature is the mean best-config flag vector
           of its completed sessions, on any machine *)
        let signature name =
          match
            List.filter_map
              (fun (b, _, _, best) -> if b = name then Some (flag_vector best) else None)
              rows
          with
          | [] -> None
          | vs -> Some (mean_vector vs)
        in
        let consulted = List.length rows in
        match signature target with
        | Some target_sig -> begin
            (* delegate to the knowledge base: donors are the other
               benchmarks, featured by their flag signatures, ranked by
               similarity-weighted recorded speedup — so a neighbor's
               best-performing configuration wins, not its oldest
               session (ties documented in Kb.recommend: larger
               support, then smaller config digest) *)
            let kb =
              Kb.of_sessions
                ~features:(fun ~benchmark ~machine:_ -> signature benchmark)
                infos
            in
            match Kb.recommend kb ~features:target_sig ~machine ~exclude:target () with
            | [] -> Ok None
            | best :: _ ->
                let neighbor, d =
                  match best.Kb.rec_neighbors with
                  | (b, d) :: _ -> (b, d)
                  | [] -> (target, 0.0)
                in
                Ok
                  (Some
                     {
                       start = best.Kb.rec_config;
                       neighbor;
                       origin = Nearest_neighbor d;
                       sessions = consulted;
                     })
          end
        | None ->
            (* no history for this benchmark: modal best configuration,
               preferring sessions on the target machine; ties break on
               the smallest digest, and the named neighbor is the
               earliest (smallest session id) user of the winner *)
            let pool =
              match List.filter (fun (_, m, _, _) -> m = machine) others with
              | [] -> others
              | l -> l
            in
            let counts = Hashtbl.create 16 in
            List.iter
              (fun (_, _, _, best) ->
                let d = Optconfig.digest best in
                Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
              pool;
            let winner =
              Hashtbl.fold (fun d n acc -> (n, d) :: acc) counts []
              |> List.sort (fun (na, da) (nb, db) ->
                     match compare nb na with 0 -> String.compare da db | c -> c)
              |> function
              | [] -> None
              | (_, d) :: _ -> Some d
            in
            Ok
              (Option.bind winner (fun digest ->
                   List.find_opt (fun (_, _, _, best) -> Optconfig.digest best = digest) pool
                   |> Option.map (fun (neighbor, _, _, best) ->
                          { start = best; neighbor; origin = Most_frequent; sessions = consulted })))
      end
