open Peak_compiler

let version = 5

(* Canonical rating-method names — kept in lockstep with
   [Peak.Method.all] (the store sits below the core library in the
   dependency order, so it carries its own mirror; a core-side test
   asserts the two lists match). *)
let method_names = [ "CBR"; "MBR"; "RBR"; "AVG"; "WHL" ]

(* Canonical search-strategy keys — the same mirror arrangement with
   [Peak.Strategy.all] ("random" stands for the parameterized
   "random<n>" family). *)
let search_keys = [ "ie"; "be"; "ce"; "random"; "ff"; "ose"; "staged" ]

let valid_search_key name =
  (* "" is the pre-v5 marker: a v1-v4 result decodes to it, and its
     re-encoded form must keep round-tripping *)
  let fixed = name = "" || List.mem name search_keys in
  let random_n =
    String.length name > 6
    && String.sub name 0 6 = "random"
    && match int_of_string_opt (String.sub name 6 (String.length name - 6)) with
       | Some n -> n > 0
       | None -> false
  in
  if fixed || random_n then Ok name
  else
    Error
      (Printf.sprintf "unknown search strategy %S (valid: %s)" name
         (String.concat ", " search_keys))

let valid_method name =
  if List.mem name method_names then Ok name
  else Error (Printf.sprintf "unknown rating method %S (valid: %s)" name
                (String.concat ", " method_names))

(* Session metadata stores the *requested* method: a lower-case
   canonical name, or "auto" when the consultant chooses. *)
let valid_method_request name =
  if name = "auto" || List.mem name (List.map String.lowercase_ascii method_names) then Ok name
  else
    Error
      (Printf.sprintf "unknown requested rating method %S (valid: auto, %s)" name
         (String.concat ", " (List.map String.lowercase_ascii method_names)))

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let ( let* ) r f = Result.bind r f

(* Every record carries the format version; refuse to decode the
   future.  Decoders that enforce version-dependent rules (v4 numeric
   hygiene) use [checked_version] to learn which version wrote the
   record. *)
let checked_version v =
  match Json.get_int "v" v with
  | Error _ -> Error "missing format version"
  | Ok n when n > version -> Error (Printf.sprintf "store format v%d is newer than v%d" n version)
  | Ok n -> Ok n

(* v4 numeric hygiene: NaN never decodes from a v4+ record, and
   infinities only where a decoder explicitly allows a sentinel (the
   quarantine eval).  Older records decode leniently — they were written
   before the rule existed. *)
let require_finite ~ver key f =
  if ver >= 4 && not (Float.is_finite f) then
    Error (Printf.sprintf "member %S: non-finite value in a v%d record" key ver)
  else Ok f

type rating = {
  eval : float;
  var : float;
  samples : int;
  invocations : int;
  converged : bool;
}

type consumption = { c_invocations : int; c_passes : int; c_cycles : float }

type event = {
  e_method : string;
  e_ctx : string;
  e_base : string;
  e_idx : int;
  e_config : Optconfig.t;
  e_eval : float;
  e_converged : bool;
  e_used : consumption;
  e_fail : string option;
      (* quarantine reason ("crashed", "hung", "wrong-output") when the
         config was condemned rather than rated; [None] for clean ratings *)
  e_retries : int;  (* transient failures absorbed before this outcome *)
}

type session_meta = {
  m_id : string;
  m_benchmark : string;
  m_machine : string;
  m_dataset : string;
  m_search : string;
  m_seed : int;
  m_threshold : float;
  m_params : string;
  m_method : string;
  m_start : Optconfig.t;
  m_faults : string;
      (* serialized fault plan ([Fault.to_string]) or "-" when the
         session ran without injection — resume rebuilds the plan *)
}

type attempt = { at_method : string; at_converged : bool; at_ratings : int }

type method_metrics = { mm_method : string; mm_ratings : int; mm_invocations : int }

type metrics = {
  x_methods : method_metrics list;
  x_quarantined : int;
  x_retries : int;
  x_invocations : int;
  x_cycles : float;
}

type stage = { st_label : string; st_ratings : int; st_flags : int }

type session_result = {
  r_method : string;
  r_strategy : string;
      (* the search strategy's canonical key (v5); "" for decoded v1–v4
         results, whose strategy identity lives only in session_meta *)
  r_stages : stage list;
      (* per-stage rating spend in execution order (v5); [] before *)
  r_attempts : attempt list;
  r_best : Optconfig.t;
  r_ratings : int;
  r_iterations : int;
  r_trajectory : (Optconfig.t * float) list;
  r_tuning_cycles : float;
  r_tuning_seconds : float;
  r_passes : int;
  r_invocations : int;
  r_quarantined : (Optconfig.t * string) list;
      (* condemned configs in submission order, with the reason each
         was condemned *)
  r_retries : int;  (* transient-failure retries absorbed session-wide *)
  r_metrics : metrics option;
      (* deterministic per-method accounting (v4); [None] for decoded
         v1–v3 results *)
}

(* ---------------- floats ---------------- *)

let float_to_json f =
  if Float.is_nan f then Json.String "nan"
  else if f = Float.infinity then Json.String "inf"
  else if f = Float.neg_infinity then Json.String "-inf"
  else Json.Float f

let float_of_json = function
  | Json.String "nan" -> Ok Float.nan
  | Json.String "inf" -> Ok Float.infinity
  | Json.String "-inf" -> Ok Float.neg_infinity
  | v -> Json.to_float v

let get_special_float key v =
  let* m = Json.member key v in
  match float_of_json m with
  | Ok f -> Ok f
  | Error e -> Error (Printf.sprintf "member %S: %s" key e)

(* ---------------- configurations ---------------- *)

let optconfig_to_json c =
  Json.Obj
    [
      ("digest", Json.String (Optconfig.digest c));
      ("flags", Json.List (List.map (fun n -> Json.String n) (Optconfig.canonical_names c)));
    ]

let optconfig_of_json v =
  let* digest = Json.get_str "digest" v in
  let* flag_json = Json.get_list "flags" v in
  let* names =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* n = Json.to_str j in
        Ok (n :: acc))
      (Ok []) flag_json
  in
  let* config =
    match Optconfig.of_names (List.rev names) with
    | c -> Ok c
    | exception Invalid_argument msg -> Error msg
  in
  if Optconfig.digest config <> digest then
    Error
      (Printf.sprintf "configuration digest mismatch (stored %s, recomputed %s)" digest
         (Optconfig.digest config))
  else Ok config

(* ---------------- ratings ---------------- *)

let rating_to_json (r : rating) =
  Json.Obj
    [
      ("v", Json.Int version);
      ("eval", float_to_json r.eval);
      ("var", float_to_json r.var);
      ("samples", Json.Int r.samples);
      ("invocations", Json.Int r.invocations);
      ("converged", Json.Bool r.converged);
    ]

let rating_of_json v =
  let* ver = checked_version v in
  let* eval = Result.bind (get_special_float "eval" v) (require_finite ~ver "eval") in
  let* var = Result.bind (get_special_float "var" v) (require_finite ~ver "var") in
  let* samples = Json.get_int "samples" v in
  let* invocations = Json.get_int "invocations" v in
  let* converged = Json.get_bool "converged" v in
  Ok { eval; var; samples; invocations; converged }

(* ---------------- trajectories ---------------- *)

let trajectory_to_json steps =
  Json.List
    (List.map
       (fun (c, gain) -> Json.Obj [ ("config", optconfig_to_json c); ("gain", float_to_json gain) ])
       steps)

let trajectory_of_json v =
  let* items = Json.to_list v in
  let* steps =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* cj = Json.member "config" item in
        let* c = optconfig_of_json cj in
        let* gain = get_special_float "gain" item in
        Ok ((c, gain) :: acc))
      (Ok []) items
  in
  Ok (List.rev steps)

(* ---------------- rating events (journal lines) ---------------- *)

let event_to_json (e : event) =
  Json.Obj
    ([
       ("v", Json.Int version);
       ("t", Json.String "rating");
       ("method", Json.String e.e_method);
       ("ctx", Json.String e.e_ctx);
       ("base", Json.String e.e_base);
       ("idx", Json.Int e.e_idx);
       ("config", optconfig_to_json e.e_config);
       ("eval", float_to_json e.e_eval);
       ("conv", Json.Bool e.e_converged);
       ("inv", Json.Int e.e_used.c_invocations);
       ("passes", Json.Int e.e_used.c_passes);
       ("cycles", float_to_json e.e_used.c_cycles);
     ]
    @ (match e.e_fail with None -> [] | Some r -> [ ("fail", Json.String r) ])
    @ if e.e_retries = 0 then [] else [ ("retries", Json.Int e.e_retries) ])

let event_of_json v =
  let* ver = checked_version v in
  let* t = Json.get_str "t" v in
  let* () = if t = "rating" then Ok () else Error ("unexpected record type " ^ t) in
  let* e_method = Result.bind (Json.get_str "method" v) valid_method in
  let* e_ctx = Json.get_str "ctx" v in
  let* e_base = Json.get_str "base" v in
  let* e_idx = Json.get_int "idx" v in
  let* cj = Json.member "config" v in
  let* e_config = optconfig_of_json cj in
  let* e_eval = get_special_float "eval" v in
  (* v1 journals predate the convergence flag; it is only consulted for
     fallback probes, which no v1 session ever recorded *)
  let* e_converged =
    match Json.member "conv" v with Error _ -> Ok true | Ok j -> Json.to_bool j
  in
  let* c_invocations = Json.get_int "inv" v in
  let* c_passes = Json.get_int "passes" v in
  let* c_cycles = get_special_float "cycles" v in
  (* v2 journals predate fault tolerance: every recorded rating was
     clean and retry-free *)
  let* e_fail =
    match Json.member "fail" v with
    | Error _ -> Ok None
    | Ok j ->
        let* r = Json.to_str j in
        Ok (Some r)
  in
  let* e_retries = match Json.member "retries" v with Error _ -> Ok 0 | Ok j -> Json.to_int j in
  (* v4 numeric hygiene: a NaN eval is never a valid rating, and an
     infinite one is only the quarantine/no-samples sentinel — it must
     carry a failure reason.  Without this, a hand-edited or corrupted
     journal line could feed a non-finite rating into the index and
     poison warm-start distances. *)
  let* () =
    if ver < 4 then Ok ()
    else if Float.is_nan e_eval then Error "member \"eval\": NaN rating in a v4 record"
    else if (not (Float.is_finite e_eval)) && e_fail = None then
      Error "member \"eval\": infinite rating without a failure reason in a v4 record"
    else Ok ()
  in
  let* c_cycles = require_finite ~ver "cycles" c_cycles in
  Ok
    {
      e_method;
      e_ctx;
      e_base;
      e_idx;
      e_config;
      e_eval;
      e_converged;
      e_used = { c_invocations; c_passes; c_cycles };
      e_fail;
      e_retries;
    }

(* ---------------- session metadata ---------------- *)

let session_meta_to_json (m : session_meta) =
  Json.Obj
    [
      ("v", Json.Int version);
      ("t", Json.String "session");
      ("id", Json.String m.m_id);
      ("benchmark", Json.String m.m_benchmark);
      ("machine", Json.String m.m_machine);
      ("dataset", Json.String m.m_dataset);
      ("search", Json.String m.m_search);
      ("seed", Json.Int m.m_seed);
      ("threshold", float_to_json m.m_threshold);
      ("params", Json.String m.m_params);
      ("method", Json.String m.m_method);
      ("start", optconfig_to_json m.m_start);
      ("faults", Json.String m.m_faults);
    ]

let session_meta_of_json v =
  let* ver = checked_version v in
  let* m_id = Json.get_str "id" v in
  let* m_benchmark = Json.get_str "benchmark" v in
  let* m_machine = Json.get_str "machine" v in
  let* m_dataset = Json.get_str "dataset" v in
  let* m_search = Json.get_str "search" v in
  let* m_seed = Json.get_int "seed" v in
  let* m_threshold =
    Result.bind (get_special_float "threshold" v) (require_finite ~ver "threshold")
  in
  let* m_params = Json.get_str "params" v in
  let* m_method = Result.bind (Json.get_str "method" v) valid_method_request in
  let* sj = Json.member "start" v in
  let* m_start = optconfig_of_json sj in
  (* v2 sessions predate fault injection *)
  let* m_faults =
    match Json.member "faults" v with Error _ -> Ok "-" | Ok j -> Json.to_str j
  in
  Ok
    {
      m_id;
      m_benchmark;
      m_machine;
      m_dataset;
      m_search;
      m_seed;
      m_threshold;
      m_params;
      m_method;
      m_start;
      m_faults;
    }

(* ---------------- session results ---------------- *)

let attempt_to_json (a : attempt) =
  Json.Obj
    [
      ("method", Json.String a.at_method);
      ("converged", Json.Bool a.at_converged);
      ("ratings", Json.Int a.at_ratings);
    ]

let attempt_of_json v =
  let* at_method = Result.bind (Json.get_str "method" v) valid_method in
  let* at_converged = Json.get_bool "converged" v in
  let* at_ratings = Json.get_int "ratings" v in
  Ok { at_method; at_converged; at_ratings }

let metrics_to_json (x : metrics) =
  Json.Obj
    [
      ( "methods",
        Json.List
          (List.map
             (fun mm ->
               Json.Obj
                 [
                   ("method", Json.String mm.mm_method);
                   ("ratings", Json.Int mm.mm_ratings);
                   ("invocations", Json.Int mm.mm_invocations);
                 ])
             x.x_methods) );
      ("quarantined", Json.Int x.x_quarantined);
      ("retries", Json.Int x.x_retries);
      ("invocations", Json.Int x.x_invocations);
      ("cycles", float_to_json x.x_cycles);
    ]

let metrics_of_json v =
  let* mj = Json.get_list "methods" v in
  let* methods =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* mm_method = Result.bind (Json.get_str "method" item) valid_method in
        let* mm_ratings = Json.get_int "ratings" item in
        let* mm_invocations = Json.get_int "invocations" item in
        Ok ({ mm_method; mm_ratings; mm_invocations } :: acc))
      (Ok []) mj
  in
  let* x_quarantined = Json.get_int "quarantined" v in
  let* x_retries = Json.get_int "retries" v in
  let* x_invocations = Json.get_int "invocations" v in
  let* x_cycles =
    Result.bind (get_special_float "cycles" v) (require_finite ~ver:version "cycles")
  in
  Ok { x_methods = List.rev methods; x_quarantined; x_retries; x_invocations; x_cycles }

let stage_to_json (s : stage) =
  Json.Obj
    [
      ("label", Json.String s.st_label);
      ("ratings", Json.Int s.st_ratings);
      ("flags", Json.Int s.st_flags);
    ]

let stage_of_json v =
  let* st_label = Json.get_str "label" v in
  let* st_ratings = Json.get_int "ratings" v in
  let* st_flags = Json.get_int "flags" v in
  Ok { st_label; st_ratings; st_flags }

let session_result_to_json (r : session_result) =
  Json.Obj
    ([
       ("v", Json.Int version);
       ("t", Json.String "result");
       ("method", Json.String r.r_method);
       ("strategy", Json.String r.r_strategy);
       ("stages", Json.List (List.map stage_to_json r.r_stages));
       ("attempts", Json.List (List.map attempt_to_json r.r_attempts));
       ("best", optconfig_to_json r.r_best);
       ("ratings", Json.Int r.r_ratings);
       ("iterations", Json.Int r.r_iterations);
       ("trajectory", trajectory_to_json r.r_trajectory);
       ("tuning_cycles", float_to_json r.r_tuning_cycles);
       ("tuning_seconds", float_to_json r.r_tuning_seconds);
       ("passes", Json.Int r.r_passes);
       ("invocations", Json.Int r.r_invocations);
       ( "quarantined",
         Json.List
           (List.map
              (fun (c, reason) ->
                Json.Obj [ ("config", optconfig_to_json c); ("reason", Json.String reason) ])
              r.r_quarantined) );
       ("retries", Json.Int r.r_retries);
     ]
    @ match r.r_metrics with None -> [] | Some x -> [ ("metrics", metrics_to_json x) ])

let session_result_of_json v =
  let* ver = checked_version v in
  let* r_method = Result.bind (Json.get_str "method" v) valid_method in
  (* v1–v4 results predate first-class strategy identity *)
  let* r_strategy =
    match Json.member "strategy" v with
    | Error _ -> Ok ""
    | Ok j -> Result.bind (Json.to_str j) valid_search_key
  in
  let* r_stages =
    match Json.member "stages" v with
    | Error _ -> Ok []
    | Ok j ->
        let* items = Json.to_list j in
        let* stages =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* s = stage_of_json item in
              Ok (s :: acc))
            (Ok []) items
        in
        Ok (List.rev stages)
  in
  (* v1 results predate the attempted-method chain *)
  let* r_attempts =
    match Json.member "attempts" v with
    | Error _ -> Ok []
    | Ok j ->
        let* items = Json.to_list j in
        let* attempts =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* a = attempt_of_json item in
              Ok (a :: acc))
            (Ok []) items
        in
        Ok (List.rev attempts)
  in
  let* bj = Json.member "best" v in
  let* r_best = optconfig_of_json bj in
  let* r_ratings = Json.get_int "ratings" v in
  let* r_iterations = Json.get_int "iterations" v in
  let* tj = Json.member "trajectory" v in
  let* r_trajectory = trajectory_of_json tj in
  let* () =
    if ver < 4 || List.for_all (fun (_, g) -> Float.is_finite g) r_trajectory then Ok ()
    else Error "member \"trajectory\": non-finite gain in a v4 record"
  in
  let* r_tuning_cycles =
    Result.bind (get_special_float "tuning_cycles" v) (require_finite ~ver "tuning_cycles")
  in
  let* r_tuning_seconds =
    Result.bind (get_special_float "tuning_seconds" v) (require_finite ~ver "tuning_seconds")
  in
  let* r_passes = Json.get_int "passes" v in
  let* r_invocations = Json.get_int "invocations" v in
  (* v2 results predate quarantine bookkeeping *)
  let* r_quarantined =
    match Json.member "quarantined" v with
    | Error _ -> Ok []
    | Ok j ->
        let* items = Json.to_list j in
        let* qs =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* cj = Json.member "config" item in
              let* c = optconfig_of_json cj in
              let* reason = Json.get_str "reason" item in
              Ok ((c, reason) :: acc))
            (Ok []) items
        in
        Ok (List.rev qs)
  in
  let* r_retries = match Json.member "retries" v with Error _ -> Ok 0 | Ok j -> Json.to_int j in
  (* v3 results predate the metrics block *)
  let* r_metrics =
    match Json.member "metrics" v with
    | Error _ -> Ok None
    | Ok j ->
        let* x = metrics_of_json j in
        Ok (Some x)
  in
  Ok
    {
      r_method;
      r_strategy;
      r_stages;
      r_attempts;
      r_best;
      r_ratings;
      r_iterations;
      r_trajectory;
      r_tuning_cycles;
      r_tuning_seconds;
      r_passes;
      r_invocations;
      r_quarantined;
      r_retries;
      r_metrics;
    }
