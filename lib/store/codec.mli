(** Canonical, versioned serialization for everything the persistent
    tuning store holds.

    Every record carries a format version ([v]); decoders reject
    versions newer than {!version} with a one-line error instead of
    misreading them.  Floats round-trip exactly ([%.17g]), which is a
    prerequisite for replayed (resumed) tuning sessions being
    bit-identical to uninterrupted ones; non-finite floats are encoded
    as the strings ["nan"] / ["inf"] / ["-inf"].

    Configurations serialize as their sorted enabled-flag names plus
    their stable {!Peak_compiler.Optconfig.digest}; the decoder
    recomputes the digest and fails on a mismatch, so a store written
    against a different flag table is detected rather than silently
    reinterpreted. *)

open Peak_compiler

val version : int
(** Current store format version (5).  v2 added the per-event
    convergence flag and the session result's attempted-method chain;
    v1 records decode with [converged = true] and an empty chain.  v3
    added fault-tolerance bookkeeping: per-event quarantine reason and
    retry count, the session result's quarantine list and retry total,
    and the session metadata's serialized fault plan; v2 records decode
    with no failures, no retries, and no fault plan (["-"]).  v4 added
    the session result's deterministic {!metrics} block (v3 results
    decode with [r_metrics = None]) and tightened numeric hygiene: in a
    v4+ record a NaN eval, threshold, cycle count or trajectory gain is
    a decode error, and an infinite event eval is only accepted as the
    quarantine/no-samples sentinel (it must carry a failure reason).
    v1–v3 records keep decoding leniently.  v5 added first-class search
    strategy identity to the session result ([r_strategy] + the
    per-stage [r_stages] spend); v1–v4 results decode with
    [r_strategy = ""] and [r_stages = []]. *)

val fnv64 : string -> string
(** Stable 16-hex-digit FNV-1a 64 digest of a string — used for
    context keys. *)

val method_names : string list
(** The canonical rating-method names (["CBR"; "MBR"; "RBR"; "AVG";
    "WHL"]) — the store's mirror of [Peak.Method.names] (the store sits
    below the core library in the dependency order; a core-side test
    keeps the two in lockstep).  Decoders reject method strings outside
    this set. *)

val valid_method : string -> (string, string) result
(** [Ok name] iff [name] is in {!method_names}. *)

val valid_method_request : string -> (string, string) result
(** As {!valid_method} but for session metadata's requested method:
    a lower-case canonical name or ["auto"]. *)

val search_keys : string list
(** The canonical search-strategy keys (["ie"; "be"; "ce"; "random";
    "ff"; "ose"; "staged"]) — the store's mirror of
    [Peak.Strategy.keys] (same lockstep arrangement as
    {!method_names}; ["random"] stands for the parameterized
    ["random<n>"] family). *)

val valid_search_key : string -> (string, string) result
(** [Ok name] iff [name] is in {!search_keys}, is ["random<n>"] with a
    positive [n], or is [""] — the pre-v5 marker a v1-v4 [result.json]
    decodes to, which must keep round-tripping once re-encoded. *)

(** {1 Serialized types} *)

type rating = {
  eval : float;
  var : float;
  samples : int;
  invocations : int;
  converged : bool;
}
(** Mirror of [Peak.Rating.t] (the store sits below the core library in
    the dependency order, so it carries its own structurally identical
    record). *)

type consumption = { c_invocations : int; c_passes : int; c_cycles : float }
(** Simulated resources a rating consumed — replayed into the session
    ledger on resume so the tuning-time accounting is also
    bit-identical. *)

type event = {
  e_method : string;  (** Rating method name, e.g. ["RBR"]. *)
  e_ctx : string;  (** Context digest (seed, dataset, params, base, idx). *)
  e_base : string;  (** Digest of the base configuration, ["-"] if none. *)
  e_idx : int;  (** Candidate index within its batch (-1 for the base). *)
  e_config : Optconfig.t;
  e_eval : float;
  e_converged : bool;
      (** Whether the rating's VAR converged — what lets a resumed
          session replay the driver's fallback-probe decisions without
          re-simulating them.  [true] for decoded v1 events (which
          predate probes). *)
  e_used : consumption;
  e_fail : string option;
      (** Quarantine reason (["crashed"], ["hung"], ["wrong-output"])
          when the config was condemned rather than rated; [None] for a
          clean rating.  [None] for decoded v2 events. *)
  e_retries : int;
      (** Transient failures absorbed before this outcome ([0] for
          decoded v2 events). *)
}
(** One rating event — one journal line. *)

type session_meta = {
  m_id : string;
  m_benchmark : string;
  m_machine : string;
  m_dataset : string;
  m_search : string;
  m_seed : int;
  m_threshold : float;
  m_params : string;  (** [Rating.params_signature] of the rating params. *)
  m_method : string;  (** Requested method, ["auto"] when unforced. *)
  m_start : Optconfig.t;  (** Search start configuration (warm starts). *)
  m_faults : string;
      (** Serialized fault plan ([Fault.to_string]) the session ran
          under, or ["-"] for none — resume rebuilds the plan from it.
          ["-"] for decoded v2 sessions. *)
}

type attempt = { at_method : string; at_converged : bool; at_ratings : int }
(** Mirror of [Peak.Method.attempt]: one entry of the driver's §3
    fallback chain (abandoned probes first, the committed method
    last). *)

type method_metrics = { mm_method : string; mm_ratings : int; mm_invocations : int }
(** Per-method accounting: how many ratings the method produced and the
    trace invocations they consumed. *)

type metrics = {
  x_methods : method_metrics list;
      (** Sorted by canonical method order; methods that never rated are
          omitted. *)
  x_quarantined : int;  (** Configurations condemned by fault oracles. *)
  x_retries : int;  (** Transient-failure retries absorbed. *)
  x_invocations : int;  (** Total rating invocations consumed. *)
  x_cycles : float;  (** Total simulated cycles charged to the session. *)
}
(** The session result's deterministic metrics block (v4).  Every field
    is a pure function of the rating outcomes in submission order —
    never of wall-clock time — so a traced, untraced, parallel or
    resumed run of the same session serializes the identical block. *)

type stage = {
  st_label : string;  (** Stage label, e.g. ["screen"]. *)
  st_ratings : int;  (** Ratings spent in the stage. *)
  st_flags : int;  (** Flag-universe size the stage worked on. *)
}
(** One stage boundary of a finished search (v5). *)

type session_result = {
  r_method : string;  (** Method actually used. *)
  r_strategy : string;
      (** Canonical search-strategy key (v5); [""] for decoded v1–v4
          results, whose strategy identity lives only in
          {!session_meta}. *)
  r_stages : stage list;
      (** Per-stage rating spend in execution order ([[]] for decoded
          v1–v4 results). *)
  r_attempts : attempt list;
      (** The attempted-method chain ([[]] for decoded v1 results). *)
  r_best : Optconfig.t;
  r_ratings : int;
  r_iterations : int;
  r_trajectory : (Optconfig.t * float) list;
  r_tuning_cycles : float;
  r_tuning_seconds : float;
  r_passes : int;
  r_invocations : int;
  r_quarantined : (Optconfig.t * string) list;
      (** Condemned configurations in submission order with the reason
          each was condemned ([[]] for decoded v2 results). *)
  r_retries : int;
      (** Transient-failure retries absorbed across the whole session
          ([0] for decoded v2 results). *)
  r_metrics : metrics option;
      (** Deterministic metrics block ([None] for decoded v1–v3
          results). *)
}
(** The durable summary of a [Driver.result] (profile and advice are
    recomputed deterministically on resume, so only the outcome is
    stored). *)

(** {1 Codecs} — [of_json] returns [Error] with a one-line reason. *)

val float_to_json : float -> Json.t
val float_of_json : Json.t -> (float, string) result

val optconfig_to_json : Optconfig.t -> Json.t
val optconfig_of_json : Json.t -> (Optconfig.t, string) result

val rating_to_json : rating -> Json.t
val rating_of_json : Json.t -> (rating, string) result

val trajectory_to_json : (Optconfig.t * float) list -> Json.t
val trajectory_of_json : Json.t -> ((Optconfig.t * float) list, string) result

val attempt_to_json : attempt -> Json.t
val attempt_of_json : Json.t -> (attempt, string) result

val stage_to_json : stage -> Json.t
val stage_of_json : Json.t -> (stage, string) result

val metrics_to_json : metrics -> Json.t
val metrics_of_json : Json.t -> (metrics, string) result

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val session_meta_to_json : session_meta -> Json.t
val session_meta_of_json : Json.t -> (session_meta, string) result

val session_result_to_json : session_result -> Json.t
val session_result_of_json : Json.t -> (session_result, string) result
