(** Minimal JSON, no external dependencies.

    The persistent tuning store needs exactly one serialization format:
    self-describing, line-oriented (for the append-only journal),
    human-inspectable, and round-trip exact for the floats that make
    resumed tuning sessions bit-identical.  Floats are printed with
    [%.17g], which round-trips every finite double; non-finite values
    are rejected by the encoder (the codec layer maps them to strings
    before they reach here). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line encoding (no newlines — journal-safe).
    @raise Invalid_argument on a non-finite [Float]. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, any other
    trailing garbage is an error.  Numbers with a fraction or exponent
    parse as [Float], others as [Int] (falling back to [Float] when they
    exceed the native int range). *)

(** {1 Accessors} — each returns [Error] naming the offending member. *)

val member : string -> t -> (t, string) result
val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts [Int] too (a whole-valued float may have been printed
    without a fraction point). *)

val to_str : t -> (string, string) result
val to_bool : t -> (bool, string) result
val to_list : t -> (t list, string) result

val get_int : string -> t -> (int, string) result
val get_float : string -> t -> (float, string) result
val get_str : string -> t -> (string, string) result
val get_bool : string -> t -> (bool, string) result
val get_list : string -> t -> (t list, string) result
