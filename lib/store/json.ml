type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- encoding ---------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then invalid_arg "Json.to_string: non-finite float";
  let s = Printf.sprintf "%.17g" f in
  (* "%.17g" prints integral doubles without a '.', which would parse
     back as Int — losing the sign bit of -0.0 in the process; force a
     fraction so every Float round-trips as a bit-identical Float *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf code =
    (* enough for the BMP; the store only ever writes ASCII *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            utf8_of_code buf code
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "expected number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception _ -> Error "malformed JSON"

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing member %S" key))
  | _ -> Error (Printf.sprintf "expected object with member %S" key)

let to_int = function Int i -> Ok i | _ -> Error "expected int"

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected number"

let to_str = function String s -> Ok s | _ -> Error "expected string"
let to_bool = function Bool b -> Ok b | _ -> Error "expected bool"
let to_list = function List l -> Ok l | _ -> Error "expected list"

let ( let* ) r f = Result.bind r f

let in_member key conv v =
  let* m = member key v in
  match conv m with
  | Ok x -> Ok x
  | Error e -> Error (Printf.sprintf "member %S: %s" key e)

let get_int key v = in_member key to_int v
let get_float key v = in_member key to_float v
let get_str key v = in_member key to_str v
let get_bool key v = in_member key to_bool v
let get_list key v = in_member key to_list v
