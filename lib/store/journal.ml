exception Torn_write

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending : int;
  fsync_every : int;
  mutex : Mutex.t;
  mutable closed : bool;
  tear : (flush:int -> size:int -> int option) option;
  mutable flushes : int;
}

let open_append ?(fsync_every = 32) ?tear path =
  if fsync_every < 1 then invalid_arg "Journal.open_append: fsync_every must be >= 1";
  let fd =
    try Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  in
  {
    fd;
    buf = Buffer.create 4096;
    pending = 0;
    fsync_every;
    mutex = Mutex.create ();
    closed = false;
    tear;
    flushes = 0;
  }

let write_all fd bytes off len =
  let off = ref off in
  let stop = !off + len in
  while !off < stop do
    off := !off + Unix.write fd bytes !off (stop - !off)
  done

let flush_locked t =
  if Buffer.length t.buf > 0 then begin
    let bytes = Buffer.to_bytes t.buf in
    let size = Bytes.length bytes in
    let flush = t.flushes in
    t.flushes <- t.flushes + 1;
    let cut =
      match t.tear with None -> None | Some f -> f ~flush ~size
    in
    match cut with
    | Some n when n >= 0 && n < size ->
        (* Simulated power cut mid-batch: persist only the torn prefix,
           then die.  The journal is left closed — exactly the state a
           crashed process leaves behind — so recovery goes through
           [read] on a fresh open. *)
        write_all t.fd bytes 0 n;
        Unix.fsync t.fd;
        Unix.close t.fd;
        t.closed <- true;
        raise Torn_write
    | _ ->
        Peak_obs.timed "journal.fsync" (fun () ->
            write_all t.fd bytes 0 size;
            Buffer.clear t.buf;
            t.pending <- 0;
            Unix.fsync t.fd)
  end

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let append t record =
  let line = Json.to_string record in
  Peak_obs.count "journal.appends";
  locked t (fun () ->
      if t.closed then invalid_arg "Journal.append: closed journal";
      Buffer.add_string t.buf line;
      Buffer.add_char t.buf '\n';
      t.pending <- t.pending + 1;
      if t.pending >= t.fsync_every then flush_locked t)

let flush t = locked t (fun () -> if not t.closed then flush_locked t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        flush_locked t;
        Unix.close t.fd;
        t.closed <- true
      end)

let read path =
  match open_in path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let records = ref [] in
          let dropped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.of_string line with
                 | Ok v -> records := v :: !records
                 | Error _ -> incr dropped
             done
           with End_of_file -> ());
          (List.rev !records, !dropped))
