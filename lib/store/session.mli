(** Tuning sessions in a persistent store directory.

    A store is a directory:
    {v
    STORE/
      index.json                  (compacted, written by gc)
      sessions/<id>/meta.json     (session parameters, incl. start config)
      sessions/<id>/journal.jsonl (append-only rating events)
      sessions/<id>/result.json   (written on completion)
    v}

    The session id is a deterministic function of the tuning parameters
    ({!id_for}), so re-running the same [tune --store] command resumes
    the same session: {!open_} replays the existing journal into an
    in-memory cache, and the driver's rating lookups ({!find}) return
    already-rated configurations instantly — value {e and} consumed
    invocations/passes/cycles — which is what makes a resumed search
    bit-identical to an uninterrupted one.

    Rating keys: [find]/[record] key a rating by the session context
    (seed, dataset, rating-parameter signature), the method, the base
    configuration's digest (["-"] when the method rates absolutely), the
    candidate's batch index, and the configuration's digest.  Under the
    driver's deterministic per-candidate seeding a rating's value and
    cost are pure functions of exactly those coordinates, so replay is
    sound even across different search algorithms sharing one session
    journal. *)

open Peak_compiler

type t

val id_for :
  benchmark:string ->
  machine:string ->
  dataset:string ->
  search:string ->
  method_:string ->
  seed:int ->
  string
(** Deterministic session id, e.g. ["art-pentium4-train-ie-rbr-s11"]. *)

val open_ :
  ?tear:(flush:int -> size:int -> int option) ->
  dir:string ->
  meta:Codec.session_meta ->
  unit ->
  (t, string) result
(** Open (creating directories as needed) the session [meta.m_id] under
    store [dir].  If the session already exists its stored metadata wins
    (in particular the start configuration — a warm-started session
    resumes from its original start) after checking that the immutable
    parameters (benchmark, machine, dataset, search, seed, method,
    rating-parameter signature) match; the existing journal is replayed
    into the rating cache, tolerating a truncated crash tail.

    Single-writer discipline: opening writes a [.writer] pidfile in the
    session directory and fails with an [Error] if one already names a
    live process (another daemon's session, or the same session opened
    twice in this process).  A pidfile whose process is gone — a crashed
    writer — is reclaimed silently.  {!close} removes the pidfile.

    [tear] is forwarded to {!Journal.open_append} — the fault-injection
    hook that simulates a power cut mid-flush (see {!Journal.Torn_write}). *)

val meta : t -> Codec.session_meta
(** The effective metadata (the stored one when resuming). *)

val store_dir : t -> string
(** The store root this session lives under — the [dir] given to
    {!open_}.  Lets callers reach sibling store artifacts such as the
    rating index ([index.json]), e.g. the staged search's training
    corpus. *)

val loaded_events : t -> int
(** Rating events replayed from the journal at {!open_} — [0] for a
    fresh session. *)

val find :
  t ->
  method_:string ->
  base:string ->
  idx:int ->
  Optconfig.t ->
  (float * bool * Codec.consumption * string option * int) option
(** Cached [(eval, converged, consumption, fail, retries)] for a
    (method, base-digest, batch-index, configuration) coordinate, if
    this session already rated it.  The convergence flag is what lets a
    resumed session replay the driver's fallback-probe decisions; the
    fail reason and retry count let it replay quarantine decisions. *)

val record :
  t ->
  method_:string ->
  base:string ->
  idx:int ->
  config:Optconfig.t ->
  eval:float ->
  converged:bool ->
  ?fail:string ->
  ?retries:int ->
  used:Codec.consumption ->
  unit ->
  unit
(** Log one rating event to the journal (batched fsync) and the cache.
    [fail] is the quarantine reason when the config was condemned
    rather than rated; [retries] (default 0) counts the transient
    failures absorbed on the way to this outcome. *)

val complete : t -> Codec.session_result -> unit
(** Flush the journal and atomically write [result.json]. *)

val close : t -> unit
(** Remove the [.writer] pidfile, flush and close the journal.
    Idempotent. *)

(** {1 Store interrogation (read-only)} *)

type info = {
  info_meta : Codec.session_meta;
  info_result : Codec.session_result option;  (** [None] while in progress. *)
  info_events : int;
  info_dropped : int;  (** Malformed journal lines (crash tails). *)
  info_live : bool;  (** A live writer (e.g. a daemon) holds the session. *)
}

val list : dir:string -> (info list, string) result
(** All sessions in the store, sorted by id.  A store directory without
    a [sessions/] subdirectory lists as empty; sessions whose metadata
    fails to decode are reported as an [Error].  Safe against a store
    concurrently held by a writer: a session directory created but not
    yet populated is skipped, and a journal mid-append reads through the
    usual torn-tail tolerance. *)

val live : dir:string -> id:string -> bool
(** Whether a live process currently holds the session's journal open
    (per the [.writer] pidfile).  [false] for stale pidfiles of dead
    writers. *)

val load_info : dir:string -> id:string -> (info, string) result

val events : dir:string -> id:string -> Codec.event list * int
(** Decoded rating events of one session's journal, in append order,
    plus the dropped-line count. *)

type gc_stats = {
  gc_sessions : int;
  gc_events : int;
  gc_dropped : int;  (** Malformed lines removed from journals. *)
  gc_index_entries : int;
}

val gc : dir:string -> (gc_stats, string) result
(** Compact the store: rewrite each journal without malformed lines,
    then rebuild [index.json] from every session's events with
    last-write-wins merge. *)

val export : dir:string -> (Json.t, string) result
(** The whole store as one JSON document (metadata, results, events). *)
