(** Collaborative tuning knowledge base.

    Aggregates every completed session — from one store, or merged
    across stores — into rows of (program, machine, configuration) →
    measured speedup, and answers "where should a new tuning run
    start?" by similarity-weighted collaborative filtering in the
    spirit of Cereda et al. and the Collective Tuning Initiative:

    - each {e program} (a benchmark × machine pair) carries a feature
      vector supplied by the caller (static TS features plus a
      machine-conditioned response signature; see
      [Peak.Knowledge.features] for the canonical resolver);
    - feature vectors are normalized per dimension by z-score over the
      corpus programs plus the query, so no single raw scale dominates
      the distance; zero-variance dimensions drop out of the distance
      instead of poisoning it with NaN;
    - the query's [k] nearest programs vote for their configurations
      with weight [similarity × samples], where
      [similarity = 1 / (1 + distance)];
    - each configuration's predicted speedup is the weighted mean of
      its donors' measured speedups, shrunk toward 1.0 by one
      pseudo-observation so a single far-away donor cannot promise a
      10× win.

    Determinism: rows are kept in a canonical order (benchmark,
    machine, config digest), aggregation folds contributions in a
    sorted order, and the codec writes sorted rows — so building or
    merging the same corpus twice produces byte-identical files, and
    recommendations are invariant under permutation of the input
    sessions or merge arguments.  Non-finite features or speedups are
    rejected at the codec boundary (the v4 rule) and skipped during
    aggregation. *)

open Peak_compiler

type row = {
  rw_benchmark : string;  (** Lowercased benchmark name. *)
  rw_machine : string;  (** Lowercased machine name. *)
  rw_features : float array;  (** Program feature vector (finite). *)
  rw_config : Optconfig.t;
  rw_speedup : float;  (** Measured speedup vs the session's start; finite, > 0. *)
  rw_samples : int;  (** Sessions aggregated into this row; >= 1. *)
}

type t

val empty : t

val size : t -> int
(** Number of aggregated rows. *)

val rows : t -> row list
(** All rows in canonical (benchmark, machine, config digest) order. *)

val programs : t -> (string * string) list
(** Distinct (benchmark, machine) pairs, sorted. *)

val of_rows : row list -> t
(** Canonicalize: rows sharing (benchmark, machine, config digest) are
    merged into one row with sample-weighted mean speedup and summed
    samples, folding contributions in a sorted order so the result is
    independent of input order.  Names are lowercased.
    @raise Invalid_argument on a non-finite feature or speedup, a
    nonpositive speedup, or a sample count < 1. *)

val merge : t list -> t
(** Union of several knowledge bases, re-aggregated; invariant under
    permutation of the argument list. *)

val speedup_of_result : Codec.session_result -> float option
(** Whole-session speedup vs its start configuration, derived from the
    accepted-step trajectory (each step records its relative gain; the
    speedup is the inverse product of the residuals).  [None] when the
    product is nonpositive or non-finite. *)

val of_sessions :
  features:(benchmark:string -> machine:string -> float array option) ->
  Session.info list ->
  t
(** Aggregate completed sessions.  [features] resolves a (lowercased)
    benchmark × machine pair to its feature vector; sessions it cannot
    resolve, incomplete sessions, and sessions whose trajectory yields
    no finite speedup are skipped. *)

val build :
  dir:string ->
  features:(benchmark:string -> machine:string -> float array option) ->
  (t, string) result
(** [of_sessions] over every session in the store at [dir]. *)

type recommendation = {
  rec_config : Optconfig.t;
  rec_predicted : float;  (** Shrunk similarity-weighted speedup estimate. *)
  rec_support : int;  (** Total donor sessions behind this config. *)
  rec_neighbors : (string * float) list;
      (** Contributing donor benchmarks with their normalized feature
          distance, nearest first. *)
}

val recommend :
  t ->
  features:float array ->
  machine:string ->
  ?k:int ->
  ?exclude:string ->
  unit ->
  recommendation list
(** Ranked start-configuration recommendations for a program with the
    given feature vector, best predicted speedup first (ties: larger
    support, then smaller config digest).  Rows from [exclude]'s own
    benchmark are ignored (hold-out evaluation and warm start both
    want donors only).  Rows on the query's machine are preferred;
    when none exist the whole corpus is consulted (the feature
    vector's machine-response components still carry the machine
    difference).  [k] (default 8) bounds the donor programs consulted.
    Empty corpus — or nothing left after exclusion — yields []. *)

(** {1 Codec} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Rejects formats newer than {!Codec.version}, non-finite features
    or speedups, nonpositive speedups and sample counts < 1. *)

val save : t -> string -> unit
(** Atomic (write-then-rename), sorted, single-line — identical
    corpora produce byte-identical files. *)

val load : string -> (t, string) result

val load_corpus : dir:string -> (t, string) result
(** Merge every [*.json] knowledge base in [dir] (sorted filename
    order, though {!merge} makes the order immaterial).  A missing
    directory is an error; an empty one yields {!empty}. *)
