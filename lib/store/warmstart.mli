(** Cross-run warm start: propose a search start configuration for a new
    tuning session from what the store already knows.

    In the spirit of collaborative filtering over a shared optimization
    space: each benchmark's {e signature} is the mean flag vector of the
    best configurations its completed sessions found; the proposal is
    the best configuration of the nearest neighbor under Euclidean
    distance between signatures.  A benchmark with no history of its own
    falls back to the configuration that was best most often on the
    target machine.

    Caveats (documented in the README): a warm start changes the search
    trajectory, so warm results are not comparable to cold runs; and the
    proposal transfers an {e outcome}, not a rating — flags that help the
    neighbor can hurt the target, which the search then has to undo. *)

open Peak_compiler

type origin =
  | Nearest_neighbor of float  (** Signature distance to the neighbor. *)
  | Most_frequent  (** No history for this benchmark: modal best config. *)

type proposal = {
  start : Optconfig.t;
  neighbor : string;  (** Benchmark the configuration came from. *)
  origin : origin;
  sessions : int;  (** Completed sessions consulted. *)
}

val propose :
  dir:string -> benchmark:string -> machine:string -> (proposal option, string) result
(** [Ok None] when the store has no completed sessions for any other
    benchmark.  Deterministic: ties break on benchmark name, then
    session id. *)
