(** Cross-run warm start: propose a search start configuration for a new
    tuning session from what the store already knows.

    Since the knowledge base landed this is a thin veneer over
    {!Kb.recommend}: each benchmark's {e signature} is the mean flag
    vector of the best configurations its completed sessions found, and
    the proposal is the top similarity-weighted recommendation over the
    other benchmarks' rows — so a neighbor's {e best-performing}
    configuration is transferred (ranked by recorded speedup; ties
    break on support, then config digest), not whichever session
    happened to have the smallest id.  A benchmark with no history of
    its own falls back to the configuration that was best most often on
    the target machine (ties to the smallest config digest; the named
    neighbor is the winning configuration's earliest session).

    For feature-based recommendation across stores — static TS features
    plus the machine response signature rather than flag vectors — use
    {!Kb} directly (the [peak-tune kb] command group). *)

open Peak_compiler

type origin =
  | Nearest_neighbor of float
      (** Normalized signature distance to the neighbor (see
          {!Kb.recommend}'s z-scoring). *)
  | Most_frequent  (** No history for this benchmark: modal best config. *)

type proposal = {
  start : Optconfig.t;
  neighbor : string;  (** Benchmark the configuration came from. *)
  origin : origin;
  sessions : int;  (** Completed sessions consulted. *)
}

val propose :
  dir:string -> benchmark:string -> machine:string -> (proposal option, string) result
(** [Ok None] when the store has no completed sessions for any other
    benchmark.  Deterministic: the ranking and every tie order are
    total (documented above), so the proposal is a pure function of the
    store contents. *)

val mean_vector : float array list -> float array
(** Component-wise mean of flag vectors.
    @raise Invalid_argument on an empty list (a mean of nothing was
    formerly a silent array of NaNs). *)
