open Peak_compiler

let ( let* ) r f = Result.bind r f

let ( // ) = Filename.concat

let sanitize s =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '-' | '.') as c -> c
      | _ -> '_')
    s

let id_for ~benchmark ~machine ~dataset ~search ~method_ ~seed =
  sanitize (Printf.sprintf "%s-%s-%s-%s-%s-s%d" benchmark machine dataset search method_ seed)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sessions_dir dir = dir // "sessions"
let session_dir dir id = sessions_dir dir // id
let meta_path dir id = session_dir dir id // "meta.json"
let journal_path dir id = session_dir dir id // "journal.jsonl"
let result_path dir id = session_dir dir id // "result.json"
let writer_path dir id = session_dir dir id // ".writer"
let index_path dir = dir // "index.json"

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      output_char oc '\n');
  Sys.rename tmp path

(* ---------------- writer liveness ----------------
   A session being written carries a [.writer] pidfile (written once the
   journal is open, removed on close).  Liveness is the pid still
   existing: kill 0 probes without signalling.  EPERM means the process
   exists but is someone else's — still alive.  A pidfile left by a
   crashed writer is stale and silently reclaimed on the next open. *)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception _ -> false

let writer_pid dir id =
  let path = writer_path dir id in
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let line =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> try input_line ic with End_of_file -> "")
    in
    int_of_string_opt (String.trim line)

let live ~dir ~id =
  match writer_pid dir id with Some pid -> pid_alive pid | None -> false

let read_json_file path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Json.of_string (String.trim content)

(* ---------------- context keys ---------------- *)

let ctx_digest (m : Codec.session_meta) ~method_ ~base ~idx =
  Codec.fnv64
    (Printf.sprintf "s%d|%s|%s|%s|%s|i%d" m.Codec.m_seed m.Codec.m_dataset m.Codec.m_params
       method_ base idx)

let cache_key ~ctx ~config_digest = ctx ^ ":" ^ config_digest

(* ---------------- the handle ---------------- *)

type t = {
  dir : string;
  mutable meta : Codec.session_meta;
  journal : Journal.t;
  cache : (string, float * bool * Codec.consumption * string option * int) Hashtbl.t;
  mutable loaded : int;
}

let meta t = t.meta
let store_dir t = t.dir
let loaded_events t = t.loaded

let meta_compatible (a : Codec.session_meta) (b : Codec.session_meta) =
  let mismatch field va vb =
    if va = vb then None else Some (Printf.sprintf "%s: stored %s, requested %s" field va vb)
  in
  List.filter_map Fun.id
    [
      mismatch "benchmark" a.Codec.m_benchmark b.Codec.m_benchmark;
      mismatch "machine" a.Codec.m_machine b.Codec.m_machine;
      mismatch "dataset" a.Codec.m_dataset b.Codec.m_dataset;
      mismatch "search" a.Codec.m_search b.Codec.m_search;
      mismatch "seed" (string_of_int a.Codec.m_seed) (string_of_int b.Codec.m_seed);
      mismatch "method" a.Codec.m_method b.Codec.m_method;
      mismatch "rating params" a.Codec.m_params b.Codec.m_params;
      mismatch "fault plan" a.Codec.m_faults b.Codec.m_faults;
    ]

let replay_into cache path =
  let records, _dropped = Journal.read path in
  let n = ref 0 in
  List.iter
    (fun record ->
      match Codec.event_of_json record with
      | Ok e ->
          incr n;
          Hashtbl.replace cache
            (cache_key ~ctx:e.Codec.e_ctx ~config_digest:(Optconfig.digest e.Codec.e_config))
            (e.Codec.e_eval, e.Codec.e_converged, e.Codec.e_used, e.Codec.e_fail, e.Codec.e_retries)
      | Error _ -> ())
    records;
  !n

let open_ ?tear ~dir ~(meta : Codec.session_meta) () =
  let id = meta.Codec.m_id in
  match mkdir_p (session_dir dir id) with
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, p) -> Error (Printf.sprintf "%s: %s" p (Unix.error_message e))
  | () ->
      let* effective =
        if Sys.file_exists (meta_path dir id) then
          let* v = read_json_file (meta_path dir id) in
          let* stored = Codec.session_meta_of_json v in
          match meta_compatible stored meta with
          | [] -> Ok stored
          | problems ->
              Error
                (Printf.sprintf "session %s exists with different parameters (%s)" id
                   (String.concat "; " problems))
        else begin
          write_atomic (meta_path dir id) (Json.to_string (Codec.session_meta_to_json meta));
          Ok meta
        end
      in
      let* () =
        match writer_pid dir id with
        | None -> Ok ()
        | Some pid when pid = Unix.getpid () ->
            Error (Printf.sprintf "session %s is already open in this process" id)
        | Some pid when pid_alive pid ->
            Error (Printf.sprintf "session %s is held by a live writer (pid %d)" id pid)
        | Some _ ->
            (* crashed writer; reclaim *)
            (try Sys.remove (writer_path dir id) with Sys_error _ -> ());
            Ok ()
      in
      let cache = Hashtbl.create 256 in
      let loaded = replay_into cache (journal_path dir id) in
      let journal = Journal.open_append ?tear (journal_path dir id) in
      write_atomic (writer_path dir id) (string_of_int (Unix.getpid ()));
      Ok { dir; meta = effective; journal; cache; loaded }

let find t ~method_ ~base ~idx config =
  let ctx = ctx_digest t.meta ~method_ ~base ~idx in
  Hashtbl.find_opt t.cache (cache_key ~ctx ~config_digest:(Optconfig.digest config))

let record t ~method_ ~base ~idx ~config ~eval ~converged ?fail ?(retries = 0) ~used () =
  let ctx = ctx_digest t.meta ~method_ ~base ~idx in
  let event =
    {
      Codec.e_method = method_;
      e_ctx = ctx;
      e_base = base;
      e_idx = idx;
      e_config = config;
      e_eval = eval;
      e_converged = converged;
      e_used = used;
      e_fail = fail;
      e_retries = retries;
    }
  in
  Journal.append t.journal (Codec.event_to_json event);
  Hashtbl.replace t.cache
    (cache_key ~ctx ~config_digest:(Optconfig.digest config))
    (eval, converged, used, fail, retries)

let complete t result =
  Peak_obs.count "store.completes";
  Peak_obs.timed "store.complete" @@ fun () ->
  Journal.flush t.journal;
  write_atomic
    (result_path t.dir t.meta.Codec.m_id)
    (Json.to_string (Codec.session_result_to_json result))

let close t =
  (try Sys.remove (writer_path t.dir t.meta.Codec.m_id) with Sys_error _ -> ());
  Journal.close t.journal

(* ---------------- read-only interrogation ---------------- *)

type info = {
  info_meta : Codec.session_meta;
  info_result : Codec.session_result option;
  info_events : int;
  info_dropped : int;
  info_live : bool;
}

let session_ids dir =
  let root = sessions_dir dir in
  if not (Sys.file_exists root) then []
  else
    Sys.readdir root |> Array.to_list
    |> List.filter (fun id -> Sys.is_directory (root // id))
    |> List.sort String.compare

let load_info ~dir ~id =
  let* v = read_json_file (meta_path dir id) in
  let* info_meta = Codec.session_meta_of_json v in
  let* info_result =
    if Sys.file_exists (result_path dir id) then
      let* rv = read_json_file (result_path dir id) in
      let* r = Codec.session_result_of_json rv in
      Ok (Some r)
    else Ok None
  in
  let records, info_dropped = Journal.read (journal_path dir id) in
  Ok
    {
      info_meta;
      info_result;
      info_events = List.length records;
      info_dropped;
      info_live = live ~dir ~id;
    }

let list ~dir =
  List.fold_left
    (fun acc id ->
      let* acc = acc in
      (* a session directory can exist for an instant before its
         meta.json does (mkdir, then atomic write) — tolerate the race
         when listing a store a daemon is writing to *)
      if not (Sys.file_exists (meta_path dir id)) then Ok acc
      else
        let* info =
          match load_info ~dir ~id with
          | Ok i -> Ok i
          | Error e -> Error (Printf.sprintf "session %s: %s" id e)
        in
        Ok (info :: acc))
    (Ok []) (session_ids dir)
  |> Result.map List.rev

let events ~dir ~id =
  let records, dropped = Journal.read (journal_path dir id) in
  let decoded, bad =
    List.fold_left
      (fun (decoded, bad) record ->
        match Codec.event_of_json record with
        | Ok e -> (e :: decoded, bad)
        | Error _ -> (decoded, bad + 1))
      ([], 0) records
  in
  (List.rev decoded, dropped + bad)

type gc_stats = {
  gc_sessions : int;
  gc_events : int;
  gc_dropped : int;
  gc_index_entries : int;
}

let gc ~dir =
  Peak_obs.timed "store.gc" @@ fun () ->
  let index = Index.create () in
  let* sessions, events_total, dropped_total =
    List.fold_left
      (fun acc id ->
        let* sessions, events_total, dropped_total = acc in
        let* info = load_info ~dir ~id in
        let evs, dropped = events ~dir ~id in
        (* rewrite the journal without its malformed lines *)
        if dropped > 0 then begin
          let buf = Buffer.create 4096 in
          List.iter
            (fun e ->
              Buffer.add_string buf (Json.to_string (Codec.event_to_json e));
              Buffer.add_char buf '\n')
            evs;
          let tmp = journal_path dir id ^ ".tmp" in
          let oc = open_out tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> Buffer.output_buffer oc buf);
          Sys.rename tmp (journal_path dir id)
        end;
        let m = info.info_meta in
        List.iter
          (fun (e : Codec.event) ->
            (* failed events carry a quarantine/no-samples sentinel, not
               a rating; indexing their +inf (or an old journal's NaN)
               eval would poison warm-start nearest-neighbor distances *)
            if e.Codec.e_fail = None && Float.is_finite e.Codec.e_eval then
              Index.add index
                {
                  Index.key =
                    {
                      Index.k_benchmark = m.Codec.m_benchmark;
                      k_machine = m.Codec.m_machine;
                      k_method = e.Codec.e_method;
                      k_config = Optconfig.digest e.Codec.e_config;
                      k_ctx = e.Codec.e_ctx;
                    };
                  session = id;
                  config = e.Codec.e_config;
                  eval = e.Codec.e_eval;
                  used = e.Codec.e_used;
                })
          evs;
        Ok (sessions + 1, events_total + List.length evs, dropped_total + dropped))
      (Ok (0, 0, 0))
      (session_ids dir)
  in
  (match mkdir_p dir with () -> () | exception _ -> ());
  Index.save index (index_path dir);
  Ok
    {
      gc_sessions = sessions;
      gc_events = events_total;
      gc_dropped = dropped_total;
      gc_index_entries = Index.size index;
    }

let export ~dir =
  let* infos = list ~dir in
  let session_json (i : info) =
    let evs, dropped = events ~dir ~id:i.info_meta.Codec.m_id in
    Json.Obj
      ([ ("meta", Codec.session_meta_to_json i.info_meta) ]
      @ (match i.info_result with
        | Some r -> [ ("result", Codec.session_result_to_json r) ]
        | None -> [])
      @ [
          ("dropped", Json.Int dropped);
          ("events", Json.List (List.map Codec.event_to_json evs));
        ])
  in
  Ok
    (Json.Obj
       [
         ("v", Json.Int Codec.version);
         ("t", Json.String "store");
         ("sessions", Json.List (List.map session_json infos));
       ])
