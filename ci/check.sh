#!/bin/sh
# Tier-1 gate: build, tests, formatting.  Run from the repo root.
set -eu

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

# Formatting: @fmt covers dune files always and OCaml sources when
# ocamlformat is installed.  Without ocamlformat the OCaml rules cannot
# run at all, so the gate is skipped rather than failed — the dune-file
# part alone cannot be separated from the broken alias.
echo "== formatting"
if command -v ocamlformat >/dev/null 2>&1; then
  if dune build @fmt >/dev/null 2>&1; then
    echo "   formatting clean"
  else
    echo "   formatting diffs found; run: dune fmt" >&2
    exit 1
  fi
else
  echo "   ocamlformat not installed; skipping the formatting gate"
fi

# Store resume smoke: kill a store-backed tuning session mid-flight,
# resume it, and require the final result to be byte-identical to an
# uninterrupted run of the same session.
echo "== store resume smoke"
BIN=_build/default/bin/peak_tune.exe
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/ref" \
  | tail -5 > "$SMOKE/ref.out"

"$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/crash" \
  > /dev/null 2>&1 &
tune_pid=$!
sleep 2
kill -9 "$tune_pid" 2>/dev/null || true
wait "$tune_pid" 2>/dev/null || true

id=$("$BIN" session list --store "$SMOKE/crash" -q)
if [ -n "$id" ]; then
  "$BIN" session resume --store "$SMOKE/crash" "$id" | tail -5 > "$SMOKE/resumed.out"
else
  # the kill landed before the session directory existed; fall back to a
  # fresh run, which still must match the reference
  "$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/crash" \
    | tail -5 > "$SMOKE/resumed.out"
fi

if diff "$SMOKE/ref.out" "$SMOKE/resumed.out"; then
  echo "   resumed result identical to uninterrupted run"
else
  echo "   resumed result DIFFERS from uninterrupted run" >&2
  exit 1
fi
"$BIN" session gc --store "$SMOKE/crash" > /dev/null

echo "== OK"
