#!/bin/sh
# Tier-1 gate: build, tests, formatting.  Run from the repo root.
set -eu

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

# Formatting: @fmt covers dune files always and OCaml sources when
# ocamlformat is installed.  Without ocamlformat the OCaml rules cannot
# run at all, so the gate is skipped rather than failed — the dune-file
# part alone cannot be separated from the broken alias.
echo "== formatting"
if command -v ocamlformat >/dev/null 2>&1; then
  if dune build @fmt >/dev/null 2>&1; then
    echo "   formatting clean"
  else
    echo "   formatting diffs found; run: dune fmt" >&2
    exit 1
  fi
else
  echo "   ocamlformat not installed; skipping the formatting gate"
fi

echo "== OK"
