#!/bin/sh
# Tier-1 gate: build, tests, formatting.  Run from the repo root.
set -eu

echo "== dune build"
dune build @all

# The full suite (including the Slow fault-oracle tests) must fit a
# fixed wall-clock budget so the gate stays runnable on every change.
# Override with PEAK_RUNTEST_BUDGET=seconds when profiling slow boxes.
echo "== dune runtest"
RUNTEST_BUDGET=${PEAK_RUNTEST_BUDGET:-600}
t0=$(date +%s)
dune runtest
t1=$(date +%s)
elapsed=$((t1 - t0))
echo "   runtest took ${elapsed}s (budget ${RUNTEST_BUDGET}s)"
if [ "$elapsed" -gt "$RUNTEST_BUDGET" ]; then
  echo "   test suite exceeded its ${RUNTEST_BUDGET}s wall-clock budget" >&2
  exit 1
fi

# Formatting: @fmt covers dune files always and OCaml sources when
# ocamlformat is installed.  Without ocamlformat the OCaml rules cannot
# run at all, so the gate is skipped rather than failed — the dune-file
# part alone cannot be separated from the broken alias.
echo "== formatting"
if command -v ocamlformat >/dev/null 2>&1; then
  if dune build @fmt >/dev/null 2>&1; then
    echo "   formatting clean"
  else
    echo "   formatting diffs found; run: dune fmt" >&2
    exit 1
  fi
else
  echo "   ocamlformat not installed; skipping the formatting gate"
fi

# Documentation: @doc needs odoc; same skip-with-notice policy as the
# formatting gate when the tool is absent.
echo "== odoc"
if command -v odoc >/dev/null 2>&1; then
  if dune build @doc >/dev/null 2>&1; then
    echo "   odoc clean"
  else
    echo "   odoc errors found; run: dune build @doc" >&2
    exit 1
  fi
else
  echo "   odoc not installed; skipping the documentation gate"
fi

# Allocation budget: the bench `alloc` experiment measures bytes per
# invocation on the rating hot paths and exits nonzero when a meter
# exceeds ci/alloc_budget.json (PEAK_ALLOC_GATE=off downgrades the
# failure to a notice).  Same skip-with-notice policy as the tool gates
# when the bench binary is absent.
echo "== allocation budget"
ALLOC_BIN=_build/default/bench/main.exe
if [ -x "$ALLOC_BIN" ]; then
  if "$ALLOC_BIN" alloc > /dev/null; then
    echo "   hot-path allocation within budget"
  else
    echo "   allocation budget exceeded; run: dune exec bench/main.exe -- alloc" >&2
    exit 1
  fi
else
  echo "   bench binary not built; skipping the allocation gate"
fi

# Adaptive drift gate: the bench `adaptive` experiment sweeps the
# (benchmark x drift pattern) matrix with per-cell SLOs (total cycles
# vs the drift-aware oracle, bounded time-to-readapt) and writes
# BENCH_adaptive.json; PEAK_ADAPTIVE_GATE=off downgrades a breach.
# The smoke runs the 3-cell mini-matrix twice on the pinned seed (the
# SLO table must pass and the rerun must be byte-identical), then the
# full >= 1M-invocation matrix.  Same skip-with-notice policy as the
# other gates when the bench binary is absent.
echo "== adaptive drift smoke"
ADAPTIVE_BIN=_build/default/bench/main.exe
if [ -x "$ADAPTIVE_BIN" ]; then
  ADAPT_TMP=$(mktemp -d)
  if PEAK_ADAPTIVE_CELLS=mini PEAK_ADAPTIVE_REPORT="$ADAPT_TMP/mini1.json" \
     "$ADAPTIVE_BIN" adaptive > /dev/null; then
    echo "   mini-matrix SLO table passes"
  else
    echo "   adaptive mini-matrix breached an SLO; run: PEAK_ADAPTIVE_CELLS=mini dune exec bench/main.exe -- adaptive" >&2
    rm -rf "$ADAPT_TMP"
    exit 1
  fi
  PEAK_ADAPTIVE_CELLS=mini PEAK_ADAPTIVE_REPORT="$ADAPT_TMP/mini2.json" \
    "$ADAPTIVE_BIN" adaptive > /dev/null
  if diff "$ADAPT_TMP/mini1.json" "$ADAPT_TMP/mini2.json" > /dev/null; then
    echo "   mini-matrix rerun byte-identical"
  else
    echo "   adaptive mini-matrix rerun DIFFERS from the first run" >&2
    rm -rf "$ADAPT_TMP"
    exit 1
  fi
  if PEAK_ADAPTIVE_REPORT="$ADAPT_TMP/full.json" "$ADAPTIVE_BIN" adaptive > /dev/null; then
    echo "   full drift matrix within SLOs"
  else
    echo "   adaptive drift matrix breached an SLO; run: dune exec bench/main.exe -- adaptive" >&2
    rm -rf "$ADAPT_TMP"
    exit 1
  fi
  rm -rf "$ADAPT_TMP"
else
  echo "   bench binary not built; skipping the adaptive drift gate"
fi

# CLI error contract: an unknown rating method must die with a one-line
# error naming the valid methods, exit status 1.
echo "== unknown method rejection"
BIN=_build/default/bin/peak_tune.exe
SMOKE_ERR_TMP=$(mktemp)
if "$BIN" tune ART -m pentium4 -r bogus >/dev/null 2>"$SMOKE_ERR_TMP"; then
  echo "   bogus method accepted (expected exit 1)" >&2
  exit 1
fi
if [ "$(wc -l < "$SMOKE_ERR_TMP")" -eq 1 ] && grep -q "cbr" "$SMOKE_ERR_TMP"; then
  echo "   one-line error listing valid methods"
else
  echo "   unexpected error output for a bogus method:" >&2
  cat "$SMOKE_ERR_TMP" >&2
  rm -f "$SMOKE_ERR_TMP"
  exit 1
fi
rm -f "$SMOKE_ERR_TMP"

# Store resume smoke: kill a store-backed tuning session mid-flight,
# resume it, and require the final result to be byte-identical to an
# uninterrupted run of the same session.
echo "== store resume smoke"
BIN=_build/default/bin/peak_tune.exe
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

"$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/ref" \
  | tail -5 > "$SMOKE/ref.out"

"$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/crash" \
  > /dev/null 2>&1 &
tune_pid=$!
sleep 2
kill -9 "$tune_pid" 2>/dev/null || true
wait "$tune_pid" 2>/dev/null || true

id=$("$BIN" session list --store "$SMOKE/crash" -q)
if [ -n "$id" ]; then
  "$BIN" session resume --store "$SMOKE/crash" "$id" | tail -5 > "$SMOKE/resumed.out"
else
  # the kill landed before the session directory existed; fall back to a
  # fresh run, which still must match the reference
  "$BIN" tune ART -m pentium4 -r rbr --search ie --store "$SMOKE/crash" \
    | tail -5 > "$SMOKE/resumed.out"
fi

if diff "$SMOKE/ref.out" "$SMOKE/resumed.out"; then
  echo "   resumed result identical to uninterrupted run"
else
  echo "   resumed result DIFFERS from uninterrupted run" >&2
  exit 1
fi
"$BIN" session gc --store "$SMOKE/crash" > /dev/null

# Fallback resume smoke: a rating cap below the convergence window makes
# every absolute probe fail, so an auto session walks the fallback chain
# down to RBR.  Kill it mid-flight and the resume must replay the probe
# verdicts from the journal and produce the identical result.
echo "== fallback resume smoke"
"$BIN" tune MGRID -m sparc2 --rating-cap 30 --search be --store "$SMOKE/fbref" \
  | tail -6 > "$SMOKE/fbref.out"
if ! grep -q "Fallback chain:" "$SMOKE/fbref.out"; then
  echo "   rating cap did not force a fallback:" >&2
  cat "$SMOKE/fbref.out" >&2
  exit 1
fi

"$BIN" tune MGRID -m sparc2 --rating-cap 30 --search be --store "$SMOKE/fbcrash" \
  > /dev/null 2>&1 &
tune_pid=$!
sleep 2
kill -9 "$tune_pid" 2>/dev/null || true
wait "$tune_pid" 2>/dev/null || true

id=$("$BIN" session list --store "$SMOKE/fbcrash" -q)
if [ -n "$id" ]; then
  "$BIN" session resume --store "$SMOKE/fbcrash" "$id" | tail -6 > "$SMOKE/fbresumed.out"
else
  "$BIN" tune MGRID -m sparc2 --rating-cap 30 --search be --store "$SMOKE/fbcrash" \
    | tail -6 > "$SMOKE/fbresumed.out"
fi

if diff "$SMOKE/fbref.out" "$SMOKE/fbresumed.out"; then
  echo "   resumed fallback result identical to uninterrupted run"
else
  echo "   resumed fallback result DIFFERS from uninterrupted run" >&2
  exit 1
fi
"$BIN" session gc --store "$SMOKE/fbcrash" > /dev/null

# Strategy smoke: the search-strategy registry must reject unknown
# names with a one-line error naming the valid strategies, list
# `staged` in its table, and survive a mid-flight kill of a staged
# session with a byte-identical resume.  Finally, with a BE-warmed
# store corpus behind it, staged must spend strictly fewer ratings
# than exhaustive CE on the same workload.
echo "== strategy smoke"
SMOKE_ERR_TMP=$(mktemp)
if "$BIN" tune ART -m pentium4 -s bogus >/dev/null 2>"$SMOKE_ERR_TMP"; then
  echo "   bogus strategy accepted (expected exit 1)" >&2
  exit 1
fi
if [ "$(wc -l < "$SMOKE_ERR_TMP")" -eq 1 ] && grep -q "staged" "$SMOKE_ERR_TMP"; then
  echo "   one-line error listing valid strategies"
else
  echo "   unexpected error output for a bogus strategy:" >&2
  cat "$SMOKE_ERR_TMP" >&2
  rm -f "$SMOKE_ERR_TMP"
  exit 1
fi
rm -f "$SMOKE_ERR_TMP"

if "$BIN" strategies | grep -q "staged"; then
  echo "   strategies table lists staged"
else
  echo "   strategies table is missing staged:" >&2
  "$BIN" strategies >&2
  exit 1
fi

# warm a store with a BE sweep (one clean single-flag row per flag),
# compact it into the index, and clone it so the reference and crash
# runs screen against the identical corpus
"$BIN" tune ART -m pentium4 -r rbr -s be --store "$SMOKE/stg" > /dev/null
"$BIN" session gc --store "$SMOKE/stg" > /dev/null
cp -r "$SMOKE/stg" "$SMOKE/stg-crash"

"$BIN" tune ART -m pentium4 -r rbr -s staged --store "$SMOKE/stg" \
  | tail -5 > "$SMOKE/stg-ref.out"

"$BIN" tune ART -m pentium4 -r rbr -s staged --store "$SMOKE/stg-crash" \
  > /dev/null 2>&1 &
tune_pid=$!
sleep 1
kill -9 "$tune_pid" 2>/dev/null || true
wait "$tune_pid" 2>/dev/null || true

id=$("$BIN" session list --store "$SMOKE/stg-crash" -q | grep staged || true)
if [ -n "$id" ]; then
  "$BIN" session resume --store "$SMOKE/stg-crash" "$id" \
    | tail -5 > "$SMOKE/stg-resumed.out"
else
  # the kill landed before the session directory existed; a fresh run
  # against the same corpus still must match the reference
  "$BIN" tune ART -m pentium4 -r rbr -s staged --store "$SMOKE/stg-crash" \
    | tail -5 > "$SMOKE/stg-resumed.out"
fi

if diff "$SMOKE/stg-ref.out" "$SMOKE/stg-resumed.out"; then
  echo "   resumed staged result identical to uninterrupted run"
else
  echo "   resumed staged result DIFFERS from uninterrupted run" >&2
  exit 1
fi

# ratings budget: the journal-trained screen exists to spend less than
# the exhaustive sweep, so hold it to that on the warmed store
staged_ratings=$(sed -n 's/^Search: \([0-9][0-9]*\) ratings.*/\1/p' "$SMOKE/stg-ref.out")
"$BIN" tune ART -m pentium4 -r rbr -s ce --store "$SMOKE/stg" \
  | tail -5 > "$SMOKE/stg-ce.out"
ce_ratings=$(sed -n 's/^Search: \([0-9][0-9]*\) ratings.*/\1/p' "$SMOKE/stg-ce.out")
if [ -n "$staged_ratings" ] && [ -n "$ce_ratings" ] \
   && [ "$staged_ratings" -lt "$ce_ratings" ]; then
  echo "   staged spends fewer ratings than CE ($staged_ratings vs $ce_ratings)"
else
  echo "   staged did not beat CE's rating budget (staged=$staged_ratings ce=$ce_ratings)" >&2
  exit 1
fi

# Fault smoke: the differential fault oracles (quarantine ground truth,
# -j independence, auto == forced, kill/resume identity) must hold for
# three pinned seeds.  PEAK_FAULT_SEED collapses each test's seed list
# to the single given seed, so the three runs cover the default set.
echo "== fault smoke"
TESTS=_build/default/test/test_main.exe
for s in 3 7 23; do
  if PEAK_FAULT_SEED=$s "$TESTS" test faults > /dev/null 2>&1; then
    echo "   fault oracles hold under seed $s"
  else
    echo "   fault oracles FAILED under seed $s; run: PEAK_FAULT_SEED=$s $TESTS test faults" >&2
    exit 1
  fi
done

# Tracer smoke: the same tune with --trace must print the same result
# (tracing never perturbs tuning), stay within a modest wall-clock
# envelope, and write a trace.json that `trace summarize` validates.
echo "== tracer overhead smoke"
t0=$(date +%s%N)
"$BIN" tune SWIM -m pentium4 -r rbr --search be | tail -5 > "$SMOKE/plain.out"
t1=$(date +%s%N)
"$BIN" tune SWIM -m pentium4 -r rbr --search be --trace "$SMOKE/trace.json" \
  | grep -v '^Trace written' | tail -5 > "$SMOKE/traced.out"
t2=$(date +%s%N)

if diff "$SMOKE/plain.out" "$SMOKE/traced.out"; then
  echo "   traced result identical to untraced run"
else
  echo "   traced result DIFFERS from untraced run" >&2
  exit 1
fi

plain_ms=$(( (t1 - t0) / 1000000 ))
traced_ms=$(( (t2 - t1) / 1000000 ))
# within 10% of the untraced wall clock, plus 1s of absolute slack for
# scheduler jitter on short runs
limit_ms=$(( plain_ms + plain_ms / 10 + 1000 ))
if [ "$traced_ms" -le "$limit_ms" ]; then
  echo "   tracer overhead within budget (${plain_ms}ms untraced, ${traced_ms}ms traced)"
else
  echo "   tracer overhead too high: ${plain_ms}ms untraced vs ${traced_ms}ms traced" >&2
  exit 1
fi

if [ ! -s "$SMOKE/trace.json" ]; then
  echo "   --trace wrote no trace file" >&2
  exit 1
fi
if "$BIN" trace summarize "$SMOKE/trace.json" > "$SMOKE/trace-summary.out"; then
  echo "   trace.json parses and validates"
else
  echo "   trace summarize rejected the written trace:" >&2
  cat "$SMOKE/trace-summary.out" >&2
  exit 1
fi
if grep -q "Spans by category" "$SMOKE/trace-summary.out"; then
  echo "   summary reports span categories"
else
  echo "   unexpected trace summary output:" >&2
  cat "$SMOKE/trace-summary.out" >&2
  exit 1
fi

# Serve smoke: a real daemon on a temp socket must serve concurrent
# clients bit-identically to the batch CLI, tolerate `session list` on
# a held store, drain on SIGTERM with a resumable journal, and resume
# the interrupted session to the exact uninterrupted result.
echo "== serve smoke"
TUNED=_build/default/bin/peak_tuned.exe
SOCK="unix:$SMOKE/serve/peak-tuned.sock"

wait_for_sock() {
  i=0
  while [ ! -S "$SMOKE/serve/peak-tuned.sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "   daemon never bound its socket" >&2
      exit 1
    fi
    sleep 0.1
  done
}

"$TUNED" --store "$SMOKE/serve" -j 2 --trace "$SMOKE/serve-trace.json" \
  > "$SMOKE/daemon1.log" 2>&1 &
tuned_pid=$!
wait_for_sock

# two concurrent tenants; tails must match the batch CLI's results below
"$BIN" client submit ART --daemon "$SOCK" -m pentium4 -r rbr --search be \
  | tail -4 > "$SMOKE/serve-art.out" &
client1=$!
"$BIN" client submit SWIM --daemon "$SOCK" -m pentium4 -r rbr --search be \
  | tail -4 > "$SMOKE/serve-swim.out" &
client2=$!
wait "$client1" "$client2"

# the daemon holds the store; listing it must still work (live label)
if "$BIN" session list --store "$SMOKE/serve" > /dev/null; then
  echo "   session list works on a daemon-held store"
else
  echo "   session list failed on a daemon-held store" >&2
  exit 1
fi

# the stored results must be byte-identical to the batch CLI's
for b in ART SWIM; do
  out=$(echo "$b" | tr 'A-Z' 'a-z')
  "$BIN" tune "$b" -m pentium4 -r rbr --search be --store "$SMOKE/serve-batch" \
    > /dev/null
  id=$("$BIN" session list --store "$SMOKE/serve-batch" -q | grep "^$out-")
  if diff "$SMOKE/serve/sessions/$id/result.json" \
          "$SMOKE/serve-batch/sessions/$id/result.json"; then
    echo "   $b via daemon identical to batch CLI"
  else
    echo "   $b daemon result DIFFERS from batch CLI" >&2
    exit 1
  fi
done

# a third, longer session: detach, kill the daemon mid-flight
"$BIN" client submit SWIM --daemon "$SOCK" -m pentium4 --search random2000 \
  --rating-cap 100 --seed 5 --detach > /dev/null
sleep 0.7
kill -TERM "$tuned_pid"
wait "$tuned_pid" || { echo "   daemon exited nonzero after SIGTERM" >&2; exit 1; }
if ! grep -q "drained" "$SMOKE/daemon1.log"; then
  echo "   daemon did not drain cleanly:" >&2
  cat "$SMOKE/daemon1.log" >&2
  exit 1
fi

# the daemon's own trace must parse and summarize
if "$BIN" trace summarize "$SMOKE/serve-trace.json" > /dev/null; then
  echo "   server trace parses and validates"
else
  echo "   trace summarize rejected the server trace" >&2
  exit 1
fi

# restart and resume the interrupted session: bit-identical to an
# uninterrupted client run of the same spec on a fresh daemon
"$TUNED" --store "$SMOKE/serve" -j 2 > "$SMOKE/daemon2.log" 2>&1 &
tuned_pid=$!
wait_for_sock
rid=$("$BIN" session list --store "$SMOKE/serve" -q | grep random2000)
"$BIN" client resume --daemon "$SOCK" "$rid" | tail -4 > "$SMOKE/serve-resumed.out"
kill -TERM "$tuned_pid"
wait "$tuned_pid" || true

"$TUNED" --store "$SMOKE/serve-ref" -j 2 > "$SMOKE/daemon3.log" 2>&1 &
tuned_pid=$!
SOCK="unix:$SMOKE/serve-ref/peak-tuned.sock"
i=0
while [ ! -S "$SMOKE/serve-ref/peak-tuned.sock" ]; do
  i=$((i + 1)); [ "$i" -gt 100 ] && exit 1
  sleep 0.1
done
"$BIN" client submit SWIM --daemon "$SOCK" -m pentium4 --search random2000 \
  --rating-cap 100 --seed 5 | tail -4 > "$SMOKE/serve-uninterrupted.out"
kill -TERM "$tuned_pid"
wait "$tuned_pid" || true

if diff "$SMOKE/serve-resumed.out" "$SMOKE/serve-uninterrupted.out"; then
  echo "   resumed daemon session identical to uninterrupted run"
else
  echo "   resumed daemon session DIFFERS from uninterrupted run" >&2
  exit 1
fi

# KB smoke: build a knowledge base from the strategy smoke's warmed
# store, recommend a start for a held-out benchmark (exit 0, non-empty
# ranked list), require the build to be byte-identical when repeated,
# and hold the kb command group to the one-line unknown-subcommand
# contract the method/strategy errors follow.
echo "== kb smoke"
"$BIN" kb build --store "$SMOKE/stg" -o "$SMOKE/kb.json" > "$SMOKE/kb-build.out"
if grep -q "rows over" "$SMOKE/kb-build.out"; then
  echo "   kb built from the warmed store"
else
  echo "   unexpected kb build output:" >&2
  cat "$SMOKE/kb-build.out" >&2
  exit 1
fi
if "$BIN" kb recommend "$SMOKE/kb.json" MGRID -m pentium4 > "$SMOKE/kb-rec.out" \
   && grep -q "^| 1 " "$SMOKE/kb-rec.out"; then
  echo "   held-out benchmark gets a ranked recommendation"
else
  echo "   kb recommend produced no ranked list:" >&2
  cat "$SMOKE/kb-rec.out" >&2
  exit 1
fi
"$BIN" kb build --store "$SMOKE/stg" -o "$SMOKE/kb-again.json" > /dev/null
if diff "$SMOKE/kb.json" "$SMOKE/kb-again.json" > /dev/null; then
  echo "   rebuild is byte-identical"
else
  echo "   kb build is not deterministic:" >&2
  diff "$SMOKE/kb.json" "$SMOKE/kb-again.json" >&2 || true
  exit 1
fi
SMOKE_ERR_TMP=$(mktemp)
if "$BIN" kb bogus >/dev/null 2>"$SMOKE_ERR_TMP"; then
  echo "   bogus kb subcommand accepted (expected exit 1)" >&2
  rm -f "$SMOKE_ERR_TMP"
  exit 1
fi
if [ "$(wc -l < "$SMOKE_ERR_TMP")" -eq 1 ] && grep -q "build" "$SMOKE_ERR_TMP"; then
  echo "   one-line error listing valid kb commands"
else
  echo "   unexpected error output for a bogus kb subcommand:" >&2
  cat "$SMOKE_ERR_TMP" >&2
  rm -f "$SMOKE_ERR_TMP"
  exit 1
fi
rm -f "$SMOKE_ERR_TMP"

# KB corpus-growth gate: the bench `kb` experiment tunes a held-out
# benchmark against nearest-first corpus prefixes and requires the
# rating spend to shrink monotonically, strictly below cold at the full
# corpus (BENCH_kb.json; PEAK_KB_GATE=off downgrades a breach).
KB_BIN=_build/default/bench/main.exe
if [ -x "$KB_BIN" ]; then
  if "$KB_BIN" kb > /dev/null; then
    echo "   kb corpus-growth curve within its gate"
  else
    echo "   kb corpus-growth gate breached; run: dune exec bench/main.exe -- kb" >&2
    exit 1
  fi
else
  echo "   bench binary not built; skipping the kb corpus-growth gate"
fi

echo "== OK"
