(* Allocation-regression tests for the rating hot paths.

   The budgets pinned here mirror ci/alloc_budget.json: the steady-state
   compiled interpreter loop allocates nothing (sub-byte amortized), and
   a warm rating-summary scratch stays within a small constant.  The
   assertions only run on the native backend — bytecode boxes every
   float and would trip any budget. *)

open Peak_ir
module B = Builder

let native = Sys.backend_type = Sys.Native

(* Amortized bytes per call after two warmup calls (the warmups grow
   scratch buffers to their steady-state capacity).  Minimum of three
   measurements: background threads (the systhreads tick thread, pool
   domains from other suites) add strictly positive noise to
   Gc.allocated_bytes, and the minimum discards it. *)
let bytes_per_call f n =
  ignore (f ());
  ignore (f ());
  let once () =
    let b0 = Gc.allocated_bytes () in
    for _ = 1 to n do
      ignore (f ())
    done;
    let b1 = Gc.allocated_bytes () in
    (b1 -. b0) /. float_of_int n
  in
  Float.min (once ()) (Float.min (once ()) (once ()))

(* The Figure-2 shape: a loop-body component plus a tail component —
   the same probe the bench `alloc` experiment meters. *)
let loop_ts =
  B.ts ~name:"alloc_probe" ~params:[ "n" ] ~arrays:[ ("a", 256); ("b", 256) ]
    ~locals:[ "i"; "t" ]
    B.
      [
        for_ "i" ~lo:(ci 0) ~hi:(v "n") [ store "a" (v "i") (idx "b" (v "i") + c 1.0) ];
        "t" := idx "a" (ci 0) * c 2.0;
      ]

let test_interp_steady_state_zero_alloc () =
  if native then begin
    let cfg = Cfg.of_ts loop_ts in
    let env = Interp.make_env loop_ts in
    Interp.set_scalar env "n" 256.0;
    let compiled = Interp.compile cfg env in
    let scratch = Interp.make_scratch compiled in
    let per_call = bytes_per_call (fun () -> Interp.run_compiled compiled scratch) 1000 in
    if per_call >= 1.0 then
      Alcotest.failf "run_compiled allocates %.1f bytes/invocation (budget < 1)" per_call
  end

let test_summarize_into_budget () =
  if native then begin
    let rng = Peak_util.Rng.create ~seed:1 in
    let samples = List.init 80 (fun _ -> 100.0 +. Peak_util.Rng.float rng) in
    let params = Peak.Rating.default_params in
    let scratch = Peak.Rating.make_scratch () in
    let per_call =
      bytes_per_call (fun () -> Peak.Rating.summarize_into scratch ~params samples) 2000
    in
    if per_call > 64.0 then
      Alcotest.failf "summarize_into allocates %.1f bytes/window (budget 64)" per_call
  end

let suites =
  [
    ( "alloc",
      [
        Alcotest.test_case "interp steady state is allocation-free" `Quick
          test_interp_steady_state_zero_alloc;
        Alcotest.test_case "summarize_into stays within budget" `Quick
          test_summarize_into_budget;
      ] );
  ]
