(* Tests for the IR transformations: directed cases plus the
   semantics-preservation property over every benchmark section. *)

open Peak_ir
open Peak_workload
module B = Builder

let count_assignments ts =
  let n = ref 0 in
  let rec go = function
    | Types.Assign _ -> incr n
    | Types.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Types.For { body; _ } | Types.While (_, body) -> List.iter go body
    | _ -> ()
  in
  List.iter go ts.Types.body;
  !n

let rec find_store = function
  | [] -> None
  | Types.Store (a, i, e) :: _ -> Some (a, i, e)
  | Types.For { body; _ } :: rest | Types.While (_, body) :: rest -> (
      match find_store body with Some s -> Some s | None -> find_store rest)
  | Types.If (_, x, y) :: rest -> (
      match find_store x with
      | Some s -> Some s
      | None -> ( match find_store y with Some s -> Some s | None -> find_store rest))
  | _ :: rest -> find_store rest

let test_const_prop_folds_derived_subscript () =
  let ts =
    B.ts ~name:"t" ~params:[ "x" ] ~arrays:[ ("a", 16) ] ~locals:[ "base"; "off" ]
      B.
        [
          "base" := ci 4;
          "off" := v "base" + ci 3;
          store "a" (v "off") (v "x");
        ]
  in
  let ts' = Transform.const_propagate ts in
  match find_store ts'.Types.body with
  | Some (_, Types.Const 7.0, _) -> ()
  | Some (_, other, _) -> Alcotest.failf "subscript not folded: %s" (Expr.to_string other)
  | None -> Alcotest.fail "store disappeared"

let test_const_prop_respects_branch_merge () =
  (* y is 1 or 2 depending on the branch: must not be propagated after *)
  let ts =
    B.ts ~name:"t" ~params:[ "c2" ] ~arrays:[ ("a", 16) ] ~locals:[ "y" ]
      B.
        [
          if_ (v "c2" > c 0.0) [ "y" := c 1.0 ] [ "y" := c 2.0 ];
          store "a" (v "y") (c 9.0);
        ]
  in
  let ts' = Transform.const_propagate ts in
  (match find_store ts'.Types.body with
  | Some (_, Types.Var "y", _) -> ()
  | _ -> Alcotest.fail "divergent branch constant must not propagate");
  (* but agreeing branches do *)
  let agree =
    B.ts ~name:"t" ~params:[ "c2" ] ~arrays:[ ("a", 16) ] ~locals:[ "y" ]
      B.
        [
          if_ (v "c2" > c 0.0) [ "y" := c 5.0 ] [ "y" := c 5.0 ];
          store "a" (v "y") (c 9.0);
        ]
  in
  match find_store (Transform.const_propagate agree).Types.body with
  | Some (_, Types.Const 5.0, _) -> ()
  | _ -> Alcotest.fail "agreeing branch constant should propagate"

let test_const_prop_loop_invalidation () =
  let ts =
    B.ts ~name:"t" ~params:[ "n" ] ~arrays:[ ("a", 16) ] ~locals:[ "k" ]
      B.
        [
          "k" := ci 2;
          for_ "i" ~lo:(ci 0) ~hi:(v "n") [ "k" := v "k" + ci 1 ];
          store "a" (v "k") (c 1.0);
        ]
    |> fun ts -> { ts with Types.locals = "i" :: ts.Types.locals }
  in
  match find_store (Transform.const_propagate ts).Types.body with
  | Some (_, Types.Var "k", _) -> ()
  | _ -> Alcotest.fail "loop-written scalar must not stay constant"

let test_dae_removes_unread_local () =
  let ts =
    B.ts ~name:"t" ~params:[ "x" ] ~locals:[ "unused"; "used" ]
      B.[ "unused" := v "x" * c 2.0; "used" := v "x" + c 1.0; "x" := v "used" ]
  in
  let ts' = Transform.dead_assignment_elim ts in
  Alcotest.(check int) "one assignment dropped" 2 (count_assignments ts')

let test_dae_keeps_faulting_rhs () =
  (* the rhs reads a[i] with a variable subscript: bounds behaviour is
     observable, so the dead assignment must stay *)
  let ts =
    B.ts ~name:"t" ~params:[ "i" ] ~arrays:[ ("a", 4) ] ~locals:[ "unused" ]
      B.[ "unused" := idx "a" (v "i") ]
  in
  Alcotest.(check int) "kept" 1 (count_assignments (Transform.dead_assignment_elim ts));
  (* with a constant subscript it can go *)
  let safe =
    B.ts ~name:"t" ~params:[ "i" ] ~arrays:[ ("a", 4) ] ~locals:[ "unused" ]
      B.[ "unused" := idx "a" (ci 2) ]
  in
  Alcotest.(check int) "dropped" 0 (count_assignments (Transform.dead_assignment_elim safe))

let test_dae_keeps_params () =
  let ts = B.ts ~name:"t" ~params:[ "x"; "y" ] ~locals:[] B.[ "x" := v "y" + c 1.0 ] in
  Alcotest.(check int) "param write kept" 1
    (count_assignments (Transform.dead_assignment_elim ts))

(* ------------------------------------------------------------------ *)
(* Semantics preservation over the real benchmark sections             *)
(* ------------------------------------------------------------------ *)

let run_both (b : Benchmark.t) transform ~seed ~invocation =
  let original = b.Benchmark.ts in
  let transformed = transform original in
  let exec ts =
    let cfg = Cfg.of_ts ts in
    let trace = b.Benchmark.trace Trace.Train ~seed in
    let env = Interp.make_env ts in
    trace.Trace.init env;
    for i = 0 to invocation do
      trace.Trace.setup i env
    done;
    let r = Interp.run cfg env in
    (r.Interp.block_counts, env)
  in
  (exec original, exec transformed)

let check_equivalent (b : Benchmark.t) transform ~seed ~invocation =
  let (counts1, env1), (counts2, env2) = run_both b transform ~seed ~invocation in
  (* same control decisions *)
  if counts1 <> counts2 then false
  else begin
    (* same arrays and pointers; scalars compared on the original's
       read-set plus params (dead locals may legitimately differ) *)
    let ts = b.Benchmark.ts in
    let arrays_ok =
      List.for_all
        (fun (a, _) -> Interp.get_array env1 a = Interp.get_array env2 a)
        ts.Types.arrays
    in
    let pointers_ok =
      List.for_all
        (fun (p, _) -> Interp.get_pointer env1 p = Interp.get_pointer env2 p)
        ts.Types.pointers
    in
    let scalars_ok =
      List.for_all
        (fun v -> Interp.get_scalar env1 v = Interp.get_scalar env2 v)
        ts.Types.params
    in
    arrays_ok && pointers_ok && scalars_ok
  end

let prop_transforms_preserve_semantics =
  QCheck.Test.make ~name:"optimize preserves behaviour on every benchmark" ~count:10
    QCheck.(pair (int_range 0 10_000) (int_range 0 30))
    (fun (seed, invocation) ->
      List.for_all
        (fun b -> check_equivalent b Transform.optimize ~seed ~invocation)
        Registry.all)

let prop_const_prop_idempotent =
  QCheck.Test.make ~name:"const_propagate is idempotent" ~count:5
    QCheck.(int_range 0 100)
    (fun _ ->
      List.for_all
        (fun (b : Benchmark.t) ->
          let once = Transform.const_propagate b.Benchmark.ts in
          Transform.const_propagate once = once)
        Registry.all)

let suites =
  [
    ( "ir.transform",
      [
        Alcotest.test_case "const prop subscripts" `Quick test_const_prop_folds_derived_subscript;
        Alcotest.test_case "branch merge" `Quick test_const_prop_respects_branch_merge;
        Alcotest.test_case "loop invalidation" `Quick test_const_prop_loop_invalidation;
        Alcotest.test_case "dae removes unread" `Quick test_dae_removes_unread_local;
        Alcotest.test_case "dae keeps faulting rhs" `Quick test_dae_keeps_faulting_rhs;
        Alcotest.test_case "dae keeps params" `Quick test_dae_keeps_params;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_transforms_preserve_semantics; prop_const_prop_idempotent ] );
  ]
