(* The tracing and metrics layer: tracer unit behavior (off = no-op,
   span nesting, ring bounds, export schema) and the determinism
   guarantee — tracing never perturbs tuning results, at any domain
   count, across kill/resume. *)

open Peak_machine
open Peak_workload
open Peak_store
open Peak

let bench = Oracles.bench
let with_tmpdir = Oracles.with_tmpdir
let check_identical = Oracles.check_identical
let crashed_copy = Oracles.crashed_copy
let contains = Oracles.contains

(* Every test installs its own sink and must leave the global tracer
   off for whoever runs next. *)
let with_sink ?capacity f =
  Peak_obs.install ?capacity ();
  Fun.protect ~finally:Peak_obs.uninstall f

(* ------------------------------------------------------------------ *)
(* Tracer unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_off_is_noop () =
  Alcotest.(check bool) "inactive by default" false (Peak_obs.active ());
  Alcotest.(check int) "begin_span returns 0 when off" 0 (Peak_obs.begin_span "x");
  Peak_obs.end_span 0;
  Peak_obs.instant "nothing";
  Peak_obs.count "nothing";
  Peak_obs.observe "nothing" 1.0;
  Alcotest.(check int) "timed is transparent when off" 42 (Peak_obs.timed "t" (fun () -> 42));
  Alcotest.(check int) "dropped 0 when off" 0 (Peak_obs.dropped ());
  Alcotest.(check bool) "no snapshot when off" true (Peak_obs.snapshot () = None);
  Alcotest.(check bool) "no export when off" true (Peak_obs.export () = None)

let test_span_nesting_and_args () =
  with_sink @@ fun () ->
  let outer = Peak_obs.begin_span ~cat:"test" ~args:[ ("k", "v") ] "outer" in
  Alcotest.(check bool) "span ids are positive" true (outer > 0);
  let inner = Peak_obs.begin_span ~parent:outer ~cat:"test" "inner" in
  Peak_obs.end_span inner;
  Peak_obs.end_span ~args:[ ("done", "yes") ] outer;
  Peak_obs.count ~n:3 "unit.counter";
  Peak_obs.observe "unit.timing" 0.25;
  Peak_obs.observe "unit.timing" 0.75;
  let s = Option.get (Peak_obs.snapshot ()) in
  Alcotest.(check int) "two completed events" 2 s.Peak_obs.events;
  Alcotest.(check int) "no open spans" 0 s.Peak_obs.open_spans;
  Alcotest.(check int) "nothing dropped" 0 s.Peak_obs.dropped;
  Alcotest.(check (list (pair string int))) "counter aggregated"
    [ ("unit.counter", 3) ] s.Peak_obs.counters;
  (match s.Peak_obs.timings with
  | [ (name, t) ] ->
      Alcotest.(check string) "timing name" "unit.timing" name;
      Alcotest.(check int) "timing count" 2 t.Peak_obs.t_count;
      Alcotest.(check (float 1e-9)) "timing total" 1.0 t.Peak_obs.t_total
  | _ -> Alcotest.fail "expected exactly one timing");
  match s.Peak_obs.span_stats with
  | [ ("test", st) ] -> Alcotest.(check int) "both spans under test cat" 2 st.Peak_obs.s_count
  | _ -> Alcotest.fail "expected one span category"

let test_with_span_exception () =
  with_sink @@ fun () ->
  (try Peak_obs.with_span "boom" (fun _ -> failwith "boom") with Failure _ -> ());
  let doc = Result.get_ok (Json.of_string (Option.get (Peak_obs.export ()))) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  Alcotest.(check int) "failing span still closed" 1 (List.length trace.Tracefile.spans);
  Alcotest.(check int) "no open spans" 0 trace.Tracefile.open_spans;
  (* the raised=true tag reaches the export *)
  Alcotest.(check bool) "raised tag in export" true
    (contains ~sub:{|"raised":"true"|} (Option.get (Peak_obs.export ())))

let test_ring_overflow_drops () =
  with_sink ~capacity:16 @@ fun () ->
  for i = 1 to 40 do
    Peak_obs.instant ~args:[ ("i", string_of_int i) ] "tick"
  done;
  Alcotest.(check int) "overflow counted" 24 (Peak_obs.dropped ());
  let s = Option.get (Peak_obs.snapshot ()) in
  Alcotest.(check int) "ring holds capacity events" 16 s.Peak_obs.events;
  (* oldest-first: the survivors are the last 16 ticks *)
  let doc = Result.get_ok (Json.of_string (Option.get (Peak_obs.export ()))) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  Alcotest.(check int) "export matches ring" 16 (List.length trace.Tracefile.instants);
  Alcotest.(check int) "dropped in otherData" 24 trace.Tracefile.dropped

let test_export_round_trip () =
  with_sink @@ fun () ->
  let outer = Peak_obs.begin_span ~cat:"phase" "outer" in
  Peak_obs.with_span ~parent:outer ~cat:"work" "inner" (fun _ -> ());
  Peak_obs.instant ~cat:"note" "marker";
  Peak_obs.count "c.one";
  Peak_obs.observe "t.one" 0.5;
  (* [outer] stays open: export must flag it and validate must accept *)
  let doc = Result.get_ok (Json.of_string (Option.get (Peak_obs.export ()))) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  (match Tracefile.validate trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("validate rejected a fresh export: " ^ e));
  Alcotest.(check int) "two spans exported" 2 (List.length trace.Tracefile.spans);
  Alcotest.(check int) "one instant exported" 1 (List.length trace.Tracefile.instants);
  Alcotest.(check int) "one unclosed span" 1 trace.Tracefile.open_spans;
  let unclosed = List.filter (fun s -> s.Tracefile.sp_unclosed) trace.Tracefile.spans in
  (match unclosed with
  | [ s ] -> Alcotest.(check string) "the open span is outer" "outer" s.Tracefile.sp_name
  | _ -> Alcotest.fail "expected exactly one unclosed span");
  let inner = List.find (fun s -> s.Tracefile.sp_name = "inner") trace.Tracefile.spans in
  let outer' = List.find (fun s -> s.Tracefile.sp_name = "outer") trace.Tracefile.spans in
  Alcotest.(check int) "parent link survives the round trip"
    outer'.Tracefile.sp_id inner.Tracefile.sp_parent;
  Alcotest.(check (list (pair string int))) "counters survive"
    [ ("c.one", 1) ] trace.Tracefile.counters;
  match trace.Tracefile.timings with
  | [ ("t.one", (1, total)) ] -> Alcotest.(check (float 1e-9)) "timing total" 0.5 total
  | _ -> Alcotest.fail "expected one timing"

let test_validate_rejects_corruption () =
  with_sink @@ fun () ->
  Peak_obs.with_span "a" (fun _ -> ());
  let doc = Result.get_ok (Json.of_string (Option.get (Peak_obs.export ()))) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  let span = List.hd trace.Tracefile.spans in
  (* dangling parent id *)
  let bad = { trace with Tracefile.spans = [ { span with Tracefile.sp_parent = 999 } ] } in
  (match Tracefile.validate bad with
  | Ok () -> Alcotest.fail "dangling parent accepted"
  | Error e -> Alcotest.(check bool) "one-line error" false (String.contains e '\n'));
  (* duplicate span ids *)
  let bad = { trace with Tracefile.spans = [ span; span ] } in
  (match Tracefile.validate bad with
  | Ok () -> Alcotest.fail "duplicate span id accepted"
  | Error _ -> ());
  (* unclosed flags disagreeing with otherData *)
  let bad = { trace with Tracefile.open_spans = 3 } in
  match Tracefile.validate bad with
  | Ok () -> Alcotest.fail "open-span mismatch accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Tracing never perturbs results                                      *)
(* ------------------------------------------------------------------ *)

let machine = Machine.sparc2

let test_trace_on_off_identical () =
  let b = bench "MGRID" in
  let plain = Driver.tune ~search:Driver.Be b machine Trace.Train in
  let traced = with_sink (fun () -> Driver.tune ~search:Driver.Be b machine Trace.Train) in
  check_identical "traced vs untraced" plain traced;
  (* the durable summary — what result.json serializes — is byte-identical *)
  let encode r = Json.to_string (Codec.session_result_to_json (Driver.result_summary r)) in
  Alcotest.(check string) "result.json bytes identical" (encode plain) (encode traced)

let test_trace_domain_count_identical () =
  let suite domains =
    with_sink @@ fun () ->
    Driver.tune_suite ~search:Driver.Be ~domains
      [ bench "SWIM"; bench "MGRID" ]
      machine Trace.Train
  in
  let r1 = suite 1 and r4 = suite 4 in
  List.iter2
    (fun a b -> check_identical (a.Driver.benchmark.Benchmark.name ^ " traced 1v4") a b)
    r1 r4

let test_trace_kill_resume_identical () =
  with_tmpdir @@ fun root ->
  let b = bench "SWIM" in
  let search = Driver.Be and method_ = Method.Rbr in
  let meta = Driver.session_meta ~method_ ~search b machine Trace.Train in
  let id = meta.Codec.m_id in
  let full_dir = Filename.concat root "full" in
  let session = Result.get_ok (Session.open_ ~dir:full_dir ~meta ()) in
  (* the reference run is untraced *)
  let full =
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~search ~method_ ~store:session b machine Trace.Train)
  in
  let n_events = (Result.get_ok (Session.load_info ~dir:full_dir ~id)).Session.info_events in
  let dst_dir = Filename.concat root "crash" in
  ignore (crashed_copy ~src_dir:full_dir ~dst_dir ~id ~keep:(n_events / 2));
  (* the resume runs with the tracer installed *)
  let resumed =
    with_sink @@ fun () ->
    let session = Result.get_ok (Session.open_ ~dir:dst_dir ~meta ()) in
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~search ~method_ ~store:session b machine Trace.Train)
  in
  check_identical "traced resume vs untraced uninterrupted" full resumed

let test_tune_trace_schema () =
  let export =
    with_sink @@ fun () ->
    (* pool-backed, so the deterministic per-candidate scheme runs and
       emits the per-rating spans alongside the pool counters *)
    Peak_util.Pool.run ~domains:2 (fun pool ->
        ignore (Driver.tune ~search:Driver.Be ~pool (bench "MGRID") machine Trace.Train));
    Option.get (Peak_obs.export ())
  in
  let doc = Result.get_ok (Json.of_string export) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  (match Tracefile.validate trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("tune trace failed validation: " ^ e));
  let cats = List.map (fun s -> s.Tracefile.sp_cat) trace.Tracefile.spans in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " span present") true (List.mem c cats))
    [ "tune"; "phase.profile"; "phase.search"; "rate" ];
  (* every rating span sits under the tune span tree *)
  Alcotest.(check bool) "rate spans have parents" true
    (List.for_all
       (fun s -> s.Tracefile.sp_parent <> 0)
       (List.filter (fun s -> s.Tracefile.sp_cat = "rate") trace.Tracefile.spans));
  (* per-method rating instants and counters made it out *)
  Alcotest.(check bool) "method instants recorded" true
    (List.exists (fun i -> i.Tracefile.i_cat = "method") trace.Tracefile.instants);
  Alcotest.(check bool) "method invocation counters recorded" true
    (List.exists
       (fun (name, n) -> n > 0 && contains ~sub:"method.invocations." name)
       trace.Tracefile.counters);
  (* the summary renderer works on a real trace *)
  let s = Tracefile.summary trace in
  Alcotest.(check bool) "summary mentions spans" true (contains ~sub:"Spans by category" s);
  Alcotest.(check bool) "summary mentions counters" true (contains ~sub:"Counters" s)

(* Gauges: last-write-wins levels (pool queue depth, in-flight, daemon
   admission), exported next to counters and parsed back by Tracefile. *)
let test_gauges () =
  Peak_obs.gauge "off.gauge" 7 (* no sink: must be a no-op *);
  with_sink @@ fun () ->
  Peak_obs.gauge "unit.level" 3;
  Peak_obs.gauge "unit.level" 11;
  (* overwrite, not accumulate *)
  Peak_obs.gauge "unit.other" 0;
  let s = Option.get (Peak_obs.snapshot ()) in
  Alcotest.(check (list (pair string int)))
    "gauges last-write-wins"
    [ ("unit.level", 11); ("unit.other", 0) ]
    (List.sort compare s.Peak_obs.gauges);
  (* pool gauges exist once a pool has run work under the sink *)
  Peak_util.Pool.run ~domains:2 (fun pool ->
      ignore (Peak_util.Pool.map pool (fun x -> x * x) [ 1; 2; 3; 4 ]));
  let s = Option.get (Peak_obs.snapshot ()) in
  List.iter
    (fun name ->
      match List.assoc_opt name s.Peak_obs.gauges with
      | Some v -> Alcotest.(check int) (name ^ " drained to zero") 0 v
      | None -> Alcotest.failf "gauge %s missing after pool work" name)
    [ "pool.depth"; "pool.inflight" ];
  (* export → Tracefile round-trip preserves them, summary renders them *)
  let doc = Result.get_ok (Json.of_string (Option.get (Peak_obs.export ()))) in
  let trace = Result.get_ok (Tracefile.of_json doc) in
  Alcotest.(check (option int))
    "gauge survives export" (Some 11)
    (List.assoc_opt "unit.level" trace.Tracefile.gauges);
  Alcotest.(check bool) "summary renders gauges" true
    (contains ~sub:"Gauges" (Tracefile.summary trace))

let suites =
  [
    ( "obs.tracer",
      [
        Alcotest.test_case "off is no-op" `Quick test_off_is_noop;
        Alcotest.test_case "gauges overwrite and export" `Quick test_gauges;
        Alcotest.test_case "span nesting and aggregation" `Quick test_span_nesting_and_args;
        Alcotest.test_case "with_span closes on exception" `Quick test_with_span_exception;
        Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow_drops;
        Alcotest.test_case "export round-trips through Tracefile" `Quick test_export_round_trip;
        Alcotest.test_case "validate rejects corruption" `Quick test_validate_rejects_corruption;
      ] );
    ( "obs.determinism",
      [
        Alcotest.test_case "trace on/off bit-identical" `Quick test_trace_on_off_identical;
        Alcotest.test_case "traced -j1 equals -j4" `Quick test_trace_domain_count_identical;
        Alcotest.test_case "traced kill/resume bit-identical" `Quick
          test_trace_kill_resume_identical;
        Alcotest.test_case "tune trace passes schema validation" `Quick test_tune_trace_schema;
      ] );
  ]
