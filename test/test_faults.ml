(* Fault injection: the fault plan's identity-keyed determinism, the
   runner's typed failure surface, and the headline differential
   oracles — under any injected fault schedule, auto == forced,
   resume-after-kill == uninterrupted, and -j1 == -j2 == -j4, all bit
   for bit, with every injected-faulty configuration quarantined. *)

open Peak_util
open Peak_machine
open Peak_compiler
open Peak_workload
open Peak_store
open Peak_sim
open Peak

(* Shared fixtures — temp dirs, crash artifacts, the bit-identity
   oracle — live in [Oracles]. *)
let bench = Oracles.bench
let with_tmpdir = Oracles.with_tmpdir
let check_identical = Oracles.check_identical
let crashed_copy = Oracles.crashed_copy

(* The fault seeds the differential oracles sweep.  CI's fault-smoke
   gate pins one seed per run via PEAK_FAULT_SEED so the three gate
   runs cover three distinct schedules without repeating work. *)
let fault_seeds =
  match Sys.getenv_opt "PEAK_FAULT_SEED" with
  | Some s -> [ int_of_string s ]
  | None -> [ 3; 7; 23 ]

let default_plan seed = Fault.create ~spec:Fault.default_spec ~seed ()

(* ------------------------------------------------------------------ *)
(* The fault plan: identity keying, protections, spec round-trip       *)
(* ------------------------------------------------------------------ *)

let keys = List.init 64 (Printf.sprintf "cfg%02x")

let decisions plan key =
  ( Fault.crash_faulty plan key,
    Fault.hang_faulty plan key,
    Fault.miscompiled plan key,
    List.init 30 (fun i -> Fault.exec_failure plan ~key ~attempt:0 ~invocation:i),
    List.init 8 (fun a -> Fault.exec_failure plan ~key ~attempt:a ~invocation:5),
    List.init 40 (fun i -> Fault.noise_factor plan ~key ~invocation:i) )

let test_plan_identity_keyed () =
  let spec = { Fault.default_spec with Fault.transient = 0.1; burst = 0.2 } in
  let p1 = Fault.create ~spec ~seed:9 () in
  let p2 = Fault.create ~spec ~seed:9 () in
  (* same seed, queried in opposite orders: every answer identical —
     decisions are functions of identity, never of draw order *)
  let d1 = List.map (decisions p1) keys in
  let d2 = List.rev_map (decisions p2) (List.rev keys) in
  Alcotest.(check bool) "decisions independent of query order" true (d1 = d2);
  (* a different seed gives a different schedule *)
  let p3 = Fault.create ~spec ~seed:10 () in
  Alcotest.(check bool) "different seed, different schedule" false
    (d1 = List.map (decisions p3) keys)

let test_plan_protection () =
  let spec = { Fault.no_faults with Fault.crash = 1.0; wrong = 1.0 } in
  let p = Fault.create ~spec ~seed:3 () in
  Alcotest.(check bool) "unprotected key crashes" true (Fault.crash_faulty p "base");
  Fault.protect p "base";
  Alcotest.(check bool) "protection registered" true (Fault.is_protected p "base");
  Alcotest.(check bool) "protected key never crashes" false (Fault.crash_faulty p "base");
  Alcotest.(check bool) "protected key never miscompiles" false (Fault.miscompiled p "base");
  Alcotest.(check bool) "protected key never fails at runtime" true
    (List.for_all
       (fun i -> Fault.exec_failure p ~key:"base" ~attempt:0 ~invocation:i = None)
       (List.init 50 Fun.id));
  Alcotest.(check bool) "other keys still crash" true (Fault.crash_faulty p "other")

let test_crash_is_per_config () =
  let spec = { Fault.no_faults with Fault.crash = 1.0 } in
  let p = Fault.create ~spec ~seed:7 () in
  List.iter
    (fun key ->
      (* the chosen fail ordinal sits below any rating window and is the
         same on every retry attempt — quarantine is inescapable *)
      let ordinal attempt =
        let rec go i =
          if i >= 24 then Alcotest.fail (key ^ ": no crash within 24 invocations")
          else
            match Fault.exec_failure p ~key ~attempt ~invocation:i with
            | Some Fault.Crash -> i
            | Some _ -> Alcotest.fail (key ^ ": unexpected failure kind")
            | None -> go (i + 1)
        in
        go 0
      in
      let o = ordinal 0 in
      List.iter
        (fun a -> Alcotest.(check int) (key ^ ": same ordinal on retry") o (ordinal a))
        [ 1; 2; 5 ])
    [ "a"; "b"; "c"; "d" ]

let test_transient_redraws_on_retry () =
  let spec = { Fault.no_faults with Fault.transient = 0.5 } in
  let p = Fault.create ~spec ~seed:11 () in
  let fails key attempt =
    List.exists
      (fun i -> Fault.exec_failure p ~key ~attempt ~invocation:i <> None)
      (List.init 24 Fun.id)
  in
  (* at a 50% rate some key must fail on attempt 0 and recover on a
     retry — the redraw that makes retries worth their budget *)
  Alcotest.(check bool) "some transient recovers on retry" true
    (List.exists (fun k -> fails k 0 && not (fails k 1)) keys);
  Alcotest.(check bool) "some execution is clean" true
    (List.exists (fun k -> not (fails k 0)) keys)

let test_noise_bursts () =
  let spec = { Fault.no_faults with Fault.burst = 1.0; burst_factor = 3.0 } in
  let p = Fault.create ~spec ~seed:5 () in
  Alcotest.(check (float 0.0)) "burst window amplifies" 3.0
    (Fault.noise_factor p ~key:"k" ~invocation:0);
  let quiet = Fault.create ~spec:Fault.no_faults ~seed:5 () in
  Alcotest.(check (float 0.0)) "no-fault plan is transparent" 1.0
    (Fault.noise_factor quiet ~key:"k" ~invocation:0)

let test_torn_write_decision () =
  let spec = { Fault.no_faults with Fault.tear = 1.0 } in
  let p = Fault.create ~spec ~seed:13 () in
  (match Fault.torn_write p ~flush:0 ~size:100 with
  | Some n -> Alcotest.(check bool) "tear point is a proper prefix" true (n >= 0 && n < 100)
  | None -> Alcotest.fail "tear=1.0 must tear");
  let quiet = Fault.create ~spec:Fault.no_faults ~seed:13 () in
  Alcotest.(check bool) "no-fault plan never tears" true
    (Fault.torn_write quiet ~flush:0 ~size:100 = None)

let test_spec_roundtrip () =
  let spec =
    {
      Fault.crash = 0.05;
      hang = 0.015;
      wrong = 0.02;
      transient = 0.011;
      burst = 0.125;
      burst_factor = 2.5;
      tear = 0.01;
    }
  in
  let p = Fault.create ~spec ~seed:42 () in
  (match Fault.of_string (Fault.to_string p) with
  | Error e -> Alcotest.fail ("canonical form failed to parse: " ^ e)
  | Ok p' ->
      Alcotest.(check int) "seed survives" 42 (Fault.seed p');
      Alcotest.(check bool) "spec survives bit-exactly" true (Fault.spec p' = spec);
      Alcotest.(check bool) "rebuilt plan makes identical decisions" true
        (List.map (decisions p) keys = List.map (decisions p') keys));
  (* rejects out-of-range and unknown keys *)
  List.iter
    (fun s ->
      match Fault.of_string s with
      | Ok _ -> Alcotest.fail ("accepted invalid spec: " ^ s)
      | Error _ -> ())
    [ "crash=2.0"; "burstf=0.5"; "bogus=1"; "crash" ]

(* ------------------------------------------------------------------ *)
(* The runner's failure surface                                        *)
(* ------------------------------------------------------------------ *)

let runner_fixture ?faults ?fault_attempt seed =
  let b = bench "SWIM" in
  let tsec = Tsection.make b.Benchmark.ts in
  let trace = b.Benchmark.trace Trace.Train ~seed:11 in
  let machine = Machine.sparc2 in
  let runner = Runner.create ~seed ?faults ?fault_attempt tsec trace machine in
  let v = Version.compile machine tsec.Tsection.features Optconfig.o3 in
  (runner, v)

let step_until_failure runner v =
  let rec go i =
    if i >= 40 then Alcotest.fail "no failure within 40 invocations"
    else
      match Runner.step runner v with
      | (_ : Runner.sample) -> go (i + 1)
      | exception Runner.Failed info -> info
  in
  go 0

let test_runner_crash () =
  let spec = { Fault.no_faults with Fault.crash = 1.0 } in
  let faults = Fault.create ~spec ~seed:3 () in
  let runner, v = runner_fixture ~faults 13 in
  let info = step_until_failure runner v in
  Alcotest.(check bool) "typed as a crash" true (info.Runner.failure = Runner.Crashed);
  Alcotest.(check string) "failure names the config" (Optconfig.digest Optconfig.o3)
    info.Runner.config;
  Alcotest.(check bool) "crash ordinal below the rating window" true
    (info.Runner.invocation < 24);
  Alcotest.(check bool) "doomed run charged to the ledger" true
    (Runner.tuning_cycles runner > 0.0)

let test_runner_hang () =
  let spec = { Fault.no_faults with Fault.hang = 1.0 } in
  let faults = Fault.create ~spec ~seed:3 () in
  let runner, v = runner_fixture ~faults 13 in
  let info = step_until_failure runner v in
  Alcotest.(check bool) "typed as a hang" true (info.Runner.failure = Runner.Hung);
  (* a hang charges the full watchdog budget (1e8 cycles under faults) *)
  Alcotest.(check bool) "watchdog budget charged" true
    (Runner.tuning_cycles runner >= 1e8)

let test_runner_transient_retry () =
  (* a transient that fires on attempt 0 must clear on some fresh
     attempt ordinal with the same runner seed *)
  let spec = { Fault.no_faults with Fault.transient = 0.9 } in
  let faults = Fault.create ~spec ~seed:21 () in
  let attempt_fails a =
    let runner, v = runner_fixture ~faults ~fault_attempt:a 13 in
    let rec go i =
      i < 30
      &&
      match Runner.step runner v with
      | (_ : Runner.sample) -> go (i + 1)
      | exception Runner.Failed _ -> true
    in
    go 0
  in
  Alcotest.(check bool) "attempt 0 hits the transient" true (attempt_fails 0);
  Alcotest.(check bool) "some retry attempt runs clean" true
    (List.exists (fun a -> not (attempt_fails a)) [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_output_digest_differential () =
  (* equal ordinals, equal digests — across runner seeds — for a clean
     version; a miscompiled configuration corrupts the digest *)
  let clean1, v = runner_fixture 13 in
  let clean2, v2 = runner_fixture 14 in
  let d1 = Runner.output_digest clean1 v in
  let d2 = Runner.output_digest clean2 v2 in
  Alcotest.(check bool) "digest is seed-independent at equal ordinals" true
    (Int64.equal d1 d2);
  let spec = { Fault.no_faults with Fault.wrong = 1.0 } in
  let faults = Fault.create ~spec ~seed:3 () in
  let bad, vb = runner_fixture ~faults 13 in
  Alcotest.(check bool) "miscompiled output digests differently" false
    (Int64.equal d1 (Runner.output_digest bad vb));
  Alcotest.(check bool) "digest execution is charged" true
    (Runner.invocations_consumed clean1 = 1)

(* ------------------------------------------------------------------ *)
(* Driver-level differential oracles                                   *)
(* ------------------------------------------------------------------ *)

(* Completion and quarantine soundness: under the acceptance mix (5%
   crash, 2% wrong output) tuning completes on every workload, every
   condemned configuration is genuinely faulty with a matching reason,
   and — zero false negatives — every faulty configuration that was
   rated appears in the journal as failed. *)
let test_quarantine_ground_truth () =
  with_tmpdir @@ fun root ->
  let machine = Machine.sparc2 in
  let total_quarantined = ref 0 in
  List.iter
    (fun fault_seed ->
      List.iter
        (fun bname ->
          let b = bench bname in
          let faults = default_plan fault_seed in
          let meta =
            Driver.session_meta ~seed:11 ~search:Driver.Be ~faults b machine Trace.Train
          in
          let dir = Filename.concat root (Printf.sprintf "%s-%d" bname fault_seed) in
          let session = Result.get_ok (Session.open_ ~dir ~meta ()) in
          let result =
            Fun.protect
              ~finally:(fun () -> Session.close session)
              (fun () ->
                Driver.tune ~seed:11 ~search:Driver.Be ~store:session ~faults b machine
                  Trace.Train)
          in
          let tag = Printf.sprintf "%s seed=%d" bname fault_seed in
          Alcotest.(check bool) (tag ^ ": winner is clean") false
            (Fault.faulty faults (Optconfig.digest result.Driver.best_config));
          List.iter
            (fun (c, reason) ->
              let d = Optconfig.digest c in
              Alcotest.(check bool) (tag ^ ": quarantined config is faulty") true
                (Fault.faulty faults d);
              match reason with
              | "crashed" ->
                  Alcotest.(check bool) (tag ^ ": crash reason matches") true
                    (Fault.crash_faulty faults d)
              | "hung" ->
                  Alcotest.(check bool) (tag ^ ": hang reason matches") true
                    (Fault.hang_faulty faults d)
              | "wrong-output" ->
                  Alcotest.(check bool) (tag ^ ": wrong-output reason matches") true
                    (Fault.miscompiled faults d)
              | r -> Alcotest.fail (tag ^ ": unknown quarantine reason " ^ r))
            result.Driver.quarantined;
          total_quarantined := !total_quarantined + List.length result.Driver.quarantined;
          (* zero false negatives, checked against the journal's record
             of every configuration the session actually rated *)
          let events, dropped = Session.events ~dir ~id:meta.Peak_store.Codec.m_id in
          Alcotest.(check int) (tag ^ ": journal intact") 0 dropped;
          Alcotest.(check bool) (tag ^ ": journaled events") true (events <> []);
          List.iter
            (fun (e : Codec.event) ->
              let d = Optconfig.digest e.Codec.e_config in
              if Fault.faulty faults d && not (Fault.is_protected faults d) then
                Alcotest.(check bool)
                  (tag ^ ": faulty config " ^ d ^ " recorded as failed")
                  true
                  (e.Codec.e_fail <> None))
            events)
        [ "SWIM"; "MGRID"; "ART" ])
    fault_seeds;
  Alcotest.(check bool) "injection produced quarantines" true (!total_quarantined > 0)

let test_domains_identical_under_faults () =
  let b = bench "SWIM" in
  let machine = Machine.sparc2 in
  List.iter
    (fun fault_seed ->
      let tune domains =
        let faults = default_plan fault_seed in
        let go pool =
          Driver.tune ~seed:11 ~search:Driver.Be ?pool ~faults b machine Trace.Train
        in
        if domains > 1 then Pool.run ~domains (fun p -> go (Some p)) else go None
      in
      let r1 = tune 1 in
      check_identical (Printf.sprintf "faults seed=%d -j1 vs -j2" fault_seed) r1 (tune 2);
      check_identical (Printf.sprintf "faults seed=%d -j1 vs -j4" fault_seed) r1 (tune 4))
    fault_seeds

let test_auto_equals_forced_under_faults () =
  let b = bench "MGRID" in
  List.iter
    (fun fault_seed ->
      let tune method_ =
        let faults = default_plan fault_seed in
        Pool.run ~domains:2 (fun pool ->
            Driver.tune ?method_ ~pool ~faults b Machine.sparc2 Trace.Train)
      in
      let auto = tune None in
      let forced = tune (Some auto.Driver.method_used) in
      check_identical (Printf.sprintf "faults seed=%d auto vs forced" fault_seed) auto forced)
    fault_seeds

let test_resume_identical_under_faults () =
  with_tmpdir @@ fun root ->
  let b = bench "ART" in
  let machine = Machine.sparc2 in
  let search = Driver.Be in
  List.iter
    (fun fault_seed ->
      let faults = default_plan fault_seed in
      let meta = Driver.session_meta ~seed:11 ~search ~faults b machine Trace.Train in
      let id = meta.Codec.m_id in
      let full_dir = Filename.concat root (Printf.sprintf "full%d" fault_seed) in
      let session = Result.get_ok (Session.open_ ~dir:full_dir ~meta ()) in
      let full =
        Fun.protect
          ~finally:(fun () -> Session.close session)
          (fun () ->
            Driver.tune ~seed:11 ~search ~store:session ~faults b machine Trace.Train)
      in
      let n_events =
        (Result.get_ok (Session.load_info ~dir:full_dir ~id)).Session.info_events
      in
      Alcotest.(check bool) "session journaled events" true (n_events > 1);
      List.iter
        (fun domains ->
          let dst_dir =
            Filename.concat root (Printf.sprintf "crash%d_%d" fault_seed domains)
          in
          ignore (crashed_copy ~src_dir:full_dir ~dst_dir ~id ~keep:(n_events / 2));
          (* the resumed session rebuilds an equal plan from scratch —
             what `peak-tune session resume` does from stored metadata *)
          let faults = default_plan fault_seed in
          let session = Result.get_ok (Session.open_ ~dir:dst_dir ~meta ()) in
          let resumed =
            Fun.protect
              ~finally:(fun () -> Session.close session)
              (fun () ->
                let tune pool =
                  Driver.tune ~seed:11 ~search ?pool ~store:session ~faults b machine
                    Trace.Train
                in
                if domains > 1 then Pool.run ~domains (fun p -> tune (Some p))
                else tune None)
          in
          check_identical
            (Printf.sprintf "faults seed=%d resumed -j%d vs uninterrupted" fault_seed
               domains)
            full resumed;
          let info = Result.get_ok (Session.load_info ~dir:dst_dir ~id) in
          match info.Session.info_result with
          | None -> Alcotest.fail "resumed session has no result.json"
          | Some r ->
              Alcotest.(check int) "stored quarantine count matches"
                (List.length full.Driver.quarantined)
                (List.length r.Codec.r_quarantined))
        [ 1; 2 ];
      (* a session must not resume under a different fault plan *)
      let other = default_plan (fault_seed + 1) in
      let meta' = Driver.session_meta ~seed:11 ~search ~faults:other b machine Trace.Train in
      match Session.open_ ~dir:full_dir ~meta:meta' () with
      | Ok s ->
          Session.close s;
          Alcotest.fail "session reopened under a different fault plan"
      | Error msg ->
          Alcotest.(check bool) "refusal names the fault plan" true
            (Oracles.contains ~sub:"fault" (String.lowercase_ascii msg)))
    fault_seeds

(* A torn journal write mid-session: the writer dies with Torn_write
   (the simulated power cut), the torn artifact replays its surviving
   whole-line prefix, and the resumed run is bit-identical to an
   uninterrupted one. *)
let test_torn_session_resumes () =
  with_tmpdir @@ fun root ->
  let b = bench "SWIM" in
  let machine = Machine.sparc2 in
  let search = Driver.Be in
  let meta = Driver.session_meta ~seed:11 ~search b machine Trace.Train in
  let full_dir = Filename.concat root "full" in
  let session = Result.get_ok (Session.open_ ~dir:full_dir ~meta ()) in
  let full =
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~seed:11 ~search ~store:session b machine Trace.Train)
  in
  let torn_dir = Filename.concat root "torn" in
  let tear ~flush ~size = if flush = 0 then Some (size / 2) else None in
  let session = Result.get_ok (Session.open_ ~tear ~dir:torn_dir ~meta ()) in
  (match
     Fun.protect
       ~finally:(fun () -> Session.close session)
       (fun () -> Driver.tune ~seed:11 ~search ~store:session b machine Trace.Train)
   with
  | (_ : Driver.result) -> Alcotest.fail "torn write did not kill the session"
  | exception Journal.Torn_write -> ());
  let info = Result.get_ok (Session.load_info ~dir:torn_dir ~id:meta.Codec.m_id) in
  Alcotest.(check bool) "torn journal kept a whole-line prefix" true
    (info.Session.info_events > 0);
  Alcotest.(check int) "one torn tail dropped" 1 info.Session.info_dropped;
  let session = Result.get_ok (Session.open_ ~dir:torn_dir ~meta ()) in
  let resumed =
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~seed:11 ~search ~store:session b machine Trace.Train)
  in
  check_identical "torn-then-resumed vs uninterrupted" full resumed

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "decisions are identity-keyed" `Quick test_plan_identity_keyed;
        Alcotest.test_case "protected configs never fault" `Quick test_plan_protection;
        Alcotest.test_case "crashes are per-config and retry-proof" `Quick
          test_crash_is_per_config;
        Alcotest.test_case "transients redraw per attempt" `Quick
          test_transient_redraws_on_retry;
        Alcotest.test_case "noise bursts amplify measured times" `Quick test_noise_bursts;
        Alcotest.test_case "torn writes tear a proper prefix" `Quick test_torn_write_decision;
        Alcotest.test_case "spec strings round-trip" `Quick test_spec_roundtrip;
      ] );
    ( "faults.runner",
      [
        Alcotest.test_case "injected crash raises a typed failure" `Quick test_runner_crash;
        Alcotest.test_case "hang charges the watchdog budget" `Quick test_runner_hang;
        Alcotest.test_case "transient clears on a fresh attempt" `Quick
          test_runner_transient_retry;
        Alcotest.test_case "output digest is a differential check" `Quick
          test_output_digest_differential;
      ] );
    ( "faults.driver",
      [
        Alcotest.test_case "quarantine matches injected ground truth" `Slow
          test_quarantine_ground_truth;
        Alcotest.test_case "-j1 == -j2 == -j4 under faults" `Slow
          test_domains_identical_under_faults;
        Alcotest.test_case "auto == forced under faults" `Slow
          test_auto_equals_forced_under_faults;
        Alcotest.test_case "kill/resume bit-identical under faults" `Slow
          test_resume_identical_under_faults;
        Alcotest.test_case "torn journal write resumes bit-identical" `Slow
          test_torn_session_resumes;
      ] );
  ]
