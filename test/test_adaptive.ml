(* Tests for the online/adaptive tuning engine. *)

open Peak_machine
open Peak_compiler
open Peak_workload
open Peak

let flag n = Option.get (Flags.by_name n)
let bench n = Option.get (Registry.by_name n)

let make ?(machine = Machine.pentium4) ?(candidates = []) ?seed ?window ?compile_latency name =
  let b = bench name in
  let tsec = Tsection.make b.Benchmark.ts in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Adaptive.create ?seed ?window ?compile_latency tsec trace machine ~candidates

let good_candidates =
  [
    Optconfig.disable Optconfig.o3 (flag "schedule-insns");
    Optconfig.disable Optconfig.o3 (flag "force-mem");
  ]

let test_adaptive_beats_o3_when_candidates_help () =
  let a = make ~candidates:good_candidates "MGRID" in
  let s = Adaptive.run a ~invocations:2410 in
  Alcotest.(check bool) "adaptive beats O3" true (s.Adaptive.total_cycles < s.Adaptive.o3_cycles);
  Alcotest.(check bool) "oracle is the floor" true
    (s.Adaptive.oracle_cycles <= s.Adaptive.total_cycles +. 1e-6);
  Alcotest.(check bool) "swaps occurred" true (s.Adaptive.swaps > 0)

let test_adaptive_no_candidates_is_o3 () =
  let a = make ~candidates:[] "MGRID" in
  let s = Adaptive.run a ~invocations:500 in
  Alcotest.(check (float 1e-6)) "equals O3 exactly" s.Adaptive.o3_cycles s.Adaptive.total_cycles;
  Alcotest.(check int) "no swaps" 0 s.Adaptive.swaps

let test_adaptive_contexts_discovered () =
  let a = make ~candidates:good_candidates "MGRID" in
  let s = Adaptive.run a ~invocations:1000 in
  Alcotest.(check int) "five grid levels" 5 s.Adaptive.contexts_seen;
  Alcotest.(check int) "one choice per context" 5 (List.length s.Adaptive.choices)

let test_adaptive_harmful_candidate_rejected () =
  (* O0 is far worse than O3: the engine must sample it briefly and keep
     O3 as the best everywhere *)
  let a = make ~candidates:[ Optconfig.o0 ] "SWIM" ~machine:Machine.sparc2 in
  let s = Adaptive.run a ~invocations:600 in
  List.iter
    (fun (_, cfg) -> Alcotest.(check bool) "kept O3" true (Optconfig.equal cfg Optconfig.o3))
    s.Adaptive.choices;
  (* the exploration cost is bounded by roughly a window of O0 runs *)
  Alcotest.(check bool) "exploration cost bounded" true
    (s.Adaptive.total_cycles < 1.25 *. s.Adaptive.o3_cycles)

let test_adaptive_compile_latency_delays_experiments () =
  let run latency =
    let a =
      make ~candidates:good_candidates ~compile_latency:latency ~window:8 "MGRID"
    in
    Adaptive.run a ~invocations:400
  in
  let fast = run 0 in
  let slow = run 350 in
  Alcotest.(check bool) "long compiles mean fewer/no swaps" true
    (slow.Adaptive.swaps <= fast.Adaptive.swaps);
  Alcotest.(check bool) "long compiles keep the run near O3" true
    (slow.Adaptive.total_cycles >= fast.Adaptive.total_cycles -. 1e-6)

let test_adaptive_single_context_section () =
  (* SWIM has one context: the engine degenerates to global sampling *)
  let a = make ~candidates:good_candidates "SWIM" ~machine:Machine.pentium4 in
  let s = Adaptive.run a ~invocations:400 in
  Alcotest.(check int) "one context" 1 s.Adaptive.contexts_seen;
  Alcotest.(check bool) "still beats O3" true (s.Adaptive.total_cycles < s.Adaptive.o3_cycles)

(* ------------------------------------------------------------------ *)
(* Staleness under drift: differential oracles in the test_faults      *)
(* style — ground-truth shift points in, detections out, and kill-free *)
(* reruns bit-identical — swept over pinned seeds.                     *)
(* ------------------------------------------------------------------ *)

let drift_seeds =
  match Sys.getenv_opt "PEAK_ADAPTIVE_SEED" with
  | Some s -> [ int_of_string s ]
  | None -> [ 3; 7; 23 ]

(* ART is the staleness benchmark: a single context slot (continuous
   vigilance defeats CBR), so the only way the engine can react to
   drift is the within-slot staleness state machine; the warp pins the
   window offset and quadruples the F1 walk, an unmistakable regime-B
   cost regression. *)
let drift_run ?two_sided ~seed ~invocations spec =
  let b = bench "ART" in
  let tsec = Tsection.make b.Benchmark.ts in
  let base = b.Benchmark.trace Trace.Train ~seed in
  let drift =
    match Drift.of_string spec with Ok d -> d | Error e -> Alcotest.failf "spec: %s" e
  in
  let trace = Drift.apply ~length:invocations drift base in
  let a =
    Adaptive.create ?two_sided ~seed tsec trace Machine.pentium4 ~candidates:good_candidates
  in
  (Adaptive.run a ~invocations, drift)

(* A stale verdict needs the incumbent's rating-time baseline plus the
   Suspect round trip: two full recent windows after the shift, so the
   detection must land within this many invocations of a true shift. *)
let detection_slack = 400

let test_drift_detections_match_ground_truth () =
  List.iter
    (fun seed ->
      let invocations = 1500 in
      let shift = 600 in
      let spec = Printf.sprintf "seed=%d,step=%d,warp=off*0,warp=numf1s*4" seed shift in
      let s, drift = drift_run ~seed ~invocations spec in
      let shifts = Drift.shift_points drift ~length:invocations in
      Alcotest.(check (list int)) (Printf.sprintf "seed %d: one declared shift" seed)
        [ shift ] shifts;
      (* no false negatives: the step is detected... *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: shift detected" seed)
        true (s.Adaptive.stale_detections >= 1);
      (* ...promptly, and never before the ground-truth shift *)
      List.iter
        (fun at ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: detection at %d not before the shift" seed at)
            true (at >= shift);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: detection at %d within slack of a shift" seed at)
            true
            (List.exists (fun p -> at >= p && at <= p + detection_slack) shifts))
        s.Adaptive.stale_invocations;
      (* bounded false positives *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: detections bounded" seed)
        true
        (s.Adaptive.stale_detections <= List.length shifts + 2);
      (* the re-tuning cycle completes and is accounted *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: re-tuning completed" seed)
        true (s.Adaptive.readapts >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: readapt invocations counted" seed)
        true
        (s.Adaptive.readapts = 0 || s.Adaptive.readapt_invocations > 0);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: retuning cycles accounted" seed)
        true
        (s.Adaptive.retuning_cycles > 0.0))
    drift_seeds

let test_drift_no_shift_no_detections () =
  (* false-positive control: the drift stream with no declared pattern
     never enters regime B (the warp stays dormant), so the staleness
     machinery must stay silent across every seed *)
  List.iter
    (fun seed ->
      let spec = Printf.sprintf "seed=%d,warp=off*0,warp=numf1s*4" seed in
      let s, _ = drift_run ~seed ~invocations:1200 spec in
      Alcotest.(check int) (Printf.sprintf "seed %d: no detections" seed) 0
        s.Adaptive.stale_detections;
      Alcotest.(check int) (Printf.sprintf "seed %d: no readapts" seed) 0 s.Adaptive.readapts;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "seed %d: no retuning cycles" seed)
        0.0 s.Adaptive.retuning_cycles)
    drift_seeds

let test_drift_burst_detected_inside_burst () =
  List.iter
    (fun seed ->
      let invocations = 1800 in
      let spec = Printf.sprintf "seed=%d,burst=500+600,warp=off*0,warp=numf1s*4" seed in
      let s, _ = drift_run ~seed ~invocations spec in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: burst detected" seed)
        true (s.Adaptive.stale_detections >= 1);
      List.iter
        (fun at ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: detection at %d after burst onset" seed at)
            true (at >= 500))
        s.Adaptive.stale_invocations)
    drift_seeds

(* A regime that gets cheaper (the F1 walk shrinks to a quarter) is
   invisible to the one-sided detector — the window is credibly *below*
   the baseline — but a leaner regime deserves a leaner configuration,
   which is exactly what [two_sided] buys. *)
let downshift_spec seed = Printf.sprintf "seed=%d,step=600,warp=off*0,warp=numf1s*0.25" seed

let test_drift_downshift_needs_two_sided () =
  List.iter
    (fun seed ->
      let invocations = 1500 in
      let spec = downshift_spec seed in
      let one, _ = drift_run ~seed ~invocations spec in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: one-sided detector is blind to the downshift" seed)
        0 one.Adaptive.stale_detections;
      let two, _ = drift_run ~two_sided:true ~seed ~invocations spec in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: two-sided detector sees the downshift" seed)
        true
        (two.Adaptive.stale_detections >= 1);
      List.iter
        (fun at ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: detection at %d not before the shift" seed at)
            true (at >= 600))
        two.Adaptive.stale_invocations)
    drift_seeds

let test_drift_two_sided_no_shift_stays_silent () =
  (* false-positive control for the second side: without a declared
     pattern the two-sided engine must stay as quiet as the default *)
  List.iter
    (fun seed ->
      let spec = Printf.sprintf "seed=%d,warp=off*0,warp=numf1s*0.25" seed in
      let s, _ = drift_run ~two_sided:true ~seed ~invocations:1200 spec in
      Alcotest.(check int) (Printf.sprintf "seed %d: no detections" seed) 0
        s.Adaptive.stale_detections)
    drift_seeds

let test_drift_two_sided_off_is_bit_identical () =
  (* the option must not perturb the default path: an explicit false is
     the same engine, field for field *)
  List.iter
    (fun seed ->
      let spec = Printf.sprintf "seed=%d,step=600,warp=off*0,warp=numf1s*4" seed in
      let s1, _ = drift_run ~seed ~invocations:1500 spec in
      let s2, _ = drift_run ~two_sided:false ~seed ~invocations:1500 spec in
      Oracles.check_identical_adaptive
        (Printf.sprintf "two_sided:false vs default seed %d" seed)
        s1 s2)
    drift_seeds

let test_drift_reruns_bit_identical () =
  (* the kill-free differential: same spec, same seed, fresh engine —
     every stats field matches bit for bit *)
  List.iter
    (fun seed ->
      let spec = Printf.sprintf "seed=%d,step=600,warp=off*0,warp=numf1s*4" seed in
      let s1, _ = drift_run ~seed ~invocations:1500 spec in
      let s2, _ = drift_run ~seed ~invocations:1500 spec in
      Oracles.check_identical_adaptive (Printf.sprintf "drift rerun seed %d" seed) s1 s2)
    drift_seeds

let test_drift_stats_carry_across_runs () =
  (* run may be called repeatedly: two half-length runs must end at the
     same whole-life ledger as one full-length run *)
  let seed = 3 in
  let spec = Printf.sprintf "seed=%d,step=600,warp=off*0,warp=numf1s*4" seed in
  let whole, _ = drift_run ~seed ~invocations:1500 spec in
  let b = bench "ART" in
  let tsec = Tsection.make b.Benchmark.ts in
  let base = b.Benchmark.trace Trace.Train ~seed in
  let drift = Result.get_ok (Drift.of_string spec) in
  let trace = Drift.apply ~length:1500 drift base in
  let a = Adaptive.create ~seed tsec trace Machine.pentium4 ~candidates:good_candidates in
  let _ = Adaptive.run a ~invocations:750 in
  let split = Adaptive.run a ~invocations:750 in
  Oracles.check_identical_adaptive "split run" whole split

let suites =
  [
    ( "core.adaptive",
      [
        Alcotest.test_case "beats O3" `Quick test_adaptive_beats_o3_when_candidates_help;
        Alcotest.test_case "no candidates = O3" `Quick test_adaptive_no_candidates_is_o3;
        Alcotest.test_case "contexts discovered" `Quick test_adaptive_contexts_discovered;
        Alcotest.test_case "harmful candidate rejected" `Quick
          test_adaptive_harmful_candidate_rejected;
        Alcotest.test_case "compile latency" `Quick test_adaptive_compile_latency_delays_experiments;
        Alcotest.test_case "single context" `Quick test_adaptive_single_context_section;
        Alcotest.test_case "drift detections match ground truth" `Quick
          test_drift_detections_match_ground_truth;
        Alcotest.test_case "no shift, no detections" `Quick test_drift_no_shift_no_detections;
        Alcotest.test_case "downshift needs two-sided" `Quick
          test_drift_downshift_needs_two_sided;
        Alcotest.test_case "two-sided quiet without shift" `Quick
          test_drift_two_sided_no_shift_stays_silent;
        Alcotest.test_case "two-sided off is bit-identical" `Quick
          test_drift_two_sided_off_is_bit_identical;
        Alcotest.test_case "burst detected inside burst" `Quick
          test_drift_burst_detected_inside_burst;
        Alcotest.test_case "drift reruns bit-identical" `Quick test_drift_reruns_bit_identical;
        Alcotest.test_case "stats carry across runs" `Quick test_drift_stats_carry_across_runs;
      ] );
  ]
