(* Shared differential-oracle fixtures.

   The determinism suites (test_parallel, test_store, test_faults) all
   assert the same property — two tuning runs that should be
   bit-identical are — and all need the same scaffolding: temp store
   directories, simulated crash artifacts, and a single definition of
   "identical result".  Keeping that definition here means a new field
   in [Driver.result] is compared by every suite at once instead of by
   whichever copies were updated. *)

open Peak_compiler
open Peak_workload
open Peak

let bench name = Option.get (Registry.by_name name)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmpdir f =
  let dir = Filename.temp_file "peak-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Bit-exact float comparison (any nan equals any nan: the store codec
   canonicalizes the payload through the "nan" string encoding). *)
let same_float a b =
  (Float.is_nan a && Float.is_nan b) || Int64.bits_of_float a = Int64.bits_of_float b

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The differential oracle: every observable outcome of a tuning run —
   winner, search statistics, quarantine record, and the full simulated
   ledger — must match bit for bit. *)
let check_identical tag (a : Driver.result) (b : Driver.result) =
  Alcotest.(check bool)
    (tag ^ ": best_config identical")
    true
    (Optconfig.equal a.Driver.best_config b.Driver.best_config);
  Alcotest.(check int)
    (tag ^ ": ratings identical")
    a.Driver.search_stats.Search.ratings b.Driver.search_stats.Search.ratings;
  Alcotest.(check bool)
    (tag ^ ": search stats identical")
    true
    (a.Driver.search_stats = b.Driver.search_stats);
  Alcotest.(check string)
    (tag ^ ": strategy identical")
    (Strategy.key a.Driver.strategy)
    (Strategy.key b.Driver.strategy);
  Alcotest.(check bool)
    (tag ^ ": stage records identical")
    true
    (a.Driver.stages = b.Driver.stages);
  Alcotest.(check (float 0.0))
    (tag ^ ": tuning_cycles bit-identical")
    a.Driver.tuning_cycles b.Driver.tuning_cycles;
  Alcotest.(check int) (tag ^ ": invocations identical") a.Driver.invocations b.Driver.invocations;
  Alcotest.(check int) (tag ^ ": passes identical") a.Driver.passes b.Driver.passes;
  Alcotest.(check int)
    (tag ^ ": quarantine count identical")
    (List.length a.Driver.quarantined)
    (List.length b.Driver.quarantined);
  List.iter2
    (fun (c1, r1) (c2, r2) ->
      Alcotest.(check bool)
        (tag ^ ": quarantine entry identical")
        true
        (Optconfig.equal c1 c2 && String.equal r1 r2))
    a.Driver.quarantined b.Driver.quarantined;
  Alcotest.(check int)
    (tag ^ ": fault retries identical")
    a.Driver.fault_retries b.Driver.fault_retries;
  (* the metrics block is part of result.json, so it is held to the same
     bit-identity bar as the ledger itself *)
  Alcotest.(check bool)
    (tag ^ ": per-method metrics identical")
    true
    (a.Driver.metrics.Peak_store.Codec.x_methods = b.Driver.metrics.Peak_store.Codec.x_methods);
  Alcotest.(check int)
    (tag ^ ": metrics quarantine count identical")
    a.Driver.metrics.Peak_store.Codec.x_quarantined b.Driver.metrics.Peak_store.Codec.x_quarantined;
  Alcotest.(check int)
    (tag ^ ": metrics retries identical")
    a.Driver.metrics.Peak_store.Codec.x_retries b.Driver.metrics.Peak_store.Codec.x_retries;
  Alcotest.(check int)
    (tag ^ ": metrics invocations identical")
    a.Driver.metrics.Peak_store.Codec.x_invocations b.Driver.metrics.Peak_store.Codec.x_invocations;
  Alcotest.(check (float 0.0))
    (tag ^ ": metrics cycles bit-identical")
    a.Driver.metrics.Peak_store.Codec.x_cycles b.Driver.metrics.Peak_store.Codec.x_cycles

(* The adaptive engine's form of the oracle: two drift runs that should
   be bit-identical are, across every stats field — the cycle ledgers,
   the per-phase split, the staleness record, and the per-context
   choices. *)
let check_identical_adaptive tag (a : Adaptive.stats) (b : Adaptive.stats) =
  let check_f name x y =
    Alcotest.(check bool) (tag ^ ": " ^ name ^ " bit-identical") true (same_float x y)
  in
  Alcotest.(check int) (tag ^ ": invocations identical") a.Adaptive.invocations b.Adaptive.invocations;
  check_f "total_cycles" a.Adaptive.total_cycles b.Adaptive.total_cycles;
  check_f "o3_cycles" a.Adaptive.o3_cycles b.Adaptive.o3_cycles;
  check_f "oracle_cycles" a.Adaptive.oracle_cycles b.Adaptive.oracle_cycles;
  Alcotest.(check int) (tag ^ ": swaps identical") a.Adaptive.swaps b.Adaptive.swaps;
  Alcotest.(check int)
    (tag ^ ": contexts identical")
    a.Adaptive.contexts_seen b.Adaptive.contexts_seen;
  Alcotest.(check int)
    (tag ^ ": stale detections identical")
    a.Adaptive.stale_detections b.Adaptive.stale_detections;
  Alcotest.(check (list int))
    (tag ^ ": stale invocations identical")
    a.Adaptive.stale_invocations b.Adaptive.stale_invocations;
  Alcotest.(check int) (tag ^ ": readapts identical") a.Adaptive.readapts b.Adaptive.readapts;
  check_f "mean_time_to_readapt" a.Adaptive.mean_time_to_readapt b.Adaptive.mean_time_to_readapt;
  Alcotest.(check int)
    (tag ^ ": readapt invocations identical")
    a.Adaptive.readapt_invocations b.Adaptive.readapt_invocations;
  check_f "fresh_cycles" a.Adaptive.fresh_cycles b.Adaptive.fresh_cycles;
  check_f "suspect_cycles" a.Adaptive.suspect_cycles b.Adaptive.suspect_cycles;
  check_f "retuning_cycles" a.Adaptive.retuning_cycles b.Adaptive.retuning_cycles;
  check_f "p99_invocation_cycles" a.Adaptive.p99_invocation_cycles b.Adaptive.p99_invocation_cycles;
  Alcotest.(check int)
    (tag ^ ": choice count identical")
    (List.length a.Adaptive.choices)
    (List.length b.Adaptive.choices);
  List.iter2
    (fun (k1, c1) (k2, c2) ->
      Alcotest.(check bool)
        (tag ^ ": choice key identical")
        true
        (Array.length k1 = Array.length k2 && Array.for_all2 same_float k1 k2);
      Alcotest.(check bool) (tag ^ ": choice config identical") true (Optconfig.equal c1 c2))
    a.Adaptive.choices b.Adaptive.choices

(* The wire-level form of the same oracle: two stored session results
   must serialize to the same bytes.  This is what the tuning service's
   clients can actually observe, and byte equality of the codec output
   subsumes field-by-field equality. *)
let check_identical_summary tag (a : Peak_store.Codec.session_result)
    (b : Peak_store.Codec.session_result) =
  let open Peak_store in
  Alcotest.(check string)
    (tag ^ ": session_result bytes identical")
    (Json.to_string (Codec.session_result_to_json a))
    (Json.to_string (Codec.session_result_to_json b))

(* Crash simulation: given a completed session's store, build a copy
   whose journal ends after [keep] whole events plus a torn half-line —
   exactly what a SIGKILL between fsync batches leaves behind.  Returns
   the source journal's total line count. *)
let crashed_copy ~src_dir ~dst_dir ~id ~keep =
  let src = Filename.concat (Filename.concat src_dir "sessions") id in
  let dst = Filename.concat (Filename.concat dst_dir "sessions") id in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  mkdir_p dst;
  let copy name =
    let ic = open_in (Filename.concat src name) in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    let oc = open_out (Filename.concat dst name) in
    output_string oc contents;
    close_out oc
  in
  copy "meta.json";
  let lines = ref [] in
  let ic = open_in (Filename.concat src "journal.jsonl") in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check bool) "enough journal lines to truncate" true (List.length lines > keep);
  let oc = open_out (Filename.concat dst "journal.jsonl") in
  List.iteri (fun i l -> if i < keep then output_string oc (l ^ "\n")) lines;
  (* the torn tail: a prefix of the first dropped line, no newline *)
  let tail = List.nth lines keep in
  output_string oc (String.sub tail 0 (String.length tail / 2));
  close_out oc;
  List.length lines
