(* Differential testing of the compiled (slot-resolved) interpreter
   against the string-keyed reference interpreter.

   [Interp.Reference] is the original hashtable implementation kept as an
   executable specification; the compiled path must be observably
   identical on every program: block counts, dynamic counters, the
   name-sorted access list, final environment state over declared names,
   and the exception (constructor and message) on failing runs. *)

open Peak_ir
module B = Builder

(* The fixed declaration frame every generated program runs in. *)
let scalars = [ "x"; "y"; "n"; "i"; "j"; "r"; "s" ]
let array_names = [ "a"; "b" ]
let array_len = 8

let make_ts body =
  B.ts ~name:"gen" ~params:[ "x"; "y"; "n" ]
    ~arrays:(List.map (fun a -> (a, array_len)) array_names)
    ~pointers:[ ("p", "x") ] ~locals:[ "i"; "j"; "r"; "s" ] body

let input_array name = Array.init array_len (fun k ->
    match name with
    | "a" -> float_of_int k *. 0.5
    | _ -> float_of_int (7 - k))

(* Everything an invocation can observably do.  Compared with [compare]
   so NaN results (division by zero, sqrt of negatives) count as equal
   when both sides produce them. *)
type outcome =
  | Finished of {
      counts : int array;
      reads : int;
      writes : int;
      flops : int;
      accesses : (string * int) list;
      calls : int;
      final_scalars : (string * float) list;
      final_arrays : (string * float array) list;
      final_pointer : string;
    }
  | Oob of string
  | Limit of string

let finished (r : Interp.result) final_scalars final_arrays final_pointer =
  Finished
    {
      counts = r.Interp.block_counts;
      reads = r.Interp.mem_reads;
      writes = r.Interp.mem_writes;
      flops = r.Interp.flops;
      accesses = r.Interp.array_accesses;
      calls = r.Interp.impure_calls;
      final_scalars;
      final_arrays;
      final_pointer;
    }

let compiled_outcome ?max_steps ts n =
  let cfg = Cfg.of_ts ts in
  let env = Interp.make_env ts in
  Interp.set_scalar env "x" 3.0;
  Interp.set_scalar env "y" (-2.0);
  Interp.set_scalar env "n" (float_of_int n);
  List.iter (fun a -> Interp.set_array env a (input_array a)) array_names;
  match Interp.run ?max_steps cfg env with
  | r ->
      finished r
        (List.map (fun s -> (s, Interp.get_scalar env s)) scalars)
        (List.map (fun a -> (a, Interp.get_array env a)) array_names)
        (Interp.get_pointer env "p")
  | exception Interp.Out_of_bounds m -> Oob m
  | exception Interp.Step_limit_exceeded m -> Limit m

let reference_outcome ?max_steps ts n =
  let module R = Interp.Reference in
  let cfg = Cfg.of_ts ts in
  let env = R.make_env ts in
  R.set_scalar env "x" 3.0;
  R.set_scalar env "y" (-2.0);
  R.set_scalar env "n" (float_of_int n);
  List.iter (fun a -> R.set_array env a (input_array a)) array_names;
  match R.run ?max_steps cfg env with
  | r ->
      finished r
        (List.map (fun s -> (s, R.get_scalar env s)) scalars)
        (List.map (fun a -> (a, R.get_array env a)) array_names)
        (R.get_pointer env "p")
  | exception Interp.Out_of_bounds m -> Oob m
  | exception Interp.Step_limit_exceeded m -> Limit m

(* ------------------------------------------------------------------ *)
(* Program generator                                                   *)
(* ------------------------------------------------------------------ *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (* halves cover fractional and negative constants; the range
           reaches past the array extent so subscripts go out of bounds *)
        (3, map (fun k -> B.c (float_of_int k /. 2.0)) (int_range (-6) 20));
        (3, map B.v (oneofl scalars));
        (1, return (B.deref "p"));
      ]
  in
  let rec tree d =
    if d = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 3,
            map3
              (fun op a b -> Types.Binop (op, a, b))
              (oneofl Types.[ Add; Sub; Mul; Div; Mod; Min; Max ])
              (tree (d - 1)) (tree (d - 1)) );
          ( 2,
            map3
              (fun op a b -> Types.Cmp (op, a, b))
              (oneofl Types.[ Eq; Ne; Lt; Le; Gt; Ge ])
              (tree (d - 1)) (tree (d - 1)) );
          ( 1,
            map2
              (fun op e -> Types.Unop (op, e))
              (oneofl Types.[ Neg; Not; Abs; Sqrt; Floor ])
              (tree (d - 1)) );
          (2, map2 (fun a e -> B.idx a e) (oneofl array_names) (tree (d - 1)));
        ]
  in
  tree 3

let gen_stmt =
  let open QCheck.Gen in
  let simple =
    frequency
      [
        (4, map2 (fun s e -> B.( := ) s e) (oneofl scalars) gen_expr);
        (3, map3 (fun a i e -> B.store a i e) (oneofl array_names) gen_expr gen_expr);
        (1, map (fun e -> B.ptr_store "p" e) gen_expr);
        (1, map (fun t -> B.ptr_set "p" t) (oneofl [ "x"; "y"; "r" ]));
        (1, map B.call (oneofl [ "sin"; "helper" ]));
        (1, return B.nop);
      ]
  in
  (* bounded nesting, constant loop bounds: every generated program
     terminates, so only Out_of_bounds distinguishes failing runs *)
  let rec stmt d =
    if d = 0 then simple
    else
      frequency
        [
          (5, simple);
          ( 1,
            map3
              (fun c t e -> B.if_ c t e)
              gen_expr
              (list_size (int_range 0 2) (stmt (d - 1)))
              (list_size (int_range 0 2) (stmt (d - 1))) );
          ( 1,
            map3
              (fun ix hi body -> B.for_ ix ~lo:(B.ci 0) ~hi:(B.ci hi) body)
              (oneofl [ "i"; "j" ])
              (int_range 0 5)
              (list_size (int_range 1 3) (stmt (d - 1))) );
        ]
  in
  stmt 2

let gen_program = QCheck.Gen.(pair (list_size (int_range 1 6) gen_stmt) (int_range 0 6))

let rec stmt_to_string = function
  | Types.Assign (s, e) -> Printf.sprintf "%s := %s" s (Expr.to_string e)
  | Types.Store (a, i, e) ->
      Printf.sprintf "%s[%s] := %s" a (Expr.to_string i) (Expr.to_string e)
  | Types.PtrStore (p, e) -> Printf.sprintf "*%s := %s" p (Expr.to_string e)
  | Types.PtrSet (p, t) -> Printf.sprintf "%s -> %s" p t
  | Types.If (c, t, e) ->
      Printf.sprintf "if %s {%s} {%s}" (Expr.to_string c) (block_to_string t)
        (block_to_string e)
  | Types.For { index; lo; hi; body } ->
      Printf.sprintf "for %s in [%s,%s) {%s}" index (Expr.to_string lo) (Expr.to_string hi)
        (block_to_string body)
  | Types.While (c, body) ->
      Printf.sprintf "while %s {%s}" (Expr.to_string c) (block_to_string body)
  | Types.Call f -> Printf.sprintf "call %s" f
  | Types.Nop -> "nop"

and block_to_string b = String.concat "; " (List.map stmt_to_string b)

let print_program (body, n) = Printf.sprintf "n=%d: %s" n (block_to_string body)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_compiled_matches_reference =
  QCheck.Test.make ~name:"compiled execution matches the reference interpreter" ~count:500
    (QCheck.make ~print:print_program gen_program)
    (fun (body, n) ->
      let ts = make_ts body in
      compare (compiled_outcome ts n) (reference_outcome ts n) = 0)

let prop_scratch_reuse_deterministic =
  QCheck.Test.make ~name:"reusing one scratch across invocations is deterministic" ~count:200
    (QCheck.make ~print:print_program gen_program)
    (fun (body, n) ->
      let ts = make_ts body in
      let cfg = Cfg.of_ts ts in
      let env = Interp.make_env ts in
      let compiled = Interp.compile cfg env in
      let scratch = Interp.make_scratch compiled in
      let invoke () =
        (* full input-state reset: locals back to their initial 0.0 and
           the pointer back to its declared pointee, so any divergence is
           the scratch's, not leftover environment state *)
        List.iter (fun s -> Interp.set_scalar env s 0.0) scalars;
        Interp.set_scalar env "x" 3.0;
        Interp.set_scalar env "y" (-2.0);
        Interp.set_scalar env "n" (float_of_int n);
        Interp.set_pointer env "p" "x";
        List.iter (fun a -> Interp.set_array env a (input_array a)) array_names;
        match Interp.run_compiled compiled scratch with
        | () ->
            let r = Interp.result_of_scratch compiled scratch in
            finished r
              (List.map (fun s -> (s, Interp.get_scalar env s)) scalars)
              (List.map (fun a -> (a, Array.copy (Interp.get_array env a))) array_names)
              (Interp.get_pointer env "p")
        | exception Interp.Out_of_bounds m -> Oob m
        | exception Interp.Step_limit_exceeded m -> Limit m
      in
      compare (invoke ()) (invoke ()) = 0)

(* ------------------------------------------------------------------ *)
(* Directed exception-message equality                                 *)
(* ------------------------------------------------------------------ *)

let test_step_limit_message () =
  let ts = B.ts ~name:"spin" ~params:[] ~locals:[] B.[ while_ (c 1.0) [ nop ] ] in
  match (compiled_outcome ~max_steps:1000 ts 0, reference_outcome ~max_steps:1000 ts 0) with
  | Limit a, Limit b -> Alcotest.(check string) "same message" b a
  | _ -> Alcotest.fail "expected Step_limit_exceeded from both interpreters"

let test_oob_message () =
  List.iter
    (fun body ->
      let ts = make_ts body in
      match (compiled_outcome ts 0, reference_outcome ts 0) with
      | Oob a, Oob b -> Alcotest.(check string) "same message" b a
      | _ -> Alcotest.fail "expected Out_of_bounds from both interpreters")
    [
      B.[ "r" := idx "a" (c (-0.9)) ];
      B.[ "r" := idx "a" (c 8.0) ];
      B.[ store "b" (c (-1.0)) (c 0.0) ];
    ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compiled_matches_reference; prop_scratch_reuse_deterministic ]

let suites =
  [
    ( "ir.compile",
      qcheck_cases
      @ [
          Alcotest.test_case "step-limit message parity" `Quick test_step_limit_message;
          Alcotest.test_case "out-of-bounds message parity" `Quick test_oob_message;
        ] );
  ]
