(* The scenario matrix: online adaptive tuning under drift, swept
   ghdl-testsuite-style.  Every registry benchmark crosses every drift
   pattern (step, ramp, periodic, burst) through one driver, and every
   cell asserts the same SLOs:

     - sanity: the drift-aware oracle is a floor on the total;
     - adaptivity: total cycles within [slo_oracle_factor] of the
       oracle and never catastrophically worse than static -O3;
     - staleness: detections bounded by the spec's declared shift
       points (no runaway false positives), and when a re-tuning cycle
       completes, its mean lag is within [slo_readapt] invocations;
     - determinism: a second run of the cell is bit-identical, field
       for field, via the [Oracles] adaptive comparison.

   On any failure the whole per-cell table is printed, pass/fail per
   cell, so a regression reads as a matrix diff instead of a lone
   assertion message. *)

open Peak_machine
open Peak_compiler
open Peak_workload
open Peak

let bench = Oracles.bench
let flag n = Option.get (Flags.by_name n)

let candidates =
  [
    Optconfig.disable Optconfig.o3 (flag "schedule-insns");
    Optconfig.disable Optconfig.o3 (flag "force-mem");
  ]

(* SLO bounds.  The oracle factor leaves room for the exploration the
   engine must pay (every candidate rated per context, re-rated after
   every staleness verdict); the readapt bound is roughly
   candidates x (compile latency + window) with headroom. *)
let slo_oracle_factor = 1.35
let slo_readapt = 250.0

(* Regime B's scalar warp per benchmark — the same bounds-safe table
   the bench matrix streams (scale-downs everywhere; ART pins [off]
   and quadruples the F1 walk so regime B is dearer and the staleness
   detector has something to detect). *)
let warp_for = function
  | "ART" -> "warp=off*0,warp=numf1s*4"
  | "CRAFTY" -> "warp=depth*0.5"
  | "GZIP" -> "warp=chain_length*0.5"
  | "MCF" -> "warp=group_size*0.6"
  | "TWOLF" -> "warp=nterms*0.6"
  | "MESA" -> "warp=wrap_repeat*0"
  | "VORTEX" -> "warp=status*0"
  | "SWIM" | "APPLU" | "MGRID" -> "warp=n*0.75"
  | "EQUAKE" -> "warp=rows*0.8"
  | "WUPWISE" -> "warp=k*0.5"
  | "APSI" -> "warp=l1*0.5"
  | "BZIP2" -> "warp=budget*0.5"
  | name -> Alcotest.failf "no drift warp declared for %s" name

let patterns invocations =
  [
    ("step", Printf.sprintf "step=%d" (2 * invocations / 5));
    ("ramp", Printf.sprintf "ramp=%d+%d" (invocations / 3) (invocations / 4));
    ("periodic", Printf.sprintf "periodic=%d" (invocations / 4));
    ("burst", Printf.sprintf "burst=%d+%d" (invocations / 3) (invocations / 3));
  ]

(* One cell: build the drifted stream from its spec string (so the
   parser is on the hot path of every cell) and run the engine over it. *)
let drive ~seed (b : Benchmark.t) ~spec ~invocations =
  let tsec = Tsection.make b.Benchmark.ts in
  let base = b.Benchmark.trace Trace.Train ~seed in
  let drift =
    match Drift.of_string spec with
    | Ok d -> d
    | Error e -> Alcotest.failf "cell spec %S rejected: %s" spec e
  in
  let trace = Drift.apply ~length:invocations drift base in
  let a = Adaptive.create ~seed tsec trace Machine.pentium4 ~candidates in
  (Adaptive.run a ~invocations, drift)

type cell_result = {
  c_bench : string;
  c_pattern : string;
  c_failures : string list;
  c_stats : Adaptive.stats;
}

let check_cell ~seed (b : Benchmark.t) (pattern, spec_pattern) ~invocations =
  let spec =
    Printf.sprintf "seed=%d,%s,%s" seed spec_pattern (warp_for b.Benchmark.name)
  in
  let s, drift = drive ~seed b ~spec ~invocations in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* sanity *)
  if s.Adaptive.invocations <> invocations then
    fail "ran %d of %d invocations" s.Adaptive.invocations invocations;
  if s.Adaptive.oracle_cycles > s.Adaptive.total_cycles +. 1e-6 then
    fail "oracle %.0f above total %.0f" s.Adaptive.oracle_cycles s.Adaptive.total_cycles;
  (* adaptivity *)
  if s.Adaptive.total_cycles > slo_oracle_factor *. s.Adaptive.oracle_cycles then
    fail "total %.0f exceeds %.2fx oracle %.0f" s.Adaptive.total_cycles slo_oracle_factor
      s.Adaptive.oracle_cycles;
  if s.Adaptive.total_cycles > 1.5 *. s.Adaptive.o3_cycles then
    fail "total %.0f exceeds 1.5x the static -O3 run" s.Adaptive.total_cycles;
  (* staleness: bounded false positives against the declared ground truth *)
  let shifts = Drift.shift_points drift ~length:invocations in
  if s.Adaptive.stale_detections > List.length shifts + 2 then
    fail "%d stale detections for %d declared shift points" s.Adaptive.stale_detections
      (List.length shifts);
  if s.Adaptive.readapts > 0 && s.Adaptive.mean_time_to_readapt > slo_readapt then
    fail "mean time-to-readapt %.0f exceeds %.0f" s.Adaptive.mean_time_to_readapt slo_readapt;
  (* per-phase ledger covers the whole spend *)
  let ledger =
    s.Adaptive.fresh_cycles +. s.Adaptive.suspect_cycles +. s.Adaptive.retuning_cycles
  in
  if Float.abs (ledger -. s.Adaptive.total_cycles) > 1e-6 *. s.Adaptive.total_cycles then
    fail "phase ledger %.0f does not cover total %.0f" ledger s.Adaptive.total_cycles;
  (* determinism: the rerun is bit-identical *)
  let s2, _ = drive ~seed b ~spec ~invocations in
  Oracles.check_identical_adaptive
    (Printf.sprintf "%s/%s" b.Benchmark.name pattern)
    s s2;
  { c_bench = b.Benchmark.name; c_pattern = pattern; c_failures = List.rev !failures; c_stats = s }

let print_table cells =
  Printf.printf "%-10s %-9s %8s %8s %6s %8s %s\n" "benchmark" "pattern" "vs-O3%" "gap%"
    "stale" "lag" "SLO";
  List.iter
    (fun c ->
      let s = c.c_stats in
      Printf.printf "%-10s %-9s %8.1f %8.1f %6d %8s %s\n" c.c_bench c.c_pattern
        (((s.Adaptive.o3_cycles /. s.Adaptive.total_cycles) -. 1.0) *. 100.0)
        (((s.Adaptive.total_cycles /. s.Adaptive.oracle_cycles) -. 1.0) *. 100.0)
        s.Adaptive.stale_detections
        (if s.Adaptive.readapts = 0 then "-"
         else Printf.sprintf "%.0f" s.Adaptive.mean_time_to_readapt)
        (match c.c_failures with [] -> "ok" | fs -> "FAIL: " ^ String.concat "; " fs))
    cells

let test_matrix () =
  let seed = 3 in
  let cells =
    List.concat_map
      (fun (b : Benchmark.t) ->
        (* class-cached traces absorb long streams almost for free;
           the others interpret every invocation, so they get shorter
           ones to keep the matrix inside the suite's budget *)
        let heavy = (b.Benchmark.trace Trace.Train ~seed).Trace.class_of = None in
        let invocations = if heavy then 1_500 else 6_000 in
        List.map (fun p -> check_cell ~seed b p ~invocations) (patterns invocations))
      Registry.all
  in
  let failed = List.filter (fun c -> c.c_failures <> []) cells in
  if failed <> [] then begin
    print_table cells;
    Alcotest.failf "%d of %d matrix cells breached their SLOs" (List.length failed)
      (List.length cells)
  end;
  (* the matrix must include cells that actually exercised the whole
     staleness state machine, or the SLOs above are vacuous *)
  let readapted =
    List.exists (fun c -> c.c_stats.Adaptive.readapts > 0 && c.c_bench = "ART") cells
  in
  Alcotest.(check bool) "some ART cell completed a re-tuning cycle" true readapted

let test_matrix_covers_registry () =
  (* the sweep is every registry benchmark x >= 4 patterns, by
     construction; pin that construction so a future edit cannot
     silently shrink the matrix *)
  Alcotest.(check int) "fourteen benchmarks" 14 (List.length Registry.all);
  Alcotest.(check int) "four patterns" 4 (List.length (patterns 1000))

let suites =
  [
    ( "scenarios",
      [
        Alcotest.test_case "matrix covers registry x patterns" `Quick test_matrix_covers_registry;
        Alcotest.test_case "drift matrix SLOs" `Slow test_matrix;
      ] );
  ]
