(* The persistent tuning store: JSON codec round-trips, journal crash
   tolerance, stable configuration digests, resume-equals-uninterrupted
   determinism across domain counts, and cross-run warm starts. *)

open Peak_util
open Peak_machine
open Peak_compiler
open Peak_workload
open Peak_store
open Peak

(* Shared fixtures — temp dirs, crash artifacts, the bit-identity
   oracle — live in [Oracles]. *)
let bench = Oracles.bench
let with_tmpdir = Oracles.with_tmpdir
let same_float = Oracles.same_float
let check_identical = Oracles.check_identical
let crashed_copy = Oracles.crashed_copy

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_float =
  QCheck.Gen.(
    frequency
      [
        (10, float);
        ( 3,
          oneofl
            [
              0.; -0.; 1.; -1.; Float.max_float; Float.min_float; Float.epsilon;
              4.9e-324; 1e17; -123456.; 0.1; Float.nan; Float.infinity;
              Float.neg_infinity;
            ] );
      ])

let arb_float = QCheck.make ~print:(Printf.sprintf "%h") gen_float

(* v4 records refuse non-finite floats at decode time, so generators for
   record fields map the special values onto an extreme-but-finite
   double; the sentinel cases (infinite quarantine evals) are exercised
   explicitly below. *)
let gen_finite =
  QCheck.Gen.map (fun f -> if Float.is_finite f then f else 0x1.fp1023) gen_float

let gen_optconfig =
  QCheck.Gen.(
    list_size (int_bound 38) (int_bound (Array.length Flags.all - 1)) >|= fun idxs ->
    List.fold_left (fun c i -> Optconfig.enable c Flags.all.(i)) Optconfig.o0 idxs)

let arb_optconfig = QCheck.make ~print:Optconfig.to_string gen_optconfig

let gen_name =
  QCheck.Gen.(
    frequency
      [
        (5, string_size ~gen:printable (int_bound 16));
        (1, oneofl [ ""; "a\"b"; "back\\slash"; "tab\tnl\n"; "caf\xc3\xa9" ]);
      ])

let gen_consumption =
  QCheck.Gen.(
    map3
      (fun i p c -> { Codec.c_invocations = i; c_passes = p; c_cycles = c })
      small_nat small_nat gen_finite)

let gen_rating =
  QCheck.Gen.(
    map
      (fun (eval, var, samples, invocations, converged) ->
        { Codec.eval; var; samples; invocations; converged })
      (tup5 gen_finite gen_finite small_nat small_nat bool))

let arb_rating =
  QCheck.make
    ~print:(fun (r : Codec.rating) ->
      Printf.sprintf "{eval=%h; var=%h; samples=%d; inv=%d; conv=%b}" r.Codec.eval
        r.Codec.var r.Codec.samples r.Codec.invocations r.Codec.converged)
    gen_rating

let gen_event =
  QCheck.Gen.(
    map
      (fun (m, ctx, base, idx, config, ((eval, converged), (fail, retries)), used) ->
        (* keep the generated event v4-valid: a non-finite eval becomes
           the +inf sentinel, which must carry a failure reason *)
        let eval, fail =
          if Float.is_finite eval then (eval, fail)
          else (Float.infinity, Some (Option.value fail ~default:"crashed"))
        in
        {
          Codec.e_method = m;
          e_ctx = ctx;
          e_base = base;
          e_idx = idx;
          e_config = config;
          e_eval = eval;
          e_converged = converged;
          e_used = used;
          e_fail = fail;
          e_retries = retries;
        })
      (tup7
         (oneofl [ "CBR"; "MBR"; "RBR"; "AVG"; "WHL" ])
         gen_name gen_name (int_range (-1) 100) gen_optconfig
         (pair (pair gen_float bool)
            (pair
               (oneofl [ None; Some "crashed"; Some "hung"; Some "wrong-output" ])
               small_nat))
         gen_consumption))

let arb_event =
  QCheck.make
    ~print:(fun e -> Json.to_string (Codec.event_to_json e))
    gen_event

let gen_trajectory =
  QCheck.Gen.(list_size (int_bound 6) (pair gen_optconfig gen_finite))

let arb_trajectory =
  QCheck.make ~print:(fun t -> Json.to_string (Codec.trajectory_to_json t)) gen_trajectory

let gen_session_meta =
  QCheck.Gen.(
    map
      (fun (id, (b, m), (d, s), seed, threshold, params, method_, (start, faults)) ->
        {
          Codec.m_id = id;
          m_benchmark = b;
          m_machine = m;
          m_dataset = d;
          m_search = s;
          m_seed = seed;
          m_threshold = threshold;
          m_params = params;
          m_method = method_;
          m_start = start;
          m_faults = faults;
        })
      (tup8 gen_name (pair gen_name gen_name) (pair gen_name gen_name) small_nat
         gen_finite gen_name
         (oneofl [ "auto"; "cbr"; "mbr"; "rbr"; "avg"; "whl" ])
         (pair gen_optconfig (oneofl [ "-"; "seed=3,crash=0.05"; "seed=7,wrong=0.02" ]))))

let arb_session_meta =
  QCheck.make
    ~print:(fun m -> Json.to_string (Codec.session_meta_to_json m))
    gen_session_meta

let gen_attempt =
  QCheck.Gen.(
    map3
      (fun m converged ratings ->
        { Codec.at_method = m; at_converged = converged; at_ratings = ratings })
      (oneofl [ "CBR"; "MBR"; "RBR"; "AVG"; "WHL" ])
      bool small_nat)

let gen_quarantined =
  QCheck.Gen.(
    list_size (int_bound 3)
      (pair gen_optconfig (oneofl [ "crashed"; "hung"; "wrong-output" ])))

let gen_method_metrics =
  QCheck.Gen.(
    map3
      (fun m r i -> { Codec.mm_method = m; mm_ratings = r; mm_invocations = i })
      (oneofl [ "CBR"; "MBR"; "RBR"; "AVG"; "WHL" ])
      small_nat small_nat)

let gen_metrics =
  QCheck.Gen.(
    map
      (fun (methods, q, retries, inv, cycles) ->
        {
          Codec.x_methods = methods;
          x_quarantined = q;
          x_retries = retries;
          x_invocations = inv;
          x_cycles = cycles;
        })
      (tup5 (list_size (int_bound 4) gen_method_metrics) small_nat small_nat small_nat
         gen_finite))

let gen_stage =
  QCheck.Gen.(
    map3
      (fun l r f -> { Codec.st_label = l; st_ratings = r; st_flags = f })
      (oneofl [ "screen"; "refine"; "eliminate"; "sample" ])
      small_nat small_nat)

let gen_session_result =
  QCheck.Gen.(
    map
      (fun
        ( ((m, strategy), (attempts, stages)),
          best,
          (ratings, iterations),
          trajectory,
          cycles,
          seconds,
          ((passes, inv), ((quarantined, retries), metrics)) )
      ->
        {
          Codec.r_method = m;
          r_strategy = strategy;
          r_stages = stages;
          r_attempts = attempts;
          r_best = best;
          r_ratings = ratings;
          r_iterations = iterations;
          r_trajectory = trajectory;
          r_tuning_cycles = cycles;
          r_tuning_seconds = seconds;
          r_passes = passes;
          r_invocations = inv;
          r_quarantined = quarantined;
          r_retries = retries;
          r_metrics = metrics;
        })
      (tup7
         (pair
            (pair
               (oneofl [ "CBR"; "MBR"; "RBR"; "AVG"; "WHL" ])
               (oneofl [ "ie"; "be"; "ce"; "random100"; "ff"; "ose"; "staged" ]))
            (pair (list_size (int_bound 4) gen_attempt) (list_size (int_bound 3) gen_stage)))
         gen_optconfig (pair small_nat small_nat) gen_trajectory gen_finite
         gen_finite
         (pair (pair small_nat small_nat)
            (pair (pair gen_quarantined small_nat) (option gen_metrics)))))

let arb_session_result =
  QCheck.make
    ~print:(fun r -> Json.to_string (Codec.session_result_to_json r))
    gen_session_result

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

(* Every round-trip goes through the printed text, not just the Json
   tree — the journal stores lines, so text is the format of record. *)
let reencode j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e

let ok = function
  | Ok v -> v
  | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e

let same_trajectory a b =
  List.length a = List.length b
  && List.for_all2
       (fun (c1, g1) (c2, g2) -> Optconfig.equal c1 c2 && same_float g1 g2)
       a b

let same_consumption (a : Codec.consumption) (b : Codec.consumption) =
  a.Codec.c_invocations = b.Codec.c_invocations
  && a.Codec.c_passes = b.Codec.c_passes
  && same_float a.Codec.c_cycles b.Codec.c_cycles

let same_metrics a b =
  match (a, b) with
  | None, None -> true
  | Some (a : Codec.metrics), Some (b : Codec.metrics) ->
      a.Codec.x_methods = b.Codec.x_methods
      && a.Codec.x_quarantined = b.Codec.x_quarantined
      && a.Codec.x_retries = b.Codec.x_retries
      && a.Codec.x_invocations = b.Codec.x_invocations
      && same_float a.Codec.x_cycles b.Codec.x_cycles
  | _ -> false

let roundtrip_tests =
  let t name arb encode decode equal =
    QCheck.Test.make ~count:200 ~name arb (fun v ->
        equal v (ok (decode (reencode (encode v)))))
  in
  [
    t "float round-trips bit-exactly" arb_float Codec.float_to_json Codec.float_of_json
      same_float;
    t "optconfig round-trips" arb_optconfig Codec.optconfig_to_json Codec.optconfig_of_json
      Optconfig.equal;
    t "rating round-trips" arb_rating Codec.rating_to_json Codec.rating_of_json
      (fun (a : Codec.rating) (b : Codec.rating) ->
        same_float a.Codec.eval b.Codec.eval
        && same_float a.Codec.var b.Codec.var
        && a.Codec.samples = b.Codec.samples
        && a.Codec.invocations = b.Codec.invocations
        && a.Codec.converged = b.Codec.converged);
    t "trajectory round-trips" arb_trajectory Codec.trajectory_to_json
      Codec.trajectory_of_json same_trajectory;
    t "event round-trips" arb_event Codec.event_to_json Codec.event_of_json
      (fun (a : Codec.event) (b : Codec.event) ->
        a.Codec.e_method = b.Codec.e_method
        && a.Codec.e_ctx = b.Codec.e_ctx
        && a.Codec.e_base = b.Codec.e_base
        && a.Codec.e_idx = b.Codec.e_idx
        && Optconfig.equal a.Codec.e_config b.Codec.e_config
        && same_float a.Codec.e_eval b.Codec.e_eval
        && a.Codec.e_converged = b.Codec.e_converged
        && same_consumption a.Codec.e_used b.Codec.e_used
        && a.Codec.e_fail = b.Codec.e_fail
        && a.Codec.e_retries = b.Codec.e_retries);
    t "session_meta round-trips" arb_session_meta Codec.session_meta_to_json
      Codec.session_meta_of_json
      (fun (a : Codec.session_meta) (b : Codec.session_meta) ->
        a.Codec.m_id = b.Codec.m_id
        && a.Codec.m_benchmark = b.Codec.m_benchmark
        && a.Codec.m_machine = b.Codec.m_machine
        && a.Codec.m_dataset = b.Codec.m_dataset
        && a.Codec.m_search = b.Codec.m_search
        && a.Codec.m_seed = b.Codec.m_seed
        && same_float a.Codec.m_threshold b.Codec.m_threshold
        && a.Codec.m_params = b.Codec.m_params
        && a.Codec.m_method = b.Codec.m_method
        && Optconfig.equal a.Codec.m_start b.Codec.m_start
        && a.Codec.m_faults = b.Codec.m_faults);
    t "session_result round-trips" arb_session_result Codec.session_result_to_json
      Codec.session_result_of_json
      (fun (a : Codec.session_result) (b : Codec.session_result) ->
        a.Codec.r_method = b.Codec.r_method
        && a.Codec.r_strategy = b.Codec.r_strategy
        && a.Codec.r_stages = b.Codec.r_stages
        && a.Codec.r_attempts = b.Codec.r_attempts
        && Optconfig.equal a.Codec.r_best b.Codec.r_best
        && a.Codec.r_ratings = b.Codec.r_ratings
        && a.Codec.r_iterations = b.Codec.r_iterations
        && same_trajectory a.Codec.r_trajectory b.Codec.r_trajectory
        && same_float a.Codec.r_tuning_cycles b.Codec.r_tuning_cycles
        && same_float a.Codec.r_tuning_seconds b.Codec.r_tuning_seconds
        && a.Codec.r_passes = b.Codec.r_passes
        && a.Codec.r_invocations = b.Codec.r_invocations
        && List.length a.Codec.r_quarantined = List.length b.Codec.r_quarantined
        && List.for_all2
             (fun (c1, x1) (c2, x2) -> Optconfig.equal c1 c2 && String.equal x1 x2)
             a.Codec.r_quarantined b.Codec.r_quarantined
        && a.Codec.r_retries = b.Codec.r_retries
        && same_metrics a.Codec.r_metrics b.Codec.r_metrics);
  ]

let test_version_guard () =
  let e =
    {
      Codec.e_method = "RBR";
      e_ctx = "c";
      e_base = "-";
      e_idx = 0;
      e_config = Optconfig.o3;
      e_eval = 1.0;
      e_converged = true;
      e_used = { Codec.c_invocations = 1; c_passes = 1; c_cycles = 1.0 };
      e_fail = None;
      e_retries = 0;
    }
  in
  let bump = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function "v", _ -> ("v", Json.Int (Codec.version + 1)) | f -> f)
             fields)
    | j -> j
  in
  match Codec.event_of_json (bump (Codec.event_to_json e)) with
  | Ok _ -> Alcotest.fail "decoder accepted a future format version"
  | Error msg ->
      Alcotest.(check bool) "error says the format is newer" true
        (Oracles.contains ~sub:"newer" (String.lowercase_ascii msg))

(* v4 numeric hygiene: non-finite floats are rejected at every decode
   boundary, while the same bytes stamped v3 still decode leniently —
   journals written before the rule must stay readable. *)
let set_version n = function
  | Json.Obj fields ->
      Json.Obj (List.map (function "v", _ -> ("v", Json.Int n) | f -> f) fields)
  | j -> j

let hygiene_event ?(eval = 1.0) ?fail ?(cycles = 1.0) () =
  {
    Codec.e_method = "RBR";
    e_ctx = "c";
    e_base = "-";
    e_idx = 0;
    e_config = Optconfig.o3;
    e_eval = eval;
    e_converged = true;
    e_used = { Codec.c_invocations = 1; c_passes = 1; c_cycles = cycles };
    e_fail = fail;
    e_retries = 0;
  }

let hygiene_result ?(cycles = 1.0) ?(seconds = 1.0) ?(trajectory = []) () =
  {
    Codec.r_method = "RBR";
    r_strategy = "ie";
    r_stages = [];
    r_attempts = [];
    r_best = Optconfig.o3;
    r_ratings = 1;
    r_iterations = 1;
    r_trajectory = trajectory;
    r_tuning_cycles = cycles;
    r_tuning_seconds = seconds;
    r_passes = 1;
    r_invocations = 1;
    r_quarantined = [];
    r_retries = 0;
    r_metrics = None;
  }

let rejects name decode j =
  match decode j with
  | Ok _ -> Alcotest.fail (name ^ ": decoder accepted a non-finite value")
  | Error msg ->
      Alcotest.(check bool) (name ^ ": one-line error") false (String.contains msg '\n')

let test_v4_rejects_nonfinite () =
  let ev e = Codec.event_to_json e in
  rejects "NaN eval" Codec.event_of_json (ev (hygiene_event ~eval:Float.nan ()));
  rejects "infinite eval without failure reason" Codec.event_of_json
    (ev (hygiene_event ~eval:Float.infinity ()));
  rejects "NaN cycles" Codec.event_of_json (ev (hygiene_event ~cycles:Float.nan ()));
  (* the quarantine sentinel — infinite eval *with* a reason — stays valid *)
  (match
     Codec.event_of_json (ev (hygiene_event ~eval:Float.infinity ~fail:"crashed" ()))
   with
  | Ok e ->
      Alcotest.(check bool) "quarantine sentinel survives" true
        (e.Codec.e_eval = Float.infinity)
  | Error e -> Alcotest.fail ("quarantine sentinel rejected: " ^ e));
  let rating eval var =
    Codec.rating_to_json { Codec.eval; var; samples = 1; invocations = 1; converged = true }
  in
  rejects "NaN rating eval" Codec.rating_of_json (rating Float.nan 1.0);
  rejects "infinite rating var" Codec.rating_of_json (rating 1.0 Float.infinity);
  let meta threshold =
    Codec.session_meta_to_json
      {
        Codec.m_id = "id";
        m_benchmark = "ART";
        m_machine = "sparc2";
        m_dataset = "train";
        m_search = "be";
        m_seed = 1;
        m_threshold = threshold;
        m_params = "w40";
        m_method = "rbr";
        m_start = Optconfig.o3;
        m_faults = "-";
      }
  in
  rejects "NaN threshold" Codec.session_meta_of_json (meta Float.nan);
  rejects "NaN tuning cycles" Codec.session_result_of_json
    (Codec.session_result_to_json (hygiene_result ~cycles:Float.nan ()));
  rejects "infinite trajectory gain" Codec.session_result_of_json
    (Codec.session_result_to_json
       (hygiene_result ~trajectory:[ (Optconfig.o3, Float.infinity) ] ()))

let test_v3_lenient_decode () =
  (* identical bytes, version stamp rewritten to 3: the lenient path *)
  (match
     Codec.event_of_json (set_version 3 (Codec.event_to_json (hygiene_event ~eval:Float.nan ())))
   with
  | Ok e -> Alcotest.(check bool) "v3 NaN eval decodes" true (Float.is_nan e.Codec.e_eval)
  | Error e -> Alcotest.fail ("v3 event rejected: " ^ e));
  match
    Codec.session_result_of_json
      (set_version 3 (Codec.session_result_to_json (hygiene_result ~cycles:Float.nan ())))
  with
  | Ok r ->
      Alcotest.(check bool) "v3 NaN cycles decode" true (Float.is_nan r.Codec.r_tuning_cycles);
      Alcotest.(check bool) "v3 result has no metrics block" true (r.Codec.r_metrics = None)
  | Error e -> Alcotest.fail ("v3 result rejected: " ^ e)

let test_index_rejects_nonfinite () =
  let entry =
    {
      Index.key =
        {
          Index.k_benchmark = "ART";
          k_machine = "sparc2";
          k_method = "RBR";
          k_config = Optconfig.digest Optconfig.o3;
          k_ctx = "deadbeef";
        };
      session = "s1";
      config = Optconfig.o3;
      eval = 1.0;
      used = { Codec.c_invocations = 1; c_passes = 1; c_cycles = 1.0 };
    }
  in
  let idx0 = Index.create () in
  Index.add idx0 entry;
  let tamper = function
    | Json.Obj fields ->
        Json.Obj
          (List.map (function "eval", _ -> ("eval", Json.String "inf") | f -> f) fields)
    | j -> j
  in
  let doc v =
    match Index.to_json idx0 with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "v", _ -> ("v", Json.Int v)
               | "entries", Json.List [ e ] -> ("entries", Json.List [ tamper e ])
               | f -> f)
             fields)
    | j -> j
  in
  (match Index.of_json (doc Codec.version) with
  | Ok _ -> Alcotest.fail "v4 index accepted a non-finite eval"
  | Error msg ->
      Alcotest.(check bool) "error names the member" true
        (Oracles.contains ~sub:"eval" msg));
  (* a pre-v4 index skips the entry instead of failing the whole load *)
  match Index.of_json (doc 3) with
  | Ok idx -> Alcotest.(check int) "v3 index drops the bad entry" 0 (Index.size idx)
  | Error e -> Alcotest.fail ("v3 index rejected: " ^ e)

let test_config_digest_mismatch () =
  (* A record whose flag list was tampered with must be rejected. *)
  let j = Codec.optconfig_to_json Optconfig.o3 in
  let tampered =
    match j with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "flags", _ -> ("flags", Json.List [ Json.String "gcse" ]) | f -> f)
             fields)
    | j -> j
  in
  match Codec.optconfig_of_json tampered with
  | Ok _ -> Alcotest.fail "decoder accepted a digest mismatch"
  | Error _ -> ()

let test_json_parser_basics () =
  (match Json.of_string "\"a\\u00e9b\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "\\u escape decodes to UTF-8" "a\xc3\xa9b" s
  | _ -> Alcotest.fail "unicode escape");
  (match Json.of_string "{\"x\": [1, 2.5, null, true]} " with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Json.of_string "{} garbage" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Optconfig digest stability                                          *)
(* ------------------------------------------------------------------ *)

let test_digest_order_independent () =
  (* Same flag set assembled in opposite orders digests identically. *)
  let flags = [ Flags.all.(3); Flags.all.(17); Flags.all.(30) ] in
  let fwd = List.fold_left Optconfig.enable Optconfig.o0 flags in
  let bwd = List.fold_left Optconfig.enable Optconfig.o0 (List.rev flags) in
  Alcotest.(check string) "digest order-independent" (Optconfig.digest fwd)
    (Optconfig.digest bwd);
  (* and the digest is an anchored function of the flag names, not the
     table indices: the empty config is the bare FNV-1a offset basis *)
  Alcotest.(check string) "o0 digest anchor" "cbf29ce484222325"
    (Optconfig.digest Optconfig.o0)

let digest_agrees_with_equal =
  QCheck.Test.make ~count:200 ~name:"digest agrees with equal/compare"
    (QCheck.pair arb_optconfig arb_optconfig) (fun (a, b) ->
      Optconfig.equal a b = (Optconfig.digest a = Optconfig.digest b)
      && Optconfig.equal a b = (Optconfig.compare a b = 0))

(* ------------------------------------------------------------------ *)
(* Journal crash tolerance                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_truncated_tail () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "journal.jsonl" in
  let j = Journal.open_append path in
  Journal.append j (Json.Obj [ ("a", Json.Int 1) ]);
  Journal.append j (Json.Obj [ ("a", Json.Int 2) ]);
  Journal.close j;
  (* simulate a torn final write: half a record, no newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"a\": 3, \"trunc";
  close_out oc;
  let records, dropped = Journal.read path in
  Alcotest.(check int) "two whole records survive" 2 (List.length records);
  Alcotest.(check int) "one line dropped" 1 dropped;
  Alcotest.(check (list int))
    "records in append order" [ 1; 2 ]
    (List.map (fun r -> Result.get_ok (Json.get_int "a" r)) records)

let test_journal_interior_corruption () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "journal.jsonl" in
  let oc = open_out path in
  output_string oc "{\"a\": 1}\nnot json at all\n{\"a\": 2}\n";
  close_out oc;
  let records, dropped = Journal.read path in
  Alcotest.(check int) "both good records survive" 2 (List.length records);
  Alcotest.(check int) "corrupt interior line dropped" 1 dropped

(* Torture: a journal truncated at *every* byte offset must read back
   without error as a prefix of the original records — whole lines
   survive, the torn tail is dropped, nothing is invented. *)
let test_journal_truncate_every_offset () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "journal.jsonl" in
  let j = Journal.open_append path in
  let payloads =
    [ Json.Int 1; Json.String "two\n\"three\""; Json.List [ Json.Float 2.5; Json.Null ];
      Json.Obj [ ("nested", Json.Obj [ ("deep", Json.Bool true) ]) ] ]
  in
  List.iteri (fun i p -> Journal.append j (Json.Obj [ ("i", Json.Int i); ("p", p) ])) payloads;
  Journal.close j;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  (* records recoverable from the first [k] bytes: every whole line,
     plus a torn tail that happens to end exactly at a record boundary
     (the newline alone was lost — the record itself is intact) *)
  let recoverable k =
    match String.split_on_char '\n' (String.sub contents 0 k) with
    | [] -> 0
    | parts ->
        let whole = List.length parts - 1 in
        let tail = List.nth parts whole in
        whole + (match Json.of_string tail with Ok _ -> 1 | Error _ -> 0)
  in
  let full, _ = Journal.read path in
  Alcotest.(check int) "all records readable" (List.length payloads) (List.length full);
  let cut = Filename.concat dir "cut.jsonl" in
  for k = 0 to len do
    let oc = open_out_bin cut in
    output_string oc (String.sub contents 0 k);
    close_out oc;
    let records, dropped = Journal.read cut in
    Alcotest.(check int)
      (Printf.sprintf "offset %d: whole-line prefix survives" k)
      (recoverable k) (List.length records);
    (* surviving records are exactly the original prefix *)
    List.iteri
      (fun i r ->
        Alcotest.(check int)
          (Printf.sprintf "offset %d: record %d intact" k i)
          i
          (Result.get_ok (Json.get_int "i" r)))
      records;
    Alcotest.(check bool)
      (Printf.sprintf "offset %d: at most one torn tail dropped" k)
      true (dropped <= 1)
  done

(* The fault hook: a torn flush persists exactly the chosen prefix,
   raises Torn_write, and leaves the journal closed — and the torn file
   recovers through [read] like any crash artifact. *)
let test_journal_tear_hook () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "journal.jsonl" in
  let torn_at = ref None in
  let tear ~flush ~size =
    if flush = 0 then begin
      torn_at := Some (size / 2);
      Some (size / 2)
    end
    else None
  in
  let j = Journal.open_append ~fsync_every:2 ~tear path in
  (* a long first record keeps the mid-batch tear inside it, so no
     whole line survives *)
  Journal.append j (Json.Obj [ ("a", Json.Int 1); ("pad", Json.String (String.make 100 'x')) ]);
  (match Journal.append j (Json.Obj [ ("a", Json.Int 2) ]) with
  | () -> Alcotest.fail "torn flush did not raise"
  | exception Journal.Torn_write -> ());
  (* the journal is dead, as after a power cut *)
  (match Journal.append j (Json.Obj [ ("a", Json.Int 3) ]) with
  | () -> Alcotest.fail "append to a torn journal succeeded"
  | exception Invalid_argument _ -> ());
  Journal.close j;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  Alcotest.(check int) "exactly the torn prefix persisted" (Option.get !torn_at) len;
  let records, dropped = Journal.read path in
  Alcotest.(check int) "no whole record survived the torn batch" 0 (List.length records);
  Alcotest.(check int) "the torn tail is dropped, not fatal" 1 dropped

let test_journal_missing_file () =
  with_tmpdir @@ fun dir ->
  let records, dropped = Journal.read (Filename.concat dir "absent.jsonl") in
  Alcotest.(check int) "missing journal reads empty" 0 (List.length records);
  Alcotest.(check int) "nothing dropped" 0 dropped

(* ------------------------------------------------------------------ *)
(* Index: last write wins, save/load                                   *)
(* ------------------------------------------------------------------ *)

let test_index_last_write_wins () =
  with_tmpdir @@ fun dir ->
  let key =
    {
      Index.k_benchmark = "ART";
      k_machine = "sparc2";
      k_method = "RBR";
      k_config = Optconfig.digest Optconfig.o3;
      k_ctx = "deadbeef";
    }
  in
  let entry session eval =
    {
      Index.key;
      session;
      config = Optconfig.o3;
      eval;
      used = { Codec.c_invocations = 1; c_passes = 1; c_cycles = 1.0 };
    }
  in
  let idx = Index.create () in
  Index.add idx (entry "s1" 1.0);
  Index.add idx (entry "s2" 2.0);
  Alcotest.(check int) "one entry per key" 1 (Index.size idx);
  let winner = Index.fold (fun e _ -> Some e) idx None in
  (match winner with
  | Some e ->
      Alcotest.(check string) "last write wins" "s2" e.Index.session;
      Alcotest.(check (float 0.0)) "with its eval" 2.0 e.Index.eval
  | None -> Alcotest.fail "empty index");
  let path = Filename.concat dir "index.json" in
  Index.save idx path;
  let loaded = Result.get_ok (Index.load path) in
  Alcotest.(check int) "save/load preserves size" 1 (Index.size loaded)

(* ------------------------------------------------------------------ *)
(* Sessions: parameter safety and resume determinism                   *)
(* ------------------------------------------------------------------ *)

let meta_for ?start ?(seed = 11) ~method_ ~search b machine =
  Driver.session_meta ?start ~seed ~method_ ~search b machine Trace.Train

let test_session_rejects_changed_params () =
  with_tmpdir @@ fun dir ->
  let b = bench "ART" and machine = Machine.sparc2 in
  let meta = meta_for ~method_:Method.Rbr ~search:Driver.Be b machine in
  let s = Result.get_ok (Session.open_ ~dir ~meta ()) in
  Session.close s;
  (* same id, different rating parameters: must refuse, not silently mix *)
  let params = { Rating.default_params with Rating.window = 80 } in
  let meta' =
    Driver.session_meta ~seed:11 ~method_:Method.Rbr ~search:Driver.Be ~rating_params:params
      b machine Trace.Train
  in
  match Session.open_ ~dir ~meta:meta' () with
  | Ok s' ->
      Session.close s';
      Alcotest.fail "session reopened under different rating parameters"
  | Error msg ->
      Alcotest.(check bool) "one-line reason" false (String.contains msg '\n')

let resume_case ~bname ~method_ () =
  with_tmpdir @@ fun root ->
  let b = bench bname and machine = Machine.sparc2 in
  let search = Driver.Be in
  let full_dir = Filename.concat root "full" in
  let meta = meta_for ~method_ ~search b machine in
  let id = meta.Codec.m_id in
  (* the uninterrupted reference run, journaling as it goes *)
  let session = Result.get_ok (Session.open_ ~dir:full_dir ~meta ()) in
  let full =
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~seed:11 ~search ~method_ ~store:session b machine Trace.Train)
  in
  let n_events = (Result.get_ok (Session.load_info ~dir:full_dir ~id)).Session.info_events in
  Alcotest.(check bool) (bname ^ ": session journaled events") true (n_events > 0);
  (* resume from a mid-session crash on 1, 2 and 4 domains *)
  List.iter
    (fun domains ->
      let dst_dir = Filename.concat root (Printf.sprintf "crash%d" domains) in
      let total = crashed_copy ~src_dir:full_dir ~dst_dir ~id ~keep:(n_events / 2) in
      ignore total;
      let session = Result.get_ok (Session.open_ ~dir:dst_dir ~meta ()) in
      Alcotest.(check int)
        (Printf.sprintf "%s -j%d: replayed the surviving prefix" bname domains)
        (n_events / 2) (Session.loaded_events session);
      let resumed =
        Fun.protect
          ~finally:(fun () -> Session.close session)
          (fun () ->
            let tune pool =
              Driver.tune ~seed:11 ~search ~method_ ?pool ~store:session b machine
                Trace.Train
            in
            if domains > 1 then Pool.run ~domains (fun p -> tune (Some p)) else tune None)
      in
      check_identical (Printf.sprintf "%s resumed -j%d vs uninterrupted" bname domains)
        full resumed;
      (* completion must have written the durable result, matching too *)
      let info = Result.get_ok (Session.load_info ~dir:dst_dir ~id) in
      match info.Session.info_result with
      | None -> Alcotest.fail "resumed session has no result.json"
      | Some r ->
          Alcotest.(check bool)
            (bname ^ ": stored best matches")
            true
            (Optconfig.equal r.Codec.r_best full.Driver.best_config))
    [ 1; 2; 4 ];
  (* a store-enabled run equals the pool path without a store: both use
     the deterministic per-candidate scheme *)
  let pooled =
    Pool.run ~domains:2 (fun pool ->
        Driver.tune ~seed:11 ~search ~method_ ~pool b machine Trace.Train)
  in
  check_identical (bname ^ " store vs plain pool path") full pooled

(* Kill/resume across a fallback decision: a starved rating budget
   (max_invocations below the convergence window) makes every absolute
   probe fail, so an auto session walks the §3 chain down to RBR.  A
   crash kept to the first journal line lands between the failed probe
   and the committed method — the resume must replay the probe verdict
   from the store and land on the same chain, bit-identically, at any
   domain count. *)
let test_fallback_resume () =
  with_tmpdir @@ fun root ->
  let b = bench "MGRID" and machine = Machine.sparc2 in
  let search = Driver.Be in
  let rating_params = { Rating.default_params with Rating.max_invocations = 30 } in
  let meta =
    Driver.session_meta ~seed:11 ~search ~rating_params b machine Trace.Train
  in
  let id = meta.Codec.m_id in
  let full_dir = Filename.concat root "full" in
  let session = Result.get_ok (Session.open_ ~dir:full_dir ~meta ()) in
  let full =
    Fun.protect
      ~finally:(fun () -> Session.close session)
      (fun () -> Driver.tune ~seed:11 ~search ~rating_params ~store:session b machine Trace.Train)
  in
  Alcotest.(check bool) "starved budget forced a fallback" true
    (List.length full.Driver.attempts > 1);
  Alcotest.(check string) "fell back to RBR" "RBR" (Method.name full.Driver.method_used);
  List.iter
    (fun (a : Method.attempt) ->
      if a.Method.a_method <> full.Driver.method_used then
        Alcotest.(check bool)
          (Method.name a.Method.a_method ^ " probe abandoned as non-converged")
          false a.Method.a_converged)
    full.Driver.attempts;
  let n_events = (Result.get_ok (Session.load_info ~dir:full_dir ~id)).Session.info_events in
  Alcotest.(check bool) "journaled beyond the probe" true (n_events > 1);
  (* keep = 1 slices right after the failed probe; n_events / 2 lands
     mid-search — both must resume to the identical result and chain *)
  List.iter
    (fun (keep, domains) ->
      let dst_dir = Filename.concat root (Printf.sprintf "crash%d_%d" keep domains) in
      ignore (crashed_copy ~src_dir:full_dir ~dst_dir ~id ~keep);
      let session = Result.get_ok (Session.open_ ~dir:dst_dir ~meta ()) in
      let resumed =
        Fun.protect
          ~finally:(fun () -> Session.close session)
          (fun () ->
            let tune pool =
              Driver.tune ~seed:11 ~search ~rating_params ?pool ~store:session b machine
                Trace.Train
            in
            if domains > 1 then Pool.run ~domains (fun p -> tune (Some p)) else tune None)
      in
      let tag = Printf.sprintf "fallback resume keep=%d -j%d" keep domains in
      check_identical tag full resumed;
      Alcotest.(check bool) (tag ^ ": same attempted-method chain") true
        (resumed.Driver.attempts = full.Driver.attempts);
      Alcotest.(check string) (tag ^ ": same committed method")
        (Method.name full.Driver.method_used)
        (Method.name resumed.Driver.method_used);
      let info = Result.get_ok (Session.load_info ~dir:dst_dir ~id) in
      match info.Session.info_result with
      | None -> Alcotest.fail (tag ^ ": resumed session has no result.json")
      | Some r ->
          Alcotest.(check string) (tag ^ ": stored method matches") "RBR" r.Codec.r_method;
          Alcotest.(check int) (tag ^ ": stored chain length matches")
            (List.length full.Driver.attempts)
            (List.length r.Codec.r_attempts))
    [ (1, 1); (1, 2); (1, 4); (n_events / 2, 1); (n_events / 2, 2); (n_events / 2, 4) ]

(* ------------------------------------------------------------------ *)
(* Warm start                                                          *)
(* ------------------------------------------------------------------ *)

let fabricate_session ?(gain = 0.9) dir ~benchmark ~machine ~seed ~best =
  let id =
    Session.id_for ~benchmark ~machine ~dataset:"train" ~search:"be" ~method_:"rbr" ~seed
  in
  let meta =
    {
      Codec.m_id = id;
      m_benchmark = benchmark;
      m_machine = machine;
      m_dataset = "train";
      m_search = "be";
      m_seed = seed;
      m_threshold = 0.005;
      m_params = Rating.params_signature Rating.default_params;
      m_method = "rbr";
      m_start = Optconfig.o3;
      m_faults = "-";
    }
  in
  let s = Result.get_ok (Session.open_ ~dir ~meta ()) in
  Session.complete s
    {
      Codec.r_method = "RBR";
      r_strategy = "ie";
      r_stages = [ { Codec.st_label = "eliminate"; st_ratings = 1; st_flags = 1 } ];
      r_attempts = [ { Codec.at_method = "RBR"; at_converged = true; at_ratings = 1 } ];
      r_best = best;
      r_ratings = 1;
      r_iterations = 1;
      r_trajectory = [ (best, gain) ];
      r_tuning_cycles = 1.0;
      r_tuning_seconds = 1.0;
      r_passes = 1;
      r_invocations = 1;
      r_quarantined = [];
      r_retries = 0;
      r_metrics = None;
    };
  Session.close s

let test_warmstart () =
  with_tmpdir @@ fun dir ->
  (match Warmstart.propose ~dir ~benchmark:"FOO" ~machine:"M1" with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "proposal from an empty store"
  | Error e -> Alcotest.fail e);
  let drop idxs =
    List.fold_left (fun c i -> Optconfig.disable c Flags.all.(i)) Optconfig.o3 idxs
  in
  let foo_best = drop [ 0; 1 ] in
  let bar_best = drop [ 0; 1; 2 ] in
  (* BAR's signature is one flag away from FOO's; BAZ is far off *)
  fabricate_session dir ~benchmark:"FOO" ~machine:"M1" ~seed:1 ~best:foo_best;
  fabricate_session dir ~benchmark:"BAR" ~machine:"M1" ~seed:1 ~best:bar_best;
  fabricate_session dir ~benchmark:"BAZ" ~machine:"M1" ~seed:1 ~best:Optconfig.o0;
  fabricate_session dir ~benchmark:"BAZ" ~machine:"M1" ~seed:2 ~best:Optconfig.o0;
  (match Warmstart.propose ~dir ~benchmark:"FOO" ~machine:"M1" with
  | Ok (Some p) ->
      (* benchmark names are normalized to lower case in proposals *)
      Alcotest.(check string) "nearest neighbor is BAR" "bar" p.Warmstart.neighbor;
      Alcotest.(check bool) "proposes BAR's best" true
        (Optconfig.equal p.Warmstart.start bar_best);
      (match p.Warmstart.origin with
      | Warmstart.Nearest_neighbor d ->
          Alcotest.(check bool) "positive distance" true (d > 0.0)
      | Warmstart.Most_frequent -> Alcotest.fail "expected a nearest-neighbor origin")
  | Ok None -> Alcotest.fail "no proposal despite history"
  | Error e -> Alcotest.fail e);
  (* a benchmark with no history of its own gets the modal best config:
     BAZ's -O0 won twice, everything else once *)
  match Warmstart.propose ~dir ~benchmark:"QUUX" ~machine:"M1" with
  | Ok (Some p) ->
      (match p.Warmstart.origin with
      | Warmstart.Most_frequent -> ()
      | Warmstart.Nearest_neighbor _ -> Alcotest.fail "expected the modal fallback");
      Alcotest.(check bool) "modal best config" true
        (Optconfig.equal p.Warmstart.start Optconfig.o0)
  | Ok None -> Alcotest.fail "no fallback proposal"
  | Error e -> Alcotest.fail e

(* Regression: with several recorded configs for the same neighbor, the
   proposal must be the one with the best recorded speedup — not the one
   from the smallest session id, which is what the pre-KB fold returned
   (fold_left over id-sorted sessions kept the first config seen). *)
let test_warmstart_prefers_better_speedup () =
  with_tmpdir @@ fun dir ->
  let drop idxs =
    List.fold_left (fun c i -> Optconfig.disable c Flags.all.(i)) Optconfig.o3 idxs
  in
  let target_best = drop [ 0; 1 ] in
  let poor = drop [ 0; 1; 2 ] in
  let good = drop [ 0; 1; 3 ] in
  fabricate_session dir ~benchmark:"FOO" ~machine:"M1" ~seed:1 ~best:target_best;
  (* BAR tuned twice: the earlier session (smaller id) found a config
     worth 1.11x, the later one a config worth 2x *)
  fabricate_session dir ~benchmark:"BAR" ~machine:"M1" ~seed:1 ~best:poor ~gain:0.1;
  fabricate_session dir ~benchmark:"BAR" ~machine:"M1" ~seed:2 ~best:good ~gain:0.5;
  match Warmstart.propose ~dir ~benchmark:"FOO" ~machine:"M1" with
  | Ok (Some p) ->
      Alcotest.(check string) "neighbor is BAR" "bar" p.Warmstart.neighbor;
      Alcotest.(check bool) "the better-performing config wins" true
        (Optconfig.equal p.Warmstart.start good)
  | Ok None -> Alcotest.fail "no proposal despite history"
  | Error e -> Alcotest.fail e

let test_mean_vector_empty_raises () =
  (* NaN guard: the mean of zero vectors used to be 0/0 per component *)
  match Warmstart.mean_vector [] with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "mean of nothing produced a %d-vector" (Array.length v)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "store.codec",
      List.map QCheck_alcotest.to_alcotest (roundtrip_tests @ [ digest_agrees_with_equal ])
      @ [
          Alcotest.test_case "future format version rejected" `Quick test_version_guard;
          Alcotest.test_case "v4 rejects non-finite floats" `Quick test_v4_rejects_nonfinite;
          Alcotest.test_case "v3 records still decode leniently" `Quick
            test_v3_lenient_decode;
          Alcotest.test_case "index rejects non-finite evals" `Quick
            test_index_rejects_nonfinite;
          Alcotest.test_case "tampered config digest rejected" `Quick
            test_config_digest_mismatch;
          Alcotest.test_case "JSON parser basics" `Quick test_json_parser_basics;
          Alcotest.test_case "optconfig digest is order-independent" `Quick
            test_digest_order_independent;
        ] );
    ( "store.journal",
      [
        Alcotest.test_case "truncated tail tolerated" `Quick test_journal_truncated_tail;
        Alcotest.test_case "interior corruption tolerated" `Quick
          test_journal_interior_corruption;
        Alcotest.test_case "truncation tolerated at every byte offset" `Quick
          test_journal_truncate_every_offset;
        Alcotest.test_case "torn flush persists a prefix and dies" `Quick
          test_journal_tear_hook;
        Alcotest.test_case "missing journal reads empty" `Quick test_journal_missing_file;
        Alcotest.test_case "index last-write-wins and save/load" `Quick
          test_index_last_write_wins;
      ] );
    ( "store.resume",
      [
        Alcotest.test_case "changed rating params rejected" `Slow
          test_session_rejects_changed_params;
        Alcotest.test_case "CBR resume bit-identical (SWIM)" `Slow
          (resume_case ~bname:"SWIM" ~method_:Method.Cbr);
        Alcotest.test_case "MBR resume bit-identical (MGRID)" `Slow
          (resume_case ~bname:"MGRID" ~method_:Method.Mbr);
        Alcotest.test_case "RBR resume bit-identical (ART)" `Slow
          (resume_case ~bname:"ART" ~method_:Method.Rbr);
        Alcotest.test_case "kill/resume across a fallback decision" `Slow
          test_fallback_resume;
      ] );
    ( "store.warmstart",
      [
        Alcotest.test_case "warm start proposals" `Quick test_warmstart;
        Alcotest.test_case "better-performing neighbor config wins" `Quick
          test_warmstart_prefers_better_speedup;
        Alcotest.test_case "mean_vector of nothing raises" `Quick
          test_mean_vector_empty_raises;
      ] );
  ]
