(* The parallel tuning engine: tune_suite determinism across domain
   counts, the auto method resolution, and the rating/search regression
   fixes that rode along with it. *)

open Peak_machine
open Peak_compiler
open Peak_workload
open Peak

(* Shared fixtures — the bit-identity oracle lives in [Oracles] so every
   determinism suite compares the same fields. *)
let bench = Oracles.bench
let check_identical = Oracles.check_identical

(* ------------------------------------------------------------------ *)
(* tune_suite determinism                                              *)
(* ------------------------------------------------------------------ *)

let suite_results domains =
  Driver.tune_suite ~search:Driver.Be ~domains
    [ bench "SWIM"; bench "MGRID"; bench "ART" ]
    Machine.sparc2 Trace.Train

let test_tune_suite_deterministic () =
  let r1 = suite_results 1 in
  let r2 = suite_results 2 in
  let r4 = suite_results 4 in
  Alcotest.(check int) "three results" 3 (List.length r1);
  List.iter2
    (fun a b -> check_identical (a.Driver.benchmark.Benchmark.name ^ " 1v2") a b)
    r1 r2;
  List.iter2
    (fun a b -> check_identical (a.Driver.benchmark.Benchmark.name ^ " 1v4") a b)
    r1 r4

let test_tune_suite_order () =
  let r = suite_results 2 in
  Alcotest.(check (list string))
    "results in benchmark order"
    [ "SWIM"; "MGRID"; "ART" ]
    (List.map (fun (x : Driver.result) -> x.Driver.benchmark.Benchmark.name) r)

(* ------------------------------------------------------------------ *)
(* Driver ?method_ auto resolution (no second profile)                 *)
(* ------------------------------------------------------------------ *)

let test_auto_method_single_profile () =
  let b = bench "MGRID" in
  let auto = Driver.tune b Machine.sparc2 Trace.Train in
  (* MGRID's consultant choice is MBR (multiple contexts, components) *)
  Alcotest.(check string) "auto resolves to MBR" "MBR" (Method.name auto.Driver.method_used);
  (* the attempted-method chain ends with the committed method *)
  (match List.rev auto.Driver.attempts with
  | last :: _ ->
      Alcotest.(check string) "chain ends with the method used" "MBR"
        (Method.name last.Method.a_method);
      Alcotest.(check bool) "committed attempt converged" true last.Method.a_converged
  | [] -> Alcotest.fail "empty attempt chain");
  (* auto mode — probe included — is deterministic per seed *)
  let again = Driver.tune b Machine.sparc2 Trace.Train in
  check_identical "auto twice" auto again;
  Alcotest.(check bool) "same attempt chain" true (auto.Driver.attempts = again.Driver.attempts)

(* In the deterministic rating scheme (pool or store), a converged first
   probe doubles as the search's base rating — same derived seed, same
   accounting slot — so auto must be bit-identical to forcing the chosen
   method. *)
let test_auto_equals_forced_deterministic () =
  let b = bench "MGRID" in
  let tune method_ =
    Peak_util.Pool.run ~domains:2 (fun pool ->
        Driver.tune ?method_ ~pool b Machine.sparc2 Trace.Train)
  in
  let auto = tune None in
  Alcotest.(check string) "auto resolves to MBR" "MBR" (Method.name auto.Driver.method_used);
  let forced = tune (Some auto.Driver.method_used) in
  check_identical "auto vs forced" auto forced

(* ------------------------------------------------------------------ *)
(* Batch elimination: cumulative trajectory                            *)
(* ------------------------------------------------------------------ *)

let test_be_trajectory_cumulative () =
  let f1 = Flags.all.(0) and f2 = Flags.all.(5) in
  (* removing f1 or f2 helps; every other single-flag removal is neutral *)
  let relative ~base:_ candidate =
    if (not (Optconfig.is_enabled candidate f1)) || not (Optconfig.is_enabled candidate f2)
    then 0.97
    else 1.0
  in
  let final, stats = Search.batch_elimination ~relative Optconfig.o3 in
  Alcotest.(check bool) "f1 removed" false (Optconfig.is_enabled final f1);
  Alcotest.(check bool) "f2 removed" false (Optconfig.is_enabled final f2);
  Alcotest.(check int) "two trajectory steps" 2 (List.length stats.Search.trajectory);
  (* entries are cumulative: each extends the previous, and the last one
     is the returned configuration *)
  let configs = List.map fst stats.Search.trajectory in
  (match configs with
  | [ first; second ] ->
      Alcotest.(check int)
        "first step removes one flag" 1
        (List.length (Optconfig.enabled Optconfig.o3) - List.length (Optconfig.enabled first));
      Alcotest.(check int)
        "second step removes two flags" 2
        (List.length (Optconfig.enabled Optconfig.o3) - List.length (Optconfig.enabled second))
  | _ -> Alcotest.fail "expected exactly two entries");
  let last = List.nth configs (List.length configs - 1) in
  Alcotest.(check bool) "trajectory ends at the final config" true (Optconfig.equal last final)

(* ------------------------------------------------------------------ *)
(* CBR: unmatched target context fails loudly                          *)
(* ------------------------------------------------------------------ *)

let test_cbr_no_samples () =
  (* APSI has a non-empty context-variable set, so an impossible target
     vector can never be matched *)
  let b = bench "APSI" in
  let tsec = Tsection.make b.Benchmark.ts in
  let trace = b.Benchmark.trace Trace.Train ~seed:11 in
  let machine = Machine.sparc2 in
  let profile = Profile.run ~seed:12 tsec trace machine in
  let sources =
    match profile.Profile.context with
    | Profile.Cbr_ok { sources; _ } -> sources
    | Profile.Cbr_no reason -> Alcotest.fail ("APSI should be CBR-applicable: " ^ reason)
  in
  Alcotest.(check bool) "context variables exist" true (sources <> []);
  let runner = Runner.create ~seed:13 tsec trace machine in
  let v = Version.compile machine tsec.Tsection.features Optconfig.o3 in
  (* a context value vector no invocation can produce *)
  let target = Array.make (List.length sources) (-1.2345e9) in
  match Cbr.rate runner ~sources ~target v with
  | (_ : Rating.t) -> Alcotest.fail "expected Rating.No_samples"
  | exception Rating.No_samples msg ->
      Alcotest.(check bool) "message names the tuning section" true
        (Oracles.contains ~sub:(Tsection.name tsec) msg)

let suites =
  [
    ( "core.parallel",
      [
        Alcotest.test_case "tune_suite deterministic across domains" `Slow
          test_tune_suite_deterministic;
        Alcotest.test_case "tune_suite keeps benchmark order" `Slow test_tune_suite_order;
        Alcotest.test_case "auto method uses a single profile" `Slow
          test_auto_method_single_profile;
        Alcotest.test_case "deterministic auto == forced chosen method" `Slow
          test_auto_equals_forced_deterministic;
        Alcotest.test_case "BE trajectory is cumulative" `Quick test_be_trajectory_cumulative;
        Alcotest.test_case "CBR raises No_samples on unmatched context" `Quick
          test_cbr_no_samples;
      ] );
  ]
