(* Tests for the SPEC-like workload library: every benchmark's tuning
   section must interpret safely over its traces, deterministically, and
   with the declared class structure. *)

open Peak_ir
open Peak_workload

let all = Registry.all

let run_slice (b : Benchmark.t) dataset ~seed ~n =
  let cfg = Cfg.of_ts b.Benchmark.ts in
  let trace = b.Benchmark.trace dataset ~seed in
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  let results = ref [] in
  let n = min n trace.Trace.length in
  for i = 0 to n - 1 do
    trace.Trace.setup i env;
    results := Interp.run cfg env :: !results
  done;
  (trace, List.rev !results)

let test_all_benchmarks_interpret_safely () =
  List.iter
    (fun (b : Benchmark.t) ->
      let _, results = run_slice b Trace.Train ~seed:3 ~n:60 in
      Alcotest.(check int)
        (Printf.sprintf "%s ran 60 invocations" b.Benchmark.name)
        60 (List.length results))
    all

let test_registry_covers_table1 () =
  Alcotest.(check int) "fourteen benchmarks" 14 (List.length all);
  Alcotest.(check int) "six integer codes" 6 (List.length Registry.integer);
  Alcotest.(check int) "eight fp codes" 8 (List.length Registry.floating_point);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Registry.by_name name <> None))
    [
      "BZIP2"; "CRAFTY"; "GZIP"; "MCF"; "TWOLF"; "VORTEX"; "APPLU"; "APSI"; "ART";
      "MGRID"; "EQUAKE"; "MESA"; "SWIM"; "WUPWISE";
    ];
  Alcotest.(check bool) "unknown name" true (Registry.by_name "GCC" = None)

let test_figure7_selection () =
  let names = List.map (fun b -> b.Benchmark.name) Registry.figure7 in
  Alcotest.(check (list string)) "paper's four" [ "SWIM"; "MGRID"; "ART"; "EQUAKE" ] names

let test_trace_determinism () =
  List.iter
    (fun (b : Benchmark.t) ->
      let _, r1 = run_slice b Trace.Train ~seed:9 ~n:20 in
      let _, r2 = run_slice b Trace.Train ~seed:9 ~n:20 in
      let counts r = List.map (fun x -> x.Interp.block_counts) r in
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministic under seed" b.Benchmark.name)
        true
        (counts r1 = counts r2))
    all

let test_trace_seed_sensitivity () =
  (* irregular traces must differ across seeds *)
  let irregular = [ "BZIP2"; "GZIP"; "MESA"; "TWOLF" ] in
  List.iter
    (fun name ->
      let b = Option.get (Registry.by_name name) in
      let _, r1 = run_slice b Trace.Train ~seed:1 ~n:60 in
      let _, r2 = run_slice b Trace.Train ~seed:2 ~n:60 in
      let work r =
        List.map (fun x -> Array.fold_left ( + ) 0 x.Interp.block_counts) r
      in
      Alcotest.(check bool) (name ^ " varies with seed") true (work r1 <> work r2))
    irregular

let test_class_soundness () =
  (* invocations with the same declared class must produce identical
     block counts — the property the runner's class cache relies on *)
  List.iter
    (fun (b : Benchmark.t) ->
      let trace = b.Benchmark.trace Trace.Train ~seed:17 in
      match trace.Trace.class_of with
      | None -> ()
      | Some class_of ->
          let _, results = run_slice b Trace.Train ~seed:17 ~n:40 in
          let by_class = Hashtbl.create 8 in
          List.iteri
            (fun i r ->
              let k = class_of i in
              match Hashtbl.find_opt by_class k with
              | None -> Hashtbl.add by_class k r.Interp.block_counts
              | Some expected ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s class %d stable" b.Benchmark.name k)
                    true
                    (expected = r.Interp.block_counts))
            results)
    all

let test_ref_traces_longer () =
  List.iter
    (fun (b : Benchmark.t) ->
      let train = b.Benchmark.trace Trace.Train ~seed:5 in
      let ref_ = b.Benchmark.trace Trace.Ref ~seed:5 in
      Alcotest.(check bool)
        (Printf.sprintf "%s ref longer than train" b.Benchmark.name)
        true
        (ref_.Trace.length > train.Trace.length))
    all

let test_irregular_benchmarks_vary_per_invocation () =
  (* the RBR benchmarks must show varying work across invocations *)
  List.iter
    (fun name ->
      let b = Option.get (Registry.by_name name) in
      let _, results = run_slice b Trace.Train ~seed:13 ~n:80 in
      let works = List.map (fun r -> r.Interp.block_counts) results in
      let distinct = List.sort_uniq compare works in
      Alcotest.(check bool)
        (Printf.sprintf "%s has varying work (%d distinct)" name (List.length distinct))
        true
        (List.length distinct > 5))
    [ "BZIP2"; "CRAFTY"; "GZIP"; "MCF"; "TWOLF"; "VORTEX"; "ART"; "MESA" ]

let test_swim_is_stable () =
  let _, results = run_slice (Option.get (Registry.by_name "SWIM")) Trace.Train ~seed:13 ~n:20 in
  let works = List.map (fun r -> r.Interp.block_counts) results in
  Alcotest.(check int) "single workload" 1 (List.length (List.sort_uniq compare works))

let test_gzip_match_lengths_vary () =
  let b = Option.get (Registry.by_name "GZIP") in
  let _, results = run_slice b Trace.Train ~seed:29 ~n:300 in
  let works = List.map (fun r -> Array.fold_left ( + ) 0 r.Interp.block_counts) results in
  let small = List.filter (fun w -> w < 40) works in
  let large = List.filter (fun w -> w > 100) works in
  Alcotest.(check bool) "short searches exist" true (List.length small > 0);
  Alcotest.(check bool) "long searches exist" true (List.length large > 0)

let test_mcf_mutates_arrays () =
  let b = Option.get (Registry.by_name "MCF") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Alcotest.(check bool) "cost declared mutated" true
    (List.mem "cost" trace.Trace.mutated_arrays);
  (* the declaration must be true: setup really changes the array *)
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  trace.Trace.setup 0 env;
  let before = Array.copy (Interp.get_array env "cost") in
  trace.Trace.setup 1 env;
  let after = Interp.get_array env "cost" in
  Alcotest.(check bool) "cost actually mutated" true (before <> after)

let test_equake_structure_fixed () =
  let b = Option.get (Registry.by_name "EQUAKE") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  Alcotest.(check (list string)) "nothing mutated" [] trace.Trace.mutated_arrays;
  let env = Interp.make_env b.Benchmark.ts in
  trace.Trace.init env;
  trace.Trace.setup 0 env;
  let before = Array.copy (Interp.get_array env "rowstart") in
  trace.Trace.setup 5 env;
  Alcotest.(check bool) "rowstart untouched" true
    (before = Interp.get_array env "rowstart")

let test_art_uses_pointers () =
  let b = Option.get (Registry.by_name "ART") in
  Alcotest.(check bool) "has pointer inputs" true (b.Benchmark.ts.Types.pointers <> [])

let test_apsi_has_three_classes () =
  let b = Option.get (Registry.by_name "APSI") in
  let trace = b.Benchmark.trace Trace.Train ~seed:3 in
  match trace.Trace.class_of with
  | None -> Alcotest.fail "apsi should declare classes"
  | Some f ->
      let classes = List.sort_uniq compare (List.init 30 f) in
      Alcotest.(check int) "three contexts" 3 (List.length classes)

let test_shares_valid () =
  List.iter
    (fun (b : Benchmark.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s share in (0,1]" b.Benchmark.name)
        true
        (b.Benchmark.time_share > 0.0 && b.Benchmark.time_share <= 1.0))
    all

let prop_no_out_of_bounds =
  (* random seeds and datasets: no benchmark may index out of bounds *)
  QCheck.Test.make ~name:"no out-of-bounds under random seeds" ~count:8
    QCheck.(pair (int_range 0 1000) bool)
    (fun (seed, use_ref) ->
      let dataset = if use_ref then Trace.Ref else Trace.Train in
      List.for_all
        (fun (b : Benchmark.t) ->
          try
            ignore (run_slice b dataset ~seed ~n:8);
            true
          with Interp.Out_of_bounds _ -> false)
        all)

(* ------------------------------------------------------------------ *)
(* Drift generator properties                                          *)
(* ------------------------------------------------------------------ *)

(* Random drift specs: an arbitrary mix of the four patterns with
   in-range breakpoints, plus an optional warp. *)
let drift_gen =
  QCheck.Gen.(
    let pattern =
      oneof
        [
          map (fun at -> Drift.Step at) (int_range 0 2000);
          map2 (fun at dur -> Drift.Ramp (at, dur)) (int_range 0 2000) (int_range 1 1000);
          map (fun p -> Drift.Periodic p) (int_range 1 1000);
          map2 (fun at dur -> Drift.Burst (at, dur)) (int_range 0 2000) (int_range 1 1000);
        ]
    in
    let warp =
      map2
        (fun scale amount ->
          { Drift.w_source = "off"; w_scale = scale; w_amount = float_of_int amount /. 8.0 })
        bool (int_range (-16) 16)
    in
    map3
      (fun seed patterns warps -> Drift.make ~seed ~warps patterns)
      (int_range 0 10_000)
      (list_size (int_range 1 4) pattern)
      (list_size (int_range 0 2) warp))

let drift_arb = QCheck.make ~print:Drift.to_string drift_gen

let prop_drift_spec_round_trip =
  QCheck.Test.make ~name:"drift spec round-trips through of_string" ~count:200 drift_arb
    (fun d ->
      match Drift.of_string (Drift.to_string d) with
      | Ok d' -> d' = d && Drift.to_string d' = Drift.to_string d
      | Error _ -> false)

let prop_drift_stream_deterministic =
  (* identity-keyed draws: the regime stream is a pure function of
     (spec, invocation) — same spec and seed, same stream, in any order *)
  QCheck.Test.make ~name:"drift stream deterministic under seed" ~count:50 drift_arb
    (fun d ->
      let forward = List.init 400 (Drift.in_shifted_regime d) in
      (* evaluate in reverse index order; rev_map flips the descending
         input back to ascending *)
      let backward =
        List.rev_map (Drift.in_shifted_regime d) (List.init 400 (fun i -> 399 - i))
      in
      let again =
        match Drift.of_string (Drift.to_string d) with
        | Ok d' -> List.init 400 (Drift.in_shifted_regime d')
        | Error _ -> []
      in
      forward = backward && forward = again)

let prop_drift_step_shifts_distribution =
  (* the declared breakpoint is real: regime-B frequency before a step
     is 0, after it is 1, and the replayed base indices move from the
     first half of the index space to the second *)
  QCheck.Test.make ~name:"step shifts the distribution at its breakpoint" ~count:50
    QCheck.(pair (int_range 0 10_000) (int_range 100 900))
    (fun (seed, at) ->
      let d = Drift.make ~seed [ Drift.Step at ] in
      let before = List.init at (Drift.in_shifted_regime d) in
      let after = List.init (1000 - at) (fun i -> Drift.in_shifted_regime d (at + i)) in
      List.for_all not before && List.for_all Fun.id after)

let prop_drift_ramp_magnitude =
  (* mid-ramp, the empirical regime-B share tracks the declared weight
     to within sampling error *)
  QCheck.Test.make ~name:"ramp's empirical shift tracks its declared magnitude" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let d = Drift.make ~seed [ Drift.Ramp (1000, 2000) ] in
      let share lo hi =
        let n = hi - lo in
        let hits =
          List.length (List.filter Fun.id (List.init n (fun i -> Drift.in_shifted_regime d (lo + i))))
        in
        float_of_int hits /. float_of_int n
      in
      (* first third of the ramp: expected weight ~1/6; last third: ~5/6 *)
      let early = share 1000 1666 and late = share 2333 3000 in
      early < 0.35 && late > 0.65 && late -. early > 0.3)

let prop_drift_weight_bounds =
  QCheck.Test.make ~name:"drift weight stays in [0,1]" ~count:100 drift_arb (fun d ->
      List.for_all
        (fun i ->
          let w = Drift.weight d i in
          w >= 0.0 && w <= 1.0)
        (List.init 200 (fun i -> i * 37)))

let prop_drift_shift_points_sorted =
  QCheck.Test.make ~name:"shift points sorted, deduplicated, in range" ~count:100 drift_arb
    (fun d ->
      let pts = Drift.shift_points d ~length:3000 in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      sorted pts && List.for_all (fun p -> p > 0 && p < 3000) pts)

let suites =
  [
    ( "workload.registry",
      [
        Alcotest.test_case "covers table 1" `Quick test_registry_covers_table1;
        Alcotest.test_case "figure 7 selection" `Quick test_figure7_selection;
        Alcotest.test_case "shares valid" `Quick test_shares_valid;
      ] );
    ( "workload.traces",
      [
        Alcotest.test_case "all interpret safely" `Quick test_all_benchmarks_interpret_safely;
        Alcotest.test_case "determinism" `Quick test_trace_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_trace_seed_sensitivity;
        Alcotest.test_case "class soundness" `Quick test_class_soundness;
        Alcotest.test_case "ref longer" `Quick test_ref_traces_longer;
        Alcotest.test_case "irregular variation" `Quick test_irregular_benchmarks_vary_per_invocation;
        Alcotest.test_case "swim stable" `Quick test_swim_is_stable;
        Alcotest.test_case "gzip match lengths" `Quick test_gzip_match_lengths_vary;
        Alcotest.test_case "mcf mutates arrays" `Quick test_mcf_mutates_arrays;
        Alcotest.test_case "equake structure fixed" `Quick test_equake_structure_fixed;
        Alcotest.test_case "art uses pointers" `Quick test_art_uses_pointers;
        Alcotest.test_case "apsi three classes" `Quick test_apsi_has_three_classes;
      ] );
    ( "workload.properties",
      List.map QCheck_alcotest.to_alcotest [ prop_no_out_of_bounds ] );
    ( "workload.drift",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_drift_spec_round_trip;
          prop_drift_stream_deterministic;
          prop_drift_step_shifts_distribution;
          prop_drift_ramp_magnitude;
          prop_drift_weight_bounds;
          prop_drift_shift_points_sorted;
        ] );
  ]
